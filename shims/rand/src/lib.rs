//! Offline stand-in for the subset of the `rand` crate this workspace uses.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal, deterministic implementation of the APIs it
//! actually calls: [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`],
//! the [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`), and
//! [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — high-quality,
//! fast, and fully deterministic. Streams differ from upstream `rand`'s
//! `StdRng` (ChaCha12), which is fine: nothing in the workspace depends on
//! the exact values, only on determinism for a fixed seed.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable uniformly from the full type domain (the `Standard`
/// distribution in upstream `rand`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = rng.next_u64() as u128 % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = rng.next_u64() as u128 % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`] (mirrors upstream `rand`).
pub trait Rng: RngCore {
    /// Draws a value uniformly over the type's full domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // avoid the all-zero state (unreachable from splitmix64, but cheap)
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Random operations on slices (`shuffle`, `choose`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..16).map(|_| r.gen()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..16).map(|_| r.gen()).collect()
        };
        assert_eq!(a, b);
        let c: u64 = StdRng::seed_from_u64(8).gen();
        assert_ne!(a[0], c);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3..10u64);
            assert!((3..10).contains(&v));
            let f = r.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
            let i = r.gen_range(1..=4usize);
            assert!((1..=4).contains(&i));
        }
    }

    #[test]
    fn unit_floats_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = r.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_permutes_and_choose_hits_all() {
        let mut r = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        let opts = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*opts.choose(&mut r).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
