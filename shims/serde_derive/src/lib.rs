//! No-op `Serialize`/`Deserialize` derive macros for the offline serde shim.
//!
//! The workspace never calls serde's serialization methods, so the derives
//! expand to nothing: the annotation compiles, no impl is needed.

use proc_macro::TokenStream;

/// Expands to nothing; accepts any item.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts any item.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
