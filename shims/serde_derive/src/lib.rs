//! No-op `Serialize`/`Deserialize` derive macros for the offline serde shim.
//!
//! The workspace never calls serde's serialization methods, so the derives
//! expand to nothing: the annotation compiles, no impl is needed. Both
//! derives register the `serde` helper attribute so field-level annotations
//! like `#[serde(default)]` parse exactly as they do under the real crate.

use proc_macro::TokenStream;

/// Expands to nothing; accepts any item and `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts any item and `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
