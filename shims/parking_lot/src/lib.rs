//! Offline stand-in for `parking_lot`, wrapping `std::sync` primitives with
//! parking_lot's non-poisoning `lock()` signature. Only the types the
//! workspace touches are provided.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutex with parking_lot's infallible `lock()` (poison is ignored: a
/// panicked holder's data is still returned, matching parking_lot semantics
/// closely enough for the coordinator's plain-old-data stats).
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, never returning a poison error.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// RwLock with parking_lot's infallible `read()`/`write()`.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Acquires a shared read guard, never returning a poison error.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard, never returning a poison error.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}
