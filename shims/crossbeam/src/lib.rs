//! Offline stand-in for `crossbeam`, covering only the channel API the
//! workspace uses (`unbounded`, `Sender`, `Receiver`). Backed by
//! `std::sync::mpsc`, which provides the same clone-able sender and
//! `recv`/`try_iter` receiver surface at lower throughput — acceptable for
//! the coordinator demo paths that exercise it.

/// MPMC-ish channel API mapped onto `std::sync::mpsc` (MPSC suffices for the
/// workspace's single-consumer usage).
pub mod channel {
    pub use std::sync::mpsc::{Receiver, Sender};

    /// Creates an unbounded channel, mirroring `crossbeam::channel::unbounded`.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}
