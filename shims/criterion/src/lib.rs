//! Minimal offline stand-in for `criterion`.
//!
//! The build environment cannot fetch crates.io, so this shim keeps the
//! workspace's `harness = false` bench targets compiling and smoke-runnable:
//! every registered benchmark body executes exactly once and its wall-clock
//! time is printed. No statistics, warm-up, or sampling — swap the real
//! criterion back in for measurement-grade numbers.

use std::fmt::Display;
use std::time::Instant;

/// Re-implementation of `criterion::black_box` (identity with an opaque
/// barrier good enough for a smoke run).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation accepted by [`BenchmarkGroup::throughput`]; recorded
/// but unused by the shim.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier for parameterised benchmarks.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Builds an id from the parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Passed to benchmark closures; `iter` runs the body once and times it.
pub struct Bencher {
    elapsed_ns: u128,
}

impl Bencher {
    /// Runs `routine` once, recording its wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, name: &str, mut f: F) {
    let mut b = Bencher { elapsed_ns: 0 };
    f(&mut b);
    let label = if group.is_empty() {
        name.to_string()
    } else {
        format!("{group}/{name}")
    };
    println!(
        "bench {label}: {:.3} ms (single pass, shim)",
        b.elapsed_ns as f64 / 1e6
    );
}

/// Named group of benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling is not configurable here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; throughput is not reported here.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs `f` once under `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.to_string(), f);
        self
    }

    /// Runs `f` once with `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.to_string(), |b| f(b, input));
        self
    }

    /// Ends the group (no-op).
    pub fn finish(self) {}
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Runs `f` once under `name`.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", name, f);
        self
    }
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
