//! Offline stand-in for `bytes`, providing the `Bytes`/`BytesMut` containers
//! and the little-endian `Buf`/`BufMut` accessors the KV-cache wire codec
//! uses. Backed by plain `Vec<u8>` — no refcounted zero-copy splitting, which
//! the workspace does not rely on.

use std::ops::{Deref, DerefMut};

/// Immutable byte buffer, mirroring `bytes::Bytes`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self {
            data: data.to_vec(),
        }
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data }
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.data
    }
}

/// Growable byte buffer, mirroring `bytes::BytesMut`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Creates a buffer of `len` zero bytes.
    pub fn zeroed(len: usize) -> Self {
        Self { data: vec![0; len] }
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends `other` to the buffer.
    pub fn extend_from_slice(&mut self, other: &[u8]) {
        self.data.extend_from_slice(other);
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Little-endian write accessors, mirroring the used subset of
/// `bytes::BufMut`.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Little-endian read accessors that advance the cursor, mirroring the used
/// subset of `bytes::Buf`. Panics on short reads, like the original.
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out, advancing past them.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        f32::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.len() >= dst.len(),
            "buffer underflow: need {} bytes, have {}",
            dst.len(),
            self.len()
        );
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_round_trip() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u32_le(7);
        buf.put_u64_le(u64::MAX - 3);
        buf.put_f32_le(1.5);
        let frozen = buf.freeze();
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.get_u32_le(), 7);
        assert_eq!(cursor.get_u64_le(), u64::MAX - 3);
        assert_eq!(cursor.get_f32_le(), 1.5);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn zeroed_and_index_mut() {
        let mut buf = BytesMut::zeroed(4);
        buf[2] |= 0b1010;
        assert_eq!(&buf[..], &[0, 0, 0b1010, 0]);
    }
}
