//! Empty placeholder for `proptest`.
//!
//! The build environment has no crates.io access, so property-based tests
//! were rewritten as seeded deterministic sweeps (see `tests/properties.rs`)
//! and this crate only satisfies the dev-dependency declarations.
