//! Offline stand-in for `serde`.
//!
//! The workspace only uses serde as `#[derive(Serialize, Deserialize)]`
//! annotations — no serializer backend (JSON etc.) is ever invoked; all real
//! persistence goes through hand-rolled text formats (`plan_io`, the trace
//! CSV codec, the availability script format). Since the build environment
//! cannot fetch crates.io, this shim provides the trait names and no-op
//! derive macros so those annotations keep compiling and the real `serde`
//! can be dropped back in when networked builds return.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods; the workspace
/// never serializes through serde).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods).
pub trait Deserialize {}
