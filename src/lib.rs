//! # thunderserve
//!
//! A Rust reproduction of **ThunderServe: High-performance and
//! Cost-efficient LLM Serving in Cloud Environments** (MLSYS 2025).
//!
//! ThunderServe serves large language models on heterogeneous cloud GPUs by
//! splitting the prefill and decode phases onto separate model replicas and
//! co-optimizing, with a two-level scheduling algorithm, how GPUs are
//! grouped, which phase each group serves, how each replica is parallelized
//! and how requests are routed between phases — plus a *lightweight
//! rescheduling* mechanism that adapts to workload shifts and node failures
//! without reloading model weights, and 4-bit KV-cache compression for the
//! prefill→decode transfer on slow cloud links.
//!
//! This crate is a facade re-exporting the workspace's public API:
//!
//! * [`scheduler`] — the two-level scheduler and rescheduling
//!   ([`thunderserve_core`]);
//! * [`cluster`] — GPU catalog, topologies and the paper's environments;
//! * [`costmodel`] — roofline and alpha-beta performance models;
//! * [`kvcache`] — paged KV management and the int4/int8 wire codec;
//! * [`workload`] — synthetic coding/conversation workloads and profiling;
//! * [`solver`] — LP, transportation, clustering and routing-DP primitives;
//! * [`sim`] — the discrete-event serving simulator standing in for GPUs;
//! * [`telemetry`] — request-lifecycle tracing, utilization time series and
//!   Chrome-trace export;
//! * [`baselines`] — vLLM-like, DistServe-like and HexGen-like planners;
//! * [`runtime`] — the online serving runtime and live task coordinator;
//! * [`autoscale`] — coordinated prefill/decode autoscaling over a
//!   spot-priced elastic fleet, with per-segment cost accounting.
//!
//! # Quickstart
//!
//! ```
//! use thunderserve::prelude::*;
//!
//! // The paper's heterogeneous cloud: 32 GPUs across 7 instances.
//! let cluster = thunderserve::cluster::presets::paper_cloud_cluster();
//! let model = ModelSpec::llama_30b();
//! let workload = thunderserve::workload::spec::coding(2.0);
//! let slo = SloSpec::new(
//!     SimDuration::from_secs(4),
//!     SimDuration::from_millis(250),
//!     SimDuration::from_secs(48),
//! );
//!
//! let mut cfg = SchedulerConfig::fast();
//! cfg.seed = 7;
//! let plan = Scheduler::new(cfg)
//!     .schedule(&cluster, &model, &workload, &slo)?
//!     .plan;
//! assert!(plan.phase_ratio().0 >= 1 && plan.phase_ratio().1 >= 1);
//! # Ok::<(), thunderserve::Error>(())
//! ```

pub use thunderserve_core as scheduler;
pub use ts_autoscale as autoscale;
pub use ts_baselines as baselines;
pub use ts_cluster as cluster;
pub use ts_common as common;
pub use ts_costmodel as costmodel;
pub use ts_kvcache as kvcache;
pub use ts_runtime as runtime;
pub use ts_sim as sim;
pub use ts_solver as solver;
pub use ts_telemetry as telemetry;
pub use ts_workload as workload;

pub use ts_common::{Error, Result};

/// The most common imports for building on ThunderServe.
pub mod prelude {
    pub use thunderserve_core::{ScheduleResult, Scheduler, SchedulerConfig};
    pub use ts_cluster::{Cluster, ClusterBuilder, GpuModel};
    pub use ts_common::{
        DeploymentPlan, GpuId, GroupSpec, ModelId, ModelSpec, ParallelConfig, Phase, Request,
        RequestId, ServedModel, SimDuration, SimTime, SloKind, SloSpec,
    };
    pub use ts_sim::{config::SimConfig, engine::Simulation, metrics::Metrics};
    pub use ts_workload::WorkloadSpec;
}
