//! The `thunderserve` command-line tool: schedule deployments and simulate
//! serving from the shell.
//!
//! ```text
//! thunderserve catalog
//! thunderserve schedule --cluster cloud --model 30b --workload coding --rate 2.5
//! thunderserve simulate --cluster cloud --model 30b --workload conversation \
//!     --rate 2.0 --horizon 120 [--f16-kv] [--seed 7] [--steps 100]
//! ```

use std::process::exit;
use thunderserve::prelude::*;
use ts_workload::WorkloadSpec;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(report) => println!("{report}"),
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{}", usage());
            exit(1);
        }
    }
}

fn usage() -> &'static str {
    "usage:\n  thunderserve catalog\n  thunderserve schedule --cluster <cloud|inhouse|a5000:N|case:GBPS> \\\n      --model <7b|13b|30b> --workload <coding|conversation|fixed:IN:OUT> --rate <req/s> \\\n      [--seed N] [--steps N]\n  thunderserve simulate  (same flags) --horizon <secs> [--f16-kv]\n  plans: --save <file> / --plan <file>; traces: --trace <csv: arrival_s,prompt,output>"
}

fn run(args: &[String]) -> Result<String, String> {
    match args.first().map(String::as_str) {
        Some("catalog") => Ok(catalog()),
        Some("schedule") => schedule(&parse_flags(&args[1..])?, false),
        Some("simulate") => schedule(&parse_flags(&args[1..])?, true),
        Some(other) => Err(format!("unknown command {other:?}")),
        None => Err("no command given".into()),
    }
}

#[derive(Debug, Clone)]
struct Flags {
    cluster: String,
    model: String,
    workload: String,
    rate: f64,
    seed: u64,
    steps: usize,
    horizon: f64,
    f16_kv: bool,
    save: Option<String>,
    plan: Option<String>,
    trace: Option<String>,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut f = Flags {
        cluster: "cloud".into(),
        model: "30b".into(),
        workload: "coding".into(),
        rate: 2.0,
        seed: 0,
        steps: 100,
        horizon: 120.0,
        f16_kv: false,
        save: None,
        plan: None,
        trace: None,
    };
    let mut i = 0;
    while i < args.len() {
        let key = args[i].as_str();
        let mut take = |f_ref: &mut dyn FnMut(&str) -> Result<(), String>| -> Result<(), String> {
            let v = args
                .get(i + 1)
                .ok_or_else(|| format!("{key} needs a value"))?;
            f_ref(v)?;
            i += 2;
            Ok(())
        };
        match key {
            "--cluster" => take(&mut |v| {
                f.cluster = v.to_string();
                Ok(())
            })?,
            "--model" => take(&mut |v| {
                f.model = v.to_string();
                Ok(())
            })?,
            "--workload" => take(&mut |v| {
                f.workload = v.to_string();
                Ok(())
            })?,
            "--rate" => take(&mut |v| {
                f.rate = v.parse().map_err(|_| format!("bad rate {v:?}"))?;
                Ok(())
            })?,
            "--seed" => take(&mut |v| {
                f.seed = v.parse().map_err(|_| format!("bad seed {v:?}"))?;
                Ok(())
            })?,
            "--steps" => take(&mut |v| {
                f.steps = v.parse().map_err(|_| format!("bad steps {v:?}"))?;
                Ok(())
            })?,
            "--horizon" => take(&mut |v| {
                f.horizon = v.parse().map_err(|_| format!("bad horizon {v:?}"))?;
                Ok(())
            })?,
            "--save" => take(&mut |v| {
                f.save = Some(v.to_string());
                Ok(())
            })?,
            "--plan" => take(&mut |v| {
                f.plan = Some(v.to_string());
                Ok(())
            })?,
            "--trace" => take(&mut |v| {
                f.trace = Some(v.to_string());
                Ok(())
            })?,
            "--f16-kv" => {
                f.f16_kv = true;
                i += 1;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if !(f.rate.is_finite() && f.rate > 0.0) {
        return Err("rate must be positive".into());
    }
    Ok(f)
}

fn parse_cluster(spec: &str) -> Result<Cluster, String> {
    use thunderserve::cluster::presets;
    if spec == "cloud" {
        return Ok(presets::paper_cloud_cluster());
    }
    if spec == "inhouse" {
        return Ok(presets::paper_inhouse_cluster());
    }
    if let Some(n) = spec.strip_prefix("a5000:") {
        let n: usize = n.parse().map_err(|_| format!("bad a5000 size {n:?}"))?;
        if n == 0 || !n.is_multiple_of(4) {
            return Err("a5000 cluster size must be a positive multiple of 4".into());
        }
        return Ok(presets::a5000_cluster(n));
    }
    if let Some(g) = spec.strip_prefix("case:") {
        let gbps: f64 = g.parse().map_err(|_| format!("bad bandwidth {g:?}"))?;
        if gbps <= 0.0 {
            return Err("bandwidth must be positive".into());
        }
        return Ok(presets::network_case_cluster(gbps * 0.125e9));
    }
    Err(format!("unknown cluster {spec:?}"))
}

fn parse_model(spec: &str) -> Result<ModelSpec, String> {
    match spec {
        "7b" => Ok(ModelSpec::llama_7b()),
        "13b" => Ok(ModelSpec::llama_13b()),
        "30b" => Ok(ModelSpec::llama_30b()),
        other => Err(format!("unknown model {other:?} (7b|13b|30b)")),
    }
}

fn parse_workload(spec: &str, rate: f64) -> Result<WorkloadSpec, String> {
    if spec == "coding" {
        return Ok(ts_workload::spec::coding(rate));
    }
    if spec == "conversation" {
        return Ok(ts_workload::spec::conversation(rate));
    }
    if let Some(rest) = spec.strip_prefix("fixed:") {
        let parts: Vec<&str> = rest.split(':').collect();
        if parts.len() != 2 {
            return Err("fixed workload is fixed:IN:OUT".into());
        }
        let input: u32 = parts[0].parse().map_err(|_| "bad input length")?;
        let output: u32 = parts[1].parse().map_err(|_| "bad output length")?;
        return Ok(ts_workload::spec::fixed(input, output, rate));
    }
    Err(format!("unknown workload {spec:?}"))
}

/// Reference SLO scaled for cloud-class GPUs serving the chosen model.
fn default_slo(model: &ModelSpec) -> SloSpec {
    let scale = model.num_layers as f64 / 60.0;
    SloSpec::new(
        SimDuration::from_secs_f64(3.2 * scale),
        SimDuration::from_secs_f64(0.24 * scale),
        SimDuration::from_secs_f64(48.0 * scale),
    )
}

fn catalog() -> String {
    use thunderserve::cluster::GpuModel;
    let mut out = String::from("GPU      mem-bw        fp16          memory   price/hr\n");
    for m in GpuModel::ALL {
        let s = m.spec();
        out.push_str(&format!(
            "{:<8} {:>6.0} GB/s  {:>7.1} TFLOPS  {:>3} GB   ${:.3}\n",
            m.short_name(),
            s.mem_bandwidth / 1e9,
            s.peak_fp16_flops / 1e12,
            s.memory_bytes >> 30,
            s.price_per_hour
        ));
    }
    out
}

fn schedule(flags: &Flags, simulate: bool) -> Result<String, String> {
    let cluster = parse_cluster(&flags.cluster)?;
    let model = parse_model(&flags.model)?;
    let workload = parse_workload(&flags.workload, flags.rate)?;
    let slo = default_slo(&model);

    let (plan, summary) = if let Some(path) = &flags.plan {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read plan {path:?}: {e}"))?;
        let plan = ts_common::plan_io::from_text(&text).map_err(|e| e.to_string())?;
        let (p, d) = plan.phase_ratio();
        (
            plan,
            format!("loaded plan from {path}: {p} prefill + {d} decode replicas\n"),
        )
    } else {
        let mut cfg = SchedulerConfig::default();
        cfg.seed = flags.seed;
        cfg.n_step = flags.steps;
        let result = Scheduler::new(cfg)
            .schedule(&cluster, &model, &workload, &slo)
            .map_err(|e| e.to_string())?;
        let (p, d) = result.plan.phase_ratio();
        let summary = format!(
            "plan: {p} prefill + {d} decode replicas (scheduled in {:.3}s, {} evaluations, \
             est. attainment {:.3})\n",
            result.elapsed, result.evaluations, result.estimated_attainment
        );
        (result.plan, summary)
    };
    if let Some(path) = &flags.save {
        std::fs::write(path, ts_common::plan_io::to_text(&plan))
            .map_err(|e| format!("cannot write plan {path:?}: {e}"))?;
    }

    let mut out = format!(
        "cluster {}: {} GPUs, ${:.2}/hr\n{summary}",
        flags.cluster,
        cluster.num_gpus(),
        cluster.price_per_hour(),
    );
    for g in &plan.groups {
        let mut counts: std::collections::BTreeMap<&str, usize> = Default::default();
        for gpu in g.gpus() {
            *counts
                .entry(cluster.gpu(gpu).model.short_name())
                .or_default() += 1;
        }
        let conf = counts
            .iter()
            .map(|(m, c)| format!("{c}x{m}"))
            .collect::<Vec<_>>()
            .join("+");
        out.push_str(&format!(
            "  {:7} {} on {}\n",
            g.phase.to_string(),
            g.parallel,
            conf
        ));
    }

    if simulate {
        let mut sim_cfg = SimConfig::new(model);
        if flags.f16_kv {
            sim_cfg = sim_cfg.with_f16_kv();
        }
        let reqs = if let Some(path) = &flags.trace {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read trace {path:?}: {e}"))?;
            ts_workload::trace::from_csv(&text).map_err(|e| e.to_string())?
        } else {
            ts_workload::generator::generate(
                &workload,
                SimDuration::from_secs_f64(flags.horizon),
                flags.seed,
            )
        };
        let metrics = Simulation::new(&cluster, &plan, sim_cfg)
            .and_then(|mut s| s.run(&reqs))
            .map_err(|e| e.to_string())?;
        out.push_str(&format!(
            "\nsimulated {:.0}s: {} completed, {} dropped, {:.2} req/s, {:.0} tok/s\n",
            flags.horizon,
            metrics.num_completed(),
            metrics.num_dropped(),
            metrics.throughput_rps(),
            metrics.throughput_tokens()
        ));
        for kind in SloKind::ALL {
            out.push_str(&format!(
                "  {kind}: p50 {} p99 {} attainment {:.1}%\n",
                metrics
                    .latency_percentile(kind, 0.5)
                    .map(|d| d.to_string())
                    .unwrap_or("-".into()),
                metrics
                    .latency_percentile(kind, 0.99)
                    .map(|d| d.to_string())
                    .unwrap_or("-".into()),
                100.0 * metrics.slo_attainment(&slo, kind)
            ));
        }
        out.push_str(&format!(
            "  joint attainment: {:.1}%\n",
            100.0 * metrics.joint_attainment(&slo)
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parse_flags_defaults_and_overrides() {
        let f = parse_flags(&s(&["--rate", "3.5", "--model", "13b", "--f16-kv"])).unwrap();
        assert_eq!(f.rate, 3.5);
        assert_eq!(f.model, "13b");
        assert!(f.f16_kv);
        assert_eq!(f.steps, 100);
    }

    #[test]
    fn parse_flags_rejects_garbage() {
        assert!(parse_flags(&s(&["--rate"])).is_err());
        assert!(parse_flags(&s(&["--rate", "zero"])).is_err());
        assert!(parse_flags(&s(&["--bogus", "1"])).is_err());
        assert!(parse_flags(&s(&["--rate", "-1"])).is_err());
    }

    #[test]
    fn parse_cluster_variants() {
        assert_eq!(parse_cluster("cloud").unwrap().num_gpus(), 32);
        assert_eq!(parse_cluster("inhouse").unwrap().num_gpus(), 8);
        assert_eq!(parse_cluster("a5000:12").unwrap().num_gpus(), 12);
        assert_eq!(parse_cluster("case:40").unwrap().num_gpus(), 8);
        assert!(parse_cluster("a5000:5").is_err());
        assert!(parse_cluster("case:-1").is_err());
        assert!(parse_cluster("nope").is_err());
    }

    #[test]
    fn parse_workload_variants() {
        assert_eq!(parse_workload("coding", 1.0).unwrap().name, "coding");
        let fx = parse_workload("fixed:512:16", 2.0).unwrap();
        assert_eq!(fx.mean_total_tokens(), 528.0);
        assert!(parse_workload("fixed:512", 1.0).is_err());
        assert!(parse_workload("x", 1.0).is_err());
    }

    #[test]
    fn catalog_has_all_gpus() {
        let c = catalog();
        for name in ["A100", "A6000", "A5000", "A40", "3090Ti"] {
            assert!(c.contains(name));
        }
    }

    #[test]
    fn schedule_smoke_via_cli_path() {
        let f = parse_flags(&s(&[
            "--cluster",
            "case:40",
            "--model",
            "13b",
            "--workload",
            "coding",
            "--rate",
            "1.0",
            "--steps",
            "10",
        ]))
        .unwrap();
        let report = schedule(&f, false).unwrap();
        assert!(report.contains("prefill"));
        assert!(report.contains("decode"));
    }

    #[test]
    fn unknown_command_is_error() {
        assert!(run(&s(&["frobnicate"])).is_err());
        assert!(run(&[]).is_err());
    }
}
