//! Roofline execution-time primitives for one pipeline stage.
//!
//! A stage executes `layers` transformer layers sharded across `tp` GPUs of
//! identical hardware. Execution time is the max of the compute bound
//! (`FLOPs / effective FLOPS`) and the memory bound (`bytes / effective
//! bandwidth`), plus a per-layer kernel overhead and tensor-parallel
//! all-reduce time. The prefill phase processes whole prompts (many tokens,
//! compute-bound); a decode step processes one token per sequence
//! (memory-bound: it re-reads the weights and the KV cache every step).

use crate::alphabeta::allreduce_time;
use crate::ModelParams;
use ts_cluster::GpuSpec;
use ts_common::{ModelSpec, SimDuration};

/// Hardware of one pipeline stage: `tp` identical GPUs plus the bandwidth of
/// the slowest link among them (the all-reduce bottleneck).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageHardware {
    /// Per-GPU spec (TP groups are single-model by the scheduler heuristic;
    /// for safety callers should pass the weakest member of a mixed group).
    pub gpu: GpuSpec,
    /// Tensor-parallel degree.
    pub tp: usize,
    /// Bottleneck bandwidth among the stage's GPUs in bytes/s
    /// (`f64::INFINITY` for `tp == 1`).
    pub intra_bw: f64,
    /// Startup latency of the intra-stage links.
    pub intra_alpha: SimDuration,
}

impl StageHardware {
    /// Stage over a single GPU (no TP communication).
    pub fn single(gpu: GpuSpec) -> Self {
        StageHardware {
            gpu,
            tp: 1,
            intra_bw: f64::INFINITY,
            intra_alpha: SimDuration::ZERO,
        }
    }
}

/// Per-layer parameter bytes of the model at serving precision.
fn layer_weight_bytes(model: &ModelSpec) -> u64 {
    model.layer_weight_bytes(1)
}

/// Per-layer matmul FLOPs for one token (2 FLOPs per weight element).
fn layer_flops_per_token(model: &ModelSpec) -> f64 {
    let per_layer_params = layer_weight_bytes(model) as f64 * 8.0 / model.dtype.bits() as f64;
    2.0 * per_layer_params
}

/// Time for a stage of `layers` layers to prefill a batch of `batch_tokens`
/// total prompt tokens whose mean attention context is `avg_context`.
///
/// Includes compute, weight/activation memory traffic, per-layer overhead and
/// TP all-reduces (two per layer over `batch_tokens·hidden` activations).
pub fn prefill_time(
    model: &ModelSpec,
    layers: usize,
    hw: &StageHardware,
    batch_tokens: u64,
    avg_context: u64,
    params: &ModelParams,
) -> SimDuration {
    if batch_tokens == 0 || layers == 0 {
        return SimDuration::ZERO;
    }
    let tp = hw.tp as f64;
    let l = layers as f64;

    // Compute bound: dense matmuls + quadratic attention.
    let matmul_flops = layer_flops_per_token(model) * batch_tokens as f64 * l;
    let kv_dim = (model.num_kv_heads * model.head_dim()) as f64;
    let attn_flops = 4.0 * batch_tokens as f64 * avg_context as f64 * kv_dim * l;
    let compute_s = (matmul_flops + attn_flops)
        / tp
        / (hw.gpu.peak_fp16_flops * params.effective_compute_eff(batch_tokens));

    // Memory bound: read weights once, stream activations per layer.
    let weight_bytes = layer_weight_bytes(model) as f64 * l / tp;
    let act_bytes = 2.0
        * batch_tokens as f64
        * model.hidden_size as f64
        * model.dtype.bytes_for(1).max(1) as f64
        * 2.0
        * l
        / tp;
    let mem_s = (weight_bytes + act_bytes) / (hw.gpu.mem_bandwidth * params.mem_eff);

    let exec = SimDuration::from_secs_f64(compute_s.max(mem_s));
    let overhead = params.per_layer_overhead * layers as u64;

    // Two all-reduces per layer over batch activations.
    let msg = model
        .dtype
        .bytes_for((batch_tokens as usize * model.hidden_size) as u64);
    let comm = allreduce_time(msg, hw.tp, hw.intra_alpha, hw.intra_bw) * (2 * layers) as u64;

    exec + overhead + comm
}

/// Time for a stage of `layers` layers to run **one decode step** for a
/// batch of `batch` sequences whose mean context length is `avg_context`.
///
/// Dominated by re-reading the stage's weight shard plus the batch's KV
/// cache from device memory.
pub fn decode_step_time(
    model: &ModelSpec,
    layers: usize,
    hw: &StageHardware,
    batch: u64,
    avg_context: u64,
    params: &ModelParams,
) -> SimDuration {
    if batch == 0 || layers == 0 {
        return SimDuration::ZERO;
    }
    let tp = hw.tp as f64;
    let l = layers as f64;

    let matmul_flops = layer_flops_per_token(model) * batch as f64 * l;
    let kv_dim = (model.num_kv_heads * model.head_dim()) as f64;
    let attn_flops = 4.0 * batch as f64 * avg_context as f64 * kv_dim * l;
    // Decode kernels (GEMV / flash-decoding) are bandwidth-bound and reach
    // near-peak memory throughput at any batch size, so no MFU ramp here —
    // the ramp models small-GEMM compute inefficiency, a prefill phenomenon.
    let compute_s =
        (matmul_flops + attn_flops) / tp / (hw.gpu.peak_fp16_flops * params.compute_eff);

    let weight_bytes = layer_weight_bytes(model) as f64 * l / tp;
    let kv_bytes =
        batch as f64 * avg_context as f64 * model.kv_bytes_per_token_layers(layers) as f64 / tp;
    let mem_s = (weight_bytes + kv_bytes) / (hw.gpu.mem_bandwidth * params.mem_eff);

    let exec = SimDuration::from_secs_f64(compute_s.max(mem_s));
    let overhead = params.per_layer_overhead * layers as u64;

    let msg = model
        .dtype
        .bytes_for((batch as usize * model.hidden_size) as u64);
    let comm = allreduce_time(msg, hw.tp, hw.intra_alpha, hw.intra_bw) * (2 * layers) as u64;

    exec + overhead + comm
}

/// [`decode_step_time`] with everything but `avg_context` hoisted.
///
/// Decode-step coalescing prices a whole batch run — up to hundreds of
/// boundaries — in one planning pass, and only the mean context length
/// changes between boundaries. This pre-folds the context-independent
/// factors of `decode_step_time` (batch FLOPs, weight traffic, efficiency
/// denominators, per-layer overhead and TP all-reduce time) so each boundary
/// costs a handful of flops instead of re-deriving the full roofline.
///
/// Bit-identical contract: [`DecodeStageSeries::step_time`] performs the
/// context-dependent arithmetic in exactly the operation order of
/// `decode_step_time`, and every hoisted factor is the very expression the
/// original computes (not an algebraic rearrangement), so the result is the
/// same `f64`s to the last bit. The only regrouping is the final duration
/// sum `exec + (overhead + comm)` vs `(exec + overhead) + comm`, which is
/// exact because [`SimDuration`] addition is integer.
#[derive(Debug, Clone, Copy)]
pub struct DecodeStageSeries {
    /// `batch == 0 || layers == 0`: the step is free, skip the math.
    zero: bool,
    matmul_flops: f64,
    /// `4.0 * batch`, the first factor of the attention-FLOPs product.
    four_batch: f64,
    kv_dim: f64,
    l: f64,
    tp: f64,
    /// `peak_fp16_flops * compute_eff`.
    compute_denom: f64,
    weight_bytes: f64,
    batch_f: f64,
    kv_per_token: f64,
    /// `mem_bandwidth * mem_eff`.
    mem_denom: f64,
    /// Per-layer overhead plus TP all-reduce time (context-independent).
    fixed: SimDuration,
}

impl DecodeStageSeries {
    /// Hoists the context-independent factors of
    /// [`decode_step_time`]`(model, layers, hw, batch, _, params)`.
    pub fn new(
        model: &ModelSpec,
        layers: usize,
        hw: &StageHardware,
        batch: u64,
        params: &ModelParams,
    ) -> Self {
        if batch == 0 || layers == 0 {
            return DecodeStageSeries {
                zero: true,
                matmul_flops: 0.0,
                four_batch: 0.0,
                kv_dim: 0.0,
                l: 0.0,
                tp: 1.0,
                compute_denom: 1.0,
                weight_bytes: 0.0,
                batch_f: 0.0,
                kv_per_token: 0.0,
                mem_denom: 1.0,
                fixed: SimDuration::ZERO,
            };
        }
        let tp = hw.tp as f64;
        let l = layers as f64;
        let msg = model
            .dtype
            .bytes_for((batch as usize * model.hidden_size) as u64);
        DecodeStageSeries {
            zero: false,
            matmul_flops: layer_flops_per_token(model) * batch as f64 * l,
            four_batch: 4.0 * batch as f64,
            kv_dim: (model.num_kv_heads * model.head_dim()) as f64,
            l,
            tp,
            compute_denom: hw.gpu.peak_fp16_flops * params.compute_eff,
            weight_bytes: layer_weight_bytes(model) as f64 * l / tp,
            batch_f: batch as f64,
            kv_per_token: model.kv_bytes_per_token_layers(layers) as f64,
            mem_denom: hw.gpu.mem_bandwidth * params.mem_eff,
            fixed: params.per_layer_overhead * layers as u64
                + allreduce_time(msg, hw.tp, hw.intra_alpha, hw.intra_bw) * (2 * layers) as u64,
        }
    }

    /// Stage time of one decode step at mean context `avg_context`;
    /// bit-identical to [`decode_step_time`] at the hoisted batch size.
    ///
    /// The `tp == 1` fast path skips the two tensor-parallel divisions:
    /// IEEE-754 guarantees `x / 1.0 == x` bit-for-bit, and float division
    /// is the most expensive operation in this kernel, so the common
    /// single-GPU-stage case halves its division count with no output
    /// change.
    #[inline]
    pub fn step_time(&self, avg_context: u64) -> SimDuration {
        if self.zero {
            return SimDuration::ZERO;
        }
        let ctx = avg_context as f64;
        let attn_flops = self.four_batch * ctx * self.kv_dim * self.l;
        let flops = self.matmul_flops + attn_flops;
        let kv_scaled = self.batch_f * ctx * self.kv_per_token;
        let (compute_s, kv_bytes) = if self.tp == 1.0 {
            (flops / self.compute_denom, kv_scaled)
        } else {
            (flops / self.tp / self.compute_denom, kv_scaled / self.tp)
        };
        let mem_s = (self.weight_bytes + kv_bytes) / self.mem_denom;
        SimDuration::from_secs_f64(compute_s.max(mem_s)) + self.fixed
    }

    /// Whether the memory roofline dominates the compute roofline at
    /// **every** integer context in `[lo, hi]`, as the exact `f64` values
    /// [`step_time`](Self::step_time) would compare.
    ///
    /// Sound because every arithmetic chain here is a composition of
    /// nonnegative multiplies, adds and positive-divisor divides, and IEEE
    /// round-to-nearest is monotone — so `compute_s(ctx)` and `mem_s(ctx)`
    /// are both nondecreasing in `ctx` *as rounded `f64`s*, not just as
    /// reals. Then `compute_s(hi) <= mem_s(lo)` pins
    /// `compute_s(ctx) <= mem_s(ctx)` for the whole range and the `max`
    /// inside `step_time` provably returns the memory side, which is what
    /// lets [`step_time_mem`](Self::step_time_mem) skip the compute
    /// division per boundary. A `false` return is never wrong, merely
    /// unhelpful: callers fall back to pricing both sides.
    pub fn mem_bound_over(&self, lo: u64, hi: u64) -> bool {
        if self.zero {
            return false;
        }
        let ctx = hi as f64;
        let attn_flops = self.four_batch * ctx * self.kv_dim * self.l;
        let flops = self.matmul_flops + attn_flops;
        let compute_hi = if self.tp == 1.0 {
            flops / self.compute_denom
        } else {
            flops / self.tp / self.compute_denom
        };
        let ctx = lo as f64;
        let kv_scaled = self.batch_f * ctx * self.kv_per_token;
        let kv_bytes = if self.tp == 1.0 {
            kv_scaled
        } else {
            kv_scaled / self.tp
        };
        let mem_lo = (self.weight_bytes + kv_bytes) / self.mem_denom;
        compute_hi <= mem_lo
    }

    /// [`step_time`](Self::step_time) restricted to the memory roofline:
    /// one division per call instead of two (three with TP).
    ///
    /// Only valid when [`mem_bound_over`](Self::mem_bound_over) certified
    /// the caller's context range — then the skipped
    /// `compute_s.max(mem_s)` provably resolves to `mem_s` and the result
    /// is bit-identical to `step_time`. Debug builds re-verify that
    /// equality on every call.
    #[inline]
    pub fn step_time_mem(&self, avg_context: u64) -> SimDuration {
        debug_assert!(!self.zero, "mem_bound_over never certifies a zero stage");
        let ctx = avg_context as f64;
        let kv_scaled = self.batch_f * ctx * self.kv_per_token;
        let kv_bytes = if self.tp == 1.0 {
            kv_scaled
        } else {
            kv_scaled / self.tp
        };
        let mem_s = (self.weight_bytes + kv_bytes) / self.mem_denom;
        let t = SimDuration::from_secs_f64(mem_s) + self.fixed;
        debug_assert_eq!(t, self.step_time(avg_context), "ctx {avg_context}");
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_cluster::GpuModel;

    fn params() -> ModelParams {
        ModelParams::default()
    }

    fn hw(model: GpuModel) -> StageHardware {
        StageHardware::single(model.spec())
    }

    #[test]
    fn prefill_scales_roughly_linearly_once_saturated() {
        let m = ModelSpec::llama_7b();
        let p = params();
        let h = hw(GpuModel::A5000);
        let t1 = prefill_time(&m, m.num_layers, &h, 2048, 1024, &p);
        let t2 = prefill_time(&m, m.num_layers, &h, 4096, 1024, &p);
        let ratio = t2.as_secs_f64() / t1.as_secs_f64();
        assert!(ratio > 1.8 && ratio < 2.3, "ratio {ratio}");
    }

    #[test]
    fn prefill_sublinear_below_saturation() {
        // Fig. 2: below ~1k tokens the GPU is not saturated, so doubling the
        // batch costs less than 2x.
        let m = ModelSpec::llama_7b();
        let p = params();
        let h = hw(GpuModel::A40);
        let t64 = prefill_time(&m, m.num_layers, &h, 64, 64, &p);
        let t128 = prefill_time(&m, m.num_layers, &h, 128, 128, &p);
        assert!(t128.as_secs_f64() / t64.as_secs_f64() < 1.7);
    }

    #[test]
    fn decode_throughput_improves_with_batching() {
        // Fig. 2's decode panel: tokens/s grows with batch size.
        let m = ModelSpec::llama_7b();
        let p = params();
        let h = hw(GpuModel::Rtx3090Ti);
        let thpt =
            |b: u64| b as f64 / decode_step_time(&m, m.num_layers, &h, b, 1024, &p).as_secs_f64();
        assert!(thpt(8) > 4.0 * thpt(1));
        assert!(thpt(64) > 2.0 * thpt(8));
    }

    #[test]
    fn decode_is_memory_bound_prefill_is_compute_bound() {
        // On an A40 (huge FLOPS, modest bandwidth) the decode step time must
        // be dominated by the memory term: compare against a hypothetical GPU
        // with 10x compute — decode time barely moves, prefill time drops.
        let m = ModelSpec::llama_7b();
        let p = params();
        let a40 = hw(GpuModel::A40);
        let mut fast = a40;
        fast.gpu.peak_fp16_flops *= 10.0;
        let d_base = decode_step_time(&m, m.num_layers, &a40, 32, 1024, &p);
        let d_fast = decode_step_time(&m, m.num_layers, &fast, 32, 1024, &p);
        assert!(d_fast.as_secs_f64() / d_base.as_secs_f64() > 0.95);
        let pf_base = prefill_time(&m, m.num_layers, &a40, 4096, 2048, &p);
        let pf_fast = prefill_time(&m, m.num_layers, &fast, 4096, 2048, &p);
        assert!(pf_fast.as_secs_f64() / pf_base.as_secs_f64() < 0.5);
    }

    #[test]
    fn a40_prefills_faster_3090ti_decodes_faster() {
        // The motivating heterogeneity claim (Fig. 1).
        let m = ModelSpec::llama_7b();
        let p = params();
        let a40 = hw(GpuModel::A40);
        let ti = hw(GpuModel::Rtx3090Ti);
        assert!(
            prefill_time(&m, m.num_layers, &a40, 2048, 1024, &p)
                < prefill_time(&m, m.num_layers, &ti, 2048, 1024, &p)
        );
        assert!(
            decode_step_time(&m, m.num_layers, &ti, 32, 1024, &p)
                < decode_step_time(&m, m.num_layers, &a40, 32, 1024, &p)
        );
    }

    #[test]
    fn tp_reduces_time_but_adds_comm() {
        let m = ModelSpec::llama_13b();
        let p = params();
        let single = hw(GpuModel::A6000);
        let tp2 = StageHardware {
            gpu: GpuModel::A6000.spec(),
            tp: 2,
            intra_bw: 16e9,
            intra_alpha: SimDuration::from_micros(10),
        };
        let t1 = prefill_time(&m, m.num_layers, &single, 4096, 2048, &p);
        let t2 = prefill_time(&m, m.num_layers, &tp2, 4096, 2048, &p);
        assert!(t2 < t1, "TP=2 should beat TP=1 for large prefill");
        assert!(
            t2.as_secs_f64() > t1.as_secs_f64() / 2.0,
            "TP=2 cannot be superlinear"
        );
    }

    #[test]
    fn layers_scale_time() {
        let m = ModelSpec::llama_30b();
        let p = params();
        let h = hw(GpuModel::A100);
        let t30 = decode_step_time(&m, 30, &h, 16, 512, &p);
        let t60 = decode_step_time(&m, 60, &h, 16, 512, &p);
        let ratio = t60.as_secs_f64() / t30.as_secs_f64();
        assert!((ratio - 2.0).abs() < 0.1, "ratio {ratio}");
    }

    #[test]
    fn mem_bound_fast_path_is_bit_identical_and_engages() {
        let p = params();
        for m in [ModelSpec::llama_7b(), ModelSpec::llama_30b()] {
            for gpu in [GpuModel::A5000, GpuModel::A40, GpuModel::A100] {
                // TP=1 exercises the division-skipping branch, TP=2 the
                // scaled one.
                for tp in [1usize, 2] {
                    let h = StageHardware {
                        gpu: gpu.spec(),
                        tp,
                        intra_bw: if tp == 1 { f64::INFINITY } else { 64e9 },
                        intra_alpha: if tp == 1 {
                            SimDuration::ZERO
                        } else {
                            SimDuration::from_micros(8)
                        },
                    };
                    for batch in [1u64, 2, 7, 8, 64, 640] {
                        let s = DecodeStageSeries::new(&m, m.num_layers, &h, batch, &p);
                        for (lo, hi) in [(0u64, 4), (256, 320), (256, 1280), (4096, 4096)] {
                            if s.mem_bound_over(lo, hi) {
                                for ctx in [lo, lo + (hi - lo) / 2, hi] {
                                    assert_eq!(
                                        s.step_time_mem(ctx),
                                        s.step_time(ctx),
                                        "batch={batch} ctx={ctx} tp={tp} on {gpu:?}"
                                    );
                                }
                            }
                        }
                        // Thin decode batches are memory-bound on every GPU
                        // here: the certification must actually engage, or
                        // the fast path would silently never run.
                        if batch <= 8 {
                            assert!(s.mem_bound_over(256, 1280), "batch={batch} on {gpu:?}");
                        }
                    }
                }
            }
        }
        // Degenerate stages are never certified.
        let m = ModelSpec::llama_7b();
        let z = DecodeStageSeries::new(&m, 0, &hw(GpuModel::A5000), 4, &p);
        assert!(!z.mem_bound_over(0, 1024));
    }

    #[test]
    fn zero_work_is_free() {
        let m = ModelSpec::llama_7b();
        let p = params();
        let h = hw(GpuModel::A100);
        assert_eq!(prefill_time(&m, 0, &h, 100, 100, &p), SimDuration::ZERO);
        assert_eq!(
            decode_step_time(&m, m.num_layers, &h, 0, 100, &p),
            SimDuration::ZERO
        );
    }
}
