//! End-to-end cost model for one model replica (serving group).
//!
//! A [`ReplicaCostModel`] is compiled from a [`GroupSpec`] placed on a
//! [`Cluster`]: it resolves every pipeline stage to concrete hardware, then
//! answers the latency/throughput/memory questions the scheduler and the
//! simulator ask. It also computes the prefill→decode KV-cache route between
//! two replicas, matching layer ranges between the source and destination
//! pipeline stages.

use crate::alphabeta::CommCost;
use crate::roofline::{decode_step_time, prefill_time, DecodeStageSeries, StageHardware};
use crate::ModelParams;
use ts_cluster::{Cluster, GpuSpec};
use ts_common::{Error, GpuId, GroupSpec, ModelSpec, Result, SimDuration};

/// Default disk bandwidth for weight (re)loading, bytes/s. The paper quotes
/// 1.2 GB/s when estimating a >5 minute reload for a 175B model.
pub const DISK_BANDWIDTH: f64 = 1.2e9;

/// One parallel leg of a KV-cache transfer: the KV slice for `layers`
/// contiguous layers moving over one link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KvRouteSegment {
    /// Number of transformer layers whose KV moves on this leg.
    pub layers: usize,
    /// The link used (best pair between the two stages).
    pub link: CommCost,
}

/// A [`KvRouteSegment`] plus the concrete GPU endpoints the leg's link
/// connects. The flow-level network fabric needs the endpoints to place the
/// transfer on the right NIC uplink/downlink and fabric links; the plain
/// alpha-beta model only needs the link cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KvRouteLeg {
    /// Number of transformer layers whose KV moves on this leg.
    pub layers: usize,
    /// The link used (best pair between the two stages).
    pub link: CommCost,
    /// Sending GPU (on the prefill replica's stage).
    pub from: GpuId,
    /// Receiving GPU (on the decode replica's stage).
    pub to: GpuId,
}

impl KvRouteLeg {
    /// Drops the endpoints, leaving the alpha-beta view of the leg.
    pub fn segment(&self) -> KvRouteSegment {
        KvRouteSegment {
            layers: self.layers,
            link: self.link,
        }
    }
}

/// Compiled per-stage data.
#[derive(Debug, Clone)]
struct StageModel {
    hw: StageHardware,
    layers: usize,
    /// First layer index (inclusive) of this stage.
    layer_offset: usize,
    /// Weight bytes held by the whole stage (including embedding share on
    /// the first/last stage).
    weight_bytes: u64,
    /// Total usable memory of the stage (bytes, after `mem_util` derating).
    usable_memory: u64,
    /// Link to the next stage (absent for the last stage).
    next_link: Option<CommCost>,
    /// Representative GPUs (used for KV routing).
    gpus: Vec<GpuId>,
}

/// A replica's decode-step latency as a function of mean context length, at
/// a fixed batch size.
///
/// Built by [`ReplicaCostModel::decode_step_series`]; one per-stage
/// [`DecodeStageSeries`] plus the (context-independent) inter-stage
/// activation-transfer time. [`DecodeStepSeries::latency`] returns exactly
/// what [`ReplicaCostModel::decode_step_latency`] would for the same
/// `(batch, avg_context)` — the simulator's golden-metrics test pins this.
#[derive(Debug, Clone)]
pub struct DecodeStepSeries {
    /// Per stage: hoisted roofline series and the link time to the next
    /// stage (absent for the last stage).
    stages: Vec<(DecodeStageSeries, Option<SimDuration>)>,
}

impl DecodeStepSeries {
    /// The lone stage's series when the replica is one pipeline stage with
    /// no inter-stage link — the common case — so hot pricing loops can
    /// skip the per-call stage iteration. `single_stage().step_time(ctx)`
    /// equals `latency(ctx)` exactly (the sum degenerates to one term).
    #[inline]
    pub fn single_stage(&self) -> Option<DecodeStageSeries> {
        match self.stages.as_slice() {
            [(stage, None)] => Some(*stage),
            _ => None,
        }
    }

    /// Decode-step latency at mean context `avg_context`.
    #[inline]
    pub fn latency(&self, avg_context: u64) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for (stage, link) in &self.stages {
            total += stage.step_time(avg_context);
            if let Some(t) = link {
                total += *t;
            }
        }
        total
    }
}

/// Analytic latency/throughput/memory model for one model replica.
///
/// The scheduler evaluates candidate deployments on multiple worker threads
/// and shares compiled cost models across them by reference, so this type
/// must stay `Send + Sync`: plain owned data, no interior mutability, and
/// every query method takes `&self` (asserted at compile time below).
#[derive(Debug, Clone)]
pub struct ReplicaCostModel {
    model: ModelSpec,
    params: ModelParams,
    stages: Vec<StageModel>,
}

// Compile-time guard for the concurrent-evaluation contract above.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ReplicaCostModel>();
};

impl ReplicaCostModel {
    /// Compiles the cost model for `group` placed on `cluster`.
    ///
    /// # Errors
    /// Returns [`Error::Infeasible`] if the group's layer partition does not
    /// cover the model, or any stage cannot hold its weight shard in memory.
    pub fn new(
        cluster: &Cluster,
        model: &ModelSpec,
        group: &GroupSpec,
        params: &ModelParams,
    ) -> Result<Self> {
        if group.total_layers() != model.num_layers {
            return Err(Error::Infeasible(format!(
                "group covers {} layers, model has {}",
                group.total_layers(),
                model.num_layers
            )));
        }
        let embed_bytes = model.weight_bytes() - model.layer_weight_bytes(model.num_layers);
        let num_stages = group.stages.len();
        let mut stages = Vec::with_capacity(num_stages);
        let mut layer_offset = 0usize;
        for (si, st) in group.stages.iter().enumerate() {
            let specs: Vec<GpuSpec> = st.gpus.iter().map(|&g| cluster.gpu(g).spec()).collect();
            // Use the weakest member for each capability: the TP group runs
            // in lockstep, so the slowest shard sets the pace.
            let weakest = GpuSpec {
                model: specs[0].model,
                mem_bandwidth: specs
                    .iter()
                    .map(|s| s.mem_bandwidth)
                    .fold(f64::MAX, f64::min),
                peak_fp16_flops: specs
                    .iter()
                    .map(|s| s.peak_fp16_flops)
                    .fold(f64::MAX, f64::min),
                memory_bytes: specs.iter().map(|s| s.memory_bytes).min().unwrap(),
                price_per_hour: specs.iter().map(|s| s.price_per_hour).sum(),
            };
            let intra_bw = cluster.bottleneck_bandwidth(&st.gpus);
            let intra_alpha = if st.gpus.len() > 1 {
                st.gpus
                    .iter()
                    .flat_map(|&a| st.gpus.iter().map(move |&b| (a, b)))
                    .filter(|(a, b)| a != b)
                    .map(|(a, b)| cluster.latency(a, b))
                    .max()
                    .unwrap_or(SimDuration::ZERO)
            } else {
                SimDuration::ZERO
            };
            let hw = StageHardware {
                gpu: weakest,
                tp: st.gpus.len(),
                intra_bw,
                intra_alpha,
            };
            let mut weight_bytes = model.layer_weight_bytes(st.layers);
            if si == 0 {
                weight_bytes += embed_bytes / 2;
            }
            if si == num_stages - 1 {
                weight_bytes += embed_bytes - embed_bytes / 2;
            }
            let usable_memory: u64 = st
                .gpus
                .iter()
                .map(|&g| (cluster.gpu(g).spec().memory_bytes as f64 * params.mem_util) as u64)
                .sum();
            if usable_memory <= weight_bytes {
                return Err(Error::Infeasible(format!(
                    "stage {si} needs {weight_bytes} weight bytes but has {usable_memory} usable"
                )));
            }
            let next_link = group
                .stages
                .get(si + 1)
                .map(|next| best_pair_link(cluster, &st.gpus, &next.gpus));
            stages.push(StageModel {
                hw,
                layers: st.layers,
                layer_offset,
                weight_bytes,
                usable_memory,
                next_link,
                gpus: st.gpus.clone(),
            });
            layer_offset += st.layers;
        }
        Ok(ReplicaCostModel {
            model: model.clone(),
            params: *params,
            stages,
        })
    }

    /// The model this replica serves.
    pub fn model(&self) -> &ModelSpec {
        &self.model
    }

    /// Number of pipeline stages.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// End-to-end latency to prefill a batch of `batch_tokens` prompt tokens
    /// (mean context `avg_context`): sum of stage times plus inter-stage
    /// activation transfers.
    pub fn prefill_latency(&self, batch_tokens: u64, avg_context: u64) -> SimDuration {
        let act_bytes = self
            .model
            .dtype
            .bytes_for(batch_tokens * self.model.hidden_size as u64);
        let mut total = SimDuration::ZERO;
        for st in &self.stages {
            total += prefill_time(
                &self.model,
                st.layers,
                &st.hw,
                batch_tokens,
                avg_context,
                &self.params,
            );
            if let Some(link) = st.next_link {
                total += link.time(act_bytes);
            }
        }
        total
    }

    /// Latency of one decode step for `batch` sequences with mean context
    /// `avg_context`.
    pub fn decode_step_latency(&self, batch: u64, avg_context: u64) -> SimDuration {
        let act_bytes = self
            .model
            .dtype
            .bytes_for(batch * self.model.hidden_size as u64);
        let mut total = SimDuration::ZERO;
        for st in &self.stages {
            total += decode_step_time(
                &self.model,
                st.layers,
                &st.hw,
                batch,
                avg_context,
                &self.params,
            );
            if let Some(link) = st.next_link {
                total += link.time(act_bytes);
            }
        }
        total
    }

    /// Pre-folds the context-independent work of [`decode_step_latency`] at
    /// a fixed batch size, for pricing many consecutive decode steps.
    ///
    /// [`DecodeStepSeries::latency`] is bit-identical to
    /// `decode_step_latency(batch, avg_context)`; the coalescing planner in
    /// the simulator builds one series per batch run and prices every
    /// boundary through it.
    pub fn decode_step_series(&self, batch: u64) -> DecodeStepSeries {
        let act_bytes = self
            .model
            .dtype
            .bytes_for(batch * self.model.hidden_size as u64);
        DecodeStepSeries {
            stages: self
                .stages
                .iter()
                .map(|st| {
                    (
                        DecodeStageSeries::new(&self.model, st.layers, &st.hw, batch, &self.params),
                        st.next_link.map(|link| link.time(act_bytes)),
                    )
                })
                .collect(),
        }
    }

    /// The slowest pipeline stage's prefill time — the reciprocal of the
    /// replica's steady-state prefill throughput when the pipeline is full.
    pub fn prefill_bottleneck(&self, batch_tokens: u64, avg_context: u64) -> SimDuration {
        self.stages
            .iter()
            .map(|st| {
                prefill_time(
                    &self.model,
                    st.layers,
                    &st.hw,
                    batch_tokens,
                    avg_context,
                    &self.params,
                )
            })
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Maximum number of KV-cache tokens the replica can hold (min over
    /// stages of usable memory after weights, divided by per-token KV bytes).
    pub fn kv_capacity_tokens(&self) -> u64 {
        self.stages
            .iter()
            .map(|st| {
                let avail = st.usable_memory - st.weight_bytes;
                let per_token = self.model.kv_bytes_per_token_layers(st.layers).max(1);
                avail / per_token
            })
            .min()
            .unwrap_or(0)
    }

    /// Largest decode batch sustainable if each sequence occupies
    /// `avg_seq_len` KV tokens.
    pub fn max_decode_batch(&self, avg_seq_len: u64) -> u64 {
        self.kv_capacity_tokens() / avg_seq_len.max(1)
    }

    /// Steady-state decode throughput in tokens/second at batch `batch`.
    pub fn decode_throughput(&self, batch: u64, avg_context: u64) -> f64 {
        if batch == 0 {
            return 0.0;
        }
        let step = self.decode_step_latency(batch, avg_context);
        batch as f64 / step.as_secs_f64()
    }

    /// Time to (re)load this replica's weights from disk at `disk_bw`
    /// bytes/s — the reload penalty of *full* rescheduling. Stages load in
    /// parallel from independent disks, so the slowest stage dominates.
    pub fn weight_load_time(&self, disk_bw: f64) -> SimDuration {
        assert!(disk_bw > 0.0, "disk bandwidth must be positive");
        self.stages
            .iter()
            .map(|st| SimDuration::from_secs_f64(st.weight_bytes as f64 / disk_bw))
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Layer ranges per stage, as `(offset, len)` pairs.
    pub fn layer_ranges(&self) -> Vec<(usize, usize)> {
        self.stages
            .iter()
            .map(|st| (st.layer_offset, st.layers))
            .collect()
    }

    /// GPUs per stage.
    pub fn stage_gpus(&self) -> Vec<&[GpuId]> {
        self.stages.iter().map(|st| st.gpus.as_slice()).collect()
    }
}

/// Best (highest-bandwidth) point-to-point link between any GPU of `from`
/// and any GPU of `to`.
fn best_pair_link(cluster: &Cluster, from: &[GpuId], to: &[GpuId]) -> CommCost {
    best_pair(cluster, from, to).0
}

/// Like [`best_pair_link`], but also reports which GPU pair realizes the
/// best link. Deterministic: pairs are scanned in slice order and only a
/// strictly better bandwidth displaces the incumbent.
fn best_pair(cluster: &Cluster, from: &[GpuId], to: &[GpuId]) -> (CommCost, GpuId, GpuId) {
    let mut best_bw = 0.0f64;
    let mut best = (
        CommCost::LOOPBACK,
        from.first().copied().unwrap_or(GpuId(0)),
        to.first().copied().unwrap_or(GpuId(0)),
    );
    for &a in from {
        for &b in to {
            let bw = cluster.bandwidth(a, b);
            if bw.is_infinite() {
                return (CommCost::LOOPBACK, a, b);
            }
            if bw > best_bw {
                best_bw = bw;
                best = (CommCost::new(cluster.latency(a, b), bw), a, b);
            }
        }
    }
    best
}

/// Computes the KV transfer route from `prefill` to `decode`: for every
/// overlap between a prefill stage's layer range and a decode stage's layer
/// range, one segment moves that slice over the best available link. The
/// segments transfer in parallel.
pub fn kv_route(
    cluster: &Cluster,
    prefill: &ReplicaCostModel,
    decode: &ReplicaCostModel,
) -> Vec<KvRouteSegment> {
    kv_route_legs(cluster, prefill, decode)
        .iter()
        .map(KvRouteLeg::segment)
        .collect()
}

/// [`kv_route`] with concrete GPU endpoints per leg, for callers (the flow
/// fabric) that must know *which* NICs a leg occupies, not just how fast
/// its link is.
pub fn kv_route_legs(
    cluster: &Cluster,
    prefill: &ReplicaCostModel,
    decode: &ReplicaCostModel,
) -> Vec<KvRouteLeg> {
    let mut legs = Vec::new();
    for ps in &prefill.stages {
        let p_range = ps.layer_offset..ps.layer_offset + ps.layers;
        for ds in &decode.stages {
            let d_range = ds.layer_offset..ds.layer_offset + ds.layers;
            let lo = p_range.start.max(d_range.start);
            let hi = p_range.end.min(d_range.end);
            if lo < hi {
                let (link, from, to) = best_pair(cluster, &ps.gpus, &ds.gpus);
                legs.push(KvRouteLeg {
                    layers: hi - lo,
                    link,
                    from,
                    to,
                });
            }
        }
    }
    legs
}

/// Transfer time for `tokens` KV tokens along the route, when the per-layer
/// KV payload is scaled by `compression_ratio` (1.0 = fp16, 0.25 = 4-bit).
/// Segments move in parallel, so the slowest one dominates.
///
/// # Panics
/// Panics if `compression_ratio` is not in `(0, 1]`.
pub fn kv_transfer_time(
    model: &ModelSpec,
    route: &[KvRouteSegment],
    tokens: u64,
    compression_ratio: f64,
) -> SimDuration {
    kv_transfer_time_congested(model, route, tokens, compression_ratio, 1.0)
}

/// [`kv_transfer_time`] with a multiplicative congestion factor on the wire
/// bytes: `factor` ≥ 1 prices the expected slowdown from sharing links with
/// other in-flight transfers without simulating them individually. A factor
/// of exactly 1.0 performs the same arithmetic as the uncongested model, so
/// plans scored with it are bit-identical.
///
/// # Panics
/// Panics if `compression_ratio` is not in `(0, 1]`, or `congestion_factor`
/// is below 1 or not finite.
pub fn kv_transfer_time_congested(
    model: &ModelSpec,
    route: &[KvRouteSegment],
    tokens: u64,
    compression_ratio: f64,
    congestion_factor: f64,
) -> SimDuration {
    assert!(
        compression_ratio > 0.0 && compression_ratio <= 1.0,
        "compression ratio must be in (0,1], got {compression_ratio}"
    );
    assert!(
        congestion_factor >= 1.0 && congestion_factor.is_finite(),
        "congestion factor must be finite and >= 1, got {congestion_factor}"
    );
    route
        .iter()
        .map(|seg| {
            let bytes = (model.kv_bytes_per_token_layers(seg.layers) as f64
                * tokens as f64
                * compression_ratio
                * congestion_factor) as u64;
            seg.link.time(bytes)
        })
        .max()
        .unwrap_or(SimDuration::ZERO)
}

/// Like [`memory_feasible`], but requires `headroom` × the weight bytes
/// (e.g. `4.0/3.0` leaves 25% of memory for KV cache, matching the layer
/// partitioner's per-stage cap).
pub fn memory_feasible_with_headroom(
    cluster: &Cluster,
    model: &ModelSpec,
    gpus: &[GpuId],
    params: &ModelParams,
    headroom: f64,
) -> bool {
    let usable: u64 = gpus
        .iter()
        .map(|&g| (cluster.gpu(g).spec().memory_bytes as f64 * params.mem_util) as u64)
        .sum();
    usable as f64 > model.weight_bytes() as f64 * headroom
}

/// Quick feasibility pre-check used by the tabu search to prune neighbours:
/// can `gpus` hold at least one copy of the model's weights?
pub fn memory_feasible(
    cluster: &Cluster,
    model: &ModelSpec,
    gpus: &[GpuId],
    params: &ModelParams,
) -> bool {
    let usable: u64 = gpus
        .iter()
        .map(|&g| (cluster.gpu(g).spec().memory_bytes as f64 * params.mem_util) as u64)
        .sum();
    usable > model.weight_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_cluster::presets;
    use ts_common::{GpuId, ParallelConfig, Phase, StageSpec};

    fn group_on(gpus: &[u32], tp: usize, pp: usize, layers: usize, phase: Phase) -> GroupSpec {
        let per = layers / pp;
        let stages: Vec<StageSpec> = (0..pp)
            .map(|s| StageSpec {
                gpus: gpus[s * tp..(s + 1) * tp]
                    .iter()
                    .map(|&g| GpuId(g))
                    .collect(),
                layers: if s == pp - 1 {
                    layers - per * (pp - 1)
                } else {
                    per
                },
            })
            .collect();
        GroupSpec::new(phase, ParallelConfig::new(tp, pp).unwrap(), stages).unwrap()
    }

    #[test]
    fn compiles_for_paper_cloud() {
        let c = presets::paper_cloud_cluster();
        let m = ModelSpec::llama_30b();
        // 8xA40 node is GPUs 16..24; TP=2 PP=1 needs 2 GPUs holding 65GB —
        // infeasible on 2x48GB*0.9=86GB? weights 65GB < 86GB, feasible.
        let g = group_on(&[16, 17], 2, 1, m.num_layers, Phase::Prefill);
        let rcm = ReplicaCostModel::new(&c, &m, &g, &ModelParams::default()).unwrap();
        assert!(rcm.kv_capacity_tokens() > 1000);
        assert!(rcm.prefill_latency(1024, 512) > SimDuration::ZERO);
    }

    #[test]
    fn decode_step_series_is_bit_identical() {
        let c = presets::paper_cloud_cluster();
        let m = ModelSpec::llama_30b();
        // TP=2 PP=2 exercises the all-reduce constant, a multi-stage sum and
        // the inter-stage link term; TP=1 PP=1 exercises the plain roofline.
        for g in [
            group_on(&[16, 17, 18, 19], 2, 2, m.num_layers, Phase::Decode),
            group_on(&[16, 17], 2, 1, m.num_layers, Phase::Decode),
        ] {
            let rcm = ReplicaCostModel::new(&c, &m, &g, &ModelParams::default()).unwrap();
            for batch in [0u64, 1, 2, 7, 64, 640] {
                let series = rcm.decode_step_series(batch);
                for ctx in [0u64, 1, 255, 256, 257, 300, 511, 4096, 1 << 20] {
                    assert_eq!(
                        series.latency(ctx),
                        rcm.decode_step_latency(batch, ctx),
                        "series diverged at batch={batch} ctx={ctx}"
                    );
                }
            }
        }
    }

    #[test]
    fn infeasible_when_memory_too_small() {
        let c = presets::paper_cloud_cluster();
        let m = ModelSpec::llama_30b();
        // One A5000 (24GB) cannot hold 30B fp16 weights (~65GB).
        let g = group_on(&[8], 1, 1, m.num_layers, Phase::Prefill);
        assert!(ReplicaCostModel::new(&c, &m, &g, &ModelParams::default()).is_err());
        assert!(!memory_feasible(
            &c,
            &m,
            &[GpuId(8)],
            &ModelParams::default()
        ));
        assert!(memory_feasible(
            &c,
            &m,
            &[GpuId(16), GpuId(17)],
            &ModelParams::default()
        ));
    }

    #[test]
    fn layer_partition_must_cover_model() {
        let c = presets::paper_cloud_cluster();
        let m = ModelSpec::llama_30b();
        let g = group_on(&[16, 17], 2, 1, 30, Phase::Prefill); // only 30 of 60 layers
        assert!(ReplicaCostModel::new(&c, &m, &g, &ModelParams::default()).is_err());
    }

    #[test]
    fn pipeline_adds_interstage_comm() {
        let c = presets::network_case_cluster(presets::ETH_5GBPS);
        let m = ModelSpec::llama_13b();
        let p = ModelParams::default();
        // PP=2 across the two nodes (slow link) vs within one node.
        let cross = group_on(&[0, 1, 4, 5], 2, 2, m.num_layers, Phase::Prefill);
        let local = group_on(&[0, 1, 2, 3], 2, 2, m.num_layers, Phase::Prefill);
        let rc_cross = ReplicaCostModel::new(&c, &m, &cross, &p).unwrap();
        let rc_local = ReplicaCostModel::new(&c, &m, &local, &p).unwrap();
        assert!(
            rc_cross.prefill_latency(4096, 2048) > rc_local.prefill_latency(4096, 2048),
            "cross-node pipeline must pay for the slow link"
        );
    }

    #[test]
    fn kv_route_matches_layers() {
        let c = presets::network_case_cluster(presets::ETH_40GBPS);
        let m = ModelSpec::llama_13b();
        let p = ModelParams::default();
        // prefill on A40 node (PP=2), decode on 3090Ti node (PP=1 over TP=4)
        let pf = group_on(&[0, 1, 2, 3], 2, 2, m.num_layers, Phase::Prefill);
        let dc = group_on(&[4, 5, 6, 7], 4, 1, m.num_layers, Phase::Decode);
        let rp = ReplicaCostModel::new(&c, &m, &pf, &p).unwrap();
        let rd = ReplicaCostModel::new(&c, &m, &dc, &p).unwrap();
        let route = kv_route(&c, &rp, &rd);
        let total_layers: usize = route.iter().map(|s| s.layers).sum();
        assert_eq!(total_layers, m.num_layers);
        // 4-bit compression shrinks the transfer ~4x (alpha aside).
        let t16 = kv_transfer_time(&m, &route, 1024, 1.0);
        let t4 = kv_transfer_time(&m, &route, 1024, 0.25);
        let ratio = t16.as_secs_f64() / t4.as_secs_f64();
        assert!(ratio > 3.0 && ratio <= 4.2, "ratio {ratio}");
    }

    #[test]
    fn route_legs_expose_endpoints() {
        let c = presets::network_case_cluster(presets::ETH_40GBPS);
        let m = ModelSpec::llama_13b();
        let p = ModelParams::default();
        let pf = group_on(&[0, 1, 2, 3], 2, 2, m.num_layers, Phase::Prefill);
        let dc = group_on(&[4, 5, 6, 7], 4, 1, m.num_layers, Phase::Decode);
        let rp = ReplicaCostModel::new(&c, &m, &pf, &p).unwrap();
        let rd = ReplicaCostModel::new(&c, &m, &dc, &p).unwrap();
        let legs = kv_route_legs(&c, &rp, &rd);
        // Endpoints lie on the sending/receiving replicas and realize the
        // leg's advertised link cost.
        for leg in &legs {
            assert!((0..4).contains(&leg.from.index()));
            assert!((4..8).contains(&leg.to.index()));
            assert_eq!(leg.link.beta, c.bandwidth(leg.from, leg.to));
        }
        // The endpoint-free view matches kv_route exactly.
        let segs: Vec<KvRouteSegment> = legs.iter().map(KvRouteLeg::segment).collect();
        assert_eq!(segs, kv_route(&c, &rp, &rd));
    }

    #[test]
    fn congestion_factor_prices_shared_links() {
        let c = presets::network_case_cluster(presets::ETH_5GBPS);
        let m = ModelSpec::llama_13b();
        let p = ModelParams::default();
        let pf = group_on(&[0, 1, 2, 3], 2, 2, m.num_layers, Phase::Prefill);
        let dc = group_on(&[4, 5, 6, 7], 4, 1, m.num_layers, Phase::Decode);
        let rp = ReplicaCostModel::new(&c, &m, &pf, &p).unwrap();
        let rd = ReplicaCostModel::new(&c, &m, &dc, &p).unwrap();
        let route = kv_route(&c, &rp, &rd);
        // Factor 1.0 is the uncongested model, bit for bit.
        assert_eq!(
            kv_transfer_time_congested(&m, &route, 1024, 1.0, 1.0),
            kv_transfer_time(&m, &route, 1024, 1.0)
        );
        // Factor 2.0 roughly doubles the beta term.
        let base = kv_transfer_time(&m, &route, 1024, 1.0);
        let congested = kv_transfer_time_congested(&m, &route, 1024, 1.0, 2.0);
        assert!(congested > base);
        let ratio = congested.as_secs_f64() / base.as_secs_f64();
        assert!(ratio > 1.5 && ratio <= 2.1, "ratio {ratio}");
    }

    #[test]
    fn decode_batch_limited_by_kv_memory() {
        let c = presets::paper_cloud_cluster();
        let m = ModelSpec::llama_30b();
        let g = group_on(&[16, 17, 18, 19], 2, 2, m.num_layers, Phase::Decode);
        let rcm = ReplicaCostModel::new(&c, &m, &g, &ModelParams::default()).unwrap();
        let cap = rcm.kv_capacity_tokens();
        assert_eq!(rcm.max_decode_batch(1024), cap / 1024);
        assert!(rcm.max_decode_batch(1024) > 0);
    }

    #[test]
    fn weight_load_time_is_minutes_scale() {
        let c = presets::paper_inhouse_cluster();
        let m = ModelSpec::llama_30b();
        let g = group_on(&[0, 1], 2, 1, m.num_layers, Phase::Prefill);
        let rcm = ReplicaCostModel::new(&c, &m, &g, &ModelParams::default()).unwrap();
        let t = rcm.weight_load_time(DISK_BANDWIDTH);
        // ~65GB / 1.2GB/s ≈ 54s
        assert!(t.as_secs_f64() > 30.0 && t.as_secs_f64() < 120.0);
    }

    #[test]
    fn throughput_optimal_batch_beats_batch_one() {
        let c = presets::paper_cloud_cluster();
        let m = ModelSpec::llama_30b();
        let g = group_on(&[24, 25, 26, 27], 2, 2, m.num_layers, Phase::Decode);
        let rcm = ReplicaCostModel::new(&c, &m, &g, &ModelParams::default()).unwrap();
        let b = rcm.max_decode_batch(1024).min(64);
        assert!(rcm.decode_throughput(b, 1024) > 5.0 * rcm.decode_throughput(1, 1024));
    }
}
