//! Cost-model calibration from measured execution times.
//!
//! The paper's cost model (after HexGen) is *profiled*: the real system
//! measures prefill/decode latencies on each GPU type and fits its model to
//! them. This module provides the same fitting step for our roofline: given
//! observed `(batch, latency)` points — from a real deployment, a trace, or
//! another simulator — recover the [`ModelParams`] efficiency factors by
//! grid-searched least squares on relative error.

use crate::roofline::{decode_step_time, prefill_time, StageHardware};
use crate::ModelParams;
use ts_cluster::GpuSpec;
use ts_common::ModelSpec;

/// One observed prefill execution: `batch_tokens` prompt tokens took
/// `latency_s` seconds on a single GPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefillObservation {
    /// Total batched prompt tokens.
    pub batch_tokens: u64,
    /// Mean context length of the batch.
    pub avg_context: u64,
    /// Measured wall-clock seconds.
    pub latency_s: f64,
}

/// One observed decode step: a batch of `batch` sequences at mean context
/// `avg_context` took `latency_s` seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecodeObservation {
    /// Concurrent sequences.
    pub batch: u64,
    /// Mean context length.
    pub avg_context: u64,
    /// Measured wall-clock seconds.
    pub latency_s: f64,
}

/// Result of a calibration run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// The fitted parameters (only `compute_eff` and `mem_eff` are fitted;
    /// the rest are copied from the base).
    pub params: ModelParams,
    /// Root-mean-square relative error of the fit.
    pub rms_rel_error: f64,
}

/// Fits `compute_eff` and `mem_eff` to the observations by grid search.
///
/// # Panics
/// Panics if both observation sets are empty or any latency is non-positive.
pub fn fit(
    model: &ModelSpec,
    gpu: GpuSpec,
    prefill_obs: &[PrefillObservation],
    decode_obs: &[DecodeObservation],
    base: ModelParams,
) -> Calibration {
    assert!(
        !prefill_obs.is_empty() || !decode_obs.is_empty(),
        "calibration needs observations"
    );
    assert!(
        prefill_obs
            .iter()
            .map(|o| o.latency_s)
            .chain(decode_obs.iter().map(|o| o.latency_s))
            .all(|l| l.is_finite() && l > 0.0),
        "latencies must be positive"
    );
    let hw = StageHardware::single(gpu);
    let mut best = Calibration {
        params: base,
        rms_rel_error: f64::INFINITY,
    };
    let grid = |lo: f64, hi: f64, steps: usize| {
        (0..=steps).map(move |i| lo + (hi - lo) * i as f64 / steps as f64)
    };
    for ce in grid(0.05, 1.0, 38) {
        for me in grid(0.30, 1.0, 28) {
            let mut p = base;
            p.compute_eff = ce;
            p.mem_eff = me;
            let mut sq = 0.0;
            let mut n = 0usize;
            for o in prefill_obs {
                let pred = prefill_time(
                    model,
                    model.num_layers,
                    &hw,
                    o.batch_tokens,
                    o.avg_context,
                    &p,
                )
                .as_secs_f64();
                let rel = pred / o.latency_s - 1.0;
                sq += rel * rel;
                n += 1;
            }
            for o in decode_obs {
                let pred =
                    decode_step_time(model, model.num_layers, &hw, o.batch, o.avg_context, &p)
                        .as_secs_f64();
                let rel = pred / o.latency_s - 1.0;
                sq += rel * rel;
                n += 1;
            }
            let rms = (sq / n as f64).sqrt();
            if rms < best.rms_rel_error {
                best = Calibration {
                    params: p,
                    rms_rel_error: rms,
                };
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_cluster::GpuModel;
    use ts_common::seeded_rng;

    /// Synthesize observations from known parameters (with multiplicative
    /// noise) and check the fit recovers them.
    #[test]
    fn recovers_known_parameters() {
        use rand::Rng;
        let model = ModelSpec::llama_7b();
        let gpu = GpuModel::A5000.spec();
        let mut truth = ModelParams::default();
        truth.compute_eff = 0.35;
        truth.mem_eff = 0.70;
        let hw = StageHardware::single(gpu);
        let mut rng = seeded_rng(7);
        let noise = |rng: &mut rand::rngs::StdRng| 1.0 + rng.gen_range(-0.02..0.02);

        let prefill: Vec<PrefillObservation> = [256u64, 512, 1024, 2048, 4096]
            .iter()
            .map(|&bt| PrefillObservation {
                batch_tokens: bt,
                avg_context: bt,
                latency_s: prefill_time(&model, model.num_layers, &hw, bt, bt, &truth)
                    .as_secs_f64()
                    * noise(&mut rng),
            })
            .collect();
        let decode: Vec<DecodeObservation> = [1u64, 4, 16, 64]
            .iter()
            .map(|&b| DecodeObservation {
                batch: b,
                avg_context: 1024,
                latency_s: decode_step_time(&model, model.num_layers, &hw, b, 1024, &truth)
                    .as_secs_f64()
                    * noise(&mut rng),
            })
            .collect();

        let fit = fit(&model, gpu, &prefill, &decode, ModelParams::default());
        assert!(
            (fit.params.compute_eff - truth.compute_eff).abs() < 0.05,
            "compute_eff {} vs {}",
            fit.params.compute_eff,
            truth.compute_eff
        );
        assert!(
            (fit.params.mem_eff - truth.mem_eff).abs() < 0.08,
            "mem_eff {} vs {}",
            fit.params.mem_eff,
            truth.mem_eff
        );
        assert!(fit.rms_rel_error < 0.05, "rms {}", fit.rms_rel_error);
    }

    #[test]
    fn fit_improves_on_wrong_defaults() {
        let model = ModelSpec::llama_7b();
        let gpu = GpuModel::A40.spec();
        let mut truth = ModelParams::default();
        truth.compute_eff = 0.25;
        let hw = StageHardware::single(gpu);
        let prefill: Vec<PrefillObservation> = [512u64, 2048, 8192]
            .iter()
            .map(|&bt| PrefillObservation {
                batch_tokens: bt,
                avg_context: bt,
                latency_s: prefill_time(&model, model.num_layers, &hw, bt, bt, &truth)
                    .as_secs_f64(),
            })
            .collect();
        let base = ModelParams::default(); // compute_eff = 0.5, wrong
        let fit = fit(&model, gpu, &prefill, &[], base);
        // error with the fitted params must beat error with the default
        let err = |p: &ModelParams| {
            prefill
                .iter()
                .map(|o| {
                    let pred = prefill_time(
                        &model,
                        model.num_layers,
                        &hw,
                        o.batch_tokens,
                        o.avg_context,
                        p,
                    )
                    .as_secs_f64();
                    (pred / o.latency_s - 1.0).powi(2)
                })
                .sum::<f64>()
        };
        assert!(err(&fit.params) < err(&base) / 4.0);
    }

    #[test]
    #[should_panic]
    fn empty_observations_panic() {
        let _ = fit(
            &ModelSpec::llama_7b(),
            GpuModel::A100.spec(),
            &[],
            &[],
            ModelParams::default(),
        );
    }
}
