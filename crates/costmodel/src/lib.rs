//! # ts-costmodel
//!
//! Analytic performance models for phase-split LLM serving.
//!
//! The ThunderServe scheduler evaluates thousands of candidate deployment
//! plans per search; it cannot run each one. Like the paper (which adopts
//! HexGen's cost model and an alpha-beta network model, validated in its
//! Appendix J), we estimate performance analytically:
//!
//! * [`alphabeta`] — point-to-point and collective communication costs
//!   (`T = α + bytes/β`, Eq. 1 of the paper);
//! * [`roofline`] — compute/memory roofline execution times for the prefill
//!   and decode phases of a transformer stage;
//! * [`replica`] — end-to-end latency/throughput/memory model for one model
//!   replica described by a [`ts_common::GroupSpec`], including tensor
//!   parallel collectives, pipeline communication and KV-cache capacity;
//! * [`price`] — dollars-per-request accounting (Figure 1);
//! * [`batching`] — batching-effect curves (Figure 2).
//!
//! # Examples
//!
//! ```
//! use ts_cluster::GpuModel;
//! use ts_common::ModelSpec;
//! use ts_costmodel::{price, ModelParams};
//!
//! let params = ModelParams::default();
//! let m = ModelSpec::llama_7b();
//! // Fig. 1: A40 prefills more cheaply; 3090Ti decodes more cheaply.
//! let a40 = price::request_price(&m, GpuModel::A40.spec(), 512, 16, &params);
//! let ti = price::request_price(&m, GpuModel::Rtx3090Ti.spec(), 512, 16, &params);
//! assert!(a40.prefill < ti.prefill);
//! assert!(ti.decode < a40.decode);
//! ```

pub mod alphabeta;
pub mod batching;
pub mod calibration;
pub mod price;
pub mod replica;
pub mod roofline;

pub use alphabeta::{allreduce_time, transfer_time, CommCost};
pub use replica::{DecodeStepSeries, KvRouteLeg, KvRouteSegment, ReplicaCostModel};
pub use roofline::{decode_step_time, prefill_time, DecodeStageSeries, StageHardware};

use serde::{Deserialize, Serialize};
use ts_common::SimDuration;

/// Tunable efficiency parameters of the analytic model.
///
/// Real kernels never reach peak FLOPS or peak bandwidth; these factors
/// de-rate the hardware plus add a fixed per-layer kernel-launch overhead
/// that makes tiny batches inefficient (which produces the saturation shape
/// of the paper's Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelParams {
    /// Fraction of peak FLOPS achievable by dense kernels (MFU).
    pub compute_eff: f64,
    /// Fraction of peak memory bandwidth achievable by streaming kernels.
    pub mem_eff: f64,
    /// Fixed kernel-launch/synchronization overhead per transformer layer.
    pub per_layer_overhead: SimDuration,
    /// Fraction of device memory usable for weights + KV (rest is runtime,
    /// activations, fragmentation).
    pub mem_util: f64,
    /// Half-saturation point (in batched tokens) of the MFU ramp: dense
    /// kernels reach `compute_eff · t/(t + saturation)` of peak at batch
    /// size `t`. Produces Figure 2's ~1k-token prefill plateau.
    pub compute_saturation_tokens: f64,
}

impl ModelParams {
    /// Effective fraction of peak FLOPS at a given batched-token count.
    pub fn effective_compute_eff(&self, batch_tokens: u64) -> f64 {
        let t = batch_tokens as f64;
        self.compute_eff * t / (t + self.compute_saturation_tokens)
    }
}

impl Default for ModelParams {
    fn default() -> Self {
        ModelParams {
            compute_eff: 0.50,
            mem_eff: 0.85,
            per_layer_overhead: SimDuration::from_micros(25),
            mem_util: 0.90,
            compute_saturation_tokens: 256.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let p = ModelParams::default();
        assert!(p.compute_eff > 0.0 && p.compute_eff <= 1.0);
        assert!(p.mem_eff > 0.0 && p.mem_eff <= 1.0);
        assert!(p.mem_util > 0.5 && p.mem_util <= 1.0);
    }
}
