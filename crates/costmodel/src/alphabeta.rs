//! The alpha-beta (Hockney) communication model.
//!
//! A message of `bytes` over a link with startup latency `α` and bandwidth
//! `β` takes `α + bytes/β` — Equation (1) of the paper, used for KV-cache
//! transfers, pipeline activations and tensor-parallel collectives.

use serde::{Deserialize, Serialize};
use ts_common::SimDuration;

/// A point-to-point link: startup latency plus bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CommCost {
    /// Startup latency (α).
    pub alpha: SimDuration,
    /// Bandwidth in bytes/second (β).
    pub beta: f64,
}

impl CommCost {
    /// Creates a link descriptor.
    ///
    /// # Panics
    /// Panics if `beta` is not positive (use [`CommCost::LOOPBACK`] for
    /// free transfers).
    pub fn new(alpha: SimDuration, beta: f64) -> Self {
        assert!(beta > 0.0, "bandwidth must be positive, got {beta}");
        CommCost { alpha, beta }
    }

    /// A free link (same GPU): zero latency, infinite bandwidth.
    pub const LOOPBACK: CommCost = CommCost {
        alpha: SimDuration::ZERO,
        beta: f64::INFINITY,
    };

    /// Time to move `bytes` over this link.
    pub fn time(&self, bytes: u64) -> SimDuration {
        transfer_time(bytes, self.alpha, self.beta)
    }
}

/// `α + bytes/β`.
///
/// ```
/// use ts_common::SimDuration;
/// use ts_costmodel::transfer_time;
/// let t = transfer_time(1_000_000, SimDuration::from_micros(100), 1e9);
/// assert_eq!(t, SimDuration::from_micros(1_100)); // 100us + 1ms
/// ```
pub fn transfer_time(bytes: u64, alpha: SimDuration, beta: f64) -> SimDuration {
    if bytes == 0 {
        return SimDuration::ZERO;
    }
    if beta.is_infinite() {
        return alpha;
    }
    alpha + SimDuration::from_secs_f64(bytes as f64 / beta)
}

/// Ring all-reduce across `world` participants of a `bytes`-sized buffer.
///
/// Each participant sends/receives `2·(world−1)/world · bytes` over the
/// bottleneck link and pays `2·(world−1)` startup latencies.
///
/// Returns zero for `world <= 1`.
pub fn allreduce_time(bytes: u64, world: usize, alpha: SimDuration, beta: f64) -> SimDuration {
    if world <= 1 || bytes == 0 {
        return SimDuration::ZERO;
    }
    let steps = 2 * (world - 1) as u64;
    let volume = 2.0 * (world as f64 - 1.0) / world as f64 * bytes as f64;
    let latency = alpha * steps;
    if beta.is_infinite() {
        return latency;
    }
    latency + SimDuration::from_secs_f64(volume / beta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_bytes_is_free() {
        assert_eq!(
            transfer_time(0, SimDuration::from_micros(100), 1e9),
            SimDuration::ZERO
        );
        assert_eq!(
            allreduce_time(0, 4, SimDuration::from_micros(10), 1e9),
            SimDuration::ZERO
        );
    }

    #[test]
    fn single_participant_allreduce_is_free() {
        assert_eq!(
            allreduce_time(1 << 20, 1, SimDuration::from_micros(10), 1e9),
            SimDuration::ZERO
        );
    }

    #[test]
    fn allreduce_volume_scales_with_world() {
        let a = SimDuration::ZERO;
        let t2 = allreduce_time(1_000_000_000, 2, a, 1e9);
        let t4 = allreduce_time(1_000_000_000, 4, a, 1e9);
        // 2*(w-1)/w: 1.0 for w=2, 1.5 for w=4
        assert_eq!(t2, SimDuration::from_secs(1));
        assert_eq!(t4, SimDuration::from_secs_f64(1.5));
    }

    #[test]
    fn loopback_is_instant() {
        assert_eq!(CommCost::LOOPBACK.time(1 << 30), SimDuration::ZERO);
    }

    #[test]
    fn alpha_dominates_small_messages() {
        let link = CommCost::new(SimDuration::from_micros(200), 1e9);
        let small = link.time(100);
        assert!(small >= SimDuration::from_micros(200));
        assert!(small < SimDuration::from_micros(202));
    }

    #[test]
    #[should_panic]
    fn non_positive_bandwidth_panics() {
        let _ = CommCost::new(SimDuration::ZERO, 0.0);
    }
}
