//! Batching-effect curves (Figure 2 of the paper).
//!
//! Figure 2 plots GPU efficiency (tokens/second) against batched token count
//! for the two phases: prefill saturates once a batch exceeds ~1k tokens,
//! while decode throughput keeps climbing with batch size. These generators
//! reproduce those curves from the roofline model so the bench harness can
//! print the same series.

use crate::roofline::{decode_step_time, prefill_time, StageHardware};
use crate::ModelParams;
use serde::{Deserialize, Serialize};
use ts_cluster::GpuSpec;
use ts_common::ModelSpec;

/// One point of a batching curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchPoint {
    /// Batch size: total tokens for prefill, sequences for decode.
    pub batch: u64,
    /// Throughput in tokens/second.
    pub tokens_per_sec: f64,
}

/// Prefill throughput (tokens/s) versus total batched tokens, for prompts of
/// `seq_len` tokens each (Figure 2 uses 1024).
pub fn prefill_curve(
    model: &ModelSpec,
    gpu: GpuSpec,
    seq_len: u64,
    batch_tokens: &[u64],
    params: &ModelParams,
) -> Vec<BatchPoint> {
    let hw = StageHardware::single(gpu);
    batch_tokens
        .iter()
        .map(|&bt| {
            let t = prefill_time(model, model.num_layers, &hw, bt, seq_len, params);
            BatchPoint {
                batch: bt,
                tokens_per_sec: bt as f64 / t.as_secs_f64(),
            }
        })
        .collect()
}

/// Decode throughput (tokens/s) versus batch size at context `seq_len`.
pub fn decode_curve(
    model: &ModelSpec,
    gpu: GpuSpec,
    seq_len: u64,
    batch_sizes: &[u64],
    params: &ModelParams,
) -> Vec<BatchPoint> {
    let hw = StageHardware::single(gpu);
    batch_sizes
        .iter()
        .map(|&b| {
            let t = decode_step_time(model, model.num_layers, &hw, b, seq_len, params);
            BatchPoint {
                batch: b,
                tokens_per_sec: b as f64 / t.as_secs_f64(),
            }
        })
        .collect()
}

/// The batched-token size beyond which prefill throughput improves by less
/// than `epsilon` (relative) per doubling — the "saturation point" that the
/// paper pegs at ~1024 tokens.
pub fn prefill_saturation_point(
    model: &ModelSpec,
    gpu: GpuSpec,
    seq_len: u64,
    epsilon: f64,
    params: &ModelParams,
) -> u64 {
    let sizes: Vec<u64> = (5..=15).map(|e| 1u64 << e).collect(); // 32..32768
    let curve = prefill_curve(model, gpu, seq_len, &sizes, params);
    for w in curve.windows(2) {
        let gain = w[1].tokens_per_sec / w[0].tokens_per_sec - 1.0;
        if gain < epsilon {
            return w[0].batch;
        }
    }
    *sizes.last().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_cluster::GpuModel;

    #[test]
    fn prefill_saturates_decode_does_not() {
        // The qualitative content of Figure 2.
        let m = ModelSpec::llama_7b();
        let p = ModelParams::default();
        let gpu = GpuModel::A5000.spec();

        let pf = prefill_curve(&m, gpu, 1024, &[128, 512, 1024, 4096, 16384], &p);
        let early_gain = pf[1].tokens_per_sec / pf[0].tokens_per_sec;
        let late_gain = pf[4].tokens_per_sec / pf[3].tokens_per_sec;
        assert!(early_gain > 1.5, "prefill should gain early: {early_gain}");
        assert!(late_gain < 1.15, "prefill should plateau late: {late_gain}");

        let dc = decode_curve(&m, gpu, 1024, &[1, 4, 16, 64, 128], &p);
        assert!(
            dc[4].tokens_per_sec > 10.0 * dc[0].tokens_per_sec,
            "decode should keep gaining from batching"
        );
    }

    #[test]
    fn saturation_point_near_1k_tokens() {
        let m = ModelSpec::llama_7b();
        let p = ModelParams::default();
        let sat = prefill_saturation_point(&m, GpuModel::A5000.spec(), 1024, 0.10, &p);
        assert!(
            (256..=4096).contains(&sat),
            "saturation at {sat}, expected near 1024"
        );
    }

    #[test]
    fn curves_are_monotone_in_throughput() {
        let m = ModelSpec::llama_7b();
        let p = ModelParams::default();
        let dc = decode_curve(&m, GpuModel::A40.spec(), 512, &[1, 2, 4, 8, 16, 32], &p);
        for w in dc.windows(2) {
            assert!(w[1].tokens_per_sec >= w[0].tokens_per_sec * 0.99);
        }
    }
}
