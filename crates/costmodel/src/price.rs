//! Dollars-per-request accounting (Figure 1 of the paper).
//!
//! For a single request on a single GPU, the prefill price is the prefill
//! execution time valued at the GPU's hourly rate, and the decode price is
//! the summed per-step decode time valued likewise. Figure 1 shows that the
//! A40 (compute-rich) prefills a 512/16 request more cheaply while the
//! 3090Ti (bandwidth-rich) decodes it more cheaply — the observation that
//! motivates heterogeneous phase designation.

use crate::roofline::{decode_step_time, prefill_time, StageHardware};
use crate::ModelParams;
use serde::{Deserialize, Serialize};
use ts_cluster::GpuSpec;
use ts_common::{ModelSpec, SimDuration};

/// Prefill / decode cost split for one request on one GPU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestPrice {
    /// Prefill time.
    pub prefill_time: SimDuration,
    /// Total decode time across all steps.
    pub decode_time: SimDuration,
    /// Prefill cost in USD.
    pub prefill: f64,
    /// Decode cost in USD.
    pub decode: f64,
}

impl RequestPrice {
    /// Total cost of the request in USD.
    pub fn total(&self) -> f64 {
        self.prefill + self.decode
    }
}

/// Computes the price of serving one request with `prompt_len` input tokens
/// and `output_len` generated tokens on a single GPU of the given spec.
pub fn request_price(
    model: &ModelSpec,
    gpu: GpuSpec,
    prompt_len: u64,
    output_len: u64,
    params: &ModelParams,
) -> RequestPrice {
    let hw = StageHardware::single(gpu);
    let pf = prefill_time(model, model.num_layers, &hw, prompt_len, prompt_len, params);
    let mut dec = SimDuration::ZERO;
    // Each decode step attends over a growing context.
    for step in 1..output_len {
        let ctx = prompt_len + step;
        dec += decode_step_time(model, model.num_layers, &hw, 1, ctx, params);
    }
    let rate = gpu.price_per_hour / 3600.0;
    RequestPrice {
        prefill_time: pf,
        decode_time: dec,
        prefill: pf.as_secs_f64() * rate,
        decode: dec.as_secs_f64() * rate,
    }
}

/// Cost-efficiency of a full serving run: USD per 1000 generated tokens,
/// given the hourly price of the hardware and the measured token throughput.
/// This is the quantity the paper's cost-efficiency argument is about.
///
/// # Panics
/// Panics if either argument is non-positive.
pub fn dollars_per_kilo_token(price_per_hour: f64, tokens_per_sec: f64) -> f64 {
    assert!(price_per_hour > 0.0, "price must be positive");
    assert!(tokens_per_sec > 0.0, "throughput must be positive");
    let tokens_per_hour = tokens_per_sec * 3600.0;
    price_per_hour / tokens_per_hour * 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_cluster::GpuModel;

    #[test]
    fn figure1_shape_holds() {
        // Fig. 1: for a 512/16 request, A40 prefill is cheaper than 3090Ti
        // prefill, and 3090Ti decode is cheaper than A40 decode.
        let m = ModelSpec::llama_7b();
        let p = ModelParams::default();
        let a40 = request_price(&m, GpuModel::A40.spec(), 512, 16, &p);
        let ti = request_price(&m, GpuModel::Rtx3090Ti.spec(), 512, 16, &p);
        assert!(a40.prefill < ti.prefill, "A40 should prefill cheaper");
        assert!(ti.decode < a40.decode, "3090Ti should decode cheaper");
    }

    #[test]
    fn decode_dominates_long_outputs() {
        let m = ModelSpec::llama_7b();
        let p = ModelParams::default();
        let long = request_price(&m, GpuModel::A5000.spec(), 128, 512, &p);
        assert!(long.decode > 10.0 * long.prefill);
    }

    #[test]
    fn prices_are_positive_and_total_adds_up() {
        let m = ModelSpec::llama_13b();
        let p = ModelParams::default();
        let r = request_price(&m, GpuModel::A6000.spec(), 512, 64, &p);
        assert!(r.prefill > 0.0 && r.decode > 0.0);
        assert!((r.total() - (r.prefill + r.decode)).abs() < 1e-15);
    }

    #[test]
    fn dollars_per_kilo_token_math() {
        // $3.6/hr at 1000 tok/s -> 3.6e6 tokens/hr -> $0.001 per 1k tokens
        let v = dollars_per_kilo_token(3.6, 1000.0);
        assert!((v - 0.001).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn zero_throughput_panics() {
        let _ = dollars_per_kilo_token(1.0, 0.0);
    }

    #[test]
    fn single_output_token_has_zero_decode() {
        let m = ModelSpec::llama_7b();
        let p = ModelParams::default();
        let r = request_price(&m, GpuModel::A40.spec(), 512, 1, &p);
        assert_eq!(r.decode, 0.0);
    }
}
