//! Parallel-vs-serial determinism of the two-level scheduler.
//!
//! The neighbourhood evaluation of the tabu search (and of lightweight
//! rescheduling's flip-only variant) may run on any number of worker
//! threads; the contract is that the thread count is invisible in every
//! output: plans, scores, evaluation counts and the convergence trajectory
//! must be bit-identical to the serial path for the same seed.

use thunderserve_core::{lightweight_reschedule, Scheduler, SchedulerConfig};
use ts_cluster::presets;
use ts_common::{ModelSpec, NodeId, SimDuration, SloSpec};
use ts_workload::spec;

fn slo() -> SloSpec {
    SloSpec::new(
        SimDuration::from_secs(2),
        SimDuration::from_millis(200),
        SimDuration::from_secs(30),
    )
}

fn cfg_with_threads(seed: u64, threads: usize) -> SchedulerConfig {
    let mut cfg = SchedulerConfig::fast();
    cfg.seed = seed;
    cfg.num_threads = threads;
    cfg
}

#[test]
fn schedule_is_bit_identical_across_thread_counts() {
    let cluster = presets::paper_cloud_cluster();
    let model = ModelSpec::llama_30b();
    let w = spec::coding(2.5);
    let s = slo();
    for seed in [1u64, 21, 77] {
        let baseline = Scheduler::new(cfg_with_threads(seed, 1))
            .schedule(&cluster, &model, &w, &s)
            .unwrap();
        for threads in [2usize, 8] {
            let parallel = Scheduler::new(cfg_with_threads(seed, threads))
                .schedule(&cluster, &model, &w, &s)
                .unwrap();
            assert_eq!(
                baseline.plan, parallel.plan,
                "plan diverged at seed {seed}, {threads} threads"
            );
            assert_eq!(
                baseline.estimated_attainment.to_bits(),
                parallel.estimated_attainment.to_bits(),
                "score diverged at seed {seed}, {threads} threads"
            );
            assert_eq!(
                baseline.evaluations, parallel.evaluations,
                "evaluation count diverged at seed {seed}, {threads} threads"
            );
            let scores = |t: &[thunderserve_core::tabu::TracePoint]| {
                t.iter().map(|p| p.best_score.to_bits()).collect::<Vec<_>>()
            };
            assert_eq!(
                scores(&baseline.trajectory),
                scores(&parallel.trajectory),
                "trajectory diverged at seed {seed}, {threads} threads"
            );
            assert_eq!(
                baseline.neighbors_generated, parallel.neighbors_generated,
                "neighbourhood size diverged at seed {seed}, {threads} threads"
            );
            // The shared parallel-configuration cache must be earning its
            // keep: repeat group constructions resolve without recomputing.
            let rate = parallel.group_cache_hits as f64
                / (parallel.group_cache_hits + parallel.group_cache_misses).max(1) as f64;
            assert!(
                rate > 0.0,
                "group cache never hit at seed {seed}, {threads} threads \
                 ({} hits / {} misses)",
                parallel.group_cache_hits,
                parallel.group_cache_misses
            );
        }
    }
}

#[test]
fn auto_thread_count_matches_serial() {
    let cluster = presets::a5000_cluster(8);
    let model = ModelSpec::llama_13b();
    let w = spec::conversation(2.0);
    let s = slo();
    let serial = Scheduler::new(cfg_with_threads(9, 1))
        .schedule(&cluster, &model, &w, &s)
        .unwrap();
    let auto = Scheduler::new(cfg_with_threads(9, 0))
        .schedule(&cluster, &model, &w, &s)
        .unwrap();
    assert_eq!(serial.plan, auto.plan);
    assert_eq!(
        serial.estimated_attainment.to_bits(),
        auto.estimated_attainment.to_bits()
    );
    assert_eq!(serial.evaluations, auto.evaluations);
}

#[test]
fn lightweight_reschedule_is_bit_identical_across_thread_counts() {
    let cluster = presets::paper_cloud_cluster();
    let model = ModelSpec::llama_30b();
    let w = spec::coding(2.5);
    let s = slo();
    let plan = Scheduler::new(cfg_with_threads(21, 1))
        .schedule(&cluster, &model, &w, &s)
        .unwrap()
        .plan;

    // Reschedule after losing a node, with the workload shifted.
    let mut failed = cluster.clone();
    failed.deactivate_node(NodeId(6)).unwrap();
    let shifted = spec::conversation(2.5);
    let baseline = lightweight_reschedule(
        &failed,
        &model,
        &plan,
        &shifted,
        &s,
        &cfg_with_threads(21, 1),
    )
    .unwrap();
    for threads in [2usize, 8] {
        let parallel = lightweight_reschedule(
            &failed,
            &model,
            &plan,
            &shifted,
            &s,
            &cfg_with_threads(21, threads),
        )
        .unwrap();
        assert_eq!(
            baseline.plan, parallel.plan,
            "reschedule plan diverged with {threads} threads"
        );
        assert_eq!(
            baseline.estimated_attainment.to_bits(),
            parallel.estimated_attainment.to_bits(),
            "reschedule score diverged with {threads} threads"
        );
        assert!(parallel.reload_time.is_zero());
    }
}
