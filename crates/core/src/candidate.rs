//! Tabu-search candidates: group constructions with phase designations.
//!
//! A [`Candidate`] is a solution to the upper-level problem — a partition of
//! the available GPUs into serving groups, each designated prefill or
//! decode. The four neighbourhood moves of §3.2 (flip / split / merge /
//! move) operate on candidates; canonical hashing feeds the tabu list.

use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use ts_cluster::Cluster;
use ts_common::{GpuId, ModelId, Phase};

/// One serving group of a candidate solution.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CandidateGroup {
    /// Member GPUs, kept sorted.
    pub gpus: Vec<GpuId>,
    /// Designated phase.
    pub phase: Phase,
    /// The served model this group is assigned to (`ModelId(0)` — the
    /// default — in single-model searches).
    pub model: ModelId,
}

impl CandidateGroup {
    /// Creates a group, sorting its GPUs. The group serves the default
    /// model; multi-model searches tag it with
    /// [`CandidateGroup::with_model`].
    pub fn new(mut gpus: Vec<GpuId>, phase: Phase) -> Self {
        gpus.sort_unstable();
        CandidateGroup {
            gpus,
            phase,
            model: ModelId(0),
        }
    }

    /// The same group assigned to `model` (builder style).
    pub fn with_model(mut self, model: ModelId) -> Self {
        self.model = model;
        self
    }

    /// Canonical `u64` identity of `(gpus, phase, model)`, used as the key
    /// of the scheduler's parallel-configuration cache (avoids cloning the
    /// GPU list into the map on every lookup). The model participates
    /// because the cached parallel configuration is deduced from the model's
    /// weights and layer count.
    pub fn group_hash(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.hash(&mut h);
        h.finish()
    }
}

/// An upper-level solution: a partition of the GPUs plus phase designations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    /// The serving groups. Order is irrelevant; hashing canonicalizes.
    pub groups: Vec<CandidateGroup>,
}

impl Candidate {
    /// Creates a candidate from groups.
    pub fn new(groups: Vec<CandidateGroup>) -> Self {
        Candidate { groups }
    }

    /// Total GPUs across groups.
    pub fn num_gpus(&self) -> usize {
        self.groups.iter().map(|g| g.gpus.len()).sum()
    }

    /// Number of groups per phase `(prefill, decode)`.
    pub fn phase_counts(&self) -> (usize, usize) {
        let p = self
            .groups
            .iter()
            .filter(|g| g.phase == Phase::Prefill)
            .count();
        (p, self.groups.len() - p)
    }

    /// Whether both phases are represented.
    pub fn has_both_phases(&self) -> bool {
        let (p, d) = self.phase_counts();
        p > 0 && d > 0
    }

    /// Whether *every* listed model has both phases among its own groups —
    /// the multi-model feasibility gate (a tenant without a prefill or
    /// decode replica cannot serve at all).
    pub fn has_both_phases_for(&self, models: &[ModelId]) -> bool {
        models.iter().all(|&m| {
            let p = self
                .groups
                .iter()
                .any(|g| g.model == m && g.phase == Phase::Prefill);
            let d = self
                .groups
                .iter()
                .any(|g| g.model == m && g.phase == Phase::Decode);
            p && d
        })
    }

    /// Canonical hash (order-independent) for the tabu list.
    pub fn canonical_hash(&self) -> u64 {
        let mut keys: Vec<(Vec<GpuId>, Phase, ModelId)> = self
            .groups
            .iter()
            .map(|g| (g.gpus.clone(), g.phase, g.model))
            .collect();
        keys.sort();
        let mut h = DefaultHasher::new();
        keys.hash(&mut h);
        h.finish()
    }

    /// Flips the phase of group `idx` (the "flipping phase designation"
    /// move).
    ///
    /// # Panics
    /// Panics if `idx` is out of bounds.
    pub fn flip(&self, idx: usize) -> Candidate {
        let mut c = self.clone();
        c.groups[idx].phase = c.groups[idx].phase.opposite();
        c
    }

    /// Splits group `idx` at ratio `r ∈ (0,1)`, assigning phases randomly
    /// (the "splitting a group into two" move). GPUs are ordered by
    /// (model, node) before the cut so each half stays as uniform as
    /// possible. Returns `None` if the group has fewer than 2 GPUs or the
    /// cut would be empty.
    pub fn split<R: Rng>(
        &self,
        cluster: &Cluster,
        idx: usize,
        r: f64,
        rng: &mut R,
    ) -> Option<Candidate> {
        let g = &self.groups[idx];
        if g.gpus.len() < 2 {
            return None;
        }
        let mut ordered = g.gpus.clone();
        ordered.sort_by_key(|&id| {
            let gpu = cluster.gpu(id);
            (gpu.model, gpu.node, id)
        });
        let cut = ((g.gpus.len() as f64) * r).floor() as usize;
        if cut == 0 || cut == g.gpus.len() {
            return None;
        }
        let (a, b) = ordered.split_at(cut);
        let model = g.model;
        let mut c = self.clone();
        c.groups[idx] = CandidateGroup::new(a.to_vec(), random_phase(rng)).with_model(model);
        c.groups
            .push(CandidateGroup::new(b.to_vec(), random_phase(rng)).with_model(model));
        Some(c)
    }

    /// Merges groups `a` and `b` (the "merging two groups into one" move).
    /// Returns `None` if `a == b` or the groups serve different models (a
    /// merged replica can only load one model's weights).
    ///
    /// # Panics
    /// Panics if either index is out of bounds.
    pub fn merge<R: Rng>(&self, a: usize, b: usize, rng: &mut R) -> Option<Candidate> {
        if a == b || self.groups[a].model != self.groups[b].model {
            return None;
        }
        let mut c = self.clone();
        let (lo, hi) = (a.min(b), a.max(b));
        let model = c.groups[lo].model;
        let removed = c.groups.remove(hi);
        let mut gpus = c.groups[lo].gpus.clone();
        gpus.extend(removed.gpus);
        c.groups[lo] = CandidateGroup::new(gpus, random_phase(rng)).with_model(model);
        Some(c)
    }

    /// Reassigns group `idx` to serve `model` (the multi-model
    /// "reassign-model" move: shifts a whole replica's capacity to another
    /// tenant). Returns `None` if the group already serves `model`.
    ///
    /// # Panics
    /// Panics if `idx` is out of bounds.
    pub fn reassign_model(&self, idx: usize, model: ModelId) -> Option<Candidate> {
        if self.groups[idx].model == model {
            return None;
        }
        let mut c = self.clone();
        c.groups[idx].model = model;
        Some(c)
    }

    /// Moves `m` GPUs of one (randomly chosen) model type from group `from`
    /// to group `to` (the "moving GPUs between groups" move). Returns `None`
    /// if impossible (same group, or `from` would become empty).
    pub fn move_gpus<R: Rng>(
        &self,
        cluster: &Cluster,
        from: usize,
        to: usize,
        rng: &mut R,
    ) -> Option<Candidate> {
        if from == to || self.groups[from].gpus.len() < 2 {
            return None;
        }
        let g = &self.groups[from];
        // pick a model type present in `from`
        let mut models: Vec<_> = g.gpus.iter().map(|&id| cluster.gpu(id).model).collect();
        models.sort_unstable();
        models.dedup();
        let model = *models.choose(rng)?;
        let of_type: Vec<GpuId> = g
            .gpus
            .iter()
            .copied()
            .filter(|&id| cluster.gpu(id).model == model)
            .collect();
        let max_move = of_type.len().min(g.gpus.len() - 1);
        if max_move == 0 {
            return None;
        }
        let m = rng.gen_range(1..=max_move);
        let moved: Vec<GpuId> = of_type[..m].to_vec();
        let mut c = self.clone();
        c.groups[from] = CandidateGroup::new(
            g.gpus
                .iter()
                .copied()
                .filter(|id| !moved.contains(id))
                .collect(),
            g.phase,
        )
        .with_model(g.model);
        let mut to_gpus = c.groups[to].gpus.clone();
        to_gpus.extend(moved);
        c.groups[to] =
            CandidateGroup::new(to_gpus, c.groups[to].phase).with_model(c.groups[to].model);
        Some(c)
    }

    /// Checks the partition invariant: the groups exactly cover `expected`
    /// with no duplicates.
    pub fn is_partition_of(&self, expected: &[GpuId]) -> bool {
        let mut all: Vec<GpuId> = self
            .groups
            .iter()
            .flat_map(|g| g.gpus.iter().copied())
            .collect();
        all.sort_unstable();
        let mut exp = expected.to_vec();
        exp.sort_unstable();
        all == exp
    }
}

fn random_phase<R: Rng>(rng: &mut R) -> Phase {
    if rng.gen_bool(0.5) {
        Phase::Prefill
    } else {
        Phase::Decode
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_cluster::{ClusterBuilder, GpuModel};
    use ts_common::seeded_rng;

    fn cluster() -> Cluster {
        ClusterBuilder::new()
            .node("a", GpuModel::A40, 4)
            .node("b", GpuModel::Rtx3090Ti, 4)
            .build()
            .unwrap()
    }

    fn ids(v: &[u32]) -> Vec<GpuId> {
        v.iter().map(|&i| GpuId(i)).collect()
    }

    fn base() -> Candidate {
        Candidate::new(vec![
            CandidateGroup::new(ids(&[0, 1, 2, 3]), Phase::Prefill),
            CandidateGroup::new(ids(&[4, 5, 6, 7]), Phase::Decode),
        ])
    }

    #[test]
    fn hash_is_order_independent() {
        let a = base();
        let b = Candidate::new(vec![a.groups[1].clone(), a.groups[0].clone()]);
        assert_eq!(a.canonical_hash(), b.canonical_hash());
        let c = a.flip(0);
        assert_ne!(a.canonical_hash(), c.canonical_hash());
    }

    #[test]
    fn group_hash_is_gpu_order_independent() {
        let a = CandidateGroup::new(ids(&[3, 1, 2]), Phase::Prefill);
        let b = CandidateGroup::new(ids(&[1, 2, 3]), Phase::Prefill);
        assert_eq!(a.group_hash(), b.group_hash());
        let c = CandidateGroup::new(ids(&[1, 2, 3]), Phase::Decode);
        assert_ne!(a.group_hash(), c.group_hash());
        let d = CandidateGroup::new(ids(&[1, 2]), Phase::Prefill);
        assert_ne!(a.group_hash(), d.group_hash());
    }

    #[test]
    fn flip_changes_one_phase() {
        let c = base().flip(1);
        assert_eq!(c.groups[1].phase, Phase::Prefill);
        assert_eq!(c.groups[0].phase, Phase::Prefill);
        assert!(!c.has_both_phases());
    }

    #[test]
    fn split_preserves_partition() {
        let cl = cluster();
        let mut rng = seeded_rng(1);
        let c = base().split(&cl, 0, 0.5, &mut rng).unwrap();
        assert_eq!(c.groups.len(), 3);
        assert!(c.is_partition_of(&ids(&[0, 1, 2, 3, 4, 5, 6, 7])));
        assert_eq!(c.groups[0].gpus.len(), 2);
    }

    #[test]
    fn split_rejects_degenerate_cuts() {
        let cl = cluster();
        let mut rng = seeded_rng(2);
        assert!(base().split(&cl, 0, 0.0, &mut rng).is_none());
        let single = Candidate::new(vec![
            CandidateGroup::new(ids(&[0]), Phase::Prefill),
            CandidateGroup::new(ids(&[1]), Phase::Decode),
        ]);
        assert!(single.split(&cl, 0, 0.5, &mut rng).is_none());
    }

    #[test]
    fn merge_preserves_partition() {
        let mut rng = seeded_rng(3);
        let c = base().merge(0, 1, &mut rng).unwrap();
        assert_eq!(c.groups.len(), 1);
        assert!(c.is_partition_of(&ids(&[0, 1, 2, 3, 4, 5, 6, 7])));
        assert!(base().merge(1, 1, &mut rng).is_none());
    }

    #[test]
    fn move_gpus_preserves_partition_and_type() {
        let cl = cluster();
        let mut rng = seeded_rng(4);
        let c = base().move_gpus(&cl, 0, 1, &mut rng).unwrap();
        assert!(c.is_partition_of(&ids(&[0, 1, 2, 3, 4, 5, 6, 7])));
        assert!(!c.groups[0].gpus.is_empty());
        assert!(c.groups[1].gpus.len() > 4);
        // moved GPUs are all A40 (group 0 is all-A40)
        for &id in &c.groups[1].gpus {
            let m = cl.gpu(id).model;
            assert!(m == GpuModel::A40 || m == GpuModel::Rtx3090Ti);
        }
    }

    #[test]
    fn phase_counts() {
        assert_eq!(base().phase_counts(), (1, 1));
        assert!(base().has_both_phases());
    }

    #[test]
    fn reassign_model_moves_a_replica_between_tenants() {
        let c = Candidate::new(vec![
            CandidateGroup::new(ids(&[0, 1]), Phase::Prefill).with_model(ModelId(1)),
            CandidateGroup::new(ids(&[2, 3]), Phase::Decode).with_model(ModelId(1)),
            CandidateGroup::new(ids(&[4, 5]), Phase::Prefill).with_model(ModelId(2)),
            CandidateGroup::new(ids(&[6, 7]), Phase::Decode).with_model(ModelId(2)),
        ]);
        let both = [ModelId(1), ModelId(2)];
        assert!(c.has_both_phases_for(&both));
        let moved = c.reassign_model(3, ModelId(1)).unwrap();
        assert!(!moved.has_both_phases_for(&both), "model 2 lost its decode");
        assert!(moved.is_partition_of(&ids(&[0, 1, 2, 3, 4, 5, 6, 7])));
        assert_ne!(moved.canonical_hash(), c.canonical_hash());
        assert!(c.reassign_model(3, ModelId(2)).is_none(), "no-op reassign");
    }

    #[test]
    fn merge_refuses_cross_model_groups() {
        let mut rng = seeded_rng(5);
        let c = Candidate::new(vec![
            CandidateGroup::new(ids(&[0, 1]), Phase::Prefill).with_model(ModelId(1)),
            CandidateGroup::new(ids(&[2, 3]), Phase::Decode).with_model(ModelId(2)),
        ]);
        assert!(c.merge(0, 1, &mut rng).is_none());
    }

    #[test]
    fn split_and_moves_preserve_model_tags() {
        let cl = cluster();
        let mut rng = seeded_rng(6);
        let c = Candidate::new(vec![
            CandidateGroup::new(ids(&[0, 1, 2, 3]), Phase::Prefill).with_model(ModelId(7)),
            CandidateGroup::new(ids(&[4, 5, 6, 7]), Phase::Decode).with_model(ModelId(8)),
        ]);
        let s = c.split(&cl, 0, 0.5, &mut rng).unwrap();
        assert!(s.groups[0].model == ModelId(7) && s.groups[2].model == ModelId(7));
        let m = c.move_gpus(&cl, 0, 1, &mut rng).unwrap();
        assert_eq!(m.groups[0].model, ModelId(7));
        assert_eq!(m.groups[1].model, ModelId(8));
        // group_hash distinguishes models on identical (gpus, phase)
        let a = CandidateGroup::new(ids(&[0, 1]), Phase::Prefill).with_model(ModelId(1));
        let b = CandidateGroup::new(ids(&[0, 1]), Phase::Prefill).with_model(ModelId(2));
        assert_ne!(a.group_hash(), b.group_hash());
    }
}
