//! # thunderserve-core
//!
//! The paper's primary contribution: the two-level scheduling algorithm of
//! §3 plus the lightweight rescheduling mechanism of §3.4.
//!
//! Scheduling is posed as a hierarchical optimization problem:
//!
//! * **Upper level** ([`tabu`]): partition the available GPUs into model
//!   serving groups and designate each group's phase (prefill or decode).
//!   The space is searched with tabu search (Algorithm 1), seeded by
//!   hierarchical clustering on the inter-GPU bandwidth matrix and explored
//!   with four neighbourhood moves: *flip* a group's phase, *split* a group,
//!   *merge* two groups, and *move* GPUs between groups.
//! * **Lower level** ([`parallel`], [`mod@orchestrate`]): for a fixed group
//!   construction, deduce each group's optimal parallel configuration
//!   (Algorithm 2 — TP confined to single-type, single-node GPU sets;
//!   pipeline stages ordered by the bitmask routing DP; layers partitioned
//!   proportionally to stage capacity) and solve the capacity-bounded
//!   transportation problem that routes request flow across (prefill,
//!   decode) replica pairs.
//!
//! [`reschedule`] implements the lightweight variant: only phase flips and
//! re-orchestration, with parallel configurations frozen and no parameter
//! reloads, so it completes in milliseconds of compute and zero service
//! interruption.
//!
//! # Examples
//!
//! ```
//! use thunderserve_core::{Scheduler, SchedulerConfig};
//! use ts_cluster::presets;
//! use ts_common::{ModelSpec, SimDuration, SloSpec};
//! use ts_workload::spec;
//!
//! let cluster = presets::network_case_cluster(presets::ETH_40GBPS);
//! let slo = SloSpec::new(
//!     SimDuration::from_secs(2),
//!     SimDuration::from_millis(150),
//!     SimDuration::from_secs(20),
//! );
//! let mut cfg = SchedulerConfig::fast(); // trimmed search for doctests
//! cfg.seed = 7;
//! let scheduler = Scheduler::new(cfg);
//! let result = scheduler
//!     .schedule(&cluster, &ModelSpec::llama_13b(), &spec::coding(1.0), &slo)
//!     .unwrap();
//! let (prefill, decode) = result.plan.phase_ratio();
//! assert!(prefill >= 1 && decode >= 1);
//! ```

pub mod candidate;
pub mod config;
pub mod orchestrate;
pub mod parallel;
pub mod reschedule;
pub mod scheduler;
pub mod tabu;

pub use config::SchedulerConfig;
pub use orchestrate::{orchestrate, orchestrate_with_link_share};
pub use parallel::deduce_parallel_config;
pub use reschedule::{full_reschedule, lightweight_reschedule, RescheduleOutcome};
pub use scheduler::{ModelEstimate, MultiScheduleResult, ScheduleResult, Scheduler};
