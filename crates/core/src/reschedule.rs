//! Lightweight and full rescheduling (§3.4).
//!
//! When the workload shifts or GPUs fail, the deployment plan must adapt.
//! *Full* rescheduling reruns the whole two-level search and reloads model
//! weights (minutes of service interruption); *lightweight* rescheduling
//! keeps group construction and parallel configurations frozen, explores
//! only phase flips with a reduced tabu search, and re-solves orchestration
//! — no parameter movement, so the adjustment is effectively free.

use crate::config::SchedulerConfig;
use crate::orchestrate::{orchestrate, phase_affinity};
use crate::parallel::deduce_parallel_config;
use crate::scheduler::Scheduler;
use rand::Rng;
use std::collections::{HashMap, HashSet, VecDeque};
use ts_cluster::Cluster;
use ts_common::{
    seeded_rng, DeploymentPlan, Error, GpuId, GroupSpec, ModelSpec, NodeId, Phase, Result,
    SimDuration, SloSpec,
};
use ts_costmodel::replica::{ReplicaCostModel, DISK_BANDWIDTH};
use ts_telemetry::{SearchStep, SearchTrace};
use ts_workload::WorkloadSpec;

/// Result of a rescheduling operation.
#[derive(Debug, Clone)]
pub struct RescheduleOutcome {
    /// The adjusted plan.
    pub plan: DeploymentPlan,
    /// Estimated overall attainment of the adjusted plan.
    pub estimated_attainment: f64,
    /// Wall-clock seconds spent searching.
    pub search_time: f64,
    /// Modeled service interruption for weight (re)loading. Zero for
    /// lightweight rescheduling — phases flip in place, no weights move.
    pub reload_time: SimDuration,
    /// Per-step introspection of the flip-only (lightweight) or full tabu
    /// search, when [`SchedulerConfig::search_trace`] is on. Always `None`
    /// for [`no_reschedule`] — it performs no search.
    pub search_trace: Option<SearchTrace>,
}

/// Lightweight rescheduling: drops groups that lost GPUs, then runs a
/// flip-only tabu search with frozen parallel configurations and re-solves
/// orchestration.
///
/// # Errors
/// Returns [`Error::Infeasible`] if fewer than two groups survive the
/// failure or no feasible phase designation exists.
pub fn lightweight_reschedule(
    cluster: &Cluster,
    model: &ModelSpec,
    current: &DeploymentPlan,
    workload: &WorkloadSpec,
    slo: &SloSpec,
    cfg: &SchedulerConfig,
) -> Result<RescheduleOutcome> {
    let start = std::time::Instant::now();
    // Keep only groups whose GPUs are all still active.
    let surviving: Vec<GroupSpec> = current
        .groups
        .iter()
        .filter(|g| g.gpus().all(|id| cluster.is_active(id)))
        .cloned()
        .collect();
    if surviving.len() < 2 {
        return Err(Error::Infeasible(format!(
            "only {} groups survive; need 2",
            surviving.len()
        )));
    }
    flip_search(cluster, model, surviving, workload, slo, cfg, start)
}

/// The shared flip-only tabu search over a fixed group construction —
/// the lower half of [`lightweight_reschedule`], also reused by
/// [`fleet_reschedule`] after it has edited the group list for a deliberate
/// fleet change. `start` is the wall-clock origin for `search_time`.
fn flip_search(
    cluster: &Cluster,
    model: &ModelSpec,
    surviving: Vec<GroupSpec>,
    workload: &WorkloadSpec,
    slo: &SloSpec,
    cfg: &SchedulerConfig,
    start: std::time::Instant,
) -> Result<RescheduleOutcome> {
    // Flip-only tabu search (the other move kinds are disabled in
    // lightweight mode). Mirrors the upper-level search's parallel step
    // shape: draw the whole neighbourhood from the RNG up front, evaluate
    // the unique uncached phase designations concurrently, then reduce in
    // generation order — bit-identical for any `cfg.num_threads`.
    let mut rng = seeded_rng(ts_common::rng::derive_seed(cfg.seed, 0x11F7));
    let evaluate = |groups: &[GroupSpec]| -> Option<f64> {
        let affinity = phase_affinity(cluster, groups);
        orchestrate(cluster, model, groups.to_vec(), workload, slo, cfg)
            .ok()
            .map(|o| o.score + 1e-4 * affinity)
    };

    let mut x = surviving.clone();
    ensure_both_phases(&mut x);
    let mut best = x.clone();
    let init_score = evaluate(&x);
    let mut best_score = init_score.unwrap_or(f64::NEG_INFINITY);
    let mut tabu: VecDeque<Vec<Phase>> = VecDeque::new();
    // O(1) membership mirror of the deque.
    let mut tabu_set: HashSet<Vec<Phase>> = HashSet::new();
    // Orchestration is a deterministic function of the phase designation
    // (groups themselves are frozen in lightweight mode), so scores can be
    // memoized across steps.
    let mut eval_cache: HashMap<Vec<Phase>, Option<f64>> = HashMap::new();
    eval_cache.insert(x.iter().map(|g| g.phase).collect(), init_score);

    let mut search_trace = cfg.search_trace.then(SearchTrace::default);
    let mut prev_elapsed = 0.0f64;

    // One worker pool spans all steps (thread startup paid once); jobs are
    // owned clones because pool workers outlive any single step.
    let eval = |groups: &Vec<GroupSpec>| evaluate(groups);
    ts_common::with_worker_pool(cfg.num_threads, &eval, |run| {
        for step in 0..cfg.n_step.min(40) {
            // Draw all flip choices before evaluating anything.
            let neighbors: Vec<(Vec<Phase>, Vec<GroupSpec>)> = (0..cfg.n_nghb)
                .map(|_| {
                    let idx = rng.gen_range(0..x.len());
                    let mut n = x.clone();
                    n[idx] = n[idx].flipped();
                    let phases: Vec<Phase> = n.iter().map(|g| g.phase).collect();
                    (phases, n)
                })
                .collect();
            // Unique, non-tabu, feasible cache misses form the batch.
            let mut scheduled: HashSet<&Vec<Phase>> = HashSet::new();
            let (batch, jobs): (Vec<usize>, Vec<Vec<GroupSpec>>) = neighbors
                .iter()
                .enumerate()
                .filter(|(_, (phases, n))| {
                    !tabu_set.contains(phases)
                        && has_both_phases(n)
                        && !eval_cache.contains_key(phases)
                })
                .filter(|(_, (phases, _))| scheduled.insert(phases))
                .map(|(i, (_, n))| (i, n.clone()))
                .unzip();
            // Introspection mirrors the filter chain above; counts are taken
            // before this step's results land in `eval_cache`.
            let mut row = search_trace.as_ref().map(|_| {
                let mut row = SearchStep {
                    step,
                    evaluated: batch.len(),
                    ..SearchStep::default()
                };
                let mut seen: HashSet<&Vec<Phase>> = HashSet::new();
                for (phases, n) in &neighbors {
                    row.generated += 1;
                    if tabu_set.contains(phases) {
                        row.tabu_filtered += 1;
                    } else if !has_both_phases(n) {
                        row.infeasible += 1;
                    } else if eval_cache.contains_key(phases) {
                        row.cache_hits += 1;
                    } else if !seen.insert(phases) {
                        row.duplicates += 1;
                    }
                }
                row
            });
            let outcomes = run(jobs);
            for (&i, score) in batch.iter().zip(&outcomes) {
                eval_cache.insert(neighbors[i].0.clone(), *score);
            }
            // First strict maximum in generation order == serial selection.
            let mut step_best: Option<(f64, usize)> = None;
            for (i, (phases, n)) in neighbors.iter().enumerate() {
                if tabu_set.contains(phases) || !has_both_phases(n) {
                    continue;
                }
                let Some(Some(score)) = eval_cache.get(phases) else {
                    continue;
                };
                if step_best.map(|(s, _)| *score > s).unwrap_or(true) {
                    step_best = Some((*score, i));
                }
            }
            if let Some((score, i)) = step_best {
                let (phases, n) = neighbors[i].clone();
                tabu.push_back(phases.clone());
                tabu_set.insert(phases);
                while tabu.len() > cfg.n_mem {
                    if let Some(old) = tabu.pop_front() {
                        tabu_set.remove(&old);
                    }
                }
                if score > best_score {
                    best_score = score;
                    best = n.clone();
                }
                x = n;
            }
            if let (Some(tr), Some(mut row)) = (search_trace.as_mut(), row.take()) {
                let elapsed = start.elapsed().as_secs_f64();
                row.winner_score = step_best.map(|(s, _)| s);
                row.wall_s = elapsed - prev_elapsed;
                prev_elapsed = elapsed;
                tr.steps.push(row);
            }
        }
    });

    let orch = orchestrate(cluster, model, best, workload, slo, cfg)?;
    Ok(RescheduleOutcome {
        plan: orch.plan,
        estimated_attainment: orch.score,
        search_time: start.elapsed().as_secs_f64(),
        reload_time: SimDuration::ZERO,
        search_trace,
    })
}

/// A deliberate fleet change between serving segments: which nodes the
/// autoscaler acquired and which it released (or lost to a spot reclaim).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetDelta {
    /// Nodes that joined the fleet (already activated in the cluster mask).
    pub acquired: Vec<NodeId>,
    /// Nodes that left the fleet (already deactivated in the cluster mask).
    pub released: Vec<NodeId>,
}

impl FleetDelta {
    /// Whether the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.acquired.is_empty() && self.released.is_empty()
    }

    /// Number of GPUs on the nodes this delta touches.
    pub fn gpus_touched(&self, cluster: &Cluster) -> usize {
        self.acquired
            .iter()
            .chain(&self.released)
            .map(|&n| cluster.node(n).gpus.len())
            .sum()
    }
}

/// Rescheduling for a *deliberate* fleet change (§3.4 extended to
/// elasticity): groups on released nodes are dropped, one new group per
/// acquired node is constructed with [`deduce_parallel_config`] — seeded
/// with the phase that keeps the plan's prefill:decode GPU ratio where the
/// scheduler put it, so both pools scale in a coordinated ratio — and the
/// flip-only tabu search plus re-orchestration then refines the phase
/// designations for the observed workload.
///
/// Surviving replicas keep their weights, so like lightweight rescheduling
/// the adjustment carries **zero reload blackout**: freshly acquired nodes
/// load weights in the background while the old fleet keeps serving, and
/// join at the next segment boundary. Only when the delta touches more than
/// `full_replan_fraction` of the active fleet does the change escalate to
/// [`full_reschedule`], paying the weight-reload blackout for a globally
/// re-optimized plan.
///
/// The cluster's availability mask must already reflect the new fleet
/// (acquired nodes active, released nodes inactive).
///
/// # Errors
/// Returns [`Error::Infeasible`] if fewer than two groups exist after the
/// edit; propagates orchestration and (on escalation) scheduler failures.
#[allow(clippy::too_many_arguments)]
pub fn fleet_reschedule(
    cluster: &Cluster,
    model: &ModelSpec,
    current: &DeploymentPlan,
    delta: &FleetDelta,
    workload: &WorkloadSpec,
    slo: &SloSpec,
    cfg: &SchedulerConfig,
    full_replan_fraction: f64,
) -> Result<RescheduleOutcome> {
    let start = std::time::Instant::now();
    let active = cluster.num_gpus();
    let touched = delta.gpus_touched(cluster);
    if active == 0 {
        return Err(Error::Infeasible("no active GPUs in the fleet".into()));
    }
    if touched as f64 > full_replan_fraction * active as f64 {
        // The fleet moved too much for local edits to stay near-optimal:
        // re-plan from scratch and pay the blackout.
        return full_reschedule(cluster, model, workload, slo, cfg);
    }

    // Drop groups that lost any GPU (covers the released nodes).
    let mut groups: Vec<GroupSpec> = current
        .groups
        .iter()
        .filter(|g| g.gpus().all(|id| cluster.is_active(id)))
        .cloned()
        .collect();

    // Coordinated scaling: keep the prefill:decode GPU ratio where the
    // two-level search put it for this workload, instead of growing one
    // pool and starving the other.
    let (cur_p, cur_d) = current.phase_ratio();
    let target_prefill = cur_p as f64 / (cur_p + cur_d).max(1) as f64;
    let mut acquired = delta.acquired.clone();
    acquired.sort_unstable();
    for &node in &acquired {
        let gpus: Vec<GpuId> = cluster
            .node(node)
            .gpus
            .iter()
            .copied()
            .filter(|&g| cluster.is_active(g))
            .collect();
        if gpus.is_empty() {
            continue;
        }
        let prefill_gpus: usize = groups
            .iter()
            .filter(|g| g.phase == Phase::Prefill)
            .map(GroupSpec::num_gpus)
            .sum();
        let total_gpus: usize = groups.iter().map(GroupSpec::num_gpus).sum();
        let frac = prefill_gpus as f64 / total_gpus.max(1) as f64;
        let preferred = if frac < target_prefill {
            Phase::Prefill
        } else {
            Phase::Decode
        };
        // A node whose memory cannot host the phase's layout under one
        // designation may still host the other; an infeasible node is
        // skipped (its GPUs stay idle until a full re-plan picks them up).
        let group = deduce_parallel_config(cluster, model, &gpus, preferred, workload, cfg)
            .or_else(|_| {
                deduce_parallel_config(cluster, model, &gpus, preferred.opposite(), workload, cfg)
            });
        if let Ok(g) = group {
            groups.push(g);
        }
    }

    if groups.len() < 2 {
        return Err(Error::Infeasible(format!(
            "only {} groups after the fleet edit; need 2",
            groups.len()
        )));
    }
    flip_search(cluster, model, groups, workload, slo, cfg, start)
}

/// Full rescheduling: rerun the entire two-level search from scratch and
/// model the weight-reload interruption (the slowest replica's load time at
/// [`DISK_BANDWIDTH`]).
///
/// # Errors
/// Propagates scheduler failures.
pub fn full_reschedule(
    cluster: &Cluster,
    model: &ModelSpec,
    workload: &WorkloadSpec,
    slo: &SloSpec,
    cfg: &SchedulerConfig,
) -> Result<RescheduleOutcome> {
    let start = std::time::Instant::now();
    let result = Scheduler::new(cfg.clone()).schedule(cluster, model, workload, slo)?;
    let reload_time = result
        .plan
        .groups
        .iter()
        .filter_map(|g| ReplicaCostModel::new(cluster, model, g, &cfg.params).ok())
        .map(|rcm| rcm.weight_load_time(DISK_BANDWIDTH))
        .max()
        .unwrap_or(SimDuration::ZERO);
    Ok(RescheduleOutcome {
        plan: result.plan,
        estimated_attainment: result.estimated_attainment,
        search_time: start.elapsed().as_secs_f64(),
        reload_time,
        search_trace: result.search_trace,
    })
}

/// "No rescheduling": keep the surviving groups, their phases **and** the
/// old routing matrix — dead rows/columns are pruned and the remaining mass
/// renormalized, exactly what a router does when replicas stop answering.
/// Used as the Figure 11 control arm.
///
/// # Errors
/// Returns [`Error::Infeasible`] if a phase loses all its replicas.
pub fn no_reschedule(
    cluster: &Cluster,
    model: &ModelSpec,
    current: &DeploymentPlan,
    workload: &WorkloadSpec,
    slo: &SloSpec,
    cfg: &SchedulerConfig,
) -> Result<RescheduleOutcome> {
    let alive = |g: &GroupSpec| -> bool { g.gpus().all(|id| cluster.is_active(id)) };
    let surviving: Vec<GroupSpec> = current
        .groups
        .iter()
        .filter(|g| alive(g))
        .cloned()
        .collect();
    if !has_both_phases(&surviving) {
        return Err(Error::Infeasible(
            "a phase lost all replicas; no-reschedule cannot serve".into(),
        ));
    }
    // Prune the old routing matrix to the surviving replicas and renormalize.
    let old_p = current.prefill_indices();
    let old_d = current.decode_indices();
    let keep_rows: Vec<usize> = old_p
        .iter()
        .enumerate()
        .filter(|(_, &gi)| alive(&current.groups[gi]))
        .map(|(r, _)| r)
        .collect();
    let keep_cols: Vec<usize> = old_d
        .iter()
        .enumerate()
        .filter(|(_, &gi)| alive(&current.groups[gi]))
        .map(|(c, _)| c)
        .collect();
    let mut rates: Vec<Vec<f64>> = keep_rows
        .iter()
        .map(|&r| {
            keep_cols
                .iter()
                .map(|&c| current.routing.rate(r, c))
                .collect()
        })
        .collect();
    let total: f64 = rates.iter().flatten().sum();
    let routing = if total > 1e-12 {
        for row in rates.iter_mut() {
            for v in row.iter_mut() {
                *v /= total;
            }
        }
        ts_common::RoutingMatrix::new(rates)?
    } else {
        ts_common::RoutingMatrix::uniform(keep_rows.len(), keep_cols.len())
    };
    let plan = DeploymentPlan::new(surviving, routing)?;
    // Estimate attainment of the kept plan for reporting purposes only.
    let sim_cfg = crate::orchestrate::sim_config(model, cfg);
    let est = ts_sim::estimate::estimate_attainment(cluster, &plan, &sim_cfg, workload, slo)?;
    Ok(RescheduleOutcome {
        plan,
        estimated_attainment: est.overall,
        search_time: 0.0,
        reload_time: SimDuration::ZERO,
        search_trace: None,
    })
}

fn has_both_phases(groups: &[GroupSpec]) -> bool {
    groups.iter().any(|g| g.phase == Phase::Prefill)
        && groups.iter().any(|g| g.phase == Phase::Decode)
}

fn ensure_both_phases(groups: &mut [GroupSpec]) {
    if groups.iter().all(|g| g.phase == Phase::Prefill) {
        let last = groups.len() - 1;
        groups[last] = groups[last].flipped();
    } else if groups.iter().all(|g| g.phase == Phase::Decode) {
        groups[0] = groups[0].flipped();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchedulerConfig;
    use ts_cluster::presets;
    use ts_common::NodeId;
    use ts_workload::spec;

    fn slo() -> SloSpec {
        SloSpec::new(
            SimDuration::from_secs(2),
            SimDuration::from_millis(200),
            SimDuration::from_secs(30),
        )
    }

    fn schedule_cloud() -> (
        ts_cluster::Cluster,
        ModelSpec,
        DeploymentPlan,
        SchedulerConfig,
    ) {
        let cluster = presets::paper_cloud_cluster();
        let model = ModelSpec::llama_30b();
        let mut cfg = SchedulerConfig::fast();
        cfg.seed = 21;
        let r = Scheduler::new(cfg.clone())
            .schedule(&cluster, &model, &spec::coding(2.5), &slo())
            .unwrap();
        (cluster, model, r.plan, cfg)
    }

    #[test]
    fn lightweight_survives_node_failure() {
        let (mut cluster, model, plan, cfg) = schedule_cloud();
        cluster.deactivate_node(NodeId(6)).unwrap(); // lose a 3090Ti box
        let out = lightweight_reschedule(&cluster, &model, &plan, &spec::coding(2.5), &slo(), &cfg)
            .unwrap();
        assert!(out.reload_time.is_zero(), "lightweight must not reload");
        assert!(out.estimated_attainment > 0.0);
        for g in &out.plan.groups {
            for gpu in g.gpus() {
                assert!(cluster.is_active(gpu));
            }
        }
    }

    #[test]
    fn lightweight_search_trace_observes_without_changing_the_plan() {
        let (mut cluster, model, plan, cfg) = schedule_cloud();
        cluster.deactivate_node(NodeId(6)).unwrap();
        let mut traced_cfg = cfg.clone();
        traced_cfg.search_trace = true;
        let w = spec::coding(2.5);
        let plain = lightweight_reschedule(&cluster, &model, &plan, &w, &slo(), &cfg).unwrap();
        let traced =
            lightweight_reschedule(&cluster, &model, &plan, &w, &slo(), &traced_cfg).unwrap();
        assert!(plain.search_trace.is_none(), "introspection defaults off");
        let tr = traced.search_trace.expect("trace requested");
        assert!(!tr.steps.is_empty());
        for row in &tr.steps {
            assert_eq!(
                row.tabu_filtered
                    + row.infeasible
                    + row.cache_hits
                    + row.duplicates
                    + row.evaluated,
                row.generated,
                "filter counts must partition the neighbourhood"
            );
        }
        // Flip-only neighbourhoods revisit designations constantly: the
        // memoized orchestration cache must be doing real work.
        assert!(tr.cache_hit_rate() > 0.0, "{}", tr.render());
        assert_eq!(traced.plan, plain.plan);
        assert_eq!(traced.estimated_attainment, plain.estimated_attainment);
    }

    #[test]
    fn lightweight_adapts_to_workload_shift() {
        let (cluster, model, plan, cfg) = schedule_cloud();
        // Shift from coding to conversation: lightweight rescheduling should
        // not decrease the estimated attainment vs. keeping the plan as-is,
        // judged by the same estimator on both resulting plans.
        let conv = spec::conversation(2.5);
        let keep = no_reschedule(&cluster, &model, &plan, &conv, &slo(), &cfg).unwrap();
        let light = lightweight_reschedule(&cluster, &model, &plan, &conv, &slo(), &cfg).unwrap();
        let sim_cfg = crate::orchestrate::sim_config(&model, &cfg);
        let score = |p: &DeploymentPlan| {
            ts_sim::estimate::estimate_attainment(&cluster, p, &sim_cfg, &conv, &slo())
                .unwrap()
                .overall
        };
        let s_keep = score(&keep.plan);
        let s_light = score(&light.plan);
        assert!(
            s_light >= s_keep - 0.05,
            "lightweight {s_light} vs keep {s_keep}"
        );
    }

    #[test]
    fn full_reschedule_models_reload_cost() {
        let cluster = presets::paper_cloud_cluster();
        let model = ModelSpec::llama_30b();
        let mut cfg = SchedulerConfig::fast();
        cfg.seed = 23;
        let out =
            full_reschedule(&cluster, &model, &spec::conversation(2.5), &slo(), &cfg).unwrap();
        // Reloading ~65GB at 1.2GB/s, sharded: tens of seconds at least.
        assert!(
            out.reload_time.as_secs_f64() > 5.0,
            "reload {} too small",
            out.reload_time
        );
    }

    #[test]
    fn lightweight_is_much_faster_than_full() {
        let (mut cluster, model, plan, mut cfg) = schedule_cloud();
        cfg.n_step = 30;
        cluster.deactivate_node(NodeId(1)).unwrap();
        let w = spec::coding(2.5);
        let t0 = std::time::Instant::now();
        let _light = lightweight_reschedule(&cluster, &model, &plan, &w, &slo(), &cfg).unwrap();
        let light_t = t0.elapsed();
        let t1 = std::time::Instant::now();
        let _full = full_reschedule(&cluster, &model, &w, &slo(), &cfg).unwrap();
        let full_t = t1.elapsed();
        assert!(
            light_t.as_secs_f64() < full_t.as_secs_f64(),
            "lightweight {light_t:?} should beat full {full_t:?}"
        );
    }

    /// Elastic pool with only the given nodes active, plus a plan scheduled
    /// on that sub-fleet.
    fn elastic_fleet(active: &[u32]) -> (ts_cluster::Cluster, ModelSpec, DeploymentPlan) {
        let mut cluster = presets::elastic_cloud_pool().cluster;
        for n in 0..cluster.num_nodes() {
            if !active.contains(&(n as u32)) {
                cluster.deactivate_node(NodeId(n as u32)).unwrap();
            }
        }
        let model = ModelSpec::llama_30b();
        let mut cfg = SchedulerConfig::fast();
        cfg.seed = 29;
        let r = Scheduler::new(cfg.clone())
            .schedule(&cluster, &model, &spec::coding(2.0), &slo())
            .unwrap();
        (cluster, model, r.plan)
    }

    #[test]
    fn fleet_reschedule_grafts_acquired_node_without_reload() {
        let (mut cluster, model, plan) = elastic_fleet(&[0, 1, 2, 3]);
        cluster.activate_node(NodeId(4)).unwrap();
        let delta = FleetDelta {
            acquired: vec![NodeId(4)],
            released: vec![],
        };
        let mut cfg = SchedulerConfig::fast();
        cfg.seed = 29;
        let out = fleet_reschedule(
            &cluster,
            &model,
            &plan,
            &delta,
            &spec::coding(2.0),
            &slo(),
            &cfg,
            0.5,
        )
        .unwrap();
        assert!(out.reload_time.is_zero(), "small delta must not reload");
        assert!(
            out.plan.num_gpus() > plan.num_gpus(),
            "acquired node's GPUs should join the plan"
        );
        let on_new: usize = out
            .plan
            .groups
            .iter()
            .flat_map(|g| g.gpus())
            .filter(|&g| cluster.gpu(g).node == NodeId(4))
            .count();
        assert_eq!(on_new, 4, "all four GPUs of the acquired node serve");
        let (p, d) = out.plan.phase_ratio();
        assert!(p > 0 && d > 0, "both pools must stay populated");
    }

    #[test]
    fn fleet_reschedule_drops_released_node_without_reload() {
        let (mut cluster, model, plan) = elastic_fleet(&[0, 1, 2, 3]);
        cluster.deactivate_node(NodeId(3)).unwrap();
        let delta = FleetDelta {
            acquired: vec![],
            released: vec![NodeId(3)],
        };
        let mut cfg = SchedulerConfig::fast();
        cfg.seed = 29;
        let out = fleet_reschedule(
            &cluster,
            &model,
            &plan,
            &delta,
            &spec::coding(2.0),
            &slo(),
            &cfg,
            0.5,
        )
        .unwrap();
        assert!(out.reload_time.is_zero());
        for g in &out.plan.groups {
            for gpu in g.gpus() {
                assert_ne!(cluster.gpu(gpu).node, NodeId(3), "released node evicted");
            }
        }
    }

    #[test]
    fn fleet_reschedule_escalates_to_full_replan_on_large_delta() {
        let (mut cluster, model, plan) = elastic_fleet(&[0, 1, 2, 3]);
        for n in 4..8 {
            cluster.activate_node(NodeId(n)).unwrap();
        }
        let delta = FleetDelta {
            acquired: (4..8).map(NodeId).collect(),
            released: vec![],
        };
        assert_eq!(delta.gpus_touched(&cluster), 16);
        let mut cfg = SchedulerConfig::fast();
        cfg.seed = 29;
        let out = fleet_reschedule(
            &cluster,
            &model,
            &plan,
            &delta,
            &spec::coding(2.0),
            &slo(),
            &cfg,
            0.4,
        )
        .unwrap();
        assert!(
            out.reload_time.as_secs_f64() > 5.0,
            "doubling the fleet must escalate to a full re-plan (reload {})",
            out.reload_time
        );
    }

    #[test]
    fn fleet_delta_accounting() {
        let pool = presets::elastic_cloud_pool();
        let d = FleetDelta::default();
        assert!(d.is_empty());
        let d = FleetDelta {
            acquired: vec![NodeId(2)],
            released: vec![NodeId(5)],
        };
        assert!(!d.is_empty());
        assert_eq!(d.gpus_touched(&pool.cluster), 8);
    }

    #[test]
    fn no_reschedule_fails_when_phase_lost() {
        let (mut cluster, model, plan, cfg) = schedule_cloud();
        // Kill every node hosting decode groups.
        let decode_nodes: Vec<NodeId> = plan
            .decode_indices()
            .iter()
            .flat_map(|&gi| plan.groups[gi].gpus())
            .map(|g| cluster.gpu(g).node)
            .collect();
        for n in decode_nodes {
            cluster.deactivate_node(n).unwrap();
        }
        let res = no_reschedule(&cluster, &model, &plan, &spec::coding(2.5), &slo(), &cfg);
        assert!(res.is_err());
    }
}
