//! The top-level scheduler facade.

use crate::config::SchedulerConfig;
use crate::orchestrate::sim_config;
use crate::tabu::{MultiTabuSearch, TabuSearch, TracePoint};
use ts_cluster::Cluster;
use ts_common::{DeploymentPlan, Error, ModelId, ModelSpec, Result, ServedModel, SloSpec};
use ts_sim::estimate::estimate_attainment;
use ts_workload::WorkloadSpec;

/// Output of a full scheduling run.
#[derive(Debug, Clone)]
pub struct ScheduleResult {
    /// The deployment plan to instantiate.
    pub plan: DeploymentPlan,
    /// Estimated overall SLO attainment of the plan.
    pub estimated_attainment: f64,
    /// Tabu convergence trajectory (Figure 10).
    pub trajectory: Vec<TracePoint>,
    /// Lower-level evaluations performed.
    pub evaluations: usize,
    /// Total neighbours generated across all search steps.
    pub neighbors_generated: usize,
    /// Hit/miss counters of the shared parallel-configuration cache.
    pub group_cache_hits: u64,
    /// Misses of the shared parallel-configuration cache.
    pub group_cache_misses: u64,
    /// Per-step search introspection, when
    /// [`SchedulerConfig::search_trace`] is on.
    pub search_trace: Option<ts_telemetry::SearchTrace>,
    /// Wall-clock scheduling time in seconds.
    pub elapsed: f64,
}

/// Per-model attainment estimate inside a multi-model schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelEstimate {
    /// The served model.
    pub model: ModelId,
    /// Estimated joint SLO attainment for this model's traffic, under its
    /// own [`ts_common::SloSpec`].
    pub estimated_attainment: f64,
}

/// Output of a multi-model scheduling run: the shared-pool plan plus the
/// per-tenant attainment estimates behind its weighted objective.
#[derive(Debug, Clone)]
pub struct MultiScheduleResult {
    /// The shared scheduling output (plan, trajectory, counters). For a
    /// one-entry default-model catalog this is byte-identical to what
    /// [`Scheduler::schedule`] returns.
    pub schedule: ScheduleResult,
    /// One estimate per catalog entry, in catalog order.
    pub per_model: Vec<ModelEstimate>,
}

/// The ThunderServe scheduler: wraps the two-level optimization behind a
/// single call.
#[derive(Debug, Clone, Default)]
pub struct Scheduler {
    cfg: SchedulerConfig,
}

impl Scheduler {
    /// Creates a scheduler with the given configuration.
    pub fn new(cfg: SchedulerConfig) -> Self {
        Scheduler { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SchedulerConfig {
        &self.cfg
    }

    /// Produces a deployment plan for `model` on the cluster's active GPUs
    /// under the given workload and SLO.
    ///
    /// Neighbourhood evaluation runs on [`SchedulerConfig::num_threads`]
    /// workers; the result is bit-identical for every thread setting, so the
    /// knob trades wall-clock time only.
    ///
    /// # Errors
    /// Returns [`ts_common::Error::Infeasible`] if no feasible phase-split
    /// deployment exists (e.g. memory for fewer than two replicas).
    pub fn schedule(
        &self,
        cluster: &Cluster,
        model: &ModelSpec,
        workload: &WorkloadSpec,
        slo: &SloSpec,
    ) -> Result<ScheduleResult> {
        let start = std::time::Instant::now();
        let search = TabuSearch::new(cluster, model, workload, slo, &self.cfg);
        let result = search.search()?;
        Ok(ScheduleResult {
            plan: result.best.plan,
            estimated_attainment: result.best.score,
            trajectory: result.trajectory,
            evaluations: result.evaluations,
            neighbors_generated: result.neighbors_generated,
            group_cache_hits: result.group_cache_hits,
            group_cache_misses: result.group_cache_misses,
            search_trace: result.search_trace,
            elapsed: start.elapsed().as_secs_f64(),
        })
    }

    /// Produces one deployment plan serving every model in `models` on the
    /// same shared GPU pool. `workloads[i]` is the arrival process of
    /// `models[i]`.
    ///
    /// A one-entry catalog with the default [`ModelId`]`(0)` delegates to
    /// [`Scheduler::schedule`] — the single-model path is the exact special
    /// case, plan and counters byte-identical. Otherwise the multi-tenant
    /// tabu search runs: the upper level also decides which model each group
    /// serves, and the lower level solves one transportation problem per
    /// model with traffic-share claims on the shared uplinks.
    ///
    /// # Errors
    /// Returns [`ts_common::Error::InvalidConfig`] on a malformed catalog
    /// (empty, duplicate ids, shares not summing to 1, length mismatch with
    /// `workloads`) and [`ts_common::Error::Infeasible`] when the pool
    /// cannot host two replicas of every model.
    pub fn schedule_multi(
        &self,
        cluster: &Cluster,
        models: &[ServedModel],
        workloads: &[WorkloadSpec],
    ) -> Result<MultiScheduleResult> {
        if models.len() == 1 && models[0].id == ModelId(0) {
            if workloads.len() != 1 {
                return Err(Error::InvalidConfig(format!(
                    "catalog has 1 model but {} workloads were given",
                    workloads.len()
                )));
            }
            let m = &models[0];
            let schedule = self.schedule(cluster, &m.spec, &workloads[0], &m.slo)?;
            let per_model = vec![ModelEstimate {
                model: m.id,
                estimated_attainment: schedule.estimated_attainment,
            }];
            return Ok(MultiScheduleResult {
                schedule,
                per_model,
            });
        }

        let start = std::time::Instant::now();
        let search = MultiTabuSearch::new(cluster, models, workloads, &self.cfg);
        let result = search.search()?;
        let plan = result.best.plan;
        // Per-tenant estimates: each model's slice of the shared plan is a
        // self-contained single-model plan (its groups, its routing), priced
        // under its own spec, workload and SLO.
        let mut per_model = Vec::with_capacity(models.len());
        for (m, w) in models.iter().zip(workloads) {
            let mut idxs = plan.prefill_indices_for(m.id);
            idxs.extend(plan.decode_indices_for(m.id));
            let groups: Vec<_> = idxs.into_iter().map(|gi| plan.groups[gi].clone()).collect();
            let routing = plan
                .routing_for(m.id)
                .ok_or_else(|| {
                    Error::Infeasible(format!("plan has no routing for model {}", m.id))
                })?
                .clone();
            let sub = DeploymentPlan::new(groups, routing)?;
            let sc = sim_config(&m.spec, &self.cfg);
            let est = estimate_attainment(cluster, &sub, &sc, w, &m.slo)?;
            per_model.push(ModelEstimate {
                model: m.id,
                estimated_attainment: est.overall,
            });
        }
        Ok(MultiScheduleResult {
            schedule: ScheduleResult {
                plan,
                estimated_attainment: result.best.score,
                trajectory: result.trajectory,
                evaluations: result.evaluations,
                neighbors_generated: result.neighbors_generated,
                group_cache_hits: result.group_cache_hits,
                group_cache_misses: result.group_cache_misses,
                search_trace: result.search_trace,
                elapsed: start.elapsed().as_secs_f64(),
            },
            per_model,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_cluster::presets;
    use ts_common::{Phase, SimDuration};
    use ts_workload::spec;

    fn slo() -> SloSpec {
        // Calibrated to LLaMA-30B on cloud-class GPUs (the paper scales SLOs
        // to multiples of reference execution latency).
        SloSpec::new(
            SimDuration::from_secs(5),
            SimDuration::from_millis(300),
            SimDuration::from_secs(60),
        )
    }

    #[test]
    fn schedule_multi_single_default_model_delegates_to_schedule() {
        let cluster = presets::a5000_cluster(8);
        let model = ModelSpec::llama_13b();
        let w = spec::coding(2.0);
        let mut cfg = SchedulerConfig::fast();
        cfg.seed = 5;
        let s = Scheduler::new(cfg);
        let single = s.schedule(&cluster, &model, &w, &slo()).unwrap();
        let catalog = vec![ServedModel::single(model.clone(), slo())];
        let multi = s
            .schedule_multi(&cluster, &catalog, std::slice::from_ref(&w))
            .unwrap();
        assert_eq!(single.plan, multi.schedule.plan);
        assert_eq!(
            single.estimated_attainment,
            multi.schedule.estimated_attainment
        );
        assert_eq!(single.evaluations, multi.schedule.evaluations);
        assert!(!multi.schedule.plan.is_multi_model());
        assert_eq!(
            multi.per_model,
            vec![ModelEstimate {
                model: ModelId(0),
                estimated_attainment: single.estimated_attainment,
            }]
        );
    }

    #[test]
    fn schedule_multi_places_two_tenants_on_one_pool() {
        let cluster = presets::a5000_cluster(12);
        let catalog = vec![
            ServedModel::llama_7b_chat(ModelId(1), 0.6).unwrap(),
            ServedModel::llama_13b_chat(ModelId(2), 0.4).unwrap(),
        ];
        let workloads = vec![spec::conversation(2.0), spec::coding(1.0)];
        let mut cfg = SchedulerConfig::fast();
        cfg.seed = 7;
        let s = Scheduler::new(cfg);
        let r = s.schedule_multi(&cluster, &catalog, &workloads).unwrap();
        assert!(r.schedule.plan.is_multi_model());
        assert_eq!(r.per_model.len(), 2);
        for (est, m) in r.per_model.iter().zip(&catalog) {
            assert_eq!(est.model, m.id);
            assert!(
                (0.0..=1.0).contains(&est.estimated_attainment),
                "attainment {} for {}",
                est.estimated_attainment,
                est.model
            );
        }
        // The share-weighted per-model estimates bound the search objective
        // from above: the objective counts unserved mass as missed, while
        // the per-model estimate prices the (rescaled) routed traffic.
        let weighted: f64 = r
            .per_model
            .iter()
            .zip(&catalog)
            .map(|(e, m)| m.traffic_share * e.estimated_attainment)
            .sum();
        assert!(
            weighted + 1e-6 >= r.schedule.estimated_attainment,
            "weighted {} vs objective {}",
            weighted,
            r.schedule.estimated_attainment
        );
    }

    #[test]
    fn coding_workload_prefers_prefill_replicas() {
        // The paper's Table 3 shape: the coding workload (long prompts,
        // short outputs) gets at least as many prefill as decode replicas;
        // conversation skews toward decode.
        let cluster = presets::paper_cloud_cluster();
        let model = ModelSpec::llama_30b();
        let mut cfg = SchedulerConfig::default();
        cfg.n_step = 60;
        cfg.seed = 11;
        let s = Scheduler::new(cfg);
        let coding = s
            .schedule(&cluster, &model, &spec::coding(3.0), &slo())
            .unwrap();
        let conv = s
            .schedule(&cluster, &model, &spec::conversation(3.0), &slo())
            .unwrap();
        let (cp, cd) = coding.plan.phase_ratio();
        let (vp, vd) = conv.plan.phase_ratio();
        assert!(cp > cd, "coding should have more prefill groups: {cp}:{cd}");
        let coding_ratio = cp as f64 / cd as f64;
        let conv_ratio = vp as f64 / vd as f64;
        assert!(
            coding_ratio >= conv_ratio,
            "coding prefill:decode ratio {cp}:{cd} should be >= conversation {vp}:{vd}"
        );
    }

    #[test]
    fn cloud_plan_hosts_many_replicas() {
        // §5.3: the 32-GPU cloud rig hosts far more replicas than the 4 the
        // A100 box can.
        let cluster = presets::paper_cloud_cluster();
        let model = ModelSpec::llama_30b();
        let mut cfg = SchedulerConfig::default();
        cfg.n_step = 60;
        cfg.seed = 13;
        let s = Scheduler::new(cfg);
        let r = s
            .schedule(&cluster, &model, &spec::coding(3.0), &slo())
            .unwrap();
        assert!(
            r.plan.groups.len() >= 6,
            "expected many replicas, got {}",
            r.plan.groups.len()
        );
        assert!(r.plan.num_gpus() <= 32);
    }

    #[test]
    fn prefill_groups_favor_compute_decode_groups_favor_bandwidth() {
        // §5.3: A40s (compute-rich) should mostly prefill; 3090Ti
        // (bandwidth-rich) should mostly decode.
        let cluster = presets::paper_cloud_cluster();
        let model = ModelSpec::llama_30b();
        let mut cfg = SchedulerConfig::default();
        cfg.n_step = 60;
        cfg.seed = 17;
        let s = Scheduler::new(cfg);
        let r = s
            .schedule(&cluster, &model, &spec::coding(3.0), &slo())
            .unwrap();
        let mut a40_prefill = 0usize;
        let mut a40_total = 0usize;
        for g in &r.plan.groups {
            for gpu in g.gpus() {
                if cluster.gpu(gpu).model == ts_cluster::GpuModel::A40 {
                    a40_total += 1;
                    if g.phase == Phase::Prefill {
                        a40_prefill += 1;
                    }
                }
            }
        }
        assert!(a40_total > 0);
        assert!(
            a40_prefill * 2 >= a40_total,
            "most A40s should prefill: {a40_prefill}/{a40_total}"
        );
    }
}
