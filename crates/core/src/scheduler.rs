//! The top-level scheduler facade.

use crate::config::SchedulerConfig;
use crate::tabu::{TabuSearch, TracePoint};
use ts_cluster::Cluster;
use ts_common::{DeploymentPlan, ModelSpec, Result, SloSpec};
use ts_workload::WorkloadSpec;

/// Output of a full scheduling run.
#[derive(Debug, Clone)]
pub struct ScheduleResult {
    /// The deployment plan to instantiate.
    pub plan: DeploymentPlan,
    /// Estimated overall SLO attainment of the plan.
    pub estimated_attainment: f64,
    /// Tabu convergence trajectory (Figure 10).
    pub trajectory: Vec<TracePoint>,
    /// Lower-level evaluations performed.
    pub evaluations: usize,
    /// Total neighbours generated across all search steps.
    pub neighbors_generated: usize,
    /// Hit/miss counters of the shared parallel-configuration cache.
    pub group_cache_hits: u64,
    /// Misses of the shared parallel-configuration cache.
    pub group_cache_misses: u64,
    /// Per-step search introspection, when
    /// [`SchedulerConfig::search_trace`] is on.
    pub search_trace: Option<ts_telemetry::SearchTrace>,
    /// Wall-clock scheduling time in seconds.
    pub elapsed: f64,
}

/// The ThunderServe scheduler: wraps the two-level optimization behind a
/// single call.
#[derive(Debug, Clone, Default)]
pub struct Scheduler {
    cfg: SchedulerConfig,
}

impl Scheduler {
    /// Creates a scheduler with the given configuration.
    pub fn new(cfg: SchedulerConfig) -> Self {
        Scheduler { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SchedulerConfig {
        &self.cfg
    }

    /// Produces a deployment plan for `model` on the cluster's active GPUs
    /// under the given workload and SLO.
    ///
    /// Neighbourhood evaluation runs on [`SchedulerConfig::num_threads`]
    /// workers; the result is bit-identical for every thread setting, so the
    /// knob trades wall-clock time only.
    ///
    /// # Errors
    /// Returns [`ts_common::Error::Infeasible`] if no feasible phase-split
    /// deployment exists (e.g. memory for fewer than two replicas).
    pub fn schedule(
        &self,
        cluster: &Cluster,
        model: &ModelSpec,
        workload: &WorkloadSpec,
        slo: &SloSpec,
    ) -> Result<ScheduleResult> {
        let start = std::time::Instant::now();
        let search = TabuSearch::new(cluster, model, workload, slo, &self.cfg);
        let result = search.search()?;
        Ok(ScheduleResult {
            plan: result.best.plan,
            estimated_attainment: result.best.score,
            trajectory: result.trajectory,
            evaluations: result.evaluations,
            neighbors_generated: result.neighbors_generated,
            group_cache_hits: result.group_cache_hits,
            group_cache_misses: result.group_cache_misses,
            search_trace: result.search_trace,
            elapsed: start.elapsed().as_secs_f64(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_cluster::presets;
    use ts_common::{Phase, SimDuration};
    use ts_workload::spec;

    fn slo() -> SloSpec {
        // Calibrated to LLaMA-30B on cloud-class GPUs (the paper scales SLOs
        // to multiples of reference execution latency).
        SloSpec::new(
            SimDuration::from_secs(5),
            SimDuration::from_millis(300),
            SimDuration::from_secs(60),
        )
    }

    #[test]
    fn coding_workload_prefers_prefill_replicas() {
        // The paper's Table 3 shape: the coding workload (long prompts,
        // short outputs) gets at least as many prefill as decode replicas;
        // conversation skews toward decode.
        let cluster = presets::paper_cloud_cluster();
        let model = ModelSpec::llama_30b();
        let mut cfg = SchedulerConfig::default();
        cfg.n_step = 60;
        cfg.seed = 11;
        let s = Scheduler::new(cfg);
        let coding = s
            .schedule(&cluster, &model, &spec::coding(3.0), &slo())
            .unwrap();
        let conv = s
            .schedule(&cluster, &model, &spec::conversation(3.0), &slo())
            .unwrap();
        let (cp, cd) = coding.plan.phase_ratio();
        let (vp, vd) = conv.plan.phase_ratio();
        assert!(cp > cd, "coding should have more prefill groups: {cp}:{cd}");
        let coding_ratio = cp as f64 / cd as f64;
        let conv_ratio = vp as f64 / vd as f64;
        assert!(
            coding_ratio >= conv_ratio,
            "coding prefill:decode ratio {cp}:{cd} should be >= conversation {vp}:{vd}"
        );
    }

    #[test]
    fn cloud_plan_hosts_many_replicas() {
        // §5.3: the 32-GPU cloud rig hosts far more replicas than the 4 the
        // A100 box can.
        let cluster = presets::paper_cloud_cluster();
        let model = ModelSpec::llama_30b();
        let mut cfg = SchedulerConfig::default();
        cfg.n_step = 60;
        cfg.seed = 13;
        let s = Scheduler::new(cfg);
        let r = s
            .schedule(&cluster, &model, &spec::coding(3.0), &slo())
            .unwrap();
        assert!(
            r.plan.groups.len() >= 6,
            "expected many replicas, got {}",
            r.plan.groups.len()
        );
        assert!(r.plan.num_gpus() <= 32);
    }

    #[test]
    fn prefill_groups_favor_compute_decode_groups_favor_bandwidth() {
        // §5.3: A40s (compute-rich) should mostly prefill; 3090Ti
        // (bandwidth-rich) should mostly decode.
        let cluster = presets::paper_cloud_cluster();
        let model = ModelSpec::llama_30b();
        let mut cfg = SchedulerConfig::default();
        cfg.n_step = 60;
        cfg.seed = 17;
        let s = Scheduler::new(cfg);
        let r = s
            .schedule(&cluster, &model, &spec::coding(3.0), &slo())
            .unwrap();
        let mut a40_prefill = 0usize;
        let mut a40_total = 0usize;
        for g in &r.plan.groups {
            for gpu in g.gpus() {
                if cluster.gpu(gpu).model == ts_cluster::GpuModel::A40 {
                    a40_total += 1;
                    if g.phase == Phase::Prefill {
                        a40_prefill += 1;
                    }
                }
            }
        }
        assert!(a40_total > 0);
        assert!(
            a40_prefill * 2 >= a40_total,
            "most A40s should prefill: {a40_prefill}/{a40_total}"
        );
    }
}
