//! Scheduler configuration.

use ts_costmodel::ModelParams;
use ts_kvcache::codec::KvWirePrecision;

/// Tuning knobs for the two-level scheduler.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Tabu search steps (`N_step` in Algorithm 1).
    pub n_step: usize,
    /// Neighbours evaluated per step (`N_nghb`).
    pub n_nghb: usize,
    /// Tabu memory length (`N_mem`).
    pub n_mem: usize,
    /// RNG seed for all stochastic choices.
    pub seed: u64,
    /// Cost-model parameters.
    pub params: ModelParams,
    /// KV wire precision assumed when estimating transfer costs.
    pub kv_precision: KvWirePrecision,
    /// Maximum pipeline depth considered by Algorithm 2.
    pub max_pp: usize,
    /// Maximum tensor-parallel degree considered by Algorithm 2.
    pub max_tp: usize,
    /// Ablation switch: restrict neighbourhood construction to the flip
    /// move only (the lightweight-rescheduling move set).
    pub flip_only_moves: bool,
    /// Ablation switch: replace the hierarchical-clustering seed with a
    /// random contiguous partition.
    pub random_init: bool,
    /// Ablation switch: disable the hardware-affinity tie-breaker.
    pub disable_affinity_tiebreak: bool,
    /// Worker threads for neighbourhood evaluation in the upper-level tabu
    /// search and in lightweight rescheduling's flip-only search. `0` uses
    /// one worker per available CPU, `1` is the serial reference path, any
    /// other value is taken literally.
    ///
    /// The thread count never changes results: each step draws its whole
    /// neighbourhood from the seeded RNG up front and reduces evaluation
    /// results in neighbour-generation order, so plans, scores, trajectories
    /// and evaluation counts are bit-identical across all settings (see
    /// DESIGN.md, "Scheduler parallelism").
    pub num_threads: usize,
    /// Evaluate candidate plans under flow-level network contention: KV
    /// transfers share NIC/inter-node links max-min fairly in the simulator
    /// ([`ts_sim::config::SimConfig::network_contention`]) instead of
    /// serializing per sender. Off by default (the paper's model).
    pub network_contention: bool,
    /// Congestion factor (≥ 1) applied to analytic KV-transfer estimates
    /// ([`ts_sim::config::SimConfig::kv_congestion_factor`]); 1.0 (the
    /// default) keeps the uncongested arithmetic bit-identical.
    pub kv_congestion_factor: f64,
    /// Search introspection: when true, [`crate::tabu::TabuSearch::search`]
    /// and [`crate::reschedule::lightweight_reschedule`] record one
    /// [`ts_telemetry::SearchStep`] row per step (neighbours generated,
    /// tabu/cache/duplicate filtering, evaluations, winner score, per-step
    /// wall-clock). Off by default; the trace observes the search — plans,
    /// scores and trajectories are bit-identical either way.
    pub search_trace: bool,
}

impl Default for SchedulerConfig {
    /// The paper's defaults: `N_step = 100`, `N_nghb = 10`, `N_mem = 5`.
    fn default() -> Self {
        SchedulerConfig {
            n_step: 100,
            n_nghb: 10,
            n_mem: 5,
            seed: 0,
            params: ModelParams::default(),
            kv_precision: KvWirePrecision::DEFAULT_COMPRESSED,
            max_pp: 8,
            max_tp: 8,
            flip_only_moves: false,
            random_init: false,
            disable_affinity_tiebreak: false,
            num_threads: 0,
            network_contention: false,
            kv_congestion_factor: 1.0,
            search_trace: false,
        }
    }
}

impl SchedulerConfig {
    /// A trimmed configuration for tests and doctests (fewer steps).
    pub fn fast() -> Self {
        SchedulerConfig {
            n_step: 12,
            n_nghb: 6,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_algorithm_1() {
        let c = SchedulerConfig::default();
        assert_eq!(c.n_step, 100);
        assert_eq!(c.n_nghb, 10);
        assert_eq!(c.n_mem, 5);
    }

    #[test]
    fn fast_is_smaller() {
        let c = SchedulerConfig::fast();
        assert!(c.n_step < SchedulerConfig::default().n_step);
    }

    #[test]
    fn default_threads_is_auto() {
        assert_eq!(SchedulerConfig::default().num_threads, 0);
        assert!(ts_common::resolve_threads(SchedulerConfig::default().num_threads) >= 1);
    }

    #[test]
    fn network_knobs_default_to_the_paper_model() {
        let c = SchedulerConfig::default();
        assert!(!c.network_contention);
        assert_eq!(c.kv_congestion_factor, 1.0);
    }

    #[test]
    fn search_trace_defaults_off() {
        assert!(!SchedulerConfig::default().search_trace);
    }
}
