//! Deduction of parallel configurations (Algorithm 2 / Appendix B).
//!
//! Given a serving group's GPUs and its designated phase, enumerate the
//! feasible `(TP, PP)` layouts under the paper's cloud heuristics and pick
//! the latency-optimal one for prefill groups or the throughput-optimal one
//! for decode groups:
//!
//! 1. tensor parallelism is confined to GPUs of a single model on a single
//!    node (cloud inter-node links cannot carry all-reduce traffic);
//! 2. pipeline stages are ordered by the bitmask DP that maximizes the
//!    bottleneck inter-stage bandwidth;
//! 3. pipeline layers are partitioned proportionally to each stage's memory
//!    capacity (non-uniform partitioning for heterogeneous stages), capped
//!    by per-stage memory limits.

use crate::config::SchedulerConfig;
use std::collections::BTreeMap;
use ts_cluster::{Cluster, GpuModel};
use ts_common::{
    Error, GpuId, GroupSpec, ModelSpec, NodeId, ParallelConfig, Phase, Result, StageSpec,
};
use ts_costmodel::ReplicaCostModel;
use ts_solver::routing_dp::best_stage_order;
use ts_workload::WorkloadSpec;

/// Deduces the best parallel configuration for a group.
///
/// # Errors
/// Returns [`Error::Infeasible`] if no `(TP, PP)` layout fits the model into
/// the group's memory under the heuristics.
pub fn deduce_parallel_config(
    cluster: &Cluster,
    model: &ModelSpec,
    gpus: &[GpuId],
    phase: Phase,
    workload: &WorkloadSpec,
    cfg: &SchedulerConfig,
) -> Result<GroupSpec> {
    if gpus.is_empty() {
        return Err(Error::Infeasible("empty group".into()));
    }
    // Bucket by (node, model): TP never crosses these boundaries.
    let mut buckets: BTreeMap<(NodeId, GpuModel), Vec<GpuId>> = BTreeMap::new();
    for &g in gpus {
        let gpu = cluster.gpu(g);
        buckets.entry((gpu.node, gpu.model)).or_default().push(g);
    }
    for b in buckets.values_mut() {
        b.sort_unstable();
    }

    let mean_prompt = workload.prompt.mean().max(1.0) as u64;
    let mean_out = workload.output.mean().max(1.0) as u64;
    let ctx = mean_prompt + mean_out / 2;

    let mut best: Option<(f64, GroupSpec)> = None;
    let mut tp = 1usize;
    while tp <= cfg.max_tp && tp <= gpus.len() {
        if let Some(group) = try_config(cluster, model, &buckets, phase, tp, cfg) {
            if let Ok(rcm) = ReplicaCostModel::new(cluster, model, &group, &cfg.params) {
                let score = match phase {
                    // Latency-optimal for the compute-bound prefill phase.
                    Phase::Prefill => -rcm.prefill_latency(mean_prompt, mean_prompt).as_secs_f64(),
                    // Throughput-optimal for the bandwidth-bound decode phase.
                    Phase::Decode => {
                        let b = rcm.max_decode_batch(mean_prompt + mean_out).clamp(1, 256);
                        rcm.decode_throughput(b, ctx)
                    }
                };
                if best.as_ref().map(|(s, _)| score > *s).unwrap_or(true) {
                    best = Some((score, group));
                }
            }
        }
        tp *= 2;
    }
    best.map(|(_, g)| g).ok_or_else(|| {
        Error::Infeasible(format!(
            "no feasible parallel configuration for {} GPUs",
            gpus.len()
        ))
    })
}

/// Builds the stage layout for one TP degree, or `None` if invalid.
fn try_config(
    cluster: &Cluster,
    model: &ModelSpec,
    buckets: &BTreeMap<(NodeId, GpuModel), Vec<GpuId>>,
    phase: Phase,
    tp: usize,
    cfg: &SchedulerConfig,
) -> Option<GroupSpec> {
    // Every bucket must shard evenly into TP-sized stages.
    let mut stage_sets: Vec<Vec<GpuId>> = Vec::new();
    for bucket in buckets.values() {
        if bucket.len() % tp != 0 {
            return None;
        }
        for chunk in bucket.chunks(tp) {
            stage_sets.push(chunk.to_vec());
        }
    }
    let pp = stage_sets.len();
    if pp == 0 || pp > cfg.max_pp || pp > model.num_layers {
        return None;
    }

    // Order stages to maximize the bottleneck inter-stage link.
    if pp > 1 {
        let mut bw = vec![vec![0.0f64; pp]; pp];
        for i in 0..pp {
            for j in 0..pp {
                if i != j {
                    bw[i][j] = best_pair_bandwidth(cluster, &stage_sets[i], &stage_sets[j]);
                }
            }
        }
        let order = best_stage_order(&bw).ok()?;
        stage_sets = order.order.iter().map(|&i| stage_sets[i].clone()).collect();
    }

    // Non-uniform layer partition proportional to stage memory, capped by
    // per-stage memory limits.
    let layers = partition_layers(cluster, model, &stage_sets, cfg)?;
    let stages: Vec<StageSpec> = stage_sets
        .into_iter()
        .zip(layers)
        .map(|(gpus, layers)| StageSpec { gpus, layers })
        .collect();
    GroupSpec::new(phase, ParallelConfig::new(tp, pp).ok()?, stages).ok()
}

fn best_pair_bandwidth(cluster: &Cluster, a: &[GpuId], b: &[GpuId]) -> f64 {
    let mut best = 0.0f64;
    for &x in a {
        for &y in b {
            let bw = cluster.bandwidth(x, y);
            if bw.is_infinite() {
                return 1e15;
            }
            best = best.max(bw);
        }
    }
    best
}

/// Splits `model.num_layers` across stages proportionally to usable memory,
/// respecting per-stage caps. Returns `None` if the caps cannot hold the
/// model.
fn partition_layers(
    cluster: &Cluster,
    model: &ModelSpec,
    stage_sets: &[Vec<GpuId>],
    cfg: &SchedulerConfig,
) -> Option<Vec<usize>> {
    let total_layers = model.num_layers;
    let layer_bytes = model.layer_weight_bytes(1).max(1);
    let embed = model.weight_bytes() - model.layer_weight_bytes(total_layers);
    let n = stage_sets.len();
    // usable bytes per stage, with headroom for KV cache (keep 25% free)
    let usable: Vec<u64> = stage_sets
        .iter()
        .enumerate()
        .map(|(si, set)| {
            let mem: u64 = set
                .iter()
                .map(|&g| (cluster.gpu(g).spec().memory_bytes as f64 * cfg.params.mem_util) as u64)
                .sum();
            let embed_share = if si == 0 || si + 1 == n { embed / 2 } else { 0 };
            mem.saturating_sub(embed_share)
        })
        .collect();
    let caps: Vec<usize> = usable
        .iter()
        .map(|&u| ((u as f64 * 0.75) / layer_bytes as f64).floor() as usize)
        .collect();
    if caps.iter().sum::<usize>() < total_layers || caps.contains(&0) {
        return None;
    }
    let total_mem: u64 = usable.iter().sum();
    // proportional start, at least 1 per stage
    let mut layers: Vec<usize> = usable
        .iter()
        .map(|&u| (((u as f64 / total_mem as f64) * total_layers as f64).round() as usize).max(1))
        .collect();
    // clip to caps, then fix the sum by greedy adjustment
    for (l, &c) in layers.iter_mut().zip(&caps) {
        *l = (*l).min(c);
    }
    let mut sum: usize = layers.iter().sum();
    // too few: add to stages with most slack
    while sum < total_layers {
        let idx = layers
            .iter()
            .enumerate()
            .filter(|(i, l)| **l < caps[*i])
            .max_by_key(|(i, l)| caps[*i] - **l)
            .map(|(i, _)| i)?;
        layers[idx] += 1;
        sum += 1;
    }
    // too many: remove from stages with most layers (keep >= 1)
    while sum > total_layers {
        let idx = layers
            .iter()
            .enumerate()
            .filter(|(_, l)| **l > 1)
            .max_by_key(|(_, l)| **l)
            .map(|(i, _)| i)?;
        layers[idx] -= 1;
        sum -= 1;
    }
    Some(layers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_cluster::{presets, GpuModel};
    use ts_workload::spec;

    fn cfg() -> SchedulerConfig {
        SchedulerConfig::default()
    }

    fn ids(v: &[u32]) -> Vec<GpuId> {
        v.iter().map(|&i| GpuId(i)).collect()
    }

    #[test]
    fn a40_pair_hosts_30b_with_tp2() {
        let cluster = presets::paper_cloud_cluster();
        let m = ModelSpec::llama_30b();
        // GPUs 16..24 are the 8xA40 node.
        let g = deduce_parallel_config(
            &cluster,
            &m,
            &ids(&[16, 17]),
            Phase::Prefill,
            &spec::coding(1.0),
            &cfg(),
        )
        .unwrap();
        assert_eq!(g.parallel.tp(), 2);
        assert_eq!(g.parallel.pp(), 1);
        assert_eq!(g.total_layers(), m.num_layers);
    }

    #[test]
    fn single_a5000_cannot_host_30b() {
        let cluster = presets::paper_cloud_cluster();
        let m = ModelSpec::llama_30b();
        let err = deduce_parallel_config(
            &cluster,
            &m,
            &ids(&[8]),
            Phase::Decode,
            &spec::coding(1.0),
            &cfg(),
        );
        assert!(err.is_err());
    }

    #[test]
    fn mixed_group_uses_pipeline_not_tp_across_types() {
        // 2xA5000 (node 2: GPUs 8,9) + 2x3090Ti (node 5: GPUs 24,25): the
        // paper's mixed replica uses TP=2 within type and PP=2 across.
        let cluster = presets::paper_cloud_cluster();
        let m = ModelSpec::llama_30b();
        let g = deduce_parallel_config(
            &cluster,
            &m,
            &ids(&[8, 9, 24, 25]),
            Phase::Decode,
            &spec::conversation(1.0),
            &cfg(),
        )
        .unwrap();
        assert_eq!(g.parallel.pp(), 2, "must pipeline across types: {g:?}");
        assert_eq!(g.parallel.tp(), 2);
        // each stage single-type
        for st in &g.stages {
            let models: Vec<_> = st.gpus.iter().map(|&i| cluster.gpu(i).model).collect();
            assert!(models.windows(2).all(|w| w[0] == w[1]));
        }
    }

    #[test]
    fn layer_partition_covers_model_nonuniformly() {
        // A6000 (48GB) + A5000 (24GB) stages should get asymmetric layers.
        let cluster = presets::paper_cloud_cluster();
        let m = ModelSpec::llama_30b();
        // 2 A6000 (node0: 0,1) + 2 A5000 (node2: 8,9)
        let g = deduce_parallel_config(
            &cluster,
            &m,
            &ids(&[0, 1, 8, 9]),
            Phase::Prefill,
            &spec::coding(1.0),
            &cfg(),
        )
        .unwrap();
        assert_eq!(g.total_layers(), m.num_layers);
        if g.parallel.pp() == 2 {
            let l0 = g.stages[0].layers;
            let l1 = g.stages[1].layers;
            assert_ne!(l0, l1, "heterogeneous stages should differ in layers");
            // the A6000 stage (more memory) gets more layers
            let a6000_layers = g
                .stages
                .iter()
                .find(|s| cluster.gpu(s.gpus[0]).model == GpuModel::A6000)
                .unwrap()
                .layers;
            assert!(a6000_layers > m.num_layers / 2);
        }
    }

    #[test]
    fn prefill_prefers_tp_decode_tolerates_pp() {
        // On a 4xA40 node, prefill should use high TP for latency.
        let cluster = presets::network_case_cluster(presets::ETH_40GBPS);
        let m = ModelSpec::llama_13b();
        let g = deduce_parallel_config(
            &cluster,
            &m,
            &ids(&[0, 1, 2, 3]),
            Phase::Prefill,
            &spec::coding(1.0),
            &cfg(),
        )
        .unwrap();
        assert!(g.parallel.tp() >= 2, "prefill should shard compute: {g:?}");
    }

    #[test]
    fn empty_group_is_infeasible() {
        let cluster = presets::paper_inhouse_cluster();
        let m = ModelSpec::llama_7b();
        assert!(deduce_parallel_config(
            &cluster,
            &m,
            &[],
            Phase::Prefill,
            &spec::coding(1.0),
            &cfg()
        )
        .is_err());
    }

    #[test]
    fn group_spec_is_valid_partition_of_inputs() {
        let cluster = presets::paper_cloud_cluster();
        let m = ModelSpec::llama_30b();
        let input = ids(&[16, 17, 18, 19]);
        let g = deduce_parallel_config(
            &cluster,
            &m,
            &input,
            Phase::Decode,
            &spec::conversation(1.0),
            &cfg(),
        )
        .unwrap();
        let mut got: Vec<GpuId> = g.gpus().collect();
        got.sort_unstable();
        assert_eq!(got, input);
    }
}
