//! Orchestration of prefill and decode replicas (§3.3).
//!
//! Given resolved serving groups, estimate the SLO attainment of every
//! (prefill, decode) pair — including the alpha-beta KV transfer term of
//! Eq. (1) — then solve the capacity-bounded transportation problem to route
//! request flow, producing a complete [`DeploymentPlan`] and its estimated
//! overall attainment.

use crate::config::SchedulerConfig;
use ts_cluster::Cluster;
use ts_common::{
    DeploymentPlan, Error, GroupSpec, ModelSpec, Phase, Result, RoutingMatrix, SloSpec,
};
use ts_costmodel::ReplicaCostModel;
use ts_sim::config::SimConfig;
use ts_sim::estimate::pair_estimates;
use ts_solver::transport::solve_orchestration_with_link_budget;
use ts_workload::WorkloadSpec;

/// An orchestrated plan plus its estimated attainment.
#[derive(Debug, Clone)]
pub struct OrchestratedPlan {
    /// The complete deployment plan.
    pub plan: DeploymentPlan,
    /// Estimated overall SLO attainment (the tabu objective `f(·)`).
    pub score: f64,
}

/// Builds the routing matrix for `groups` and packages the deployment plan.
///
/// # Errors
/// Returns [`Error::Infeasible`] if either phase has no groups or any group
/// cannot hold the model; propagates solver failures.
pub fn orchestrate(
    cluster: &Cluster,
    model: &ModelSpec,
    groups: Vec<GroupSpec>,
    workload: &WorkloadSpec,
    slo: &SloSpec,
    cfg: &SchedulerConfig,
) -> Result<OrchestratedPlan> {
    orchestrate_with_link_share(cluster, model, groups, workload, slo, cfg, 1.0)
}

/// [`orchestrate`] with a fractional claim on sender uplinks.
///
/// In multi-model serving the transportation problem is solved once per model
/// over that model's own groups, but the node uplinks carrying KV transfers
/// are shared by every co-scheduled model. `link_share` scales the tiered
/// link-headroom budgets so each model only claims its fair fraction of the
/// shared fabric (its traffic share). `link_share == 1.0` reproduces the
/// single-model behaviour exactly (the budgets are multiplied by 1.0, an
/// identity in IEEE-754).
///
/// # Errors
/// Same as [`orchestrate`].
pub fn orchestrate_with_link_share(
    cluster: &Cluster,
    model: &ModelSpec,
    groups: Vec<GroupSpec>,
    workload: &WorkloadSpec,
    slo: &SloSpec,
    cfg: &SchedulerConfig,
    link_share: f64,
) -> Result<OrchestratedPlan> {
    let prefill_idx: Vec<usize> = groups
        .iter()
        .enumerate()
        .filter(|(_, g)| g.phase == Phase::Prefill)
        .map(|(i, _)| i)
        .collect();
    let decode_idx: Vec<usize> = groups
        .iter()
        .enumerate()
        .filter(|(_, g)| g.phase == Phase::Decode)
        .map(|(i, _)| i)
        .collect();
    if prefill_idx.is_empty() || decode_idx.is_empty() {
        return Err(Error::Infeasible(
            "orchestration needs both prefill and decode groups".into(),
        ));
    }

    let sim_cfg = sim_config(model, cfg);
    let prefill: Vec<ReplicaCostModel> = prefill_idx
        .iter()
        .map(|&i| ReplicaCostModel::new(cluster, model, &groups[i], &cfg.params))
        .collect::<Result<_>>()?;
    let decode: Vec<ReplicaCostModel> = decode_idx
        .iter()
        .map(|&i| ReplicaCostModel::new(cluster, model, &groups[i], &cfg.params))
        .collect::<Result<_>>()?;

    let est = pair_estimates(cluster, &sim_cfg, &prefill, &decode, workload, slo);
    // Sender-uplink budgets: each routed request costs kv_seconds of sender
    // time at workload.rate requests/second. Links want *more* headroom than
    // compute because the attainment matrix D prices transfer time but not
    // transfer queueing, and prefill completions hit the uplink in batched
    // bursts — so prefer 60% utilization, relax to 92%, and drop the
    // constraint entirely when it would strand demand (under saturation,
    // serving at link capacity beats preserving latency headroom for
    // requests that would otherwise never be served).
    let mut orch = None;
    for headroom in [Some(0.60), Some(0.92), None] {
        let cand = solve_orchestration_with_link_budget(
            &est.d,
            &est.row_cap,
            &est.col_cap,
            headroom.map(|_| est.kv_seconds.as_slice()),
            headroom
                .map(|h| h * link_share / workload.rate)
                .unwrap_or(0.0),
        )?;
        let full = cand.mass >= 0.999;
        orch = Some(cand);
        if full {
            break;
        }
    }
    let orch = orch.expect("at least one orchestration attempt ran");

    // Unserved mass counts as missed SLOs in the score.
    let score = orch.value;

    // The LP is degenerate among symmetric replicas (identical D rows/cols)
    // and returns vertex solutions that pile all mass on one of them, which
    // doubles queueing for no objective gain. Average allocations within
    // equivalence classes: feasibility and objective are preserved because
    // the constraints and costs are identical across class members.
    let mut rates_eq = orch.rates.clone();
    equalize_rows(&mut rates_eq, &est.d, &est.row_cap, &est.kv_seconds);
    equalize_cols(&mut rates_eq, &est.d, &est.col_cap);

    let routing = if orch.mass > 0.0 {
        // The dispatcher must route 100% of traffic even when capacity says
        // only `mass` of it can meet its SLO; scale the optimized allocation
        // proportionally. (Under saturation every choice overloads something;
        // keeping the LP's shape concentrates traffic on the highest-value
        // routes. The latency pathologies of near-saturated links are handled
        // upstream by the tiered link headroom, not here.)
        let scale = 1.0 / orch.mass;
        let rates: Vec<Vec<f64>> = rates_eq
            .iter()
            .map(|row| row.iter().map(|&v| v * scale).collect())
            .collect();
        RoutingMatrix::new(rates)?
    } else {
        RoutingMatrix::uniform(prefill_idx.len(), decode_idx.len())
    };

    let plan = DeploymentPlan::new(groups, routing)?;
    Ok(OrchestratedPlan { plan, score })
}

/// Averages routing rows across prefill replicas that are interchangeable:
/// identical attainment rows, capacities and KV costs.
fn equalize_rows(rates: &mut [Vec<f64>], d: &[Vec<f64>], row_cap: &[f64], kv: &[Vec<f64>]) {
    let m = rates.len();
    let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0);
    let mut assigned = vec![false; m];
    for i in 0..m {
        if assigned[i] {
            continue;
        }
        let mut class = vec![i];
        for i2 in i + 1..m {
            if assigned[i2] {
                continue;
            }
            let same = close(row_cap[i], row_cap[i2])
                && d[i].iter().zip(&d[i2]).all(|(a, b)| close(*a, *b))
                && kv[i].iter().zip(&kv[i2]).all(|(a, b)| close(*a, *b));
            if same {
                class.push(i2);
            }
        }
        if class.len() > 1 {
            let n = rates[0].len();
            for j in 0..n {
                let avg = class.iter().map(|&r| rates[r][j]).sum::<f64>() / class.len() as f64;
                for &r in &class {
                    rates[r][j] = avg;
                }
            }
        }
        for &r in &class {
            assigned[r] = true;
        }
    }
}

/// Averages routing columns across interchangeable decode replicas.
fn equalize_cols(rates: &mut [Vec<f64>], d: &[Vec<f64>], col_cap: &[f64]) {
    if rates.is_empty() {
        return;
    }
    let n = rates[0].len();
    let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0);
    let mut assigned = vec![false; n];
    for j in 0..n {
        if assigned[j] {
            continue;
        }
        let mut class = vec![j];
        for j2 in j + 1..n {
            if assigned[j2] {
                continue;
            }
            let same = close(col_cap[j], col_cap[j2]) && d.iter().all(|row| close(row[j], row[j2]));
            if same {
                class.push(j2);
            }
        }
        if class.len() > 1 {
            for row in rates.iter_mut() {
                let avg = class.iter().map(|&c| row[c]).sum::<f64>() / class.len() as f64;
                for &c in &class {
                    row[c] = avg;
                }
            }
        }
        for &c in &class {
            assigned[c] = true;
        }
    }
}

/// A tie-breaking secondary objective in [0, 1]: how well phase
/// designations match hardware affinity — compute-rich GPUs prefilling and
/// bandwidth-rich GPUs decoding (§5.3's observed behaviour). Scores on the
/// primary objective often plateau (many plans meet the SLO); this bonus
/// steers the search toward the designations the paper's finer-grained cost
/// model would pick, scaled small enough (1e-4 in the tabu objective) never
/// to override a real attainment difference.
pub fn phase_affinity(cluster: &Cluster, groups: &[GroupSpec]) -> f64 {
    let mut max_ci = 0.0f64;
    let mut max_bw = 0.0f64;
    for id in cluster.active_gpus() {
        let spec = cluster.gpu(id).spec();
        max_ci = max_ci.max(spec.compute_intensity());
        max_bw = max_bw.max(spec.mem_bandwidth);
    }
    if max_ci <= 0.0 || max_bw <= 0.0 {
        return 0.0;
    }
    let mut total = 0.0f64;
    let mut n = 0.0f64;
    for g in groups {
        for gpu in g.gpus() {
            let spec = cluster.gpu(gpu).spec();
            total += match g.phase {
                Phase::Prefill => spec.compute_intensity() / max_ci,
                Phase::Decode => spec.mem_bandwidth / max_bw,
            };
            n += 1.0;
        }
    }
    if n == 0.0 {
        0.0
    } else {
        total / n
    }
}

/// The simulator configuration implied by scheduler settings.
pub fn sim_config(model: &ModelSpec, cfg: &SchedulerConfig) -> SimConfig {
    let mut sc = SimConfig::new(model.clone());
    sc.params = cfg.params;
    sc.kv_precision = cfg.kv_precision;
    sc.network_contention = cfg.network_contention;
    sc.kv_congestion_factor = cfg.kv_congestion_factor;
    sc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::deduce_parallel_config;
    use ts_cluster::presets;
    use ts_common::{GpuId, SimDuration};
    use ts_workload::spec;

    fn slo() -> SloSpec {
        SloSpec::new(
            SimDuration::from_secs(2),
            SimDuration::from_millis(200),
            SimDuration::from_secs(30),
        )
    }

    fn ids(v: &[u32]) -> Vec<GpuId> {
        v.iter().map(|&i| GpuId(i)).collect()
    }

    #[test]
    fn sim_config_threads_network_knobs() {
        let mut cfg = SchedulerConfig::fast();
        cfg.network_contention = true;
        cfg.kv_congestion_factor = 1.25;
        let sc = sim_config(&ModelSpec::llama_13b(), &cfg);
        assert!(sc.network_contention);
        assert_eq!(sc.kv_congestion_factor, 1.25);
    }

    #[test]
    fn produces_valid_plan() {
        let cluster = presets::network_case_cluster(presets::ETH_40GBPS);
        let model = ModelSpec::llama_13b();
        let cfg = SchedulerConfig::default();
        let w = spec::coding(1.0);
        let g1 = deduce_parallel_config(
            &cluster,
            &model,
            &ids(&[0, 1, 2, 3]),
            Phase::Prefill,
            &w,
            &cfg,
        )
        .unwrap();
        let g2 = deduce_parallel_config(
            &cluster,
            &model,
            &ids(&[4, 5, 6, 7]),
            Phase::Decode,
            &w,
            &cfg,
        )
        .unwrap();
        let o = orchestrate(&cluster, &model, vec![g1, g2], &w, &slo(), &cfg).unwrap();
        assert!(o.score > 0.0 && o.score <= 1.0, "score {}", o.score);
        assert_eq!(o.plan.phase_ratio(), (1, 1));
    }

    #[test]
    fn full_link_share_is_the_identity() {
        let cluster = presets::network_case_cluster(presets::ETH_40GBPS);
        let model = ModelSpec::llama_13b();
        let cfg = SchedulerConfig::default();
        let w = spec::coding(1.0);
        let g1 = deduce_parallel_config(
            &cluster,
            &model,
            &ids(&[0, 1, 2, 3]),
            Phase::Prefill,
            &w,
            &cfg,
        )
        .unwrap();
        let g2 = deduce_parallel_config(
            &cluster,
            &model,
            &ids(&[4, 5, 6, 7]),
            Phase::Decode,
            &w,
            &cfg,
        )
        .unwrap();
        let base = orchestrate(
            &cluster,
            &model,
            vec![g1.clone(), g2.clone()],
            &w,
            &slo(),
            &cfg,
        )
        .unwrap();
        let shared =
            orchestrate_with_link_share(&cluster, &model, vec![g1, g2], &w, &slo(), &cfg, 1.0)
                .unwrap();
        assert_eq!(base.plan, shared.plan);
        assert_eq!(base.score, shared.score);
    }

    #[test]
    fn single_phase_rejected() {
        let cluster = presets::network_case_cluster(presets::ETH_40GBPS);
        let model = ModelSpec::llama_13b();
        let cfg = SchedulerConfig::default();
        let w = spec::coding(1.0);
        let g = deduce_parallel_config(
            &cluster,
            &model,
            &ids(&[0, 1, 2, 3]),
            Phase::Prefill,
            &w,
            &cfg,
        )
        .unwrap();
        assert!(orchestrate(&cluster, &model, vec![g], &w, &slo(), &cfg).is_err());
    }

    #[test]
    fn symmetric_replicas_share_load() {
        // Two identical A40-pair prefill replicas must split traffic evenly
        // instead of piling everything on one (LP vertex degeneracy).
        let cluster = presets::network_case_cluster(presets::ETH_40GBPS);
        let model = ModelSpec::llama_13b();
        let cfg = SchedulerConfig::default();
        let w = spec::coding(1.0);
        let p1 = deduce_parallel_config(&cluster, &model, &ids(&[0, 1]), Phase::Prefill, &w, &cfg)
            .unwrap();
        let p2 = deduce_parallel_config(&cluster, &model, &ids(&[2, 3]), Phase::Prefill, &w, &cfg)
            .unwrap();
        let d1 = deduce_parallel_config(
            &cluster,
            &model,
            &ids(&[4, 5, 6, 7]),
            Phase::Decode,
            &w,
            &cfg,
        )
        .unwrap();
        let o = orchestrate(&cluster, &model, vec![p1, p2, d1], &w, &slo(), &cfg).unwrap();
        let r = &o.plan.routing;
        assert!(
            (r.prefill_share(0) - 0.5).abs() < 1e-6,
            "expected even split, got {:?}",
            r.rates()
        );
    }

    #[test]
    fn routing_prefers_fast_links() {
        // Two decode replicas: one co-located with the prefill replica's
        // node island (fast link), one across a slow link. Routing should
        // favour the fast pair.
        let cluster = presets::paper_cloud_cluster();
        let model = ModelSpec::llama_30b();
        let cfg = SchedulerConfig::default();
        let w = spec::conversation(2.0);
        // prefill on A40 (node 4, GPUs 16..20); fast decode on 3090Ti node 5
        // (24..28, 40Gbps to A40); slow decode on A6000 node 0 (0..4, 2.5e9).
        let pf = deduce_parallel_config(
            &cluster,
            &model,
            &ids(&[16, 17, 18, 19]),
            Phase::Prefill,
            &w,
            &cfg,
        )
        .unwrap();
        let fast = deduce_parallel_config(
            &cluster,
            &model,
            &ids(&[24, 25, 26, 27]),
            Phase::Decode,
            &w,
            &cfg,
        )
        .unwrap();
        let slow = deduce_parallel_config(
            &cluster,
            &model,
            &ids(&[0, 1, 2, 3]),
            Phase::Decode,
            &w,
            &cfg,
        )
        .unwrap();
        let o = orchestrate(&cluster, &model, vec![pf, fast, slow], &w, &slo(), &cfg).unwrap();
        let r = &o.plan.routing;
        // column 0 is the fast 3090Ti decode replica
        assert!(
            r.decode_share(0) >= r.decode_share(1) * 0.8,
            "fast replica should carry comparable or more traffic: {:?}",
            r.rates()
        );
    }
}
