//! The capacity-bounded two-stage transportation problem (TSTP, §3.3).
//!
//! Given the SLO-attainment matrix `D[i][j]` for every (prefill `i`, decode
//! `j`) pair, find routing fractions `r[i][j] ≥ 0` maximizing
//! `Σ r_ij · D_ij` subject to
//!
//! * `Σ_ij r_ij = mass` where `mass = min(1, Σ row caps, Σ col caps)`,
//! * `Σ_j r_ij ≤ row_cap[i]` (prefill replica capacity),
//! * `Σ_i r_ij ≤ col_cap[j]` (decode replica capacity).
//!
//! The paper's formulation without capacities is degenerate (all mass on the
//! best pair); real deployments bound each replica by its throughput share,
//! so we solve the capacitated variant via the simplex solver. When demand
//! exceeds total capacity, the residual mass is unserved (and the caller's
//! SLO estimate accounts for it).

use crate::simplex::{LinearProgram, Relation};
use ts_common::{Error, Result};

/// Result of the orchestration solve.
#[derive(Debug, Clone, PartialEq)]
pub struct Orchestration {
    /// Routing fractions, `rates[i][j]` summing to [`Orchestration::mass`].
    pub rates: Vec<Vec<f64>>,
    /// Total routed fraction of the request stream (≤ 1).
    pub mass: f64,
    /// Objective value `Σ r_ij · D_ij`.
    pub value: f64,
}

/// Solves the capacity-bounded orchestration problem.
///
/// # Errors
/// Returns [`Error::InvalidConfig`] for empty/ragged inputs or negative
/// capacities, and propagates solver failures.
pub fn solve_orchestration(
    d: &[Vec<f64>],
    row_cap: &[f64],
    col_cap: &[f64],
) -> Result<Orchestration> {
    solve_orchestration_with_link_budget(d, row_cap, col_cap, None, 0.0)
}

/// Like [`solve_orchestration`], with an optional per-sender link budget:
/// when `pair_cost` is given, each row additionally satisfies
/// `Σ_j pair_cost[i][j] · r_ij ≤ row_budget` — used to keep every prefill
/// replica's KV uplink below saturation (`pair_cost` in seconds per routed
/// request, `row_budget` in sender-seconds per request of total stream).
///
/// # Errors
/// Returns [`Error::InvalidConfig`] on shape mismatches; propagates solver
/// failures.
pub fn solve_orchestration_with_link_budget(
    d: &[Vec<f64>],
    row_cap: &[f64],
    col_cap: &[f64],
    pair_cost: Option<&[Vec<f64>]>,
    row_budget: f64,
) -> Result<Orchestration> {
    let m = d.len();
    if m == 0 || d[0].is_empty() {
        return Err(Error::InvalidConfig("empty attainment matrix".into()));
    }
    let n = d[0].len();
    if d.iter().any(|r| r.len() != n) {
        return Err(Error::InvalidConfig("ragged attainment matrix".into()));
    }
    if row_cap.len() != m || col_cap.len() != n {
        return Err(Error::InvalidConfig("capacity length mismatch".into()));
    }
    if row_cap
        .iter()
        .chain(col_cap)
        .any(|&c| !c.is_finite() || c < 0.0)
    {
        return Err(Error::InvalidConfig(
            "negative or non-finite capacity".into(),
        ));
    }

    if let Some(pc) = pair_cost {
        if pc.len() != m || pc.iter().any(|r| r.len() != n) {
            return Err(Error::InvalidConfig("pair cost shape mismatch".into()));
        }
        if !row_budget.is_finite() || row_budget < 0.0 {
            return Err(Error::InvalidConfig(format!("bad row budget {row_budget}")));
        }
    }
    let total_row: f64 = row_cap.iter().sum();
    let total_col: f64 = col_cap.iter().sum();
    // Aggregate link capacity also bounds the feasible mass: sender i can
    // carry at most row_budget / min_j pair_cost[i][j] of the stream.
    let total_link: f64 = match pair_cost {
        Some(pc) => pc
            .iter()
            .map(|row| {
                let fastest = row.iter().cloned().fold(f64::INFINITY, f64::min);
                if fastest <= 1e-12 {
                    f64::INFINITY
                } else {
                    row_budget / fastest
                }
            })
            .sum(),
        None => f64::INFINITY,
    };
    let mass = 1.0f64.min(total_row).min(total_col).min(total_link);
    if mass <= 0.0 {
        return Ok(Orchestration {
            rates: vec![vec![0.0; n]; m],
            mass: 0.0,
            value: 0.0,
        });
    }

    let nv = m * n;
    let mut lp = LinearProgram::new(nv);
    let mut c = vec![0.0; nv];
    for i in 0..m {
        for j in 0..n {
            c[i * n + j] = d[i][j];
        }
    }
    lp.set_objective(c);
    // Total mass.
    lp.add_constraint(vec![1.0; nv], Relation::Eq, mass);
    // Row capacities.
    for i in 0..m {
        let mut a = vec![0.0; nv];
        for j in 0..n {
            a[i * n + j] = 1.0;
        }
        lp.add_constraint(a, Relation::Le, row_cap[i]);
    }
    // Column capacities.
    for j in 0..n {
        let mut a = vec![0.0; nv];
        for i in 0..m {
            a[i * n + j] = 1.0;
        }
        lp.add_constraint(a, Relation::Le, col_cap[j]);
    }
    // Sender link budgets.
    if let Some(pc) = pair_cost {
        for i in 0..m {
            let mut a = vec![0.0; nv];
            for j in 0..n {
                a[i * n + j] = pc[i][j];
            }
            lp.add_constraint(a, Relation::Le, row_budget);
        }
    }
    let sol = lp.solve()?;
    let mut rates = vec![vec![0.0; n]; m];
    for i in 0..m {
        for j in 0..n {
            rates[i][j] = sol.x[i * n + j].max(0.0);
        }
    }
    Ok(Orchestration {
        rates,
        mass,
        value: sol.value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_everything_to_best_pair_when_uncapacitated() {
        let d = vec![vec![0.5, 0.9], vec![0.2, 0.4]];
        let o = solve_orchestration(&d, &[1.0, 1.0], &[1.0, 1.0]).unwrap();
        assert!((o.rates[0][1] - 1.0).abs() < 1e-7);
        assert!((o.value - 0.9).abs() < 1e-7);
    }

    #[test]
    fn respects_capacities() {
        let d = vec![vec![0.9, 0.8], vec![0.7, 0.1]];
        // best pair (0,0) capped at 0.4 by the row; (0,1) also row-capped.
        let o = solve_orchestration(&d, &[0.4, 1.0], &[0.6, 1.0]).unwrap();
        let row0: f64 = o.rates[0].iter().sum();
        assert!(row0 <= 0.4 + 1e-7);
        let col0: f64 = o.rates.iter().map(|r| r[0]).sum();
        assert!(col0 <= 0.6 + 1e-7);
        let total: f64 = o.rates.iter().flatten().sum();
        assert!((total - 1.0).abs() < 1e-7);
        // optimum: 0.4 via row0 (all to col0: 0.9*0.4) then 0.2 to (1,0) and 0.4 to (1,1)?
        // greedy check: value should beat naive uniform
        assert!(o.value > 0.6);
    }

    #[test]
    fn partial_mass_when_capacity_short() {
        let d = vec![vec![1.0]];
        let o = solve_orchestration(&d, &[0.3], &[1.0]).unwrap();
        assert!((o.mass - 0.3).abs() < 1e-12);
        assert!((o.rates[0][0] - 0.3).abs() < 1e-7);
    }

    #[test]
    fn zero_capacity_serves_nothing() {
        let d = vec![vec![1.0]];
        let o = solve_orchestration(&d, &[0.0], &[1.0]).unwrap();
        assert_eq!(o.mass, 0.0);
        assert_eq!(o.value, 0.0);
    }

    #[test]
    fn matches_greedy_on_assignment_structure() {
        // With generous capacities the optimum concentrates on per-row best
        // columns; verify against a simple exhaustive check on a 2x3 case.
        let d = vec![vec![0.3, 0.6, 0.5], vec![0.8, 0.2, 0.9]];
        let o = solve_orchestration(&d, &[0.5, 0.5], &[1.0, 1.0, 1.0]).unwrap();
        // row 0 should send its 0.5 to column 1; row 1 its 0.5 to column 2.
        assert!((o.rates[0][1] - 0.5).abs() < 1e-6);
        assert!((o.rates[1][2] - 0.5).abs() < 1e-6);
        assert!((o.value - (0.5 * 0.6 + 0.5 * 0.9)).abs() < 1e-6);
    }

    #[test]
    fn link_budget_diverts_flow_from_slow_links() {
        // Pair (0,0) is best but costs 1.0 s of sender time per request;
        // with a budget of 0.5 the row must push overflow to pair (0,1)
        // (cost 0.1) despite its lower attainment.
        let d = vec![vec![0.9, 0.6]];
        let cost = vec![vec![1.0, 0.1]];
        let o = solve_orchestration_with_link_budget(&d, &[1.0], &[1.0, 1.0], Some(&cost), 0.5)
            .unwrap();
        assert!((o.rates[0][0] - 0.5 + o.rates[0][1] * 0.1 / 1.0).abs() < 0.2);
        let spent = o.rates[0][0] * 1.0 + o.rates[0][1] * 0.1;
        assert!(spent <= 0.5 + 1e-7, "budget violated: {spent}");
        let total: f64 = o.rates.iter().flatten().sum();
        assert!(
            (total - 1.0).abs() < 1e-7,
            "still serves everything via the cheap link"
        );
        assert!(o.rates[0][1] > 0.4, "overflow must use the cheap pair");
    }

    #[test]
    fn link_budget_caps_mass_when_all_links_slow() {
        let d = vec![vec![1.0]];
        let cost = vec![vec![2.0]];
        let o = solve_orchestration_with_link_budget(&d, &[1.0], &[1.0], Some(&cost), 0.5).unwrap();
        assert!((o.mass - 0.25).abs() < 1e-9, "mass {}", o.mass);
    }

    #[test]
    fn link_budget_shape_validation() {
        let d = vec![vec![1.0]];
        let bad = vec![vec![1.0, 2.0]];
        assert!(solve_orchestration_with_link_budget(&d, &[1.0], &[1.0], Some(&bad), 0.5).is_err());
        let cost = vec![vec![1.0]];
        assert!(
            solve_orchestration_with_link_budget(&d, &[1.0], &[1.0], Some(&cost), -1.0).is_err()
        );
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(solve_orchestration(&[], &[], &[]).is_err());
        let d = vec![vec![1.0], vec![1.0, 2.0]];
        assert!(solve_orchestration(&d, &[1.0, 1.0], &[1.0]).is_err());
        let d = vec![vec![1.0]];
        assert!(solve_orchestration(&d, &[-1.0], &[1.0]).is_err());
    }
}
