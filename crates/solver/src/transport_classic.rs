//! The classic balanced transportation algorithm (Northwest-Corner + MODI).
//!
//! The orchestration LP in [`crate::transport`] goes through the general
//! simplex; this module implements the dedicated textbook method the TSTP
//! literature (cited by the paper's §3.3) uses: a Northwest-Corner initial
//! basic feasible solution improved by the MODI (u–v) method with
//! stepping-stone pivots. It serves as an independent implementation to
//! cross-check the LP on balanced instances — two different algorithms
//! agreeing is the strongest correctness evidence we can generate offline.

use ts_common::{Error, Result};

/// A balanced transportation solution.
#[derive(Debug, Clone, PartialEq)]
pub struct TransportSolution {
    /// Shipment matrix `x[i][j] ≥ 0` with row sums = supply, column sums =
    /// demand.
    pub shipments: Vec<Vec<f64>>,
    /// Total cost `Σ c_ij · x_ij`.
    pub cost: f64,
}

const EPS: f64 = 1e-9;
const MAX_PIVOTS: usize = 10_000;

/// Solves the **balanced minimization** transportation problem:
/// `min Σ c_ij·x_ij` s.t. `Σ_j x_ij = supply_i`, `Σ_i x_ij = demand_j`.
///
/// # Errors
/// Returns [`Error::InvalidConfig`] for shape mismatches, negative values or
/// an unbalanced instance, and [`Error::SolverFailed`] if pivoting fails to
/// terminate (which would indicate a bug, not an input property).
pub fn solve_balanced(
    costs: &[Vec<f64>],
    supply: &[f64],
    demand: &[f64],
) -> Result<TransportSolution> {
    let m = supply.len();
    let n = demand.len();
    if m == 0 || n == 0 || costs.len() != m || costs.iter().any(|r| r.len() != n) {
        return Err(Error::InvalidConfig("transportation shape mismatch".into()));
    }
    if supply
        .iter()
        .chain(demand)
        .any(|&v| !v.is_finite() || v < 0.0)
    {
        return Err(Error::InvalidConfig(
            "negative or non-finite quantities".into(),
        ));
    }
    let total_s: f64 = supply.iter().sum();
    let total_d: f64 = demand.iter().sum();
    if (total_s - total_d).abs() > 1e-6 * total_s.max(total_d).max(1.0) {
        return Err(Error::InvalidConfig(format!(
            "unbalanced instance: supply {total_s} vs demand {total_d}"
        )));
    }

    // --- Northwest-Corner initial basic feasible solution -----------------
    let mut x = vec![vec![0.0f64; n]; m];
    let mut basis = vec![vec![false; n]; m];
    let mut s = supply.to_vec();
    let mut d = demand.to_vec();
    let (mut i, mut j) = (0usize, 0usize);
    let mut basic_count = 0usize;
    while i < m && j < n {
        let q = s[i].min(d[j]);
        x[i][j] = q;
        basis[i][j] = true;
        basic_count += 1;
        s[i] -= q;
        d[j] -= q;
        if i == m - 1 && j == n - 1 {
            break;
        }
        // Tie-break: advance only one index to keep exactly m+n-1 basics.
        if s[i] <= EPS && i < m - 1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    // Degeneracy: ensure exactly m+n-1 basic cells by adding zero basics.
    'outer: while basic_count < m + n - 1 {
        for bi in 0..m {
            for bj in 0..n {
                if !basis[bi][bj] && !creates_cycle(&basis, bi, bj, m, n) {
                    basis[bi][bj] = true;
                    basic_count += 1;
                    continue 'outer;
                }
            }
        }
        break;
    }

    // --- MODI improvement loop --------------------------------------------
    for _ in 0..MAX_PIVOTS {
        let (u, v) = potentials(costs, &basis, m, n)?;
        // most negative reduced cost
        let mut enter: Option<(usize, usize, f64)> = None;
        for ei in 0..m {
            for ej in 0..n {
                if !basis[ei][ej] {
                    let rc = costs[ei][ej] - u[ei] - v[ej];
                    if rc < -1e-9 && enter.map(|(_, _, b)| rc < b).unwrap_or(true) {
                        enter = Some((ei, ej, rc));
                    }
                }
            }
        }
        let Some((ei, ej, _)) = enter else {
            // optimal
            let cost = x
                .iter()
                .zip(costs)
                .map(|(xr, cr)| xr.iter().zip(cr).map(|(a, b)| a * b).sum::<f64>())
                .sum();
            return Ok(TransportSolution { shipments: x, cost });
        };
        // find the unique cycle through (ei, ej) alternating rows/columns
        let cycle = find_cycle(&basis, ei, ej, m, n)
            .ok_or_else(|| Error::SolverFailed("no stepping-stone cycle".into()))?;
        // minus positions are the odd indices of the cycle
        let theta = cycle
            .iter()
            .skip(1)
            .step_by(2)
            .map(|&(ci, cj)| x[ci][cj])
            .fold(f64::INFINITY, f64::min);
        let mut leave: Option<(usize, usize)> = None;
        for (k, &(ci, cj)) in cycle.iter().enumerate() {
            if k == 0 {
                x[ci][cj] += theta;
            } else if k % 2 == 1 {
                x[ci][cj] -= theta;
                if x[ci][cj] <= EPS && leave.is_none() {
                    leave = Some((ci, cj));
                }
            } else {
                x[ci][cj] += theta;
            }
        }
        basis[ei][ej] = true;
        let (li, lj) = leave.ok_or_else(|| Error::SolverFailed("no leaving cell".into()))?;
        x[li][lj] = 0.0;
        basis[li][lj] = false;
    }
    Err(Error::SolverFailed("MODI pivot limit exceeded".into()))
}

/// Solves `u_i + v_j = c_ij` over the basis tree (u[0] = 0).
fn potentials(
    costs: &[Vec<f64>],
    basis: &[Vec<bool>],
    m: usize,
    n: usize,
) -> Result<(Vec<f64>, Vec<f64>)> {
    let mut u = vec![f64::NAN; m];
    let mut v = vec![f64::NAN; n];
    u[0] = 0.0;
    // iterate to propagate (basis is a tree: m+n-1 edges)
    for _ in 0..(m + n) {
        let mut progressed = false;
        for i in 0..m {
            for j in 0..n {
                if basis[i][j] {
                    match (u[i].is_nan(), v[j].is_nan()) {
                        (false, true) => {
                            v[j] = costs[i][j] - u[i];
                            progressed = true;
                        }
                        (true, false) => {
                            u[i] = costs[i][j] - v[j];
                            progressed = true;
                        }
                        _ => {}
                    }
                }
            }
        }
        if !progressed {
            break;
        }
    }
    if u.iter().any(|x| x.is_nan()) || v.iter().any(|x| x.is_nan()) {
        return Err(Error::SolverFailed("disconnected basis tree".into()));
    }
    Ok((u, v))
}

/// Whether adding `(i, j)` to the basis would close a cycle (used to add
/// degenerate basics safely: the basis must stay a forest).
fn creates_cycle(basis: &[Vec<bool>], i: usize, j: usize, m: usize, n: usize) -> bool {
    let mut b: Vec<Vec<bool>> = basis.to_vec();
    b[i][j] = true;
    find_cycle(&b, i, j, m, n).is_some()
}

/// Finds the unique alternating row/column cycle starting and ending at
/// `(si, sj)` using only basis cells (plus the start cell itself). Returns
/// the cycle as a list of cells beginning with the start.
fn find_cycle(
    basis: &[Vec<bool>],
    si: usize,
    sj: usize,
    m: usize,
    n: usize,
) -> Option<Vec<(usize, usize)>> {
    // DFS alternating: from a cell we either move within the row (pick
    // another basic cell in the same row) or within the column, strictly
    // alternating the move kind.
    fn dfs(
        basis: &[Vec<bool>],
        start: (usize, usize),
        cur: (usize, usize),
        row_move: bool,
        path: &mut Vec<(usize, usize)>,
        m: usize,
        n: usize,
    ) -> bool {
        if row_move {
            for j in 0..n {
                if j != cur.1 && (basis[cur.0][j] || (cur.0, j) == start) {
                    if (cur.0, j) == start && path.len() >= 3 {
                        return true;
                    }
                    if (cur.0, j) != start && !path.contains(&(cur.0, j)) {
                        path.push((cur.0, j));
                        if dfs(basis, start, (cur.0, j), false, path, m, n) {
                            return true;
                        }
                        path.pop();
                    }
                }
            }
        } else {
            for i in 0..m {
                if i != cur.0 && (basis[i][cur.1] || (i, cur.1) == start) {
                    if (i, cur.1) == start && path.len() >= 3 {
                        return true;
                    }
                    if (i, cur.1) != start && !path.contains(&(i, cur.1)) {
                        path.push((i, cur.1));
                        if dfs(basis, start, (i, cur.1), true, path, m, n) {
                            return true;
                        }
                        path.pop();
                    }
                }
            }
        }
        false
    }
    let mut path = vec![(si, sj)];
    if dfs(basis, (si, sj), (si, sj), true, &mut path, m, n) {
        return Some(path);
    }
    let mut path = vec![(si, sj)];
    if dfs(basis, (si, sj), (si, sj), false, &mut path, m, n) {
        return Some(path);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::{LinearProgram, Relation};

    fn check_feasible(sol: &TransportSolution, supply: &[f64], demand: &[f64]) {
        for (i, s) in supply.iter().enumerate() {
            let row: f64 = sol.shipments[i].iter().sum();
            assert!((row - s).abs() < 1e-6, "row {i}: {row} vs {s}");
        }
        for (j, d) in demand.iter().enumerate() {
            let col: f64 = sol.shipments.iter().map(|r| r[j]).sum();
            assert!((col - d).abs() < 1e-6, "col {j}: {col} vs {d}");
        }
        assert!(sol.shipments.iter().flatten().all(|&v| v >= -1e-9));
    }

    fn simplex_cost(costs: &[Vec<f64>], supply: &[f64], demand: &[f64]) -> f64 {
        let (m, n) = (supply.len(), demand.len());
        let mut lp = LinearProgram::new(m * n);
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                c[i * n + j] = -costs[i][j]; // maximize -cost
            }
        }
        lp.set_objective(c);
        for i in 0..m {
            let mut a = vec![0.0; m * n];
            for j in 0..n {
                a[i * n + j] = 1.0;
            }
            lp.add_constraint(a, Relation::Eq, supply[i]);
        }
        for j in 0..n {
            let mut a = vec![0.0; m * n];
            for i in 0..m {
                a[i * n + j] = 1.0;
            }
            lp.add_constraint(a, Relation::Eq, demand[j]);
        }
        -lp.solve().unwrap().value
    }

    #[test]
    fn textbook_example() {
        // Classic 3x4 instance with known optimum.
        let costs = vec![
            vec![19.0, 30.0, 50.0, 10.0],
            vec![70.0, 30.0, 40.0, 60.0],
            vec![40.0, 8.0, 70.0, 20.0],
        ];
        let supply = [7.0, 9.0, 18.0];
        let demand = [5.0, 8.0, 7.0, 14.0];
        let sol = solve_balanced(&costs, &supply, &demand).unwrap();
        check_feasible(&sol, &supply, &demand);
        assert!((sol.cost - 743.0).abs() < 1e-6, "cost {}", sol.cost);
    }

    #[test]
    fn matches_simplex_on_random_instances() {
        use rand::Rng;
        for seed in 0..12u64 {
            let mut rng = ts_common::seeded_rng(seed);
            let m = rng.gen_range(2..5usize);
            let n = rng.gen_range(2..5usize);
            let costs: Vec<Vec<f64>> = (0..m)
                .map(|_| {
                    (0..n)
                        .map(|_| rng.gen_range(1.0..50.0f64).round())
                        .collect()
                })
                .collect();
            let supply: Vec<f64> = (0..m)
                .map(|_| rng.gen_range(1.0..20.0f64).round())
                .collect();
            let total: f64 = supply.iter().sum();
            // random demand split of the same total
            let mut demand: Vec<f64> = (0..n).map(|_| rng.gen_range(1.0..20.0f64)).collect();
            let dsum: f64 = demand.iter().sum();
            for d in demand.iter_mut() {
                *d = (*d / dsum * total * 1e6).round() / 1e6;
            }
            let dsum2: f64 = demand.iter().sum();
            demand[0] += total - dsum2; // exact balance
            let sol = solve_balanced(&costs, &supply, &demand).unwrap();
            check_feasible(&sol, &supply, &demand);
            let lp_cost = simplex_cost(&costs, &supply, &demand);
            assert!(
                (sol.cost - lp_cost).abs() < 1e-4,
                "seed {seed}: MODI {} vs simplex {}",
                sol.cost,
                lp_cost
            );
        }
    }

    #[test]
    fn degenerate_instance_terminates() {
        // supplies exactly matching single demands → degeneracy in NW corner
        let costs = vec![vec![4.0, 8.0], vec![9.0, 3.0]];
        let supply = [5.0, 5.0];
        let demand = [5.0, 5.0];
        let sol = solve_balanced(&costs, &supply, &demand).unwrap();
        check_feasible(&sol, &supply, &demand);
        assert!((sol.cost - 35.0).abs() < 1e-9);
    }

    #[test]
    fn single_cell() {
        let sol = solve_balanced(&[vec![7.0]], &[3.0], &[3.0]).unwrap();
        assert_eq!(sol.shipments[0][0], 3.0);
        assert!((sol.cost - 21.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_unbalanced_and_malformed() {
        assert!(solve_balanced(&[vec![1.0]], &[2.0], &[3.0]).is_err());
        assert!(solve_balanced(&[], &[], &[]).is_err());
        assert!(solve_balanced(&[vec![1.0, 2.0]], &[1.0], &[0.5]).is_err());
        assert!(solve_balanced(&[vec![1.0]], &[-1.0], &[-1.0]).is_err());
    }
}
