//! Agglomerative hierarchical clustering over a bandwidth matrix.
//!
//! The tabu search starts from serving groups produced by clustering GPUs on
//! their pairwise bandwidth (§3.2): well-connected GPUs land in the same
//! group, so the initial plan never straddles ultra-slow links. We use
//! average-linkage agglomerative clustering: repeatedly merge the two
//! clusters with the highest average inter-cluster bandwidth until `k`
//! clusters remain.

use ts_common::{Error, Result};

/// Clusters items `0..n` into `k` groups by average-linkage on `bandwidth`
/// (higher = more similar). Returns the groups, each sorted ascending, in
/// ascending order of their smallest member.
///
/// # Errors
/// Returns [`Error::InvalidConfig`] if the matrix is empty/ragged/asymmetric,
/// `k` is zero, or `k > n`.
pub fn cluster_by_bandwidth(bandwidth: &[Vec<f64>], k: usize) -> Result<Vec<Vec<usize>>> {
    let n = bandwidth.len();
    if n == 0 {
        return Err(Error::InvalidConfig("empty bandwidth matrix".into()));
    }
    if bandwidth.iter().any(|r| r.len() != n) {
        return Err(Error::InvalidConfig("ragged bandwidth matrix".into()));
    }
    for i in 0..n {
        for j in 0..n {
            let (a, b) = (bandwidth[i][j], bandwidth[j][i]);
            let symmetric =
                (a.is_infinite() && b.is_infinite()) || (a - b).abs() <= 1e-6 * a.abs().max(1.0);
            if !symmetric {
                return Err(Error::InvalidConfig(format!(
                    "asymmetric bandwidth at ({i},{j})"
                )));
            }
        }
    }
    if k == 0 || k > n {
        return Err(Error::InvalidConfig(format!("k={k} out of range 1..={n}")));
    }

    let mut clusters: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    while clusters.len() > k {
        // find pair with max average linkage
        let mut best = (0usize, 1usize, f64::NEG_INFINITY);
        for a in 0..clusters.len() {
            for b in a + 1..clusters.len() {
                let mut sum = 0.0;
                let mut cnt = 0.0;
                for &i in &clusters[a] {
                    for &j in &clusters[b] {
                        let bw = bandwidth[i][j];
                        sum += if bw.is_infinite() { 1e15 } else { bw };
                        cnt += 1.0;
                    }
                }
                let avg = sum / cnt;
                if avg > best.2 {
                    best = (a, b, avg);
                }
            }
        }
        let (a, b, _) = best;
        let merged = clusters.remove(b);
        clusters[a].extend(merged);
    }
    for c in clusters.iter_mut() {
        c.sort_unstable();
    }
    clusters.sort_by_key(|c| c[0]);
    Ok(clusters)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two fast islands {0,1} and {2,3} connected by a slow link.
    fn island_matrix() -> Vec<Vec<f64>> {
        let fast = 100.0;
        let slow = 1.0;
        let mut m = vec![vec![0.0; 4]; 4];
        for i in 0..4 {
            for j in 0..4 {
                if i == j {
                    m[i][j] = f64::INFINITY;
                } else if (i < 2) == (j < 2) {
                    m[i][j] = fast;
                } else {
                    m[i][j] = slow;
                }
            }
        }
        m
    }

    #[test]
    fn separates_islands() {
        let groups = cluster_by_bandwidth(&island_matrix(), 2).unwrap();
        assert_eq!(groups, vec![vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn k_equals_n_is_singletons() {
        let groups = cluster_by_bandwidth(&island_matrix(), 4).unwrap();
        assert_eq!(groups.len(), 4);
        assert!(groups.iter().all(|g| g.len() == 1));
    }

    #[test]
    fn k_one_merges_everything() {
        let groups = cluster_by_bandwidth(&island_matrix(), 1).unwrap();
        assert_eq!(groups, vec![vec![0, 1, 2, 3]]);
    }

    #[test]
    fn output_is_a_partition() {
        let m = island_matrix();
        for k in 1..=4 {
            let groups = cluster_by_bandwidth(&m, k).unwrap();
            let mut all: Vec<usize> = groups.iter().flatten().copied().collect();
            all.sort_unstable();
            assert_eq!(all, vec![0, 1, 2, 3], "k={k}");
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(cluster_by_bandwidth(&[], 1).is_err());
        let ragged = vec![vec![1.0], vec![1.0, 2.0]];
        assert!(cluster_by_bandwidth(&ragged, 1).is_err());
        let asym = vec![vec![0.0, 1.0], vec![2.0, 0.0]];
        assert!(cluster_by_bandwidth(&asym, 1).is_err());
        let m = island_matrix();
        assert!(cluster_by_bandwidth(&m, 0).is_err());
        assert!(cluster_by_bandwidth(&m, 5).is_err());
    }

    #[test]
    fn three_clusters_split_weakest_island() {
        // With k=3 one island must split; the two islands must not mix.
        let groups = cluster_by_bandwidth(&island_matrix(), 3).unwrap();
        for g in &groups {
            let in_first = g.iter().filter(|&&i| i < 2).count();
            assert!(in_first == 0 || in_first == g.len(), "mixed group {g:?}");
        }
    }
}
