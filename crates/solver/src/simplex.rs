//! Dense two-phase primal simplex.
//!
//! Solves `max c·x` subject to linear constraints (`≤`, `≥`, `=`) and
//! `x ≥ 0`. Designed for the small, dense programs the scheduler produces
//! (tens of variables); uses Bland's rule to guarantee termination.

use ts_common::{Error, Result};

/// Constraint relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `a·x ≤ b`
    Le,
    /// `a·x ≥ b`
    Ge,
    /// `a·x = b`
    Eq,
}

/// An LP solution.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Optimal variable assignment.
    pub x: Vec<f64>,
    /// Optimal objective value.
    pub value: f64,
}

/// A linear program under construction.
#[derive(Debug, Clone)]
pub struct LinearProgram {
    num_vars: usize,
    objective: Vec<f64>,
    rows: Vec<(Vec<f64>, Relation, f64)>,
}

const EPS: f64 = 1e-9;
const MAX_ITERS: usize = 100_000;

impl LinearProgram {
    /// Creates a program over `num_vars` non-negative variables with a zero
    /// objective.
    ///
    /// # Panics
    /// Panics if `num_vars` is zero.
    pub fn new(num_vars: usize) -> Self {
        assert!(num_vars > 0, "LP needs at least one variable");
        LinearProgram {
            num_vars,
            objective: vec![0.0; num_vars],
            rows: Vec::new(),
        }
    }

    /// Sets the maximization objective coefficients.
    ///
    /// # Panics
    /// Panics if the length does not match `num_vars`.
    pub fn set_objective(&mut self, c: Vec<f64>) {
        assert_eq!(c.len(), self.num_vars, "objective length mismatch");
        self.objective = c;
    }

    /// Adds a constraint `a·x REL b`.
    ///
    /// # Panics
    /// Panics if the coefficient length does not match `num_vars` or any
    /// value is non-finite.
    pub fn add_constraint(&mut self, a: Vec<f64>, rel: Relation, b: f64) {
        assert_eq!(a.len(), self.num_vars, "constraint length mismatch");
        assert!(
            a.iter().all(|v| v.is_finite()) && b.is_finite(),
            "non-finite constraint"
        );
        self.rows.push((a, rel, b));
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Solves the program.
    ///
    /// # Errors
    /// Returns [`Error::SolverFailed`] when the program is infeasible or
    /// unbounded.
    pub fn solve(&self) -> Result<Solution> {
        // --- Build the standard-form tableau ---------------------------------
        // Variables: original n, then one slack/surplus per inequality, then
        // one artificial per (>=, =) row. RHS normalized non-negative.
        let n = self.num_vars;
        let m = self.rows.len();
        if m == 0 {
            // Unbounded unless the objective is non-positive everywhere.
            if self.objective.iter().all(|&c| c <= EPS) {
                return Ok(Solution {
                    x: vec![0.0; n],
                    value: 0.0,
                });
            }
            return Err(Error::SolverFailed("unbounded: no constraints".into()));
        }

        let mut rows: Vec<(Vec<f64>, Relation, f64)> = self.rows.clone();
        for (a, rel, b) in rows.iter_mut() {
            if *b < 0.0 {
                for v in a.iter_mut() {
                    *v = -*v;
                }
                *b = -*b;
                *rel = match *rel {
                    Relation::Le => Relation::Ge,
                    Relation::Ge => Relation::Le,
                    Relation::Eq => Relation::Eq,
                };
            }
        }

        let num_slack = rows
            .iter()
            .filter(|(_, r, _)| matches!(r, Relation::Le | Relation::Ge))
            .count();
        let num_art = rows
            .iter()
            .filter(|(_, r, _)| matches!(r, Relation::Ge | Relation::Eq))
            .count();
        let total = n + num_slack + num_art;

        // tableau: m rows x (total + 1); last column is RHS.
        let mut t = vec![vec![0.0f64; total + 1]; m];
        let mut basis = vec![0usize; m];
        let mut slack_i = 0;
        let mut art_i = 0;
        let mut artificials = Vec::new();
        for (ri, (a, rel, b)) in rows.iter().enumerate() {
            t[ri][..n].copy_from_slice(a);
            t[ri][total] = *b;
            match rel {
                Relation::Le => {
                    t[ri][n + slack_i] = 1.0;
                    basis[ri] = n + slack_i;
                    slack_i += 1;
                }
                Relation::Ge => {
                    t[ri][n + slack_i] = -1.0;
                    slack_i += 1;
                    let col = n + num_slack + art_i;
                    t[ri][col] = 1.0;
                    basis[ri] = col;
                    artificials.push(col);
                    art_i += 1;
                }
                Relation::Eq => {
                    let col = n + num_slack + art_i;
                    t[ri][col] = 1.0;
                    basis[ri] = col;
                    artificials.push(col);
                    art_i += 1;
                }
            }
        }

        // --- Phase 1: minimize sum of artificials ----------------------------
        if num_art > 0 {
            let mut cost = vec![0.0f64; total];
            for &c in &artificials {
                cost[c] = -1.0; // maximize -(sum of artificials)
            }
            let v = run_simplex(&mut t, &mut basis, &cost, total)?;
            if v < -1e-7 {
                return Err(Error::SolverFailed(format!(
                    "infeasible: phase-1 objective {v}"
                )));
            }
            // Pivot any artificial still basic (at zero) out if possible.
            for ri in 0..m {
                if artificials.contains(&basis[ri]) {
                    if let Some(col) = (0..n + num_slack).find(|&c| t[ri][c].abs() > EPS) {
                        pivot(&mut t, &mut basis, ri, col, total);
                    }
                }
            }
        }

        // --- Phase 2: original objective (artificial columns frozen) ---------
        let mut cost = vec![0.0f64; total];
        cost[..n].copy_from_slice(&self.objective);
        // Forbid re-entry of artificials by giving them a strong penalty.
        for &c in &artificials {
            cost[c] = f64::NEG_INFINITY;
        }
        let value = run_simplex(&mut t, &mut basis, &cost, total)?;

        let mut x = vec![0.0f64; n];
        for ri in 0..m {
            if basis[ri] < n {
                x[basis[ri]] = t[ri][total];
            }
        }
        Ok(Solution { x, value })
    }
}

/// Runs simplex iterations for the given cost vector; returns the objective.
fn run_simplex(t: &mut [Vec<f64>], basis: &mut [usize], cost: &[f64], total: usize) -> Result<f64> {
    let m = t.len();
    for _ in 0..MAX_ITERS {
        // reduced costs: c_j - c_B · B^{-1} A_j  (tableau form: z_j)
        let mut entering = None;
        for j in 0..total {
            if cost[j] == f64::NEG_INFINITY {
                continue;
            }
            let mut zj = 0.0;
            for ri in 0..m {
                let cb = cost[basis[ri]];
                if cb == f64::NEG_INFINITY {
                    continue;
                }
                zj += cb * t[ri][j];
            }
            let rc = cost[j] - zj;
            if rc > EPS {
                entering = Some(j); // Bland: first improving column
                break;
            }
        }
        let Some(col) = entering else {
            // optimal
            let mut obj = 0.0;
            for ri in 0..m {
                let cb = cost[basis[ri]];
                if cb != f64::NEG_INFINITY {
                    obj += cb * t[ri][total];
                }
            }
            return Ok(obj);
        };
        // ratio test (Bland: smallest basis index tie-break)
        let mut leave: Option<usize> = None;
        let mut best = f64::INFINITY;
        for ri in 0..m {
            if t[ri][col] > EPS {
                let ratio = t[ri][total] / t[ri][col];
                if ratio < best - EPS
                    || (ratio < best + EPS && leave.map(|l| basis[ri] < basis[l]).unwrap_or(false))
                {
                    best = ratio;
                    leave = Some(ri);
                }
            }
        }
        let Some(row) = leave else {
            return Err(Error::SolverFailed("unbounded LP".into()));
        };
        pivot(t, basis, row, col, total);
    }
    Err(Error::SolverFailed("simplex iteration limit".into()))
}

fn pivot(t: &mut [Vec<f64>], basis: &mut [usize], row: usize, col: usize, total: usize) {
    let p = t[row][col];
    debug_assert!(p.abs() > EPS, "pivot on near-zero element");
    for v in t[row].iter_mut() {
        *v /= p;
    }
    for ri in 0..t.len() {
        if ri != row && t[ri][col].abs() > EPS {
            let f = t[ri][col];
            for j in 0..=total {
                t[ri][j] -= f * t[row][j];
            }
        }
    }
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "{a} vs {b}");
    }

    #[test]
    fn textbook_le_problem() {
        // max 3x+5y st x<=4, 2y<=12, 3x+2y<=18 -> 36 at (2,6)
        let mut lp = LinearProgram::new(2);
        lp.set_objective(vec![3.0, 5.0]);
        lp.add_constraint(vec![1.0, 0.0], Relation::Le, 4.0);
        lp.add_constraint(vec![0.0, 2.0], Relation::Le, 12.0);
        lp.add_constraint(vec![3.0, 2.0], Relation::Le, 18.0);
        let s = lp.solve().unwrap();
        assert_close(s.value, 36.0);
        assert_close(s.x[0], 2.0);
        assert_close(s.x[1], 6.0);
    }

    #[test]
    fn equality_constraint() {
        // max x+y st x+y = 1, x <= 0.3 -> 1.0 with x<=0.3
        let mut lp = LinearProgram::new(2);
        lp.set_objective(vec![1.0, 1.0]);
        lp.add_constraint(vec![1.0, 1.0], Relation::Eq, 1.0);
        lp.add_constraint(vec![1.0, 0.0], Relation::Le, 0.3);
        let s = lp.solve().unwrap();
        assert_close(s.value, 1.0);
        assert!(s.x[0] <= 0.3 + 1e-9);
    }

    #[test]
    fn ge_constraints() {
        // min x+2y st x+y>=3, x<=1  == max -(x+2y)
        let mut lp = LinearProgram::new(2);
        lp.set_objective(vec![-1.0, -2.0]);
        lp.add_constraint(vec![1.0, 1.0], Relation::Ge, 3.0);
        lp.add_constraint(vec![1.0, 0.0], Relation::Le, 1.0);
        let s = lp.solve().unwrap();
        assert_close(s.value, -5.0); // x=1, y=2
        assert_close(s.x[0], 1.0);
        assert_close(s.x[1], 2.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = LinearProgram::new(1);
        lp.set_objective(vec![1.0]);
        lp.add_constraint(vec![1.0], Relation::Ge, 5.0);
        lp.add_constraint(vec![1.0], Relation::Le, 1.0);
        assert!(matches!(lp.solve(), Err(Error::SolverFailed(_))));
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = LinearProgram::new(2);
        lp.set_objective(vec![1.0, 0.0]);
        lp.add_constraint(vec![0.0, 1.0], Relation::Le, 1.0);
        assert!(matches!(lp.solve(), Err(Error::SolverFailed(_))));
    }

    #[test]
    fn negative_rhs_normalized() {
        // x >= -1 written as -x <= 1; max -x st -x <= 1 ... use: max -x, x>=0
        // with constraint -x >= -2  (i.e. x <= 2)
        let mut lp = LinearProgram::new(1);
        lp.set_objective(vec![1.0]);
        lp.add_constraint(vec![-1.0], Relation::Ge, -2.0);
        let s = lp.solve().unwrap();
        assert_close(s.value, 2.0);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degeneracy: multiple constraints active at the optimum.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(vec![1.0, 1.0]);
        lp.add_constraint(vec![1.0, 0.0], Relation::Le, 1.0);
        lp.add_constraint(vec![1.0, 0.0], Relation::Le, 1.0);
        lp.add_constraint(vec![1.0, 1.0], Relation::Le, 1.0);
        let s = lp.solve().unwrap();
        assert_close(s.value, 1.0);
    }

    #[test]
    fn no_constraints_zero_objective() {
        let lp = LinearProgram::new(3);
        let s = lp.solve().unwrap();
        assert_eq!(s.x, vec![0.0; 3]);
    }

    #[test]
    fn matches_brute_force_on_grid() {
        // max 2x + 3y - z with random-ish constraints; brute force on a grid.
        let mut lp = LinearProgram::new(3);
        lp.set_objective(vec![2.0, 3.0, -1.0]);
        let cons: Vec<(Vec<f64>, Relation, f64)> = vec![
            (vec![1.0, 2.0, 1.0], Relation::Le, 10.0),
            (vec![3.0, 1.0, 0.0], Relation::Le, 12.0),
            (vec![0.0, 1.0, 4.0], Relation::Le, 8.0),
        ];
        for (a, r, b) in &cons {
            lp.add_constraint(a.clone(), *r, *b);
        }
        let s = lp.solve().unwrap();
        // grid brute force
        let mut best = f64::NEG_INFINITY;
        let step = 0.05;
        let mut x = 0.0;
        while x <= 4.0 {
            let mut y = 0.0;
            while y <= 8.0 {
                // z=0 is always optimal here (negative coefficient)
                let feasible = cons
                    .iter()
                    .all(|(a, _, b)| a[0] * x + a[1] * y <= *b + 1e-12);
                if feasible {
                    best = best.max(2.0 * x + 3.0 * y);
                }
                y += step;
            }
            x += step;
        }
        assert!(
            (s.value - best).abs() < 0.2,
            "simplex {} vs grid {}",
            s.value,
            best
        );
        assert!(
            s.value >= best - 1e-9,
            "simplex must not be worse than grid"
        );
    }
}
