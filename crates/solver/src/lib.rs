//! # ts-solver
//!
//! Optimization primitives for the ThunderServe scheduler.
//!
//! * [`simplex`] — a dense two-phase primal simplex solver for small linear
//!   programs (the orchestration LP has `m·n + m + n + 1` constraints for a
//!   handful of replicas);
//! * [`transport`] — the capacity-bounded two-stage transportation problem
//!   (TSTP, §3.3) that routes request flow across (prefill, decode) pairs;
//! * [`clustering`] — agglomerative hierarchical clustering over the
//!   inter-GPU bandwidth matrix, used to seed the tabu search (§3.2);
//! * [`routing_dp`] — the bitmask dynamic program of Appendix B that orders
//!   pipeline stages to maximize the bottleneck inter-stage bandwidth.
//!
//! # Examples
//!
//! ```
//! use ts_solver::simplex::{LinearProgram, Relation};
//!
//! // max 3x + 2y  s.t.  x + y <= 4,  x <= 2
//! let mut lp = LinearProgram::new(2);
//! lp.set_objective(vec![3.0, 2.0]);
//! lp.add_constraint(vec![1.0, 1.0], Relation::Le, 4.0);
//! lp.add_constraint(vec![1.0, 0.0], Relation::Le, 2.0);
//! let sol = lp.solve()?;
//! assert!((sol.value - 10.0).abs() < 1e-9); // x=2, y=2
//! # Ok::<(), ts_common::Error>(())
//! ```

pub mod clustering;
pub mod routing_dp;
pub mod simplex;
pub mod transport;
pub mod transport_classic;

pub use clustering::cluster_by_bandwidth;
pub use routing_dp::best_stage_order;
pub use simplex::{LinearProgram, Relation, Solution};
pub use transport::solve_orchestration;
