//! Pipeline-stage routing via bitmask dynamic programming (Appendix B).
//!
//! Given `n` candidate pipeline stages and the pairwise link bandwidth
//! between them, order the stages so that the *bottleneck* (minimum) link
//! bandwidth along the resulting chain is maximized — the dynamic program
//! the paper uses to "identify the path minimizing the cross-stage
//! communication cost". `dp[mask][last]` holds the best achievable
//! bottleneck over orderings of `mask` ending at `last`.

use ts_common::{Error, Result};

/// Maximum number of stages the O(2ⁿ·n²) DP accepts.
pub const MAX_STAGES: usize = 16;

/// Result of the routing DP.
#[derive(Debug, Clone, PartialEq)]
pub struct StageOrder {
    /// Visiting order of the stage indices.
    pub order: Vec<usize>,
    /// Bottleneck bandwidth along the chain (`f64::INFINITY` for a single
    /// stage).
    pub bottleneck: f64,
}

/// Finds the stage order with the maximum bottleneck link bandwidth.
///
/// # Errors
/// Returns [`Error::InvalidConfig`] if the matrix is empty, ragged, or has
/// more than [`MAX_STAGES`] stages.
pub fn best_stage_order(bandwidth: &[Vec<f64>]) -> Result<StageOrder> {
    let n = bandwidth.len();
    if n == 0 {
        return Err(Error::InvalidConfig("no stages".into()));
    }
    if bandwidth.iter().any(|r| r.len() != n) {
        return Err(Error::InvalidConfig("ragged bandwidth matrix".into()));
    }
    if n > MAX_STAGES {
        return Err(Error::InvalidConfig(format!(
            "{n} stages exceeds DP limit {MAX_STAGES}"
        )));
    }
    if n == 1 {
        return Ok(StageOrder {
            order: vec![0],
            bottleneck: f64::INFINITY,
        });
    }

    let full = (1usize << n) - 1;
    // dp[mask][last] = best bottleneck for a path covering mask, ending at last
    let mut dp = vec![vec![f64::NEG_INFINITY; n]; full + 1];
    let mut parent = vec![vec![usize::MAX; n]; full + 1];
    for s in 0..n {
        dp[1 << s][s] = f64::INFINITY;
    }
    for mask in 1..=full {
        for last in 0..n {
            let cur = dp[mask][last];
            if cur == f64::NEG_INFINITY || mask & (1 << last) == 0 {
                continue;
            }
            for next in 0..n {
                if mask & (1 << next) != 0 {
                    continue;
                }
                let nb = cur.min(bandwidth[last][next]);
                let nmask = mask | (1 << next);
                if nb > dp[nmask][next] {
                    dp[nmask][next] = nb;
                    parent[nmask][next] = last;
                }
            }
        }
    }
    let (mut last, mut best) = (0usize, f64::NEG_INFINITY);
    for s in 0..n {
        if dp[full][s] > best {
            best = dp[full][s];
            last = s;
        }
    }
    // reconstruct
    let mut order = Vec::with_capacity(n);
    let mut mask = full;
    let mut cur = last;
    while cur != usize::MAX {
        order.push(cur);
        let p = parent[mask][cur];
        mask &= !(1 << cur);
        cur = p;
    }
    order.reverse();
    Ok(StageOrder {
        order,
        bottleneck: best,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_stage() {
        let o = best_stage_order(&[vec![f64::INFINITY]]).unwrap();
        assert_eq!(o.order, vec![0]);
        assert!(o.bottleneck.is_infinite());
    }

    #[test]
    fn picks_fast_chain() {
        // 0-1 fast, 1-2 fast, 0-2 slow: order must be 0,1,2 (or reverse).
        let f = 100.0;
        let s = 1.0;
        let m = vec![vec![0.0, f, s], vec![f, 0.0, f], vec![s, f, 0.0]];
        let o = best_stage_order(&m).unwrap();
        assert_eq!(o.bottleneck, f);
        assert!(o.order == vec![0, 1, 2] || o.order == vec![2, 1, 0]);
    }

    #[test]
    fn matches_exhaustive_permutations() {
        // 5 stages with structured bandwidths; compare to brute force.
        let n = 5;
        let mut m = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    m[i][j] = ((i * 7 + j * 13) % 17 + 1) as f64;
                    m[j][i] = m[i][j];
                }
            }
        }
        let dp = best_stage_order(&m).unwrap();

        fn perms(items: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
            if k == items.len() {
                out.push(items.clone());
                return;
            }
            for i in k..items.len() {
                items.swap(k, i);
                perms(items, k + 1, out);
                items.swap(k, i);
            }
        }
        let mut all = Vec::new();
        perms(&mut (0..n).collect(), 0, &mut all);
        let brute = all
            .iter()
            .map(|p| {
                p.windows(2)
                    .map(|w| m[w[0]][w[1]])
                    .fold(f64::INFINITY, f64::min)
            })
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(dp.bottleneck, brute);
        // dp's own order achieves its claimed bottleneck
        let achieved = dp
            .order
            .windows(2)
            .map(|w| m[w[0]][w[1]])
            .fold(f64::INFINITY, f64::min);
        assert_eq!(achieved, dp.bottleneck);
    }

    #[test]
    fn order_is_a_permutation() {
        let m = vec![vec![1.0; 4]; 4];
        let o = best_stage_order(&m).unwrap();
        let mut sorted = o.order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn rejects_oversized_and_ragged() {
        let big = vec![vec![1.0; 17]; 17];
        assert!(best_stage_order(&big).is_err());
        let ragged = vec![vec![1.0, 2.0], vec![1.0]];
        assert!(best_stage_order(&ragged).is_err());
        assert!(best_stage_order(&[]).is_err());
    }
}
