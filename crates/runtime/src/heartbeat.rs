//! GPU/node heartbeat monitoring (Appendix E).
//!
//! The paper's scheduler reacts to "a GPU heartbeat timeout that suggests a
//! need for cluster size adjustment". [`HeartbeatMonitor`] tracks the last
//! heartbeat per node against a timeout and reports nodes that went silent,
//! which the serving runtime turns into failure handling + rescheduling.

use std::collections::HashMap;
use ts_common::{NodeId, SimDuration, SimTime};

/// Tracks per-node heartbeats and flags timeouts.
#[derive(Debug, Clone)]
pub struct HeartbeatMonitor {
    timeout: SimDuration,
    last_seen: HashMap<NodeId, SimTime>,
    reported: HashMap<NodeId, bool>,
}

impl HeartbeatMonitor {
    /// Creates a monitor that declares a node dead after `timeout` without a
    /// heartbeat.
    ///
    /// # Panics
    /// Panics if the timeout is zero.
    pub fn new(timeout: SimDuration) -> Self {
        assert!(!timeout.is_zero(), "heartbeat timeout must be positive");
        HeartbeatMonitor {
            timeout,
            last_seen: HashMap::new(),
            reported: HashMap::new(),
        }
    }

    /// Registers a node so silence counts against it from `now`. This is
    /// also the **only** path back from a reported outage: re-registering a
    /// dead node clears its flag (cloud capacity explicitly returning).
    pub fn register(&mut self, node: NodeId, now: SimTime) {
        self.last_seen.insert(node, now);
        self.reported.insert(node, false);
    }

    /// Records a heartbeat and returns whether it was accepted.
    ///
    /// Beats from unknown nodes are ignored (no implicit registration), and
    /// beats from nodes in a reported outage are ignored too: a flapping
    /// node cannot silently bounce back into the alive set on a stray beat —
    /// the control plane must re-admit it via [`HeartbeatMonitor::register`]
    /// once it considers the node healthy again.
    pub fn beat(&mut self, node: NodeId, now: SimTime) -> bool {
        if !self.last_seen.contains_key(&node) || self.is_dead(node) {
            return false;
        }
        self.last_seen.insert(node, now);
        true
    }

    /// Nodes whose last heartbeat is older than the timeout at `now`,
    /// reported **once** per outage (subsequent calls stay silent until the
    /// node beats again).
    pub fn expired(&mut self, now: SimTime) -> Vec<NodeId> {
        let mut dead: Vec<NodeId> = Vec::new();
        for (&node, &seen) in &self.last_seen {
            let silent = now.saturating_since(seen);
            if silent > self.timeout && !self.reported.get(&node).copied().unwrap_or(false) {
                dead.push(node);
            }
        }
        dead.sort_unstable();
        for n in &dead {
            self.reported.insert(*n, true);
        }
        dead
    }

    /// Stops tracking a node entirely (it left the cluster for good, e.g. a
    /// spot instance that will not return). Unknown nodes are a no-op.
    pub fn deregister(&mut self, node: NodeId) {
        self.last_seen.remove(&node);
        self.reported.remove(&node);
    }

    /// Number of nodes currently believed alive: registered and not flagged
    /// dead. Nodes in a reported outage don't count until re-registered.
    pub fn num_tracked(&self) -> usize {
        self.last_seen
            .keys()
            .filter(|n| !self.reported.get(n).copied().unwrap_or(false))
            .count()
    }

    /// Whether a node is currently flagged dead.
    pub fn is_dead(&self, node: NodeId) -> bool {
        self.reported.get(&node).copied().unwrap_or(false)
    }

    /// Whether the node is registered at all (alive **or** in a reported
    /// outage). A deregistered node is not tracked; its silence means
    /// nothing.
    pub fn is_tracked(&self, node: NodeId) -> bool {
        self.last_seen.contains_key(&node)
    }

    /// The configured heartbeat timeout.
    pub fn timeout(&self) -> SimDuration {
        self.timeout
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_micros(s * 1_000_000)
    }

    #[test]
    fn silent_node_expires_once() {
        let mut m = HeartbeatMonitor::new(SimDuration::from_secs(10));
        m.register(NodeId(0), t(0));
        m.register(NodeId(1), t(0));
        m.beat(NodeId(0), t(8));
        assert!(m.expired(t(9)).is_empty());
        assert_eq!(m.expired(t(11)), vec![NodeId(1)]);
        // second poll: already reported
        assert!(m.expired(t(12)).is_empty());
        assert!(m.is_dead(NodeId(1)));
        assert!(!m.is_dead(NodeId(0)));
    }

    #[test]
    fn dead_node_needs_explicit_reregistration() {
        let mut m = HeartbeatMonitor::new(SimDuration::from_secs(5));
        m.register(NodeId(3), t(0));
        assert_eq!(m.expired(t(6)), vec![NodeId(3)]);
        // A stray beat from the flagged node does NOT resurrect it.
        assert!(!m.beat(NodeId(3), t(7)));
        assert!(m.is_dead(NodeId(3)));
        assert_eq!(m.num_tracked(), 0);
        // Explicit re-registration is the only way back in.
        m.register(NodeId(3), t(7));
        assert!(!m.is_dead(NodeId(3)));
        assert!(m.expired(t(11)).is_empty());
        assert_eq!(m.expired(t(13)), vec![NodeId(3)]);
    }

    #[test]
    fn unknown_node_beats_are_ignored() {
        let mut m = HeartbeatMonitor::new(SimDuration::from_secs(5));
        assert!(!m.beat(NodeId(9), t(1)), "no implicit registration");
        assert_eq!(m.num_tracked(), 0);
        assert!(m.expired(t(100)).is_empty());
    }

    #[test]
    fn flapping_node_reports_once_per_admitted_outage() {
        // A node that flaps — beats, goes silent, expires, emits a stray
        // beat, is re-admitted, goes silent again — is reported exactly once
        // per outage the control plane actually admitted it for, and the
        // stray beats in between never short-circuit an outage.
        let mut m = HeartbeatMonitor::new(SimDuration::from_secs(5));
        m.register(NodeId(0), t(0));
        assert!(m.beat(NodeId(0), t(2)));
        // first outage
        assert_eq!(m.expired(t(8)), vec![NodeId(0)]);
        assert!(!m.beat(NodeId(0), t(9)), "flap: stray beat while dead");
        assert!(m.expired(t(10)).is_empty(), "still the same outage");
        assert!(m.is_dead(NodeId(0)));
        // control plane re-admits it
        m.register(NodeId(0), t(12));
        assert!(m.beat(NodeId(0), t(14)));
        assert!(m.expired(t(15)).is_empty());
        // second outage reports again
        assert_eq!(m.expired(t(20)), vec![NodeId(0)]);
        assert!(m.expired(t(25)).is_empty(), "reported once per outage");
    }

    #[test]
    fn multiple_expiries_sorted() {
        let mut m = HeartbeatMonitor::new(SimDuration::from_secs(1));
        for i in [4u32, 1, 3] {
            m.register(NodeId(i), t(0));
        }
        assert_eq!(m.expired(t(2)), vec![NodeId(1), NodeId(3), NodeId(4)]);
    }

    #[test]
    #[should_panic]
    fn zero_timeout_panics() {
        let _ = HeartbeatMonitor::new(SimDuration::ZERO);
    }

    #[test]
    fn deregister_removes_the_node() {
        let mut m = HeartbeatMonitor::new(SimDuration::from_secs(5));
        m.register(NodeId(0), t(0));
        m.register(NodeId(1), t(0));
        assert_eq!(m.num_tracked(), 2);
        m.deregister(NodeId(0));
        assert_eq!(m.num_tracked(), 1);
        // the deregistered node never expires
        assert_eq!(m.expired(t(10)), vec![NodeId(1)]);
        m.deregister(NodeId(7)); // unknown: no-op
        assert_eq!(m.expired(t(20)), Vec::<NodeId>::new());
    }

    #[test]
    fn num_tracked_excludes_dead_nodes() {
        let mut m = HeartbeatMonitor::new(SimDuration::from_secs(5));
        m.register(NodeId(0), t(0));
        m.register(NodeId(1), t(0));
        m.beat(NodeId(0), t(4));
        assert_eq!(m.expired(t(6)), vec![NodeId(1)]);
        assert_eq!(m.num_tracked(), 1);
        m.register(NodeId(1), t(7)); // re-admission counts again
        assert_eq!(m.num_tracked(), 2);
    }

    #[test]
    fn timeout_accessor_reports_config() {
        let m = HeartbeatMonitor::new(SimDuration::from_millis(750));
        assert_eq!(m.timeout(), SimDuration::from_millis(750));
    }
}
