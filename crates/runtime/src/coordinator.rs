//! A live, multi-threaded task coordinator.
//!
//! The paper's coordinator dispatches incoming requests across prefill and
//! decode replicas over a peer-to-peer network. This module implements that
//! dataflow with real threads: a dispatcher routes each request to a
//! (prefill, decode) worker pair according to the plan's routing matrix;
//! prefill workers "execute" for the cost-model duration (compressed by a
//! time scale so demos finish quickly), hand off to decode workers, and
//! completions stream back on a channel. It exists to demonstrate and test
//! the live serving path; quantitative experiments use the discrete-event
//! engine instead.

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use ts_cluster::Cluster;
use ts_common::ModelSpec;
use ts_common::{DeploymentPlan, Error, Request, Result};
use ts_costmodel::{ModelParams, ReplicaCostModel};
use ts_sim::router::StrideRouter;

/// Configuration of the live coordinator.
#[derive(Debug, Clone, Copy)]
pub struct CoordinatorConfig {
    /// Real seconds slept per simulated second of GPU work. `1e-3` makes a
    /// 2-second prefill take 2ms of wall clock.
    pub time_scale: f64,
    /// Decode batch size assumed when pacing decode work.
    pub decode_batch: u64,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            time_scale: 1e-3,
            decode_batch: 16,
        }
    }
}

/// A served request with its measured (simulated-scale) latencies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompletedRequest {
    /// The original request.
    pub request: Request,
    /// Prefill replica index that served it.
    pub prefill_replica: usize,
    /// Decode replica index that served it.
    pub decode_replica: usize,
    /// Simulated seconds from submission to first token.
    pub ttft_s: f64,
    /// Simulated seconds from submission to completion.
    pub e2e_s: f64,
}

/// Aggregate live counters.
#[derive(Debug, Default, Clone, Copy)]
struct Stats {
    dispatched: u64,
    completed: u64,
}

struct PrefillJob {
    request: Request,
    submitted: Instant,
    decode: usize,
}

struct DecodeJob {
    request: Request,
    submitted: Instant,
    prefill: usize,
    first_token: Instant,
}

/// The running coordinator. Dropping it without calling
/// [`TaskCoordinator::shutdown`] detaches the workers (they exit once their
/// channels drain).
pub struct TaskCoordinator {
    submit_tx: Option<Sender<Request>>,
    done_rx: Receiver<CompletedRequest>,
    handles: Vec<JoinHandle<()>>,
    stats: Arc<Mutex<Stats>>,
}

impl TaskCoordinator {
    /// Spawns the dispatcher and one worker thread per replica.
    ///
    /// # Errors
    /// Propagates cost-model or routing construction failures.
    pub fn start(
        cluster: &Cluster,
        model: &ModelSpec,
        plan: &DeploymentPlan,
        params: &ModelParams,
        cfg: CoordinatorConfig,
    ) -> Result<Self> {
        let prefill_models: Vec<ReplicaCostModel> = plan
            .prefill_indices()
            .iter()
            .map(|&i| ReplicaCostModel::new(cluster, model, &plan.groups[i], params))
            .collect::<Result<_>>()?;
        let decode_models: Vec<ReplicaCostModel> = plan
            .decode_indices()
            .iter()
            .map(|&i| ReplicaCostModel::new(cluster, model, &plan.groups[i], params))
            .collect::<Result<_>>()?;
        let (router, coords) = StrideRouter::from_matrix(plan.routing.rates())?;
        if cfg.time_scale <= 0.0 {
            return Err(Error::InvalidConfig("time scale must be positive".into()));
        }

        let stats = Arc::new(Mutex::new(Stats::default()));
        let (submit_tx, submit_rx) = unbounded::<Request>();
        let (done_tx, done_rx) = unbounded::<CompletedRequest>();
        let mut handles = Vec::new();

        // Decode workers.
        let mut decode_txs = Vec::new();
        for (j, dm) in decode_models.into_iter().enumerate() {
            let (tx, rx) = unbounded::<DecodeJob>();
            decode_txs.push(tx);
            let done = done_tx.clone();
            let stats = Arc::clone(&stats);
            let scale = cfg.time_scale;
            let batch = cfg.decode_batch;
            handles.push(std::thread::spawn(move || {
                while let Ok(job) = rx.recv() {
                    let steps = job.request.decode_steps() as u64;
                    let ctx = job.request.prompt_len as u64 + job.request.output_len as u64 / 2;
                    let step = dm.decode_step_latency(batch, ctx).as_secs_f64();
                    let work = step * steps as f64;
                    sleep_scaled(work, scale);
                    let now = Instant::now();
                    let out = CompletedRequest {
                        request: job.request,
                        prefill_replica: job.prefill,
                        decode_replica: j,
                        ttft_s: (job.first_token - job.submitted).as_secs_f64() / scale,
                        e2e_s: (now - job.submitted).as_secs_f64() / scale,
                    };
                    stats.lock().completed += 1;
                    if done.send(out).is_err() {
                        break;
                    }
                }
            }));
        }
        drop(done_tx);

        // Prefill workers.
        let mut prefill_txs = Vec::new();
        for (i, pm) in prefill_models.into_iter().enumerate() {
            let (tx, rx) = unbounded::<PrefillJob>();
            prefill_txs.push(tx);
            let decode_txs = decode_txs.clone();
            let scale = cfg.time_scale;
            handles.push(std::thread::spawn(move || {
                while let Ok(job) = rx.recv() {
                    let p = job.request.prompt_len as u64;
                    let work = pm.prefill_latency(p, p).as_secs_f64();
                    sleep_scaled(work, scale);
                    let first_token = Instant::now();
                    let dj = DecodeJob {
                        request: job.request,
                        submitted: job.submitted,
                        prefill: i,
                        first_token,
                    };
                    if decode_txs[job.decode].send(dj).is_err() {
                        break;
                    }
                }
            }));
        }
        drop(decode_txs);

        // Dispatcher.
        {
            let stats = Arc::clone(&stats);
            let mut router = router;
            handles.push(std::thread::spawn(move || {
                while let Ok(req) = submit_rx.recv() {
                    let (i, j) = coords[router.next()];
                    stats.lock().dispatched += 1;
                    let job = PrefillJob {
                        request: req,
                        submitted: Instant::now(),
                        decode: j,
                    };
                    if prefill_txs[i].send(job).is_err() {
                        break;
                    }
                }
            }));
        }

        Ok(TaskCoordinator {
            submit_tx: Some(submit_tx),
            done_rx,
            handles,
            stats,
        })
    }

    /// Submits a request for serving.
    ///
    /// # Errors
    /// Returns [`Error::Runtime`] if the coordinator is shutting down.
    pub fn submit(&self, req: Request) -> Result<()> {
        self.submit_tx
            .as_ref()
            .ok_or_else(|| Error::Runtime("coordinator is shut down".into()))?
            .send(req)
            .map_err(|_| Error::Runtime("dispatcher is gone".into()))
    }

    /// Non-blocking drain of finished requests.
    pub fn poll_completed(&self) -> Vec<CompletedRequest> {
        self.done_rx.try_iter().collect()
    }

    /// Number of requests dispatched / completed so far.
    pub fn counters(&self) -> (u64, u64) {
        let s = *self.stats.lock();
        (s.dispatched, s.completed)
    }

    /// Closes intake, waits for all in-flight requests, joins the workers
    /// and returns every remaining completion.
    pub fn shutdown(mut self) -> Vec<CompletedRequest> {
        self.submit_tx = None; // closes the submit channel
        let mut out = Vec::new();
        while let Ok(c) = self.done_rx.recv() {
            out.push(c);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        out
    }
}

fn sleep_scaled(sim_seconds: f64, scale: f64) {
    let real = sim_seconds * scale;
    if real > 0.0 {
        std::thread::sleep(Duration::from_secs_f64(real));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_cluster::presets;
    use ts_common::{
        GpuId, GroupSpec, ParallelConfig, Phase, RequestId, RoutingMatrix, SimTime, StageSpec,
    };

    fn plan(model: &ModelSpec) -> (ts_cluster::Cluster, DeploymentPlan) {
        let cluster = presets::network_case_cluster(presets::ETH_40GBPS);
        let group = |phase, ids: [u32; 4]| {
            GroupSpec::new(
                phase,
                ParallelConfig::new(2, 2).unwrap(),
                vec![
                    StageSpec {
                        gpus: vec![GpuId(ids[0]), GpuId(ids[1])],
                        layers: model.num_layers / 2,
                    },
                    StageSpec {
                        gpus: vec![GpuId(ids[2]), GpuId(ids[3])],
                        layers: model.num_layers - model.num_layers / 2,
                    },
                ],
            )
            .unwrap()
        };
        let plan = DeploymentPlan::new(
            vec![
                group(Phase::Prefill, [0, 1, 2, 3]),
                group(Phase::Decode, [4, 5, 6, 7]),
            ],
            RoutingMatrix::uniform(1, 1),
        )
        .unwrap();
        (cluster, plan)
    }

    #[test]
    fn serves_all_submitted_requests() {
        let model = ModelSpec::llama_13b();
        let (cluster, plan) = plan(&model);
        let coord = TaskCoordinator::start(
            &cluster,
            &model,
            &plan,
            &ModelParams::default(),
            CoordinatorConfig {
                time_scale: 1e-4,
                decode_batch: 16,
            },
        )
        .unwrap();
        for i in 0..20 {
            coord
                .submit(Request::new(RequestId(i), SimTime::ZERO, 512, 8))
                .unwrap();
        }
        let done = coord.shutdown();
        assert_eq!(done.len(), 20);
        for c in &done {
            assert!(c.ttft_s > 0.0);
            assert!(c.e2e_s >= c.ttft_s);
        }
    }

    #[test]
    fn counters_track_progress() {
        let model = ModelSpec::llama_13b();
        let (cluster, plan) = plan(&model);
        let coord = TaskCoordinator::start(
            &cluster,
            &model,
            &plan,
            &ModelParams::default(),
            CoordinatorConfig {
                time_scale: 1e-5,
                decode_batch: 16,
            },
        )
        .unwrap();
        for i in 0..5 {
            coord
                .submit(Request::new(RequestId(i), SimTime::ZERO, 128, 4))
                .unwrap();
        }
        let done = coord.shutdown();
        assert_eq!(done.len(), 5);
    }

    #[test]
    fn submit_after_shutdown_is_impossible_by_construction() {
        // shutdown consumes self, so this is a compile-time guarantee; check
        // the runtime path for a dropped dispatcher instead.
        let model = ModelSpec::llama_13b();
        let (cluster, plan) = plan(&model);
        let coord = TaskCoordinator::start(
            &cluster,
            &model,
            &plan,
            &ModelParams::default(),
            CoordinatorConfig {
                time_scale: 1e-5,
                decode_batch: 8,
            },
        )
        .unwrap();
        let done = coord.shutdown();
        assert!(done.is_empty());
    }
}
