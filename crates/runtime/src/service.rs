//! Epoch-driven online serving with rescheduling.
//!
//! A [`ServingRuntime`] owns the cluster view, the current deployment plan
//! and the workload profiler. The bench harness and examples drive it with
//! request segments and availability events; between segments it can
//! reschedule with one of three policies, reproducing the Figure 11 / Table
//! 4 experiments:
//!
//! * [`ReschedulePolicy::None`] — keep the plan, only drop dead groups;
//! * [`ReschedulePolicy::Lightweight`] — flip-only tabu + re-orchestration,
//!   zero reload (§3.4);
//! * [`ReschedulePolicy::Full`] — full two-level search plus a modeled
//!   weight-reload blackout during which arriving requests queue.

use thunderserve_core::config::SchedulerConfig;
use thunderserve_core::orchestrate::sim_config;
use thunderserve_core::reschedule::{
    full_reschedule, lightweight_reschedule, no_reschedule, RescheduleOutcome,
};
use thunderserve_core::Scheduler;
use ts_cluster::Cluster;
use ts_common::{
    DeploymentPlan, Error, GpuId, ModelSpec, Request, Result, SimDuration, SimTime, SloSpec,
};
use ts_sim::engine::Simulation;
use ts_sim::metrics::Metrics;
use ts_workload::{WorkloadProfiler, WorkloadSpec};

/// How to react to failures and workload shifts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReschedulePolicy {
    /// Keep the deployment plan as-is (prune dead groups only).
    None,
    /// Lightweight rescheduling: phase flips + re-orchestration.
    Lightweight,
    /// Full rescheduling: new plan from scratch + parameter reload blackout.
    Full,
}

/// Outcome of serving one request segment.
#[derive(Debug, Clone)]
pub struct SegmentReport {
    /// Serving metrics for the segment.
    pub metrics: Metrics,
    /// Reload blackout that applied at the start of this segment.
    pub blackout: SimDuration,
}

/// The online serving runtime.
pub struct ServingRuntime {
    cluster: Cluster,
    model: ModelSpec,
    slo: SloSpec,
    scheduler_cfg: SchedulerConfig,
    plan: Option<DeploymentPlan>,
    profiler: WorkloadProfiler,
    /// Blackout pending from the last full reschedule (consumed by the next
    /// segment).
    pending_blackout: SimDuration,
    /// Log of rescheduling outcomes for reporting (Table 4).
    pub resched_log: Vec<(ReschedulePolicy, RescheduleOutcome)>,
}

impl ServingRuntime {
    /// Creates a runtime over a snapshot of the cluster.
    pub fn new(
        cluster: Cluster,
        model: ModelSpec,
        slo: SloSpec,
        scheduler_cfg: SchedulerConfig,
    ) -> Self {
        ServingRuntime {
            cluster,
            model,
            slo,
            scheduler_cfg,
            plan: None,
            profiler: WorkloadProfiler::new(SimDuration::from_secs(300), 2.0, 30),
            pending_blackout: SimDuration::ZERO,
            resched_log: Vec::new(),
        }
    }

    /// The current plan, if deployed.
    pub fn plan(&self) -> Option<&DeploymentPlan> {
        self.plan.as_ref()
    }

    /// The runtime's cluster view.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Runs the initial scheduling and deploys the plan.
    ///
    /// # Errors
    /// Propagates scheduler failures.
    pub fn deploy(&mut self, workload: &WorkloadSpec) -> Result<()> {
        let result = Scheduler::new(self.scheduler_cfg.clone()).schedule(
            &self.cluster,
            &self.model,
            workload,
            &self.slo,
        )?;
        self.plan = Some(result.plan);
        Ok(())
    }

    /// Serves one request segment with the current plan on the current
    /// cluster. A pending reload blackout delays every request arriving
    /// before it ends (they queue at the coordinator).
    ///
    /// # Errors
    /// Returns [`Error::Runtime`] if no plan is deployed; propagates
    /// simulation errors.
    pub fn serve_segment(&mut self, requests: &[Request]) -> Result<SegmentReport> {
        let plan = self
            .plan
            .as_ref()
            .ok_or_else(|| Error::Runtime("serve_segment before deploy".into()))?;
        let blackout = std::mem::replace(&mut self.pending_blackout, SimDuration::ZERO);
        let adjusted: Vec<Request> = if blackout.is_zero() {
            requests.to_vec()
        } else {
            let resume = SimTime::ZERO + blackout;
            requests
                .iter()
                .map(|r| Request {
                    arrival: r.arrival.max(resume),
                    ..*r
                })
                .collect()
        };
        for r in requests {
            self.profiler.observe(*r);
        }
        let cfg = sim_config(&self.model, &self.scheduler_cfg);
        let mut sim = Simulation::new(&self.cluster, plan, cfg)?;
        let metrics = sim.run(&adjusted)?;
        Ok(SegmentReport { metrics, blackout })
    }

    /// Whether the profiler currently flags a workload shift.
    pub fn shift_detected(&self) -> bool {
        self.profiler.shift_detected()
    }

    /// Marks the current workload statistics as the post-schedule baseline.
    pub fn rebaseline(&mut self) {
        self.profiler.rebaseline();
    }

    /// Handles returning/new capacity: marks the GPUs active and runs a full
    /// reschedule so the new hardware joins the deployment (lightweight
    /// rescheduling cannot grow the group construction, so elasticity always
    /// pays the reload; the blackout only covers replicas whose weights must
    /// load, which the next segment models pessimistically for all).
    ///
    /// # Errors
    /// Propagates cluster and scheduling failures.
    pub fn handle_capacity_gain(
        &mut self,
        gained: &[GpuId],
        workload: &WorkloadSpec,
    ) -> Result<()> {
        self.cluster.activate_gpus(gained)?;
        self.reschedule(workload, ReschedulePolicy::Full)
    }

    /// Handles a GPU failure: marks the GPUs inactive and applies the
    /// rescheduling policy.
    ///
    /// # Errors
    /// Propagates rescheduling failures (e.g. a phase losing all replicas
    /// under [`ReschedulePolicy::None`]).
    pub fn handle_failure(
        &mut self,
        failed: &[GpuId],
        workload: &WorkloadSpec,
        policy: ReschedulePolicy,
    ) -> Result<()> {
        self.cluster.deactivate_gpus(failed)?;
        self.reschedule(workload, policy)
    }

    /// Applies a rescheduling policy to adapt the current plan to the
    /// current cluster and workload.
    ///
    /// # Errors
    /// Returns [`Error::Runtime`] if no plan is deployed; propagates
    /// rescheduling failures.
    pub fn reschedule(
        &mut self,
        workload: &WorkloadSpec,
        policy: ReschedulePolicy,
    ) -> Result<()> {
        let current = self
            .plan
            .as_ref()
            .ok_or_else(|| Error::Runtime("reschedule before deploy".into()))?;
        let outcome = match policy {
            ReschedulePolicy::None => no_reschedule(
                &self.cluster,
                &self.model,
                current,
                workload,
                &self.slo,
                &self.scheduler_cfg,
            )?,
            ReschedulePolicy::Lightweight => lightweight_reschedule(
                &self.cluster,
                &self.model,
                current,
                workload,
                &self.slo,
                &self.scheduler_cfg,
            )?,
            ReschedulePolicy::Full => full_reschedule(
                &self.cluster,
                &self.model,
                workload,
                &self.slo,
                &self.scheduler_cfg,
            )?,
        };
        self.pending_blackout = outcome.reload_time;
        self.plan = Some(outcome.plan.clone());
        self.resched_log.push((policy, outcome));
        self.rebaseline();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_cluster::presets;
    use ts_common::SloKind;
    use ts_workload::{generator::generate, spec};

    fn slo() -> SloSpec {
        SloSpec::new(
            SimDuration::from_secs(5),
            SimDuration::from_millis(300),
            SimDuration::from_secs(60),
        )
    }

    fn runtime() -> ServingRuntime {
        let mut cfg = SchedulerConfig::fast();
        cfg.seed = 31;
        ServingRuntime::new(
            presets::paper_cloud_cluster(),
            ModelSpec::llama_30b(),
            slo(),
            cfg,
        )
    }

    #[test]
    fn deploy_then_serve() {
        let mut rt = runtime();
        let w = spec::coding(2.0);
        rt.deploy(&w).unwrap();
        let reqs = generate(&w, SimDuration::from_secs(60), 1);
        let rep = rt.serve_segment(&reqs).unwrap();
        assert_eq!(rep.metrics.num_completed() + rep.metrics.num_dropped(), reqs.len());
        assert!(rep.blackout.is_zero());
    }

    #[test]
    fn serve_before_deploy_errors() {
        let mut rt = runtime();
        assert!(matches!(
            rt.serve_segment(&[]),
            Err(Error::Runtime(_))
        ));
    }

    #[test]
    fn failure_with_lightweight_keeps_serving() {
        let mut rt = runtime();
        let w = spec::coding(2.0);
        rt.deploy(&w).unwrap();
        // Fail 4 of 32 GPUs (a 3090Ti instance), as in Figure 11.
        let failed: Vec<GpuId> = (28..32).map(GpuId).collect();
        rt.handle_failure(&failed, &w, ReschedulePolicy::Lightweight)
            .unwrap();
        let reqs = generate(&w, SimDuration::from_secs(60), 2);
        let rep = rt.serve_segment(&reqs).unwrap();
        assert!(rep.blackout.is_zero(), "lightweight must not blackout");
        assert!(rep.metrics.num_completed() > 0);
        // the new plan avoids failed GPUs
        for g in &rt.plan().unwrap().groups {
            for gpu in g.gpus() {
                assert!(rt.cluster().is_active(gpu));
            }
        }
    }

    #[test]
    fn full_reschedule_incurs_blackout() {
        let mut rt = runtime();
        let w = spec::coding(2.0);
        rt.deploy(&w).unwrap();
        rt.reschedule(&w, ReschedulePolicy::Full).unwrap();
        let reqs = generate(&w, SimDuration::from_secs(60), 3);
        let rep = rt.serve_segment(&reqs).unwrap();
        assert!(
            rep.blackout.as_secs_f64() > 5.0,
            "full reschedule should blackout, got {}",
            rep.blackout
        );
        // TTFT of early requests suffers from the blackout.
        let p50 = rep.metrics.latency_percentile(SloKind::Ttft, 0.5).unwrap();
        assert!(p50 > SimDuration::from_secs(1));
    }

    #[test]
    fn lightweight_beats_none_after_shift() {
        let mut rt = runtime();
        let coding = spec::coding(2.0);
        rt.deploy(&coding).unwrap();
        let conv = spec::conversation(2.5);
        let reqs = generate(&conv, SimDuration::from_secs(120), 4);

        // Serve under the unchanged plan.
        let keep = rt.serve_segment(&reqs).unwrap();
        // Now lightweight-reschedule for the new workload and serve again.
        rt.reschedule(&conv, ReschedulePolicy::Lightweight).unwrap();
        let adapted = rt.serve_segment(&reqs).unwrap();
        let a_keep = keep.metrics.joint_attainment(&slo());
        let a_adapt = adapted.metrics.joint_attainment(&slo());
        assert!(
            a_adapt >= a_keep - 0.05,
            "adapted {a_adapt} should not be worse than kept {a_keep}"
        );
    }

    #[test]
    fn elastic_scale_up_grows_the_deployment() {
        let mut rt = runtime();
        let w = spec::coding(2.0);
        // Start degraded: two nodes down.
        rt.handle_failure(
            &(24..32).map(GpuId).collect::<Vec<_>>(),
            &w,
            ReschedulePolicy::None,
        )
        .err(); // may fail pre-deploy; ignore
        let mut cluster = presets::paper_cloud_cluster();
        cluster.deactivate_gpus(&(24..32).map(GpuId).collect::<Vec<_>>()).unwrap();
        let mut cfg = SchedulerConfig::fast();
        cfg.seed = 31;
        let mut rt = ServingRuntime::new(cluster, ModelSpec::llama_30b(), slo(), cfg);
        rt.deploy(&w).unwrap();
        let before = rt.plan().unwrap().groups.len();
        // The 3090Ti boxes come back online.
        rt.handle_capacity_gain(&(24..32).map(GpuId).collect::<Vec<_>>(), &w)
            .unwrap();
        let after = rt.plan().unwrap().groups.len();
        assert!(
            after >= before,
            "capacity gain should not shrink the deployment: {after} vs {before}"
        );
        let uses_new = rt
            .plan()
            .unwrap()
            .groups
            .iter()
            .flat_map(|g| g.gpus().collect::<Vec<_>>())
            .any(|g| g.0 >= 24);
        assert!(uses_new, "the returned GPUs should be used");
        // Full reschedule pays a reload blackout.
        assert!(!rt.resched_log.last().unwrap().1.reload_time.is_zero());
    }

    #[test]
    fn resched_log_records_outcomes() {
        let mut rt = runtime();
        let w = spec::coding(2.0);
        rt.deploy(&w).unwrap();
        rt.reschedule(&w, ReschedulePolicy::Lightweight).unwrap();
        rt.reschedule(&w, ReschedulePolicy::Full).unwrap();
        assert_eq!(rt.resched_log.len(), 2);
        assert!(rt.resched_log[0].1.reload_time.is_zero());
        assert!(!rt.resched_log[1].1.reload_time.is_zero());
    }
}
