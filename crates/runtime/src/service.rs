//! Epoch-driven online serving with rescheduling.
//!
//! A [`ServingRuntime`] owns the cluster view, the current deployment plan
//! and the workload profiler. The bench harness and examples drive it with
//! request segments and availability events; between segments it can
//! reschedule with one of three policies, reproducing the Figure 11 / Table
//! 4 experiments:
//!
//! * [`ReschedulePolicy::None`] — keep the plan, only drop dead groups;
//! * [`ReschedulePolicy::Lightweight`] — flip-only tabu + re-orchestration,
//!   zero reload (§3.4);
//! * [`ReschedulePolicy::Full`] — full two-level search plus a modeled
//!   weight-reload blackout during which arriving requests queue.
//!
//! Segments execute on `ts_sim`'s unified execution substrate: the runtime
//! drives the phase-split facade, but the identical event loop and fault
//! layer back the colocated baselines, so per-segment `RecoveryCounters`
//! are comparable across every system the experiments run.

use thunderserve_core::config::SchedulerConfig;
use thunderserve_core::orchestrate::sim_config;
use thunderserve_core::reschedule::{
    full_reschedule, lightweight_reschedule, no_reschedule, RescheduleOutcome,
};
use thunderserve_core::Scheduler;
use ts_cluster::availability::{sort_script, ClusterEvent, EventKind};
use ts_cluster::Cluster;
use ts_common::{
    DeploymentPlan, Error, GpuId, ModelSpec, NodeId, Request, Result, SimDuration, SimTime, SloSpec,
};
use ts_costmodel::replica::{ReplicaCostModel, DISK_BANDWIDTH};
use ts_sim::engine::Simulation;
use ts_sim::fault::{FaultKind, FaultScript, TimedFault};
use ts_sim::metrics::Metrics;
use ts_workload::{WorkloadProfiler, WorkloadSpec};

use crate::heartbeat::HeartbeatMonitor;

/// How to react to failures and workload shifts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReschedulePolicy {
    /// Keep the deployment plan as-is (prune dead groups only).
    None,
    /// Lightweight rescheduling: phase flips + re-orchestration.
    Lightweight,
    /// Full rescheduling: new plan from scratch + parameter reload blackout.
    Full,
}

/// Outcome of serving one request segment.
#[derive(Debug, Clone)]
pub struct SegmentReport {
    /// Serving metrics for the segment.
    pub metrics: Metrics,
    /// Reload blackout that applied at the start of this segment.
    pub blackout: SimDuration,
}

/// The online serving runtime.
pub struct ServingRuntime {
    cluster: Cluster,
    model: ModelSpec,
    slo: SloSpec,
    scheduler_cfg: SchedulerConfig,
    plan: Option<DeploymentPlan>,
    profiler: WorkloadProfiler,
    /// Blackout pending from the last full reschedule (consumed by the next
    /// segment).
    pending_blackout: SimDuration,
    /// Log of rescheduling outcomes for reporting (Table 4).
    pub resched_log: Vec<(ReschedulePolicy, RescheduleOutcome)>,
}

impl ServingRuntime {
    /// Creates a runtime over a snapshot of the cluster.
    pub fn new(
        cluster: Cluster,
        model: ModelSpec,
        slo: SloSpec,
        scheduler_cfg: SchedulerConfig,
    ) -> Self {
        ServingRuntime {
            cluster,
            model,
            slo,
            scheduler_cfg,
            plan: None,
            profiler: WorkloadProfiler::new(SimDuration::from_secs(300), 2.0, 30),
            pending_blackout: SimDuration::ZERO,
            resched_log: Vec::new(),
        }
    }

    /// The current plan, if deployed.
    pub fn plan(&self) -> Option<&DeploymentPlan> {
        self.plan.as_ref()
    }

    /// The runtime's cluster view.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Runs the initial scheduling and deploys the plan.
    ///
    /// # Errors
    /// Propagates scheduler failures.
    pub fn deploy(&mut self, workload: &WorkloadSpec) -> Result<()> {
        let result = Scheduler::new(self.scheduler_cfg.clone()).schedule(
            &self.cluster,
            &self.model,
            workload,
            &self.slo,
        )?;
        self.plan = Some(result.plan);
        Ok(())
    }

    /// Serves one request segment with the current plan on the current
    /// cluster. A pending reload blackout delays every request arriving
    /// before it ends (they queue at the coordinator).
    ///
    /// # Errors
    /// Returns [`Error::Runtime`] if no plan is deployed; propagates
    /// simulation errors.
    pub fn serve_segment(&mut self, requests: &[Request]) -> Result<SegmentReport> {
        let plan = self
            .plan
            .as_ref()
            .ok_or_else(|| Error::Runtime("serve_segment before deploy".into()))?;
        let blackout = std::mem::replace(&mut self.pending_blackout, SimDuration::ZERO);
        let adjusted = shift_for_blackout(requests, blackout);
        for r in requests {
            self.profiler.observe(*r);
        }
        let cfg = sim_config(&self.model, &self.scheduler_cfg);
        let mut sim = Simulation::new(&self.cluster, plan, cfg)?;
        let metrics = sim.run(&adjusted)?;
        Ok(SegmentReport { metrics, blackout })
    }

    /// Serves one segment while availability `events` strike **mid-flight**:
    /// the events are projected onto the current plan's replicas
    /// ([`FaultScript::from_cluster_events`]) and injected into the engine,
    /// so in-flight requests on failed replicas are re-routed/re-prefilled
    /// (or lost, under [`ReschedulePolicy::None`]) as the run progresses.
    ///
    /// `heartbeat_timeout` is the [`HeartbeatMonitor`] timeout: a replica
    /// lost at `t` is only acted on at `t + heartbeat_timeout`. Under
    /// [`ReschedulePolicy::Full`] the first detected failure additionally
    /// pauses the whole service for the modeled weight-reload time — the
    /// mid-segment equivalent of the between-segment reload blackout.
    ///
    /// After the segment, the events are applied to the runtime's cluster
    /// view and the policy's reschedule is run for subsequent segments —
    /// unless the outage was a node blip shorter than the heartbeat timeout
    /// (never detected, nothing to react to). A full reschedule triggered
    /// this way carries no *additional* pending blackout: the reload was
    /// already paid in-flight as the pause.
    ///
    /// # Errors
    /// Returns [`Error::Runtime`] if no plan is deployed; propagates
    /// simulation, event-application and rescheduling failures (except under
    /// `None`, where an infeasible prune keeps the old plan — the dead
    /// replicas simply stop answering).
    pub fn serve_segment_with_faults(
        &mut self,
        requests: &[Request],
        events: &[ClusterEvent],
        policy: ReschedulePolicy,
        workload: &WorkloadSpec,
        heartbeat_timeout: SimDuration,
    ) -> Result<SegmentReport> {
        let plan = self
            .plan
            .as_ref()
            .ok_or_else(|| Error::Runtime("serve_segment_with_faults before deploy".into()))?;
        let blackout = std::mem::replace(&mut self.pending_blackout, SimDuration::ZERO);
        let adjusted = shift_for_blackout(requests, blackout);
        for r in requests {
            self.profiler.observe(*r);
        }

        let mut script =
            FaultScript::from_cluster_events(&self.cluster, plan, events, heartbeat_timeout);
        if policy == ReschedulePolicy::None {
            script = script.without_recovery();
        }
        // Full rescheduling mid-segment reloads weights: pause the service
        // from the first detection until the reload completes.
        let mut paused_mid_flight = false;
        if policy == ReschedulePolicy::Full {
            let first_down = script
                .faults
                .iter()
                .find(|f| matches!(f.kind, FaultKind::PrefillDown(_) | FaultKind::DecodeDown(_)));
            if let Some(f) = first_down {
                let reload = plan
                    .groups
                    .iter()
                    .filter_map(|g| {
                        ReplicaCostModel::new(
                            &self.cluster,
                            &self.model,
                            g,
                            &self.scheduler_cfg.params,
                        )
                        .ok()
                    })
                    .map(|rcm| rcm.weight_load_time(DISK_BANDWIDTH))
                    .max()
                    .unwrap_or(SimDuration::ZERO);
                let detect = f.at + heartbeat_timeout;
                script.faults.push(TimedFault {
                    at: detect,
                    kind: FaultKind::Pause {
                        until: detect + reload,
                    },
                });
                script.faults.sort_by_key(|f| f.at);
                paused_mid_flight = true;
            }
        }

        let cfg = sim_config(&self.model, &self.scheduler_cfg);
        let mut sim = Simulation::new(&self.cluster, plan, cfg)?;
        let metrics = sim.run_with_faults(&adjusted, &script)?;

        // Replay node-level events through a heartbeat monitor to decide
        // what the coordinator actually *detected*: healthy nodes beat at
        // every event time, silent ones expire one timeout later. A blip
        // shorter than the timeout is never seen. GPU-level events come from
        // explicit device errors and are always known.
        let mut sorted = events.to_vec();
        sort_script(&mut sorted);
        let nodes: Vec<NodeId> = (0..self.cluster.num_nodes())
            .map(|i| NodeId(i as u32))
            .collect();
        let mut monitor = HeartbeatMonitor::new(heartbeat_timeout);
        for &n in &nodes {
            monitor.register(n, SimTime::ZERO);
        }
        let mut silent: Vec<NodeId> = Vec::new();
        let mut gpu_level_change = false;
        let mut detected = false;
        for ev in &sorted {
            for &n in &nodes {
                if !silent.contains(&n) {
                    monitor.beat(n, ev.at);
                }
            }
            detected |= !monitor.expired(ev.at).is_empty();
            match &ev.kind {
                EventKind::NodeDown(n) => silent.push(*n),
                EventKind::NodeUp(n) => {
                    silent.retain(|m| m != n);
                    // Returning capacity is an explicit control-plane event:
                    // re-register rather than beat, since a beat alone can no
                    // longer resurrect a node flagged dead.
                    monitor.register(*n, ev.at);
                }
                EventKind::GpusDown(_) | EventKind::GpusUp(_) => gpu_level_change = true,
                // Gray degradations leave the availability mask (and thus
                // the plan's feasibility) untouched: no reschedule trigger.
                EventKind::NodeSlow(..)
                | EventKind::LinkDegraded(..)
                | EventKind::HeartbeatFlaky(..) => {}
            }
        }
        if let Some(last) = sorted.last() {
            let horizon = last.at + heartbeat_timeout + SimDuration::from_micros(1);
            for &n in &nodes {
                if !silent.contains(&n) {
                    monitor.beat(n, horizon);
                }
            }
            detected |= !monitor.expired(horizon).is_empty();
        }

        for ev in &sorted {
            ev.apply(&mut self.cluster)?;
        }
        if detected || gpu_level_change {
            match self.reschedule(workload, policy) {
                // Under `None` a phase may have lost every replica, making
                // even the prune infeasible; the old plan stays and the dead
                // replicas just stop answering.
                Err(_) if policy == ReschedulePolicy::None => {}
                other => other?,
            }
            if paused_mid_flight {
                // The reload was served in-flight as the pause; don't charge
                // the next segment again.
                self.pending_blackout = SimDuration::ZERO;
            }
        }
        Ok(SegmentReport { metrics, blackout })
    }

    /// Whether the profiler currently flags a workload shift.
    pub fn shift_detected(&self) -> bool {
        self.profiler.shift_detected()
    }

    /// Marks the current workload statistics as the post-schedule baseline.
    pub fn rebaseline(&mut self) {
        self.profiler.rebaseline();
    }

    /// Handles returning/new capacity: marks the GPUs active and runs a full
    /// reschedule so the new hardware joins the deployment (lightweight
    /// rescheduling cannot grow the group construction, so elasticity always
    /// pays the reload; the blackout only covers replicas whose weights must
    /// load, which the next segment models pessimistically for all).
    ///
    /// # Errors
    /// Propagates cluster and scheduling failures.
    pub fn handle_capacity_gain(
        &mut self,
        gained: &[GpuId],
        workload: &WorkloadSpec,
    ) -> Result<()> {
        self.cluster.activate_gpus(gained)?;
        self.reschedule(workload, ReschedulePolicy::Full)
    }

    /// Handles a GPU failure: marks the GPUs inactive and applies the
    /// rescheduling policy.
    ///
    /// # Errors
    /// Propagates rescheduling failures (e.g. a phase losing all replicas
    /// under [`ReschedulePolicy::None`]).
    pub fn handle_failure(
        &mut self,
        failed: &[GpuId],
        workload: &WorkloadSpec,
        policy: ReschedulePolicy,
    ) -> Result<()> {
        self.cluster.deactivate_gpus(failed)?;
        self.reschedule(workload, policy)
    }

    /// Applies a rescheduling policy to adapt the current plan to the
    /// current cluster and workload.
    ///
    /// # Errors
    /// Returns [`Error::Runtime`] if no plan is deployed; propagates
    /// rescheduling failures.
    pub fn reschedule(&mut self, workload: &WorkloadSpec, policy: ReschedulePolicy) -> Result<()> {
        let current = self
            .plan
            .as_ref()
            .ok_or_else(|| Error::Runtime("reschedule before deploy".into()))?;
        let outcome = match policy {
            ReschedulePolicy::None => no_reschedule(
                &self.cluster,
                &self.model,
                current,
                workload,
                &self.slo,
                &self.scheduler_cfg,
            )?,
            ReschedulePolicy::Lightweight => lightweight_reschedule(
                &self.cluster,
                &self.model,
                current,
                workload,
                &self.slo,
                &self.scheduler_cfg,
            )?,
            ReschedulePolicy::Full => full_reschedule(
                &self.cluster,
                &self.model,
                workload,
                &self.slo,
                &self.scheduler_cfg,
            )?,
        };
        self.pending_blackout = outcome.reload_time;
        self.plan = Some(outcome.plan.clone());
        self.resched_log.push((policy, outcome));
        self.rebaseline();
        Ok(())
    }
}

/// Requests arriving during a reload blackout queue at the coordinator and
/// enter the engine when service resumes.
fn shift_for_blackout(requests: &[Request], blackout: SimDuration) -> Vec<Request> {
    if blackout.is_zero() {
        return requests.to_vec();
    }
    let resume = SimTime::ZERO + blackout;
    requests
        .iter()
        .map(|r| Request {
            arrival: r.arrival.max(resume),
            ..*r
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_cluster::presets;
    use ts_common::SloKind;
    use ts_workload::{generator::generate, spec};

    fn slo() -> SloSpec {
        SloSpec::new(
            SimDuration::from_secs(5),
            SimDuration::from_millis(300),
            SimDuration::from_secs(60),
        )
    }

    fn runtime() -> ServingRuntime {
        let mut cfg = SchedulerConfig::fast();
        cfg.seed = 9;
        ServingRuntime::new(
            presets::paper_cloud_cluster(),
            ModelSpec::llama_30b(),
            slo(),
            cfg,
        )
    }

    #[test]
    fn deploy_then_serve() {
        let mut rt = runtime();
        let w = spec::coding(2.0);
        rt.deploy(&w).unwrap();
        let reqs = generate(&w, SimDuration::from_secs(60), 1);
        let rep = rt.serve_segment(&reqs).unwrap();
        assert_eq!(
            rep.metrics.num_completed() + rep.metrics.num_dropped(),
            reqs.len()
        );
        assert!(rep.blackout.is_zero());
    }

    #[test]
    fn serve_before_deploy_errors() {
        let mut rt = runtime();
        assert!(matches!(rt.serve_segment(&[]), Err(Error::Runtime(_))));
    }

    #[test]
    fn failure_with_lightweight_keeps_serving() {
        let mut rt = runtime();
        let w = spec::coding(2.0);
        rt.deploy(&w).unwrap();
        // Fail 4 of 32 GPUs (a 3090Ti instance), as in Figure 11.
        let failed: Vec<GpuId> = (28..32).map(GpuId).collect();
        rt.handle_failure(&failed, &w, ReschedulePolicy::Lightweight)
            .unwrap();
        let reqs = generate(&w, SimDuration::from_secs(60), 2);
        let rep = rt.serve_segment(&reqs).unwrap();
        assert!(rep.blackout.is_zero(), "lightweight must not blackout");
        assert!(rep.metrics.num_completed() > 0);
        // the new plan avoids failed GPUs
        for g in &rt.plan().unwrap().groups {
            for gpu in g.gpus() {
                assert!(rt.cluster().is_active(gpu));
            }
        }
    }

    #[test]
    fn full_reschedule_incurs_blackout() {
        let mut rt = runtime();
        let w = spec::coding(2.0);
        rt.deploy(&w).unwrap();
        rt.reschedule(&w, ReschedulePolicy::Full).unwrap();
        let reqs = generate(&w, SimDuration::from_secs(60), 3);
        let rep = rt.serve_segment(&reqs).unwrap();
        assert!(
            rep.blackout.as_secs_f64() > 5.0,
            "full reschedule should blackout, got {}",
            rep.blackout
        );
        // TTFT of early requests suffers from the blackout.
        let p50 = rep.metrics.latency_percentile(SloKind::Ttft, 0.5).unwrap();
        assert!(p50 > SimDuration::from_secs(1));
    }

    #[test]
    fn lightweight_beats_none_after_shift() {
        let mut rt = runtime();
        let coding = spec::coding(2.0);
        rt.deploy(&coding).unwrap();
        let conv = spec::conversation(2.5);
        let reqs = generate(&conv, SimDuration::from_secs(120), 4);

        // Serve under the unchanged plan.
        let keep = rt.serve_segment(&reqs).unwrap();
        // Now lightweight-reschedule for the new workload and serve again.
        rt.reschedule(&conv, ReschedulePolicy::Lightweight).unwrap();
        let adapted = rt.serve_segment(&reqs).unwrap();
        let a_keep = keep.metrics.joint_attainment(&slo());
        let a_adapt = adapted.metrics.joint_attainment(&slo());
        assert!(
            a_adapt >= a_keep - 0.05,
            "adapted {a_adapt} should not be worse than kept {a_keep}"
        );
    }

    #[test]
    fn elastic_scale_up_grows_the_deployment() {
        let w = spec::coding(2.0);
        // Start degraded: the two 3090Ti boxes (GPUs 24..32) are offline.
        let lost: Vec<GpuId> = (24..32).map(GpuId).collect();
        let mut cluster = presets::paper_cloud_cluster();
        cluster.deactivate_gpus(&lost).unwrap();
        let mut cfg = SchedulerConfig::fast();
        cfg.seed = 31;
        let mut rt = ServingRuntime::new(cluster, ModelSpec::llama_30b(), slo(), cfg);
        rt.deploy(&w).unwrap();
        // The degraded deployment avoids the offline GPUs entirely.
        assert!(
            rt.plan()
                .unwrap()
                .groups
                .iter()
                .flat_map(|g| g.gpus().collect::<Vec<_>>())
                .all(|g| g.0 < 24),
            "degraded deploy must not touch offline GPUs"
        );
        let before = rt.plan().unwrap().groups.len();
        // The 3090Ti boxes come back online.
        rt.handle_capacity_gain(&lost, &w).unwrap();
        let after = rt.plan().unwrap().groups.len();
        assert!(
            after >= before,
            "capacity gain should not shrink the deployment: {after} vs {before}"
        );
        // lost GPUs were reactivated by handle_capacity_gain
        assert!(lost.iter().all(|g| rt.cluster().is_active(*g)));
        let uses_new = rt
            .plan()
            .unwrap()
            .groups
            .iter()
            .flat_map(|g| g.gpus().collect::<Vec<_>>())
            .any(|g| g.0 >= 24);
        assert!(uses_new, "the returned GPUs should be used");
        // Full reschedule pays a reload blackout.
        assert!(!rt.resched_log.last().unwrap().1.reload_time.is_zero());
    }

    #[test]
    fn mid_flight_failure_recovers_and_replans() {
        use ts_cluster::availability::{ClusterEvent, EventKind};

        let mut rt = runtime();
        let w = spec::coding(2.0);
        rt.deploy(&w).unwrap();
        // Kill the GPUs of the last decode replica 20s into the segment.
        let plan = rt.plan().unwrap();
        let decode_idx = *plan.decode_indices().last().unwrap();
        let doomed: Vec<GpuId> = plan.groups[decode_idx].gpus().collect();
        let survivors = plan.decode_indices().len() > 1;
        let events = vec![ClusterEvent::new(
            SimTime::from_secs_f64(20.0),
            EventKind::GpusDown(doomed.clone()),
        )];
        let reqs = generate(&w, SimDuration::from_secs(60), 5);
        let rep = rt
            .serve_segment_with_faults(
                &reqs,
                &events,
                ReschedulePolicy::Lightweight,
                &w,
                SimDuration::from_millis(500),
            )
            .unwrap();
        let m = &rep.metrics;
        assert_eq!(
            m.num_completed() + m.num_dropped() + m.num_rejected(),
            reqs.len(),
            "every request must be accounted for"
        );
        if survivors {
            assert_eq!(m.num_completed(), reqs.len(), "survivors absorb the work");
            assert!(m.recovery().any(), "recovery actions should be recorded");
        }
        // The post-segment lightweight reschedule avoids the dead GPUs.
        assert_eq!(
            rt.resched_log.last().unwrap().0,
            ReschedulePolicy::Lightweight
        );
        for g in &rt.plan().unwrap().groups {
            for gpu in g.gpus() {
                assert!(rt.cluster().is_active(gpu), "plan references dead {gpu:?}");
            }
        }
    }

    #[test]
    fn node_blip_below_heartbeat_timeout_triggers_no_reschedule() {
        use ts_cluster::availability::{ClusterEvent, EventKind};
        use ts_common::NodeId;

        let mut rt = runtime();
        let w = spec::coding(2.0);
        rt.deploy(&w).unwrap();
        // Down for 400ms, heartbeat timeout 1s: the coordinator never sees it.
        let events = vec![
            ClusterEvent::new(SimTime::from_secs_f64(10.0), EventKind::NodeDown(NodeId(0))),
            ClusterEvent::new(SimTime::from_secs_f64(10.4), EventKind::NodeUp(NodeId(0))),
        ];
        let reqs = generate(&w, SimDuration::from_secs(30), 6);
        let rep = rt
            .serve_segment_with_faults(
                &reqs,
                &events,
                ReschedulePolicy::Lightweight,
                &w,
                SimDuration::from_secs(1),
            )
            .unwrap();
        assert!(
            rt.resched_log.is_empty(),
            "a sub-timeout blip must not reschedule"
        );
        let m = &rep.metrics;
        assert_eq!(
            m.num_completed() + m.num_dropped() + m.num_rejected(),
            reqs.len()
        );
        // Net availability is unchanged.
        assert_eq!(
            rt.cluster().num_gpus(),
            presets::paper_cloud_cluster().num_gpus()
        );
    }

    #[test]
    fn mid_flight_full_pays_reload_in_flight_not_next_segment() {
        use ts_cluster::availability::{ClusterEvent, EventKind};

        let mut rt = runtime();
        let w = spec::coding(2.0);
        rt.deploy(&w).unwrap();
        let plan = rt.plan().unwrap();
        let decode_idx = *plan.decode_indices().last().unwrap();
        let doomed: Vec<GpuId> = plan.groups[decode_idx].gpus().collect();
        let events = vec![ClusterEvent::new(
            SimTime::from_secs_f64(15.0),
            EventKind::GpusDown(doomed),
        )];
        let reqs = generate(&w, SimDuration::from_secs(60), 7);
        rt.serve_segment_with_faults(
            &reqs,
            &events,
            ReschedulePolicy::Full,
            &w,
            SimDuration::from_millis(500),
        )
        .unwrap();
        // The full reschedule ran and modeled a reload…
        let (policy, outcome) = rt.resched_log.last().unwrap();
        assert_eq!(*policy, ReschedulePolicy::Full);
        assert!(!outcome.reload_time.is_zero());
        // …but the next segment starts clean: the pause was paid in-flight.
        let rep = rt
            .serve_segment(&generate(&w, SimDuration::from_secs(10), 8))
            .unwrap();
        assert!(rep.blackout.is_zero(), "reload must not be double-charged");
    }

    #[test]
    fn resched_log_records_outcomes() {
        let mut rt = runtime();
        let w = spec::coding(2.0);
        rt.deploy(&w).unwrap();
        rt.reschedule(&w, ReschedulePolicy::Lightweight).unwrap();
        rt.reschedule(&w, ReschedulePolicy::Full).unwrap();
        assert_eq!(rt.resched_log.len(), 2);
        assert!(rt.resched_log[0].1.reload_time.is_zero());
        assert!(!rt.resched_log[1].1.reload_time.is_zero());
    }
}
