//! Epoch-driven online serving with rescheduling.
//!
//! A [`ServingRuntime`] owns the cluster view, the current deployment plan
//! and the workload profiler. The bench harness and examples drive it with
//! request segments and availability events; between segments it can
//! reschedule with one of three policies, reproducing the Figure 11 / Table
//! 4 experiments:
//!
//! * [`ReschedulePolicy::None`] — keep the plan, only drop dead groups;
//! * [`ReschedulePolicy::Lightweight`] — flip-only tabu + re-orchestration,
//!   zero reload (§3.4);
//! * [`ReschedulePolicy::Full`] — full two-level search plus a modeled
//!   weight-reload blackout during which arriving requests queue.
//!
//! Segments execute on `ts_sim`'s unified execution substrate: the runtime
//! drives the phase-split facade, but the identical event loop and fault
//! layer back the colocated baselines, so per-segment `RecoveryCounters`
//! are comparable across every system the experiments run.

use thunderserve_core::config::SchedulerConfig;
use thunderserve_core::orchestrate::sim_config;
use thunderserve_core::reschedule::{
    fleet_reschedule, full_reschedule, lightweight_reschedule, no_reschedule, FleetDelta,
    RescheduleOutcome,
};
use thunderserve_core::Scheduler;
use ts_cluster::availability::{sort_script, ClusterEvent, EventKind};
use ts_cluster::Cluster;
use ts_common::{
    DeploymentPlan, Error, GpuId, ModelSpec, NodeId, Request, Result, SimDuration, SimTime, SloSpec,
};
use ts_costmodel::replica::{ReplicaCostModel, DISK_BANDWIDTH};
use ts_sim::engine::Simulation;
use ts_sim::fault::{FaultKind, FaultScript, TimedFault};
use ts_sim::metrics::Metrics;
use ts_telemetry::{StreamConfig, StreamSnapshot, TraceLog};
use ts_workload::{WorkloadProfiler, WorkloadSpec};

use crate::heartbeat::HeartbeatMonitor;

/// How to react to failures and workload shifts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReschedulePolicy {
    /// Keep the deployment plan as-is (prune dead groups only).
    None,
    /// Lightweight rescheduling: phase flips + re-orchestration.
    Lightweight,
    /// Full rescheduling: new plan from scratch + parameter reload blackout.
    Full,
}

/// Outcome of serving one request segment.
#[derive(Debug, Clone)]
pub struct SegmentReport {
    /// Serving metrics for the segment.
    pub metrics: Metrics,
    /// Reload blackout that applied at the start of this segment.
    pub blackout: SimDuration,
    /// Telemetry trace of the segment, present when the runtime was put in
    /// telemetry mode with [`ServingRuntime::set_telemetry`] (the autoscale
    /// controller reads queue-depth and occupancy series from it).
    pub trace: Option<TraceLog>,
    /// Streaming-plane snapshot of the segment, present when streaming
    /// observation was enabled with [`ServingRuntime::set_streaming`]:
    /// online TTFT/E2E sketches, EWMA pressure gauges and per-tenant SLO
    /// burn-rate health signals, without retaining the full trace.
    pub stream: Option<StreamSnapshot>,
}

/// Heartbeat timeout for the runtime's *persistent* fleet-membership
/// monitor (per-segment detection timeouts are passed explicitly to
/// [`ServingRuntime::serve_segment_with_faults`]).
pub const DEFAULT_HEARTBEAT_TIMEOUT: SimDuration = SimDuration::from_secs(1);

/// Fraction of the active fleet a [`FleetDelta`] may touch before
/// [`ServingRuntime::apply_fleet_delta`] escalates from the zero-reload
/// graft/prune path to a full re-plan with its weight-reload blackout.
pub const DEFAULT_FULL_REPLAN_FRACTION: f64 = 0.5;

/// The online serving runtime.
pub struct ServingRuntime {
    cluster: Cluster,
    model: ModelSpec,
    slo: SloSpec,
    scheduler_cfg: SchedulerConfig,
    plan: Option<DeploymentPlan>,
    profiler: WorkloadProfiler,
    /// Blackout pending from the last full reschedule (consumed by the next
    /// segment).
    pending_blackout: SimDuration,
    /// Persistent fleet-membership monitor: exactly the nodes currently in
    /// the fleet are registered, so silence from a *released* node means
    /// nothing while silence from a held node is an outage. Survives fleet
    /// changes across segments.
    heartbeat: HeartbeatMonitor,
    /// Wall-clock position of the runtime: the sum of served segment
    /// horizons. Heartbeat registrations/beats are stamped against it.
    clock: SimTime,
    /// Whether segments run with telemetry and hand their [`TraceLog`] back
    /// in the [`SegmentReport`].
    telemetry: bool,
    /// When set, segments run with the streaming observability plane and
    /// hand its [`StreamSnapshot`] back in the [`SegmentReport`].
    streaming: Option<StreamConfig>,
    /// Log of rescheduling outcomes for reporting (Table 4).
    pub resched_log: Vec<(ReschedulePolicy, RescheduleOutcome)>,
}

/// Whether any of the node's GPUs is active (the node is in the fleet).
fn node_in_fleet(cluster: &Cluster, node: NodeId) -> bool {
    cluster
        .node(node)
        .gpus
        .iter()
        .any(|&g| cluster.is_active(g))
}

impl ServingRuntime {
    /// Creates a runtime over a snapshot of the cluster. Every node that is
    /// active in the snapshot is registered with the heartbeat monitor
    /// before the first segment.
    pub fn new(
        cluster: Cluster,
        model: ModelSpec,
        slo: SloSpec,
        scheduler_cfg: SchedulerConfig,
    ) -> Self {
        let mut heartbeat = HeartbeatMonitor::new(DEFAULT_HEARTBEAT_TIMEOUT);
        for i in 0..cluster.num_nodes() {
            let n = NodeId(i as u32);
            if node_in_fleet(&cluster, n) {
                heartbeat.register(n, SimTime::ZERO);
            }
        }
        ServingRuntime {
            cluster,
            model,
            slo,
            scheduler_cfg,
            plan: None,
            profiler: WorkloadProfiler::new(SimDuration::from_secs(300), 2.0, 30),
            pending_blackout: SimDuration::ZERO,
            heartbeat,
            clock: SimTime::ZERO,
            telemetry: false,
            streaming: None,
            resched_log: Vec::new(),
        }
    }

    /// Turns per-segment telemetry on or off. When on, segment reports carry
    /// the [`TraceLog`] so callers (e.g. the autoscale controller) can read
    /// queue-depth and batch-occupancy series. Telemetry observes only; the
    /// serving outputs stay bit-identical either way.
    pub fn set_telemetry(&mut self, on: bool) {
        self.telemetry = on;
    }

    /// Enables (or disables, with `None`) the streaming observability plane
    /// for subsequent segments. When on, segment reports carry a
    /// [`StreamSnapshot`] with online quantile sketches and SLO burn-rate
    /// signals. Like telemetry, streaming observes only; serving outputs
    /// stay bit-identical either way.
    pub fn set_streaming(&mut self, cfg: Option<StreamConfig>) {
        self.streaming = cfg;
    }

    /// The current plan, if deployed.
    pub fn plan(&self) -> Option<&DeploymentPlan> {
        self.plan.as_ref()
    }

    /// The runtime's cluster view.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The persistent fleet-membership heartbeat monitor.
    pub fn heartbeat(&self) -> &HeartbeatMonitor {
        &self.heartbeat
    }

    /// The runtime's wall-clock position (sum of served segment horizons).
    pub fn clock(&self) -> SimTime {
        self.clock
    }

    /// Advances the runtime clock past a served segment and beats every
    /// in-fleet node (they just served traffic, so they are demonstrably
    /// alive).
    fn tick(&mut self, elapsed: SimDuration) {
        self.clock += elapsed;
        for i in 0..self.cluster.num_nodes() {
            let n = NodeId(i as u32);
            if node_in_fleet(&self.cluster, n) {
                self.heartbeat.beat(n, self.clock);
            }
        }
    }

    /// Reconciles heartbeat membership with the cluster's availability mask
    /// after events changed it: nodes that left stop being tracked (their
    /// silence is expected), nodes that joined are registered **before** the
    /// next segment so their very first silent timeout counts.
    fn sync_heartbeat_membership(&mut self) {
        for i in 0..self.cluster.num_nodes() {
            let n = NodeId(i as u32);
            let in_fleet = node_in_fleet(&self.cluster, n);
            if in_fleet && !self.heartbeat.is_tracked(n) {
                self.heartbeat.register(n, self.clock);
            } else if !in_fleet && self.heartbeat.is_tracked(n) {
                self.heartbeat.deregister(n);
            }
        }
    }

    /// Runs the initial scheduling and deploys the plan.
    ///
    /// # Errors
    /// Propagates scheduler failures.
    pub fn deploy(&mut self, workload: &WorkloadSpec) -> Result<()> {
        let result = Scheduler::new(self.scheduler_cfg.clone()).schedule(
            &self.cluster,
            &self.model,
            workload,
            &self.slo,
        )?;
        self.plan = Some(result.plan);
        Ok(())
    }

    /// Serves one request segment with the current plan on the current
    /// cluster. A pending reload blackout delays every request arriving
    /// before it ends (they queue at the coordinator).
    ///
    /// # Errors
    /// Returns [`Error::Runtime`] if no plan is deployed; propagates
    /// simulation errors.
    pub fn serve_segment(&mut self, requests: &[Request]) -> Result<SegmentReport> {
        let plan = self
            .plan
            .as_ref()
            .ok_or_else(|| Error::Runtime("serve_segment before deploy".into()))?;
        let blackout = std::mem::replace(&mut self.pending_blackout, SimDuration::ZERO);
        let adjusted = shift_for_blackout(requests, blackout);
        for r in requests {
            self.profiler.observe(*r);
        }
        let cfg = self.segment_cfg();
        let mut sim = Simulation::new(&self.cluster, plan, cfg)?;
        let metrics = sim.run(&adjusted)?;
        let trace = sim.take_trace();
        let stream = sim.take_streaming().map(|p| p.snapshot());
        self.tick(metrics.horizon());
        Ok(SegmentReport {
            metrics,
            blackout,
            trace,
            stream,
        })
    }

    /// The per-segment engine config: observation knobs applied on top of
    /// the scheduler-derived base.
    fn segment_cfg(&self) -> ts_sim::SimConfig {
        let mut cfg = sim_config(&self.model, &self.scheduler_cfg).with_telemetry(self.telemetry);
        if let Some(sc) = &self.streaming {
            cfg = cfg.with_streaming(sc.clone());
        }
        cfg
    }

    /// Serves one segment while availability `events` strike **mid-flight**:
    /// the events are projected onto the current plan's replicas
    /// ([`FaultScript::from_cluster_events`]) and injected into the engine,
    /// so in-flight requests on failed replicas are re-routed/re-prefilled
    /// (or lost, under [`ReschedulePolicy::None`]) as the run progresses.
    ///
    /// `heartbeat_timeout` is the [`HeartbeatMonitor`] timeout: a replica
    /// lost at `t` is only acted on at `t + heartbeat_timeout`. Under
    /// [`ReschedulePolicy::Full`] the first detected failure additionally
    /// pauses the whole service for the modeled weight-reload time — the
    /// mid-segment equivalent of the between-segment reload blackout.
    ///
    /// After the segment, the events are applied to the runtime's cluster
    /// view and the policy's reschedule is run for subsequent segments —
    /// unless the outage was a node blip shorter than the heartbeat timeout
    /// (never detected, nothing to react to). A full reschedule triggered
    /// this way carries no *additional* pending blackout: the reload was
    /// already paid in-flight as the pause.
    ///
    /// # Errors
    /// Returns [`Error::Runtime`] if no plan is deployed; propagates
    /// simulation, event-application and rescheduling failures (except under
    /// `None`, where an infeasible prune keeps the old plan — the dead
    /// replicas simply stop answering).
    pub fn serve_segment_with_faults(
        &mut self,
        requests: &[Request],
        events: &[ClusterEvent],
        policy: ReschedulePolicy,
        workload: &WorkloadSpec,
        heartbeat_timeout: SimDuration,
    ) -> Result<SegmentReport> {
        let plan = self
            .plan
            .as_ref()
            .ok_or_else(|| Error::Runtime("serve_segment_with_faults before deploy".into()))?;
        let blackout = std::mem::replace(&mut self.pending_blackout, SimDuration::ZERO);
        let adjusted = shift_for_blackout(requests, blackout);
        for r in requests {
            self.profiler.observe(*r);
        }

        let mut script =
            FaultScript::from_cluster_events(&self.cluster, plan, events, heartbeat_timeout);
        if policy == ReschedulePolicy::None {
            script = script.without_recovery();
        }
        // Full rescheduling mid-segment reloads weights: pause the service
        // from the first detection until the reload completes.
        let mut paused_mid_flight = false;
        if policy == ReschedulePolicy::Full {
            let first_down = script
                .faults
                .iter()
                .find(|f| matches!(f.kind, FaultKind::PrefillDown(_) | FaultKind::DecodeDown(_)));
            if let Some(f) = first_down {
                let reload = plan
                    .groups
                    .iter()
                    .filter_map(|g| {
                        ReplicaCostModel::new(
                            &self.cluster,
                            &self.model,
                            g,
                            &self.scheduler_cfg.params,
                        )
                        .ok()
                    })
                    .map(|rcm| rcm.weight_load_time(DISK_BANDWIDTH))
                    .max()
                    .unwrap_or(SimDuration::ZERO);
                let detect = f.at + heartbeat_timeout;
                script.faults.push(TimedFault {
                    at: detect,
                    kind: FaultKind::Pause {
                        until: detect + reload,
                    },
                });
                script.faults.sort_by_key(|f| f.at);
                paused_mid_flight = true;
            }
        }

        let cfg = self.segment_cfg();
        let mut sim = Simulation::new(&self.cluster, plan, cfg)?;
        let metrics = sim.run_with_faults(&adjusted, &script)?;
        let trace = sim.take_trace();
        let stream = sim.take_streaming().map(|p| p.snapshot());

        // Replay node-level events through a heartbeat monitor to decide
        // what the coordinator actually *detected*: healthy nodes beat at
        // every event time, silent ones expire one timeout later. A blip
        // shorter than the timeout is never seen. GPU-level events come from
        // explicit device errors and are always known.
        let mut sorted = events.to_vec();
        sort_script(&mut sorted);
        // Only nodes the persistent monitor believes in the fleet are
        // expected to beat: a node released in an earlier segment must not
        // read as a fresh outage just because it stays silent.
        let mut nodes: Vec<NodeId> = (0..self.cluster.num_nodes())
            .map(|i| NodeId(i as u32))
            .filter(|&n| self.heartbeat.is_tracked(n) && !self.heartbeat.is_dead(n))
            .collect();
        let mut monitor = HeartbeatMonitor::new(heartbeat_timeout);
        for &n in &nodes {
            monitor.register(n, SimTime::ZERO);
        }
        let mut silent: Vec<NodeId> = Vec::new();
        let mut delta = FleetDelta::default();
        let mut gpu_level_change = false;
        let mut detected = false;
        for ev in &sorted {
            for &n in &nodes {
                if !silent.contains(&n) {
                    monitor.beat(n, ev.at);
                }
            }
            detected |= !monitor.expired(ev.at).is_empty();
            match &ev.kind {
                EventKind::NodeDown(n) => silent.push(*n),
                EventKind::NodeUp(n) => {
                    silent.retain(|m| m != n);
                    // Returning capacity is an explicit control-plane event:
                    // re-register rather than beat, since a beat alone can no
                    // longer resurrect a node flagged dead.
                    monitor.register(*n, ev.at);
                    if !nodes.contains(n) {
                        nodes.push(*n);
                    }
                }
                // A reclaimed/released node goes silent *deliberately*: the
                // control plane knows, so it is deregistered rather than
                // left to expire as a phantom outage. The fleet delta still
                // triggers a (zero-reload) plan edit below — unless the node
                // was already drained out of the fleet, in which case the
                // reclaim is a no-op by design.
                EventKind::ScaleDown(n) => {
                    monitor.deregister(*n);
                    nodes.retain(|m| m != n);
                    silent.retain(|m| m != n);
                    if node_in_fleet(&self.cluster, *n) {
                        delta.released.push(*n);
                    }
                }
                EventKind::ScaleUp(n) => {
                    monitor.register(*n, ev.at);
                    if !nodes.contains(n) {
                        nodes.push(*n);
                    }
                    if !node_in_fleet(&self.cluster, *n) {
                        delta.acquired.push(*n);
                    }
                }
                EventKind::GpusDown(_) | EventKind::GpusUp(_) => gpu_level_change = true,
                // Gray degradations leave the availability mask (and thus
                // the plan's feasibility) untouched: no reschedule trigger.
                // Preemption warnings are advisory — the autoscaler reacts
                // between segments by draining; mid-flight they change
                // nothing.
                EventKind::NodeSlow(..)
                | EventKind::LinkDegraded(..)
                | EventKind::HeartbeatFlaky(..)
                | EventKind::PreemptionWarning(..) => {}
            }
        }
        if let Some(last) = sorted.last() {
            let horizon = last.at + heartbeat_timeout + SimDuration::from_micros(1);
            for &n in &nodes {
                if !silent.contains(&n) {
                    monitor.beat(n, horizon);
                }
            }
            detected |= !monitor.expired(horizon).is_empty();
        }

        for ev in &sorted {
            ev.apply(&mut self.cluster)?;
        }
        self.tick(metrics.horizon());
        self.sync_heartbeat_membership();
        if !delta.is_empty() {
            // Deliberate fleet change: graft acquired nodes / prune released
            // ones with zero reload where possible. The same pass also drops
            // any groups a concurrent outage killed.
            let outcome = self.fleet_outcome(&delta, workload, DEFAULT_FULL_REPLAN_FRACTION)?;
            self.commit_outcome(outcome);
            if paused_mid_flight {
                self.pending_blackout = SimDuration::ZERO;
            }
        } else if detected || gpu_level_change {
            match self.reschedule(workload, policy) {
                // Under `None` a phase may have lost every replica, making
                // even the prune infeasible; the old plan stays and the dead
                // replicas just stop answering.
                Err(_) if policy == ReschedulePolicy::None => {}
                other => other?,
            }
            if paused_mid_flight {
                // The reload was served in-flight as the pause; don't charge
                // the next segment again.
                self.pending_blackout = SimDuration::ZERO;
            }
        }
        Ok(SegmentReport {
            metrics,
            blackout,
            trace,
            stream,
        })
    }

    /// Whether the profiler currently flags a workload shift.
    pub fn shift_detected(&self) -> bool {
        self.profiler.shift_detected()
    }

    /// Marks the current workload statistics as the post-schedule baseline.
    pub fn rebaseline(&mut self) {
        self.profiler.rebaseline();
    }

    /// Handles returning/new capacity: marks the GPUs active and runs a full
    /// reschedule so the new hardware joins the deployment (lightweight
    /// rescheduling cannot grow the group construction, so elasticity always
    /// pays the reload; the blackout only covers replicas whose weights must
    /// load, which the next segment models pessimistically for all).
    ///
    /// # Errors
    /// Propagates cluster and scheduling failures.
    pub fn handle_capacity_gain(
        &mut self,
        gained: &[GpuId],
        workload: &WorkloadSpec,
    ) -> Result<()> {
        self.cluster.activate_gpus(gained)?;
        self.reschedule(workload, ReschedulePolicy::Full)
    }

    /// Handles a GPU failure: marks the GPUs inactive and applies the
    /// rescheduling policy.
    ///
    /// # Errors
    /// Propagates rescheduling failures (e.g. a phase losing all replicas
    /// under [`ReschedulePolicy::None`]).
    pub fn handle_failure(
        &mut self,
        failed: &[GpuId],
        workload: &WorkloadSpec,
        policy: ReschedulePolicy,
    ) -> Result<()> {
        self.cluster.deactivate_gpus(failed)?;
        self.reschedule(workload, policy)
    }

    /// Applies a deliberate fleet change between segments: released nodes
    /// are deactivated and **deregistered** from the heartbeat monitor
    /// (their silence is expected, not an outage), acquired nodes are
    /// activated and registered **before** the next segment so their first
    /// missed beat counts. The plan is then adjusted with
    /// [`fleet_reschedule`]: zero reload for small deltas, a full re-plan
    /// with blackout when the delta exceeds `full_replan_fraction` of the
    /// active fleet.
    ///
    /// # Errors
    /// Returns [`Error::Runtime`] if no plan is deployed; propagates
    /// cluster-edit and rescheduling failures.
    pub fn apply_fleet_delta(
        &mut self,
        delta: &FleetDelta,
        workload: &WorkloadSpec,
        full_replan_fraction: f64,
    ) -> Result<()> {
        for &n in &delta.released {
            self.cluster.deactivate_node(n)?;
            self.heartbeat.deregister(n);
        }
        for &n in &delta.acquired {
            self.cluster.activate_node(n)?;
            self.heartbeat.register(n, self.clock);
        }
        if delta.is_empty() {
            return Ok(());
        }
        let outcome = self.fleet_outcome(delta, workload, full_replan_fraction)?;
        self.commit_outcome(outcome);
        Ok(())
    }

    /// Runs [`fleet_reschedule`] against the current plan (the cluster mask
    /// must already reflect the delta).
    fn fleet_outcome(
        &self,
        delta: &FleetDelta,
        workload: &WorkloadSpec,
        full_replan_fraction: f64,
    ) -> Result<RescheduleOutcome> {
        let current = self
            .plan
            .as_ref()
            .ok_or_else(|| Error::Runtime("fleet delta before deploy".into()))?;
        fleet_reschedule(
            &self.cluster,
            &self.model,
            current,
            delta,
            workload,
            &self.slo,
            &self.scheduler_cfg,
            full_replan_fraction,
        )
    }

    /// Installs a reschedule outcome: plan, pending blackout, log entry
    /// (tagged by what the edit actually cost — zero reload reads as
    /// lightweight, a reload as full).
    fn commit_outcome(&mut self, outcome: RescheduleOutcome) {
        let policy = if outcome.reload_time.is_zero() {
            ReschedulePolicy::Lightweight
        } else {
            ReschedulePolicy::Full
        };
        self.pending_blackout = outcome.reload_time;
        self.plan = Some(outcome.plan.clone());
        self.resched_log.push((policy, outcome));
        self.rebaseline();
    }

    /// Applies a rescheduling policy to adapt the current plan to the
    /// current cluster and workload.
    ///
    /// # Errors
    /// Returns [`Error::Runtime`] if no plan is deployed; propagates
    /// rescheduling failures.
    pub fn reschedule(&mut self, workload: &WorkloadSpec, policy: ReschedulePolicy) -> Result<()> {
        let current = self
            .plan
            .as_ref()
            .ok_or_else(|| Error::Runtime("reschedule before deploy".into()))?;
        let outcome = match policy {
            ReschedulePolicy::None => no_reschedule(
                &self.cluster,
                &self.model,
                current,
                workload,
                &self.slo,
                &self.scheduler_cfg,
            )?,
            ReschedulePolicy::Lightweight => lightweight_reschedule(
                &self.cluster,
                &self.model,
                current,
                workload,
                &self.slo,
                &self.scheduler_cfg,
            )?,
            ReschedulePolicy::Full => full_reschedule(
                &self.cluster,
                &self.model,
                workload,
                &self.slo,
                &self.scheduler_cfg,
            )?,
        };
        self.pending_blackout = outcome.reload_time;
        self.plan = Some(outcome.plan.clone());
        self.resched_log.push((policy, outcome));
        self.rebaseline();
        Ok(())
    }
}

/// Requests arriving during a reload blackout queue at the coordinator and
/// enter the engine when service resumes.
fn shift_for_blackout(requests: &[Request], blackout: SimDuration) -> Vec<Request> {
    if blackout.is_zero() {
        return requests.to_vec();
    }
    let resume = SimTime::ZERO + blackout;
    requests
        .iter()
        .map(|r| Request {
            arrival: r.arrival.max(resume),
            ..*r
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_cluster::presets;
    use ts_common::SloKind;
    use ts_workload::{generator::generate, spec};

    fn slo() -> SloSpec {
        SloSpec::new(
            SimDuration::from_secs(5),
            SimDuration::from_millis(300),
            SimDuration::from_secs(60),
        )
    }

    fn runtime() -> ServingRuntime {
        let mut cfg = SchedulerConfig::fast();
        cfg.seed = 9;
        ServingRuntime::new(
            presets::paper_cloud_cluster(),
            ModelSpec::llama_30b(),
            slo(),
            cfg,
        )
    }

    #[test]
    fn deploy_then_serve() {
        let mut rt = runtime();
        let w = spec::coding(2.0);
        rt.deploy(&w).unwrap();
        let reqs = generate(&w, SimDuration::from_secs(60), 1);
        let rep = rt.serve_segment(&reqs).unwrap();
        assert_eq!(
            rep.metrics.num_completed() + rep.metrics.num_dropped(),
            reqs.len()
        );
        assert!(rep.blackout.is_zero());
    }

    #[test]
    fn streaming_segments_carry_snapshots_without_changing_metrics() {
        let w = spec::coding(2.0);
        let reqs = generate(&w, SimDuration::from_secs(60), 1);
        let mut plain = runtime();
        plain.deploy(&w).unwrap();
        let base = plain.serve_segment(&reqs).unwrap();
        assert!(base.stream.is_none(), "streaming defaults off");

        let mut rt = runtime();
        rt.deploy(&w).unwrap();
        rt.set_streaming(Some(StreamConfig::new(slo())));
        let rep = rt.serve_segment(&reqs).unwrap();
        let snap = rep.stream.expect("streaming was enabled");
        assert_eq!(
            snap.totals.finished as usize,
            rep.metrics.num_completed(),
            "plane counters must tie out with segment metrics"
        );
        assert!(snap.ttft.count() > 0);
        assert_eq!(
            rep.metrics, base.metrics,
            "streaming observation must not change serving outputs"
        );
    }

    #[test]
    fn serve_before_deploy_errors() {
        let mut rt = runtime();
        assert!(matches!(rt.serve_segment(&[]), Err(Error::Runtime(_))));
    }

    #[test]
    fn failure_with_lightweight_keeps_serving() {
        let mut rt = runtime();
        let w = spec::coding(2.0);
        rt.deploy(&w).unwrap();
        // Fail 4 of 32 GPUs (a 3090Ti instance), as in Figure 11.
        let failed: Vec<GpuId> = (28..32).map(GpuId).collect();
        rt.handle_failure(&failed, &w, ReschedulePolicy::Lightweight)
            .unwrap();
        let reqs = generate(&w, SimDuration::from_secs(60), 2);
        let rep = rt.serve_segment(&reqs).unwrap();
        assert!(rep.blackout.is_zero(), "lightweight must not blackout");
        assert!(rep.metrics.num_completed() > 0);
        // the new plan avoids failed GPUs
        for g in &rt.plan().unwrap().groups {
            for gpu in g.gpus() {
                assert!(rt.cluster().is_active(gpu));
            }
        }
    }

    #[test]
    fn full_reschedule_incurs_blackout() {
        let mut rt = runtime();
        let w = spec::coding(2.0);
        rt.deploy(&w).unwrap();
        rt.reschedule(&w, ReschedulePolicy::Full).unwrap();
        let reqs = generate(&w, SimDuration::from_secs(60), 3);
        let rep = rt.serve_segment(&reqs).unwrap();
        assert!(
            rep.blackout.as_secs_f64() > 5.0,
            "full reschedule should blackout, got {}",
            rep.blackout
        );
        // TTFT of early requests suffers from the blackout.
        let p50 = rep.metrics.latency_percentile(SloKind::Ttft, 0.5).unwrap();
        assert!(p50 > SimDuration::from_secs(1));
    }

    #[test]
    fn lightweight_beats_none_after_shift() {
        let mut rt = runtime();
        let coding = spec::coding(2.0);
        rt.deploy(&coding).unwrap();
        let conv = spec::conversation(2.5);
        let reqs = generate(&conv, SimDuration::from_secs(120), 4);

        // Serve under the unchanged plan.
        let keep = rt.serve_segment(&reqs).unwrap();
        // Now lightweight-reschedule for the new workload and serve again.
        rt.reschedule(&conv, ReschedulePolicy::Lightweight).unwrap();
        let adapted = rt.serve_segment(&reqs).unwrap();
        let a_keep = keep.metrics.joint_attainment(&slo());
        let a_adapt = adapted.metrics.joint_attainment(&slo());
        assert!(
            a_adapt >= a_keep - 0.05,
            "adapted {a_adapt} should not be worse than kept {a_keep}"
        );
    }

    #[test]
    fn elastic_scale_up_grows_the_deployment() {
        let w = spec::coding(2.0);
        // Start degraded: the two 3090Ti boxes (GPUs 24..32) are offline.
        let lost: Vec<GpuId> = (24..32).map(GpuId).collect();
        let mut cluster = presets::paper_cloud_cluster();
        cluster.deactivate_gpus(&lost).unwrap();
        let mut cfg = SchedulerConfig::fast();
        cfg.seed = 31;
        let mut rt = ServingRuntime::new(cluster, ModelSpec::llama_30b(), slo(), cfg);
        rt.deploy(&w).unwrap();
        // The degraded deployment avoids the offline GPUs entirely.
        assert!(
            rt.plan()
                .unwrap()
                .groups
                .iter()
                .flat_map(|g| g.gpus().collect::<Vec<_>>())
                .all(|g| g.0 < 24),
            "degraded deploy must not touch offline GPUs"
        );
        let before = rt.plan().unwrap().groups.len();
        // The 3090Ti boxes come back online.
        rt.handle_capacity_gain(&lost, &w).unwrap();
        let after = rt.plan().unwrap().groups.len();
        assert!(
            after >= before,
            "capacity gain should not shrink the deployment: {after} vs {before}"
        );
        // lost GPUs were reactivated by handle_capacity_gain
        assert!(lost.iter().all(|g| rt.cluster().is_active(*g)));
        let uses_new = rt
            .plan()
            .unwrap()
            .groups
            .iter()
            .flat_map(|g| g.gpus().collect::<Vec<_>>())
            .any(|g| g.0 >= 24);
        assert!(uses_new, "the returned GPUs should be used");
        // Full reschedule pays a reload blackout.
        assert!(!rt.resched_log.last().unwrap().1.reload_time.is_zero());
    }

    #[test]
    fn mid_flight_failure_recovers_and_replans() {
        use ts_cluster::availability::{ClusterEvent, EventKind};

        let mut rt = runtime();
        let w = spec::coding(2.0);
        rt.deploy(&w).unwrap();
        // Kill the GPUs of the last decode replica 20s into the segment.
        let plan = rt.plan().unwrap();
        let decode_idx = *plan.decode_indices().last().unwrap();
        let doomed: Vec<GpuId> = plan.groups[decode_idx].gpus().collect();
        let survivors = plan.decode_indices().len() > 1;
        let events = vec![ClusterEvent::new(
            SimTime::from_secs_f64(20.0),
            EventKind::GpusDown(doomed.clone()),
        )];
        let reqs = generate(&w, SimDuration::from_secs(60), 5);
        let rep = rt
            .serve_segment_with_faults(
                &reqs,
                &events,
                ReschedulePolicy::Lightweight,
                &w,
                SimDuration::from_millis(500),
            )
            .unwrap();
        let m = &rep.metrics;
        assert_eq!(
            m.num_completed() + m.num_dropped() + m.num_rejected(),
            reqs.len(),
            "every request must be accounted for"
        );
        if survivors {
            assert_eq!(m.num_completed(), reqs.len(), "survivors absorb the work");
            assert!(m.recovery().any(), "recovery actions should be recorded");
        }
        // The post-segment lightweight reschedule avoids the dead GPUs.
        assert_eq!(
            rt.resched_log.last().unwrap().0,
            ReschedulePolicy::Lightweight
        );
        for g in &rt.plan().unwrap().groups {
            for gpu in g.gpus() {
                assert!(rt.cluster().is_active(gpu), "plan references dead {gpu:?}");
            }
        }
    }

    #[test]
    fn node_blip_below_heartbeat_timeout_triggers_no_reschedule() {
        use ts_cluster::availability::{ClusterEvent, EventKind};
        use ts_common::NodeId;

        let mut rt = runtime();
        let w = spec::coding(2.0);
        rt.deploy(&w).unwrap();
        // Down for 400ms, heartbeat timeout 1s: the coordinator never sees it.
        let events = vec![
            ClusterEvent::new(SimTime::from_secs_f64(10.0), EventKind::NodeDown(NodeId(0))),
            ClusterEvent::new(SimTime::from_secs_f64(10.4), EventKind::NodeUp(NodeId(0))),
        ];
        let reqs = generate(&w, SimDuration::from_secs(30), 6);
        let rep = rt
            .serve_segment_with_faults(
                &reqs,
                &events,
                ReschedulePolicy::Lightweight,
                &w,
                SimDuration::from_secs(1),
            )
            .unwrap();
        assert!(
            rt.resched_log.is_empty(),
            "a sub-timeout blip must not reschedule"
        );
        let m = &rep.metrics;
        assert_eq!(
            m.num_completed() + m.num_dropped() + m.num_rejected(),
            reqs.len()
        );
        // Net availability is unchanged.
        assert_eq!(
            rt.cluster().num_gpus(),
            presets::paper_cloud_cluster().num_gpus()
        );
    }

    #[test]
    fn mid_flight_full_pays_reload_in_flight_not_next_segment() {
        use ts_cluster::availability::{ClusterEvent, EventKind};

        let mut rt = runtime();
        let w = spec::coding(2.0);
        rt.deploy(&w).unwrap();
        let plan = rt.plan().unwrap();
        let decode_idx = *plan.decode_indices().last().unwrap();
        let doomed: Vec<GpuId> = plan.groups[decode_idx].gpus().collect();
        let events = vec![ClusterEvent::new(
            SimTime::from_secs_f64(15.0),
            EventKind::GpusDown(doomed),
        )];
        let reqs = generate(&w, SimDuration::from_secs(60), 7);
        rt.serve_segment_with_faults(
            &reqs,
            &events,
            ReschedulePolicy::Full,
            &w,
            SimDuration::from_millis(500),
        )
        .unwrap();
        // The full reschedule ran and modeled a reload…
        let (policy, outcome) = rt.resched_log.last().unwrap();
        assert_eq!(*policy, ReschedulePolicy::Full);
        assert!(!outcome.reload_time.is_zero());
        // …but the next segment starts clean: the pause was paid in-flight.
        let rep = rt
            .serve_segment(&generate(&w, SimDuration::from_secs(10), 8))
            .unwrap();
        assert!(rep.blackout.is_zero(), "reload must not be double-charged");
    }

    /// Elastic-pool runtime serving on a sub-fleet (base + first two spot
    /// nodes), with the rest of the pool parked for later acquisition.
    fn elastic_runtime() -> ServingRuntime {
        let mut cluster = presets::elastic_cloud_pool().cluster;
        for n in 4..8 {
            cluster.deactivate_node(NodeId(n)).unwrap();
        }
        let mut cfg = SchedulerConfig::fast();
        cfg.seed = 41;
        ServingRuntime::new(cluster, ModelSpec::llama_30b(), slo(), cfg)
    }

    #[test]
    fn heartbeat_bookkeeping_survives_scale_down_then_scale_up() {
        let mut rt = elastic_runtime();
        let w = spec::coding(2.0);
        rt.deploy(&w).unwrap();
        // Only in-fleet nodes are registered before the first segment.
        assert_eq!(rt.heartbeat().num_tracked(), 4);
        assert!(!rt.heartbeat().is_tracked(NodeId(5)));

        // Release spot node 3, serve a segment, re-acquire the SAME node.
        let down = FleetDelta {
            acquired: vec![],
            released: vec![NodeId(3)],
        };
        rt.apply_fleet_delta(&down, &w, DEFAULT_FULL_REPLAN_FRACTION)
            .unwrap();
        assert!(
            !rt.heartbeat().is_tracked(NodeId(3)),
            "a released node must be deregistered, not left to expire"
        );
        assert_eq!(rt.heartbeat().num_tracked(), 3);
        let reqs = generate(&w, SimDuration::from_secs(30), 11);
        let rep = rt
            .serve_segment_with_faults(
                &reqs,
                &[],
                ReschedulePolicy::Lightweight,
                &w,
                SimDuration::from_secs(1),
            )
            .unwrap();
        // The released node's silence during the segment is NOT an outage:
        // no failure-triggered reschedule beyond the fleet edit itself.
        assert_eq!(rt.resched_log.len(), 1, "silence of a released node");
        assert!(rep.metrics.num_completed() > 0);

        let up = FleetDelta {
            acquired: vec![NodeId(3)],
            released: vec![],
        };
        rt.apply_fleet_delta(&up, &w, DEFAULT_FULL_REPLAN_FRACTION)
            .unwrap();
        // Re-acquiring the same node id re-registers it cleanly: tracked,
        // not flagged dead from its absence.
        assert!(rt.heartbeat().is_tracked(NodeId(3)));
        assert!(!rt.heartbeat().is_dead(NodeId(3)));
        assert_eq!(rt.heartbeat().num_tracked(), 4);
        // And the plan actually uses it again.
        let on_node: usize = rt
            .plan()
            .unwrap()
            .groups
            .iter()
            .flat_map(|g| g.gpus())
            .filter(|&g| rt.cluster().gpu(g).node == NodeId(3))
            .count();
        assert!(on_node > 0, "re-acquired node must rejoin the plan");
        // The runtime clock advanced past the served segment, so the fresh
        // registration is stamped at the current clock, not zero.
        assert!(rt.clock() > SimTime::ZERO);
    }

    #[test]
    fn requests_conserved_across_fleet_resizes_with_faults() {
        use ts_cluster::availability::{ClusterEvent, EventKind};

        let mut rt = elastic_runtime();
        let w = spec::coding(2.0);
        rt.deploy(&w).unwrap();
        let mut served = 0usize;
        let mut completed = 0usize;

        // Segment 1: mid-flight spot reclaim of a node that actually hosts
        // a decode replica (undrained: its replicas crash-stop and in-flight
        // work re-routes).
        let plan = rt.plan().unwrap();
        let replica_nodes = |indices: Vec<usize>| -> Vec<std::collections::BTreeSet<NodeId>> {
            indices
                .into_iter()
                .map(|gi| {
                    plan.groups[gi]
                        .gpus()
                        .map(|g| rt.cluster().gpu(g).node)
                        .collect()
                })
                .collect()
        };
        let prefills = replica_nodes(plan.prefill_indices());
        let decodes = replica_nodes(plan.decode_indices());
        // A node that hosts at least one replica while BOTH phases keep a
        // replica that avoids it entirely: the reclaim kills work but
        // leaves survivors to re-route to.
        let victim = (0..rt.cluster().num_nodes() as u32)
            .map(NodeId)
            .find(|n| {
                let hosts = prefills.iter().chain(&decodes).any(|s| s.contains(n));
                let p_ok = prefills.iter().any(|s| !s.contains(n));
                let d_ok = decodes.iter().any(|s| !s.contains(n));
                hosts && p_ok && d_ok
            })
            .expect("a reclaimable node that leaves both phases survivors");
        let reqs = generate(&w, SimDuration::from_secs(45), 12);
        let events = vec![
            ClusterEvent::new(
                SimTime::from_secs_f64(10.0),
                EventKind::PreemptionWarning(victim),
            ),
            ClusterEvent::new(SimTime::from_secs_f64(20.0), EventKind::ScaleDown(victim)),
        ];
        let rep = rt
            .serve_segment_with_faults(
                &reqs,
                &events,
                ReschedulePolicy::Lightweight,
                &w,
                SimDuration::from_millis(500),
            )
            .unwrap();
        let m = &rep.metrics;
        assert_eq!(
            m.num_completed() + m.num_dropped() + m.num_rejected(),
            reqs.len(),
            "segment 1: every request accounted for across the reclaim"
        );
        assert!(
            m.recovery().any(),
            "undrained reclaim must trigger recovery actions"
        );
        served += reqs.len();
        completed += m.num_completed();

        // Segment 2: scale back up mid-flight (node 4 joins).
        let reqs = generate(&w, SimDuration::from_secs(45), 13);
        let events = vec![ClusterEvent::new(
            SimTime::from_secs_f64(15.0),
            EventKind::ScaleUp(NodeId(4)),
        )];
        let rep = rt
            .serve_segment_with_faults(
                &reqs,
                &events,
                ReschedulePolicy::Lightweight,
                &w,
                SimDuration::from_millis(500),
            )
            .unwrap();
        let m = &rep.metrics;
        assert_eq!(
            m.num_completed() + m.num_dropped() + m.num_rejected(),
            reqs.len(),
            "segment 2: every request accounted for across the scale-up"
        );
        served += reqs.len();
        completed += m.num_completed();

        // Segment 3: the grown fleet serves clean; plan covers node 4.
        let on_new: usize = rt
            .plan()
            .unwrap()
            .groups
            .iter()
            .flat_map(|g| g.gpus())
            .filter(|&g| rt.cluster().gpu(g).node == NodeId(4))
            .count();
        assert!(on_new > 0, "scaled-up node must serve in the next segment");
        let reqs = generate(&w, SimDuration::from_secs(30), 14);
        let rep = rt.serve_segment(&reqs).unwrap();
        let m = &rep.metrics;
        assert_eq!(
            m.num_completed() + m.num_dropped() + m.num_rejected(),
            reqs.len()
        );
        served += reqs.len();
        completed += m.num_completed();
        assert!(completed > served / 2, "most requests should complete");
    }

    #[test]
    fn resched_log_records_outcomes() {
        let mut rt = runtime();
        let w = spec::coding(2.0);
        rt.deploy(&w).unwrap();
        rt.reschedule(&w, ReschedulePolicy::Lightweight).unwrap();
        rt.reschedule(&w, ReschedulePolicy::Full).unwrap();
        assert_eq!(rt.resched_log.len(), 2);
        assert!(rt.resched_log[0].1.reload_time.is_zero());
        assert!(!rt.resched_log[1].1.reload_time.is_zero());
    }
}
