//! # ts-runtime
//!
//! The online serving runtime of ThunderServe (Appendix E): the layer that
//! owns a live deployment, watches the workload and the cluster, and decides
//! when and how to reschedule.
//!
//! * [`service`] — [`service::ServingRuntime`]: epoch-driven serving over
//!   the discrete-event engine. It deploys a plan, serves request segments,
//!   reacts to GPU failures and workload shifts with the configured
//!   [`service::ReschedulePolicy`] (none / lightweight / full), and models
//!   the parameter-reload blackout that full rescheduling incurs.
//! * [`heartbeat`] — [`heartbeat::HeartbeatMonitor`]: per-node heartbeat
//!   tracking with timeout detection, the trigger for failure handling
//!   (Appendix E's "GPU heartbeat timeout").
//! * [`coordinator`] — [`coordinator::TaskCoordinator`]: a real concurrent
//!   task coordinator (crossbeam channels + worker threads) that dispatches
//!   requests across replica workers according to the plan's routing matrix,
//!   the way the paper's libP2P-based coordinator dispatches across model
//!   serving groups. Used by the live-serving example; execution durations
//!   come from the cost model, compressed by a configurable time scale.

pub mod coordinator;
pub mod heartbeat;
pub mod service;

pub use coordinator::{CompletedRequest, CoordinatorConfig, TaskCoordinator};
pub use heartbeat::HeartbeatMonitor;
pub use service::{ReschedulePolicy, SegmentReport, ServingRuntime};
