//! Per-segment cost accounting.

use ts_cluster::ElasticPool;
use ts_common::{NodeId, SimDuration};

/// The cost of holding the fleet for one segment.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerEntry {
    /// Segment index within the trajectory.
    pub segment: usize,
    /// Wall-clock length of the segment.
    pub duration: SimDuration,
    /// Nodes held during the segment (base + spot), ascending.
    pub nodes: Vec<NodeId>,
    /// GPUs across the held nodes.
    pub gpus: usize,
    /// Fleet burn rate in $/hr (each node priced at its tier: base nodes
    /// on-demand, spot nodes at the spot rate).
    pub rate_per_hour: f64,
    /// Dollars for the segment: `rate_per_hour` × hours.
    pub cost: f64,
}

/// Append-only dollar ledger for a trajectory. The defining invariant —
/// asserted by `bench_autoscale` in CI — is internal consistency: the sum
/// of per-segment costs equals [`CostLedger::total`] exactly (same
/// floating-point summation order, no separately-maintained running total
/// to drift).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CostLedger {
    /// One entry per served segment, in order.
    pub entries: Vec<LedgerEntry>,
}

impl CostLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        CostLedger::default()
    }

    /// Charges one segment: every node of `cluster` currently in the fleet
    /// (any active GPU) is billed at its `pool` pricing tier for
    /// `duration`. `cluster` is the *runtime's* availability view — the
    /// pool's own cluster stays the static catalog.
    pub fn charge(
        &mut self,
        segment: usize,
        pool: &ElasticPool,
        cluster: &ts_cluster::Cluster,
        duration: SimDuration,
    ) {
        let nodes: Vec<NodeId> = (0..cluster.num_nodes() as u32)
            .map(NodeId)
            .filter(|&n| cluster.node(n).gpus.iter().any(|&g| cluster.is_active(g)))
            .collect();
        let gpus = cluster.num_gpus();
        let rate_per_hour: f64 = nodes.iter().map(|&n| pool.node_price(n)).sum();
        self.charge_at_rate(segment, rate_per_hour, nodes, gpus, duration);
    }

    /// Charges one segment at an explicit burn rate (the static on-demand
    /// baseline prices spot hardware at the on-demand rate, which
    /// [`CostLedger::charge`] would not).
    pub fn charge_at_rate(
        &mut self,
        segment: usize,
        rate_per_hour: f64,
        nodes: Vec<NodeId>,
        gpus: usize,
        duration: SimDuration,
    ) {
        let cost = rate_per_hour * duration.as_secs_f64() / 3600.0;
        self.entries.push(LedgerEntry {
            segment,
            duration,
            nodes,
            gpus,
            rate_per_hour,
            cost,
        });
    }

    /// Total dollars across all entries (the plain sum of `cost` fields).
    pub fn total(&self) -> f64 {
        self.entries.iter().map(|e| e.cost).sum()
    }

    /// Total billed wall-clock time.
    pub fn total_duration(&self) -> SimDuration {
        self.entries
            .iter()
            .fold(SimDuration::ZERO, |acc, e| acc + e.duration)
    }

    /// Average burn rate in $/hr over the billed time (0 for an empty
    /// ledger).
    pub fn mean_rate_per_hour(&self) -> f64 {
        let hours = self.total_duration().as_secs_f64() / 3600.0;
        if hours == 0.0 {
            return 0.0;
        }
        self.total() / hours
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_cluster::presets::elastic_cloud_pool;

    #[test]
    fn charge_prices_only_the_held_fleet() {
        let mut pool = elastic_cloud_pool();
        // Park everything but the base nodes.
        for &n in &pool.spot.clone() {
            pool.cluster.deactivate_node(n).unwrap();
        }
        let mut ledger = CostLedger::new();
        ledger.charge(0, &pool, &pool.cluster, SimDuration::from_secs(3600));
        let e = &ledger.entries[0];
        assert_eq!(e.nodes, pool.base);
        assert_eq!(e.gpus, 8);
        // One hour at the base burn rate costs exactly that rate.
        let base_rate: f64 = pool.base.iter().map(|&n| pool.node_price(n)).sum();
        assert!((e.cost - base_rate).abs() < 1e-12);

        // Acquire a spot node: the rate goes up by exactly its spot price.
        pool.cluster.activate_node(pool.spot[0]).unwrap();
        ledger.charge(1, &pool, &pool.cluster, SimDuration::from_secs(1800));
        let e1 = &ledger.entries[1];
        let spot_rate = pool.node_price(pool.spot[0]);
        assert!((e1.rate_per_hour - (base_rate + spot_rate)).abs() < 1e-12);
        assert!((e1.cost - e1.rate_per_hour * 0.5).abs() < 1e-12);

        // The invariant the CI asserts: entries sum to the total.
        let sum: f64 = ledger.entries.iter().map(|e| e.cost).sum();
        assert_eq!(sum, ledger.total());
        assert_eq!(ledger.total_duration(), SimDuration::from_secs(5400));
        assert!(ledger.mean_rate_per_hour() > base_rate);
    }
}
