//! Distilling a served segment into the controller's inputs.

use ts_common::{NodeId, SimTime, SloSpec};
use ts_sim::metrics::Metrics;
use ts_telemetry::{HealthSummary, Role, StreamSnapshot, TraceLog, UtilizationSeries};

/// What the control loop sees after one serving segment: a handful of
/// scalars derived from the segment's [`Metrics`] and telemetry
/// [`TraceLog`], plus the spot preemption warnings currently outstanding.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentObservation {
    /// Joint SLO attainment of the segment.
    pub attainment: f64,
    /// Time-weighted mean queue depth per prefill replica.
    pub prefill_queue: f64,
    /// Time-weighted mean queue depth per decode replica.
    pub decode_queue: f64,
    /// Mean batch-occupancy *duty*: time-weighted mean over peak, averaged
    /// across prefill replicas. 1.0 means every replica ran at its own
    /// segment peak the whole time; near 0 means the fleet idled.
    pub prefill_duty: f64,
    /// Same duty measure over decode replicas.
    pub decode_duty: f64,
    /// Nodes with an announced spot reclaim the controller has not yet
    /// drained, paired with the announced reclaim time.
    pub warned: Vec<(NodeId, SimTime)>,
    /// SLO burn-rate health distilled from the segment's streaming-plane
    /// snapshot, when the runtime served with streaming enabled. `None`
    /// when streaming is off — the controller then ignores burn signals
    /// entirely, keeping trajectories bit-identical to the pre-streaming
    /// behaviour.
    pub health: Option<HealthSummary>,
}

impl SegmentObservation {
    /// The busier role's queue pressure.
    pub fn peak_queue(&self) -> f64 {
        self.prefill_queue.max(self.decode_queue)
    }

    /// The busier role's duty cycle (scale-down looks at the busier role so
    /// it never cuts capacity a hot pool still needs).
    pub fn peak_duty(&self) -> f64 {
        self.prefill_duty.max(self.decode_duty)
    }
}

/// Duty cycle of one utilization series: time-weighted mean over peak,
/// 0.0 for an empty/flat-zero series.
fn duty(series: &UtilizationSeries, end: SimTime) -> f64 {
    let peak = series.peak();
    if peak <= 0.0 {
        return 0.0;
    }
    series.time_weighted_mean(end) / peak
}

/// Mean of `f` over the replicas of `role` present in the trace.
fn role_mean(trace: &TraceLog, role: Role, f: impl Fn(usize) -> f64) -> f64 {
    let replicas: Vec<usize> = trace
        .replicas()
        .into_iter()
        .filter(|(r, _)| *r == role)
        .map(|(_, i)| i)
        .collect();
    if replicas.is_empty() {
        return 0.0;
    }
    replicas.iter().map(|&i| f(i)).sum::<f64>() / replicas.len() as f64
}

/// Builds the controller's observation of one served segment.
///
/// `warned` carries the preemption warnings outstanding at the segment
/// boundary (node, announced reclaim time); the caller tracks them across
/// segments because a warning observed in segment *i* is acted on at the
/// *i*+1 boundary. Without a trace (telemetry off) the queue/duty signals
/// are zero and the controller falls back to attainment alone. `stream`
/// carries the segment's streaming-plane snapshot when available; its SLO
/// burn-rate health is distilled into [`SegmentObservation::health`].
pub fn observe_segment(
    metrics: &Metrics,
    trace: Option<&TraceLog>,
    stream: Option<&StreamSnapshot>,
    slo: &SloSpec,
    warned: Vec<(NodeId, SimTime)>,
) -> SegmentObservation {
    let end = SimTime::ZERO + metrics.horizon();
    let (pq, dq, pd, dd) = match trace {
        Some(t) => (
            role_mean(t, Role::Prefill, |i| {
                t.queue_depth_series(Role::Prefill, i)
                    .time_weighted_mean(end)
            }),
            role_mean(t, Role::Decode, |i| {
                t.queue_depth_series(Role::Decode, i)
                    .time_weighted_mean(end)
            }),
            role_mean(t, Role::Prefill, |i| {
                duty(&t.batch_occupancy_series(Role::Prefill, i), end)
            }),
            role_mean(t, Role::Decode, |i| {
                duty(&t.batch_occupancy_series(Role::Decode, i), end)
            }),
        ),
        None => (0.0, 0.0, 0.0, 0.0),
    };
    SegmentObservation {
        attainment: metrics.joint_attainment(slo),
        prefill_queue: pq,
        decode_queue: dq,
        prefill_duty: pd,
        decode_duty: dd,
        warned,
        health: stream.map(StreamSnapshot::health_summary),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_common::SimDuration;

    fn series(points: &[(u64, f64)]) -> UtilizationSeries {
        let mut s = UtilizationSeries::new();
        for &(t, v) in points {
            s.push(SimTime::from_micros(t), v);
        }
        s
    }

    #[test]
    fn duty_normalizes_by_peak() {
        // Half the window at 8, half at 0: mean 4, peak 8 → duty 0.5.
        let s = series(&[(0, 8.0), (500_000, 0.0)]);
        let d = duty(&s, SimTime::from_micros(1_000_000));
        assert!((d - 0.5).abs() < 1e-9, "duty {d}");
        assert_eq!(duty(&UtilizationSeries::new(), SimTime::ZERO), 0.0);
    }

    #[test]
    fn observation_without_trace_uses_attainment_only() {
        let metrics = Metrics::new(Vec::new(), 0, SimDuration::from_secs(1));
        let slo = SloSpec::new(
            SimDuration::from_secs(5),
            SimDuration::from_millis(300),
            SimDuration::from_secs(60),
        );
        let obs = observe_segment(&metrics, None, None, &slo, vec![(NodeId(3), SimTime::ZERO)]);
        assert_eq!(obs.peak_queue(), 0.0);
        assert_eq!(obs.peak_duty(), 0.0);
        assert_eq!(obs.warned, vec![(NodeId(3), SimTime::ZERO)]);
        assert_eq!(obs.health, None, "no streaming snapshot, no health");
    }
}
