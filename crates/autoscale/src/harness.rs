//! Driving a [`ServingRuntime`] through a multi-segment trajectory under
//! the autoscale control loop, with full dollar accounting.

use std::collections::BTreeMap;

use thunderserve_core::config::SchedulerConfig;
use thunderserve_core::reschedule::FleetDelta;
use ts_cluster::availability::{ClusterEvent, EventKind};
use ts_cluster::ElasticPool;
use ts_common::{Error, ModelSpec, NodeId, Phase, Request, Result, SimDuration, SimTime, SloSpec};
use ts_runtime::{ReschedulePolicy, ServingRuntime};
use ts_telemetry::{ScaleKind, TraceEvent, TraceKind};
use ts_workload::WorkloadSpec;

use crate::config::AutoscaleConfig;
use crate::controller::{AutoscaleController, FleetAction};
use crate::ledger::CostLedger;
use crate::observe::observe_segment;

/// One serving segment of a trajectory: the requests to serve, the nominal
/// wall-clock window they cover, the workload spec describing them (for
/// rescheduling), and the availability events striking mid-segment, with
/// times relative to the segment start.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Requests arriving during the segment (segment-relative times).
    pub requests: Vec<Request>,
    /// Nominal wall-clock length (billing period and clock increment).
    pub window: SimDuration,
    /// Workload description handed to reschedules during this segment.
    pub workload: WorkloadSpec,
    /// Availability script for the segment (segment-relative times).
    pub events: Vec<ClusterEvent>,
}

/// Per-segment outcome of a trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentRecord {
    /// Segment index.
    pub segment: usize,
    /// Requests submitted.
    pub submitted: usize,
    /// Requests completed.
    pub completed: usize,
    /// Requests dropped after admission.
    pub dropped: usize,
    /// Requests refused admission.
    pub rejected: usize,
    /// Joint SLO attainment.
    pub attainment: f64,
    /// Active GPUs while serving the segment.
    pub fleet_gpus: usize,
    /// Prefill groups in the plan that served the segment.
    pub prefill_groups: usize,
    /// Decode groups in the plan that served the segment.
    pub decode_groups: usize,
    /// Fleet burn rate during the segment, $/hr.
    pub rate_per_hour: f64,
    /// Reload blackout charged at the segment start.
    pub blackout: SimDuration,
}

/// A full autoscaled (or static) trajectory: per-segment outcomes, the
/// dollar ledger, and the fleet-action trace.
#[derive(Debug, Clone, PartialEq)]
pub struct AutoscaleTrajectory {
    /// One record per served segment.
    pub records: Vec<SegmentRecord>,
    /// The dollar ledger (one entry per segment).
    pub ledger: CostLedger,
    /// Fleet actions taken, as [`TraceKind::ScaleAction`] events at
    /// trajectory-absolute times.
    pub scale_log: Vec<TraceEvent>,
}

impl AutoscaleTrajectory {
    /// Request-weighted mean joint attainment across segments.
    pub fn mean_attainment(&self) -> f64 {
        let total: usize = self.records.iter().map(|r| r.submitted).sum();
        if total == 0 {
            return 1.0;
        }
        self.records
            .iter()
            .map(|r| r.attainment * r.submitted as f64)
            .sum::<f64>()
            / total as f64
    }

    /// Total dollars spent.
    pub fn total_cost(&self) -> f64 {
        self.ledger.total()
    }

    /// Mean $/hr over the trajectory.
    pub fn mean_rate_per_hour(&self) -> f64 {
        self.ledger.mean_rate_per_hour()
    }

    /// Total requests completed.
    pub fn completed(&self) -> usize {
        self.records.iter().map(|r| r.completed).sum()
    }
}

/// A preemption warning resolved against the full script: when it was
/// announced and when the reclaim actually lands.
#[derive(Debug, Clone, Copy)]
struct ResolvedWarning {
    node: NodeId,
    warned_at: SimTime,
    reclaim_at: SimTime,
}

/// Pairs every `PreemptionWarning` in the trajectory script with the next
/// `ScaleDown` of the same node (the actual reclaim). A warning with no
/// following reclaim assumes one lead time out.
fn resolve_warnings(segments: &[Segment], lead: SimDuration) -> Vec<ResolvedWarning> {
    let mut abs: Vec<(SimTime, &EventKind)> = Vec::new();
    let mut start = SimTime::ZERO;
    for seg in segments {
        for ev in &seg.events {
            abs.push((start + ev.at.saturating_since(SimTime::ZERO), &ev.kind));
        }
        start += seg.window;
    }
    let mut out = Vec::new();
    for (i, (t, kind)) in abs.iter().enumerate() {
        if let EventKind::PreemptionWarning(n) = kind {
            let reclaim_at = abs[i..]
                .iter()
                .find_map(|(t2, k2)| match k2 {
                    EventKind::ScaleDown(m) if m == n => Some(*t2),
                    _ => None,
                })
                .unwrap_or(*t + lead);
            out.push(ResolvedWarning {
                node: *n,
                warned_at: *t,
                reclaim_at,
            });
        }
    }
    out
}

/// Prefill and decode group counts of the runtime's current plan.
fn phase_counts(rt: &ServingRuntime) -> (usize, usize) {
    rt.plan()
        .map(|p| {
            let pre = p
                .groups
                .iter()
                .filter(|g| g.phase == Phase::Prefill)
                .count();
            (pre, p.groups.len() - pre)
        })
        .unwrap_or((0, 0))
}

/// Groups of a plan keyed by their (sorted) GPU list, mapped to phase —
/// used to detect phase flips across a fleet edit.
fn phase_map(rt: &ServingRuntime) -> BTreeMap<Vec<u32>, (Phase, NodeId)> {
    let mut m = BTreeMap::new();
    if let Some(plan) = rt.plan() {
        for g in &plan.groups {
            let mut gpus: Vec<u32> = g.gpus().map(|x| x.0).collect();
            gpus.sort_unstable();
            let node = rt.cluster().gpu(ts_common::GpuId(gpus[0])).node;
            m.insert(gpus, (g.phase, node));
        }
    }
    m
}

/// Runs the coordinated autoscale control loop over an elastic pool.
///
/// The fleet starts as the pool's base nodes (spot nodes parked); the
/// controller acquires/releases/drains from segment boundaries onward,
/// driven by the previous segment's observation. Every segment is billed
/// to the ledger at the fleet's actual composition, segment availability
/// events (reclaim waves, outages) strike mid-flight through the runtime's
/// fault path, and every fleet action lands in the scale log.
///
/// Deterministic: same inputs → bit-identical trajectory.
///
/// # Errors
/// Returns [`Error::InvalidConfig`] for an empty trajectory; propagates
/// scheduling, cluster-edit and simulation failures.
pub fn run_elastic(
    pool: &ElasticPool,
    model: &ModelSpec,
    slo: &SloSpec,
    sched_cfg: &SchedulerConfig,
    cfg: &AutoscaleConfig,
    segments: &[Segment],
) -> Result<AutoscaleTrajectory> {
    cfg.validate();
    if segments.is_empty() {
        return Err(Error::InvalidConfig("empty trajectory".into()));
    }
    let mut cluster = pool.cluster.clone();
    for &n in &pool.spot {
        cluster.deactivate_node(n)?;
    }
    let mut rt = ServingRuntime::new(cluster, model.clone(), *slo, sched_cfg.clone());
    rt.set_telemetry(true);
    if cfg.mid_segment_signals {
        // Attach the streaming plane so segment reports carry burn-rate
        // health signals for the controller. Observation only: the served
        // metrics stay bit-identical whether or not the plane is attached.
        rt.set_streaming(Some(ts_telemetry::StreamConfig::new(*slo)));
    }
    rt.deploy(&segments[0].workload)?;

    let mut controller = AutoscaleController::new(cfg.clone());
    let warnings = resolve_warnings(segments, cfg.warning_lead_time);
    let mut warnings_logged = vec![false; warnings.len()];

    let mut ledger = CostLedger::new();
    let mut records = Vec::with_capacity(segments.len());
    let mut scale_log: Vec<TraceEvent> = Vec::new();
    let mut last_obs = None;
    let mut now = SimTime::ZERO;

    for (i, seg) in segments.iter().enumerate() {
        // Control step at the segment boundary, driven by the previous
        // segment's observation.
        if let Some(obs) = last_obs.take() {
            let actions = controller.decide(pool, &obs, now);
            let mut delta = FleetDelta::default();
            for a in &actions {
                let kind = match a {
                    FleetAction::Acquire(n) => {
                        delta.acquired.push(*n);
                        ScaleKind::Acquire
                    }
                    FleetAction::Release(n) => {
                        delta.released.push(*n);
                        ScaleKind::Release
                    }
                    FleetAction::Drain(n) => {
                        delta.released.push(*n);
                        ScaleKind::Drain
                    }
                };
                scale_log.push(TraceEvent {
                    at: now,
                    kind: TraceKind::ScaleAction {
                        node: a.node().0 as usize,
                        kind,
                    },
                });
            }
            if !delta.is_empty() {
                let before = phase_map(&rt);
                rt.apply_fleet_delta(&delta, &seg.workload, cfg.full_replan_fraction)?;
                // Surviving groups whose designation flipped are part of the
                // coordinated rebalance: log them.
                for (gpus, (phase, node)) in phase_map(&rt) {
                    if let Some((old, _)) = before.get(&gpus) {
                        if *old != phase {
                            scale_log.push(TraceEvent {
                                at: now,
                                kind: TraceKind::ScaleAction {
                                    node: node.0 as usize,
                                    kind: ScaleKind::PhaseFlip,
                                },
                            });
                        }
                    }
                }
            }
        }

        let rep = rt.serve_segment_with_faults(
            &seg.requests,
            &seg.events,
            ReschedulePolicy::Lightweight,
            &seg.workload,
            cfg.heartbeat_timeout,
        )?;

        // Reclaims that landed mid-segment: the provider took the node, the
        // controller must not think it still holds it.
        for ev in &seg.events {
            if let EventKind::ScaleDown(n) = ev.kind {
                controller.note_reclaimed(n);
            }
        }

        let end = now + seg.window;
        // Warnings known by this boundary whose reclaim is still ahead feed
        // the next decision; each is logged once when it becomes known.
        let mut warned = Vec::new();
        for (w, logged) in warnings.iter().zip(warnings_logged.iter_mut()) {
            if w.warned_at < end {
                if !*logged {
                    scale_log.push(TraceEvent {
                        at: w.warned_at,
                        kind: TraceKind::ScaleAction {
                            node: w.node.0 as usize,
                            kind: ScaleKind::PreemptionWarning,
                        },
                    });
                    *logged = true;
                }
                if w.reclaim_at > end {
                    warned.push((w.node, w.reclaim_at));
                }
            }
        }
        last_obs = Some(observe_segment(
            &rep.metrics,
            rep.trace.as_ref(),
            rep.stream.as_ref(),
            slo,
            warned,
        ));

        if std::env::var("TS_AUTOSCALE_DEBUG").is_ok() {
            eprintln!(
                "seg {i}: ttft {:.3} tpot {:.3} e2e {:.3} groups {:?}",
                rep.metrics.slo_attainment(slo, ts_common::SloKind::Ttft),
                rep.metrics.slo_attainment(slo, ts_common::SloKind::Tpot),
                rep.metrics.slo_attainment(slo, ts_common::SloKind::E2e),
                rt.plan().map(|p| p
                    .groups
                    .iter()
                    .map(|g| (g.phase, g.num_gpus()))
                    .collect::<Vec<_>>())
            );
        }
        ledger.charge(i, pool, rt.cluster(), seg.window);
        let entry = ledger.entries.last().expect("just charged");
        let (pre, dec) = phase_counts(&rt);
        records.push(SegmentRecord {
            segment: i,
            submitted: seg.requests.len(),
            completed: rep.metrics.num_completed(),
            dropped: rep.metrics.num_dropped(),
            rejected: rep.metrics.num_rejected(),
            attainment: rep.metrics.joint_attainment(slo),
            fleet_gpus: entry.gpus,
            prefill_groups: pre,
            decode_groups: dec,
            rate_per_hour: entry.rate_per_hour,
            blackout: rep.blackout,
        });
        now = end;
    }

    scale_log.sort_by_key(|e| e.at);
    Ok(AutoscaleTrajectory {
        records,
        ledger,
        scale_log,
    })
}

/// Runs the same trajectory on a *static* fleet: the whole pool held
/// on-demand the entire time. On-demand capacity is not preempted, so the
/// script's spot reclaim events do not apply; the fleet never changes, so
/// there is nothing to reschedule. This is the oracle-provisioned
/// cost/quality baseline the autoscaler is judged against.
///
/// # Errors
/// Returns [`Error::InvalidConfig`] for an empty trajectory; propagates
/// scheduling and simulation failures.
pub fn run_static(
    pool: &ElasticPool,
    model: &ModelSpec,
    slo: &SloSpec,
    sched_cfg: &SchedulerConfig,
    segments: &[Segment],
) -> Result<AutoscaleTrajectory> {
    if segments.is_empty() {
        return Err(Error::InvalidConfig("empty trajectory".into()));
    }
    let mut rt = ServingRuntime::new(pool.cluster.clone(), model.clone(), *slo, sched_cfg.clone());
    rt.deploy(&segments[0].workload)?;
    let rate = pool.static_price_per_hour();
    let nodes: Vec<NodeId> = (0..pool.cluster.num_nodes() as u32).map(NodeId).collect();
    let gpus = pool.cluster.num_gpus();

    let mut ledger = CostLedger::new();
    let mut records = Vec::with_capacity(segments.len());
    for (i, seg) in segments.iter().enumerate() {
        let rep = rt.serve_segment(&seg.requests)?;
        ledger.charge_at_rate(i, rate, nodes.clone(), gpus, seg.window);
        let (pre, dec) = phase_counts(&rt);
        records.push(SegmentRecord {
            segment: i,
            submitted: seg.requests.len(),
            completed: rep.metrics.num_completed(),
            dropped: rep.metrics.num_dropped(),
            rejected: rep.metrics.num_rejected(),
            attainment: rep.metrics.joint_attainment(slo),
            fleet_gpus: gpus,
            prefill_groups: pre,
            decode_groups: dec,
            rate_per_hour: rate,
            blackout: rep.blackout,
        });
    }
    Ok(AutoscaleTrajectory {
        records,
        ledger,
        scale_log: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_cluster::presets::elastic_cloud_pool;
    use ts_workload::{generator::generate, spec};

    fn slo() -> SloSpec {
        SloSpec::new(
            SimDuration::from_secs(5),
            SimDuration::from_millis(300),
            SimDuration::from_secs(60),
        )
    }

    fn sched() -> SchedulerConfig {
        let mut c = SchedulerConfig::fast();
        c.seed = 47;
        c
    }

    /// Four 60 s segments: calm, hot (4× rate), warned, reclaimed — the
    /// warning for spot node 6 lands one segment before the reclaim so the
    /// controller has a boundary to drain at.
    fn trajectory() -> Vec<Segment> {
        let window = SimDuration::from_secs(60);
        let mk = |rate: f64, seed: u64, events: Vec<ClusterEvent>| {
            let w = spec::coding(rate);
            Segment {
                requests: generate(&w, window, seed),
                window,
                workload: w,
                events,
            }
        };
        vec![
            mk(1.0, 1, vec![]),
            mk(4.0, 2, vec![]),
            mk(
                2.0,
                3,
                vec![ClusterEvent::new(
                    SimTime::from_secs_f64(5.0),
                    EventKind::PreemptionWarning(NodeId(6)),
                )],
            ),
            mk(
                1.0,
                4,
                vec![ClusterEvent::new(
                    SimTime::from_secs_f64(10.0),
                    EventKind::ScaleDown(NodeId(6)),
                )],
            ),
        ]
    }

    #[test]
    fn elastic_trajectory_is_deterministic_and_ledger_consistent() {
        let pool = elastic_cloud_pool();
        let cfg = AutoscaleConfig::default();
        let a = run_elastic(
            &pool,
            &ModelSpec::llama_30b(),
            &slo(),
            &sched(),
            &cfg,
            &trajectory(),
        )
        .unwrap();
        let b = run_elastic(
            &pool,
            &ModelSpec::llama_30b(),
            &slo(),
            &sched(),
            &cfg,
            &trajectory(),
        )
        .unwrap();
        assert_eq!(a, b, "trajectory must be bit-reproducible");
        assert_eq!(a.records.len(), 4);
        // Ledger invariant: entries sum to the total.
        let sum: f64 = a.ledger.entries.iter().map(|e| e.cost).sum();
        assert_eq!(sum, a.total_cost());
        assert_eq!(a.ledger.entries.len(), 4);
        // The base fleet is billed in segment 0 (spot nodes parked).
        assert_eq!(a.records[0].fleet_gpus, 8);
        for r in &a.records {
            assert_eq!(
                r.completed + r.dropped + r.rejected,
                r.submitted,
                "segment {} must conserve requests",
                r.segment
            );
        }
    }

    #[test]
    fn mid_segment_signals_keep_the_trajectory_deterministic() {
        let pool = elastic_cloud_pool();
        let cfg = AutoscaleConfig {
            mid_segment_signals: true,
            ..AutoscaleConfig::default()
        };
        let run = || {
            run_elastic(
                &pool,
                &ModelSpec::llama_30b(),
                &slo(),
                &sched(),
                &cfg,
                &trajectory(),
            )
            .unwrap()
        };
        let a = run();
        assert_eq!(a, run(), "signal-driven trajectory must replay exactly");
        for r in &a.records {
            assert_eq!(
                r.completed + r.dropped + r.rejected,
                r.submitted,
                "segment {} must conserve requests",
                r.segment
            );
        }
    }

    #[test]
    fn static_arm_holds_the_whole_pool_at_on_demand_rates() {
        let pool = elastic_cloud_pool();
        let t = run_static(
            &pool,
            &ModelSpec::llama_30b(),
            &slo(),
            &sched(),
            &trajectory(),
        )
        .unwrap();
        assert_eq!(t.records.len(), 4);
        assert!(t.scale_log.is_empty());
        for r in &t.records {
            assert_eq!(r.fleet_gpus, 32);
            assert!((r.rate_per_hour - pool.static_price_per_hour()).abs() < 1e-12);
        }
        // 4 minutes at the static rate.
        let expect = pool.static_price_per_hour() * 4.0 / 60.0;
        assert!((t.total_cost() - expect).abs() < 1e-9);
    }

    #[test]
    fn warned_reclaim_is_drained_not_crashed() {
        let pool = elastic_cloud_pool();
        // Aggressive thresholds so the hot segment acquires node 6 (the
        // cheapest spot node) before the reclaim wave hits it.
        let cfg = AutoscaleConfig {
            attainment_floor: 0.999,
            attainment_ceiling: 0.9995,
            cooldown_segments: 0,
            warning_lead_time: SimDuration::from_secs(120),
            ..AutoscaleConfig::default()
        };
        let t = run_elastic(
            &pool,
            &ModelSpec::llama_30b(),
            &slo(),
            &sched(),
            &cfg,
            &trajectory(),
        )
        .unwrap();
        let kinds: Vec<ScaleKind> = t
            .scale_log
            .iter()
            .filter_map(|e| match e.kind {
                TraceKind::ScaleAction { node: 6, kind } => Some(kind),
                _ => None,
            })
            .collect();
        assert!(
            kinds.contains(&ScaleKind::PreemptionWarning),
            "warning must be logged: {kinds:?}"
        );
        // If node 6 was held when the warning matured, it must have been
        // drained (never crash-reclaimed while populated).
        if kinds.contains(&ScaleKind::Acquire) {
            assert!(
                kinds.contains(&ScaleKind::Drain),
                "held node with due warning must drain: {kinds:?}"
            );
        }
    }
}
