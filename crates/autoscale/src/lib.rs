//! # ts-autoscale
//!
//! Coordinated prefill/decode autoscaling over a spot-priced elastic fleet.
//!
//! ThunderServe's scheduler (§3) decides *how* to use a fixed set of cloud
//! GPUs; this crate decides *which* GPUs to hold from segment to segment.
//! A deterministic control loop runs between serving segments:
//!
//! 1. [`observe::SegmentObservation`] distils the last segment's telemetry
//!    — SLO attainment, per-role queue depths and batch occupancy from the
//!    [`ts_telemetry::TraceLog`], plus outstanding spot preemption warnings
//!    — into a few scalars.
//! 2. [`controller::AutoscaleController`] turns the observation into
//!    [`controller::FleetAction`]s: acquire the cheapest suitable spot
//!    node when the SLO sags or queues build, release the most expensive
//!    held node when the fleet runs cold, and *proactively drain* nodes
//!    whose preemption warnings fall due — so the reclaim lands on an
//!    empty node instead of crashing replicas mid-flight.
//! 3. The harness hands the resulting
//!    [`thunderserve_core::reschedule::FleetDelta`] to
//!    [`ts_runtime::ServingRuntime::apply_fleet_delta`], which grafts or
//!    prunes replicas with **zero reload** for small deltas and escalates
//!    to a full re-plan only on large ones. Phase designations are chosen
//!    to keep the prefill:decode GPU ratio matched to what the two-level
//!    search picked, so both pools scale in a coordinated ratio.
//!
//! Every dollar is accounted: the [`ledger::CostLedger`] records one entry
//! per segment ($/hr by node and pricing tier, spot vs on-demand), and the
//! sum of per-segment costs must equal the trajectory total — an invariant
//! the `bench_autoscale` harness asserts in CI.
//!
//! The whole loop is deterministic: observations are pure functions of the
//! (deterministic) simulation outputs, the controller is a pure function of
//! its observation and held-set, and fleet edits reuse the seeded search —
//! a trajectory is bit-reproducible at a fixed seed.

pub mod config;
pub mod controller;
pub mod harness;
pub mod ledger;
pub mod observe;

pub use config::AutoscaleConfig;
pub use controller::{AutoscaleController, FleetAction};
pub use harness::{run_elastic, run_static, AutoscaleTrajectory, Segment, SegmentRecord};
pub use ledger::{CostLedger, LedgerEntry};
pub use observe::{observe_segment, SegmentObservation};
