//! The deterministic fleet controller.

use std::collections::BTreeSet;

use ts_cluster::ElasticPool;
use ts_common::{NodeId, SimTime};

use crate::config::AutoscaleConfig;
use crate::observe::SegmentObservation;

/// One fleet edit the controller decided on at a segment boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetAction {
    /// Acquire a parked spot node from the pool.
    Acquire(NodeId),
    /// Voluntarily release a held spot node back to the provider (the fleet
    /// runs cold; stop paying for it).
    Release(NodeId),
    /// Proactively drain a held node whose announced reclaim falls due:
    /// evict its replicas at this boundary so the reclaim lands on an empty
    /// node instead of crash-stopping work mid-flight.
    Drain(NodeId),
}

impl FleetAction {
    /// The node the action touches.
    pub fn node(self) -> NodeId {
        match self {
            FleetAction::Acquire(n) | FleetAction::Release(n) | FleetAction::Drain(n) => n,
        }
    }
}

/// Deterministic control loop over an [`ElasticPool`].
///
/// The controller owns the *held set*: base nodes are always held (and
/// never released), spot nodes are acquired and released as the observed
/// workload demands. Decisions are a pure function of the configuration,
/// the held set and the latest [`SegmentObservation`] — no randomness, no
/// wall clock — so a trajectory replays bit-identically.
#[derive(Debug, Clone)]
pub struct AutoscaleController {
    cfg: AutoscaleConfig,
    /// Spot nodes currently held (base nodes are implicit).
    held: BTreeSet<NodeId>,
    /// Spot nodes drained or released this trajectory whose reclaim was
    /// announced — never re-acquired (the provider is taking them back).
    lost: BTreeSet<NodeId>,
    /// Segments remaining before another voluntary action is allowed.
    cooldown: usize,
}

impl AutoscaleController {
    /// Creates a controller holding only the pool's base nodes.
    ///
    /// # Panics
    /// Panics if the configuration is inconsistent
    /// ([`AutoscaleConfig::validate`]).
    pub fn new(cfg: AutoscaleConfig) -> Self {
        cfg.validate();
        AutoscaleController {
            cfg,
            held: BTreeSet::new(),
            lost: BTreeSet::new(),
            cooldown: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &AutoscaleConfig {
        &self.cfg
    }

    /// Spot nodes currently held.
    pub fn held(&self) -> &BTreeSet<NodeId> {
        &self.held
    }

    /// Records that the provider reclaimed a node out from under us (a
    /// mid-segment `ScaleDown` the drain did not beat): it is no longer
    /// held and never shopped again.
    pub fn note_reclaimed(&mut self, node: NodeId) {
        self.held.remove(&node);
        self.lost.insert(node);
    }

    /// Decides the fleet edits for the next segment.
    ///
    /// Order matters and is fixed: preemption drains first (they bypass the
    /// cooldown — the provider's deadline does not negotiate), then at most
    /// one voluntary direction, scale-up winning over scale-down when both
    /// triggers somehow fire. `now` is the current runtime clock; a warning
    /// is acted on once `reclaim_at` is within
    /// [`AutoscaleConfig::warning_lead_time`] of it.
    pub fn decide(
        &mut self,
        pool: &ElasticPool,
        obs: &SegmentObservation,
        now: SimTime,
    ) -> Vec<FleetAction> {
        let mut actions = Vec::new();

        // 1. Drains: a held node whose reclaim falls due within the lead
        //    window is evicted now, while the fleet can still reroute
        //    gracefully.
        for &(node, reclaim_at) in &obs.warned {
            let due = reclaim_at.saturating_since(now) <= self.cfg.warning_lead_time;
            if due && self.held.remove(&node) {
                self.lost.insert(node);
                actions.push(FleetAction::Drain(node));
            } else if due {
                // Warned about a node we don't hold (or already drained):
                // remember not to acquire it.
                self.lost.insert(node);
            }
        }

        if self.cooldown > 0 {
            self.cooldown -= 1;
            return actions;
        }

        // A critical burn-rate signal from the streaming plane is a leading
        // indicator: the SLO budget is burning even if the segment-mean
        // attainment has not sagged below the floor yet. Only consulted when
        // mid-segment signals are enabled (and a snapshot was taken).
        let burning = self.cfg.mid_segment_signals
            && obs
                .health
                .as_ref()
                .is_some_and(|h| h.worst == ts_telemetry::HealthState::Critical);
        let pressure = obs.attainment < self.cfg.attainment_floor
            || obs.peak_queue() > self.cfg.queue_depth_high
            || burning;
        let cold = obs.attainment >= self.cfg.attainment_ceiling
            && obs.peak_duty() < self.cfg.occupancy_low
            && obs.peak_queue() < 1.0;

        if pressure {
            // Acquire the cheapest parked spot nodes first: the tabu search
            // will decide what to run on them, the controller only shops.
            let mut candidates: Vec<NodeId> = pool
                .spot
                .iter()
                .copied()
                .filter(|n| !self.held.contains(n) && !self.lost.contains(n))
                .collect();
            candidates.sort_by(|&a, &b| {
                pool.node_price(a)
                    .partial_cmp(&pool.node_price(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
            for n in candidates.into_iter().take(self.cfg.max_acquire_per_step) {
                self.held.insert(n);
                actions.push(FleetAction::Acquire(n));
            }
        } else if cold {
            // Release the most expensive held node: biggest saving first.
            let mut held: Vec<NodeId> = self.held.iter().copied().collect();
            held.sort_by(|&a, &b| {
                pool.node_price(b)
                    .partial_cmp(&pool.node_price(a))
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
            for n in held.into_iter().take(self.cfg.max_release_per_step) {
                self.held.remove(&n);
                actions.push(FleetAction::Release(n));
            }
        }
        if actions
            .iter()
            .any(|a| matches!(a, FleetAction::Acquire(_) | FleetAction::Release(_)))
        {
            self.cooldown = self.cfg.cooldown_segments;
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_cluster::presets::elastic_cloud_pool;

    fn obs(attainment: f64, queue: f64, duty: f64) -> SegmentObservation {
        SegmentObservation {
            attainment,
            prefill_queue: queue,
            decode_queue: queue / 2.0,
            prefill_duty: duty,
            decode_duty: duty / 2.0,
            warned: Vec::new(),
            health: None,
        }
    }

    fn critical_health() -> ts_telemetry::HealthSummary {
        ts_telemetry::HealthSummary {
            worst: ts_telemetry::HealthState::Critical,
            max_fast_burn: 30.0,
            max_slow_burn: 5.0,
        }
    }

    #[test]
    fn critical_burn_is_pressure_only_when_signals_enabled() {
        let pool = elastic_cloud_pool();
        // Attainment and queues sit in the dead band: without the burn
        // signal nothing happens.
        let mut calm = obs(0.9, 1.0, 0.6);
        calm.health = Some(critical_health());

        let mut ignoring = AutoscaleController::new(AutoscaleConfig::default());
        assert!(
            ignoring.decide(&pool, &calm, SimTime::ZERO).is_empty(),
            "burn signals must be inert with the knob off"
        );

        let mut heeding = AutoscaleController::new(AutoscaleConfig {
            mid_segment_signals: true,
            ..AutoscaleConfig::default()
        });
        let a = heeding.decide(&pool, &calm, SimTime::ZERO);
        assert!(
            a.iter().any(|x| matches!(x, FleetAction::Acquire(_))),
            "critical burn must read as scale-up pressure: {a:?}"
        );
        // A warning-level (or absent) signal changes nothing.
        let mut warn = obs(0.9, 1.0, 0.6);
        warn.health = Some(ts_telemetry::HealthSummary {
            worst: ts_telemetry::HealthState::Warning,
            max_fast_burn: 3.0,
            max_slow_burn: 0.5,
        });
        let mut c = AutoscaleController::new(AutoscaleConfig {
            mid_segment_signals: true,
            ..AutoscaleConfig::default()
        });
        assert!(c.decide(&pool, &warn, SimTime::ZERO).is_empty());
    }

    #[test]
    fn pressure_acquires_cheapest_spot_first() {
        let pool = elastic_cloud_pool();
        let mut c = AutoscaleController::new(AutoscaleConfig {
            max_acquire_per_step: 1,
            ..AutoscaleConfig::default()
        });
        let a = c.decide(&pool, &obs(0.5, 10.0, 0.9), SimTime::ZERO);
        assert_eq!(a.len(), 1);
        let FleetAction::Acquire(n) = a[0] else {
            panic!("expected acquire, got {a:?}");
        };
        // Cheapest spot nodes in the pool are the A5000 boxes (6, 7).
        assert_eq!(n, NodeId(6));
        assert!(c.held().contains(&NodeId(6)));
    }

    #[test]
    fn cooldown_suppresses_voluntary_actions_but_not_drains() {
        let pool = elastic_cloud_pool();
        let mut c = AutoscaleController::new(AutoscaleConfig {
            cooldown_segments: 2,
            ..AutoscaleConfig::default()
        });
        assert!(!c
            .decide(&pool, &obs(0.5, 10.0, 0.9), SimTime::ZERO)
            .is_empty());
        // Still under pressure, but cooling down.
        assert!(c
            .decide(&pool, &obs(0.5, 10.0, 0.9), SimTime::ZERO)
            .is_empty());
        // A due warning drains regardless of cooldown.
        let held = *c.held().iter().next().unwrap();
        let mut warned = obs(0.5, 10.0, 0.9);
        warned.warned = vec![(held, SimTime::from_secs_f64(30.0))];
        let a = c.decide(&pool, &warned, SimTime::ZERO);
        assert_eq!(a, vec![FleetAction::Drain(held)]);
        assert!(!c.held().contains(&held));
    }

    #[test]
    fn drained_nodes_are_never_reacquired() {
        let pool = elastic_cloud_pool();
        let mut c = AutoscaleController::new(AutoscaleConfig {
            cooldown_segments: 0,
            max_acquire_per_step: 8,
            ..AutoscaleConfig::default()
        });
        // Acquire everything, then drain one on a warning.
        c.decide(&pool, &obs(0.5, 10.0, 0.9), SimTime::ZERO);
        let victim = *c.held().iter().next().unwrap();
        let mut warned = obs(0.99, 0.0, 0.9);
        warned.warned = vec![(victim, SimTime::ZERO)];
        c.decide(&pool, &warned, SimTime::ZERO);
        assert!(!c.held().contains(&victim));
        // Renewed pressure must not shop the reclaimed node again.
        let a = c.decide(&pool, &obs(0.5, 10.0, 0.9), SimTime::ZERO);
        assert!(
            a.iter().all(|x| x.node() != victim),
            "reclaimed node re-acquired: {a:?}"
        );
    }

    #[test]
    fn cold_fleet_releases_most_expensive_held_node() {
        let pool = elastic_cloud_pool();
        let mut c = AutoscaleController::new(AutoscaleConfig {
            cooldown_segments: 0,
            max_acquire_per_step: 8,
            ..AutoscaleConfig::default()
        });
        c.decide(&pool, &obs(0.5, 10.0, 0.9), SimTime::ZERO);
        let dear = c
            .held()
            .iter()
            .copied()
            .max_by(|&a, &b| {
                pool.node_price(a)
                    .partial_cmp(&pool.node_price(b))
                    .unwrap()
                    .then(b.cmp(&a))
            })
            .unwrap();
        let a = c.decide(&pool, &obs(0.99, 0.0, 0.1), SimTime::ZERO);
        assert_eq!(a, vec![FleetAction::Release(dear)]);
    }

    #[test]
    fn dead_band_holds_the_fleet_steady() {
        let pool = elastic_cloud_pool();
        let mut c = AutoscaleController::new(AutoscaleConfig {
            cooldown_segments: 0,
            ..AutoscaleConfig::default()
        });
        // Attainment between floor and ceiling, queues moderate: no action.
        assert!(c
            .decide(&pool, &obs(0.9, 1.0, 0.6), SimTime::ZERO)
            .is_empty());
    }

    #[test]
    fn far_future_warning_is_not_acted_on_yet() {
        let pool = elastic_cloud_pool();
        let mut c = AutoscaleController::new(AutoscaleConfig {
            cooldown_segments: 0,
            ..AutoscaleConfig::default()
        });
        c.decide(&pool, &obs(0.5, 10.0, 0.9), SimTime::ZERO);
        let held = *c.held().iter().next().unwrap();
        let mut warned = obs(0.9, 1.0, 0.6);
        // Reclaim a full hour out, lead time is 120 s: keep serving on it.
        warned.warned = vec![(held, SimTime::from_secs_f64(3600.0))];
        let a = c.decide(&pool, &warned, SimTime::ZERO);
        assert!(a.is_empty(), "{a:?}");
        assert!(c.held().contains(&held));
    }
}
