//! Autoscaler tuning knobs.

use ts_common::SimDuration;

/// Configuration of the [`crate::AutoscaleController`] and harness.
///
/// Thresholds are deliberately hysteretic: the scale-up trigger
/// (`attainment_floor` / `queue_depth_high`) and the scale-down trigger
/// (`attainment_ceiling` + `occupancy_low`) leave a dead band in between,
/// and `cooldown_segments` rate-limits consecutive actions, so the fleet
/// does not thrash on workload noise. Preemption drains bypass both — an
/// announced reclaim does not wait for a cooldown.
#[derive(Debug, Clone, PartialEq)]
pub struct AutoscaleConfig {
    /// Scale up when segment SLO attainment falls below this.
    pub attainment_floor: f64,
    /// Consider scale-down only when attainment is at least this.
    pub attainment_ceiling: f64,
    /// Scale up when the worse per-role mean queue depth exceeds this
    /// (requests waiting per replica — leading indicator that fires before
    /// attainment visibly sags).
    pub queue_depth_high: f64,
    /// Consider scale-down when the busier role's mean batch occupancy is
    /// below this fraction of capacity.
    pub occupancy_low: f64,
    /// Minimum number of segments between voluntary scale actions.
    pub cooldown_segments: usize,
    /// How far ahead of the announced reclaim a held node is drained. A
    /// warning whose reclaim is further out than this is remembered but not
    /// acted on yet.
    pub warning_lead_time: SimDuration,
    /// Maximum nodes acquired in one control step.
    pub max_acquire_per_step: usize,
    /// Maximum nodes released in one control step (drains are exempt).
    pub max_release_per_step: usize,
    /// Fraction of the active fleet a delta may touch before the runtime
    /// escalates to a full re-plan (see
    /// [`ts_runtime::ServingRuntime::apply_fleet_delta`]).
    pub full_replan_fraction: f64,
    /// Heartbeat timeout used when serving segments with fault scripts.
    pub heartbeat_timeout: SimDuration,
    /// Consume streaming-plane SLO burn-rate signals in the control loop:
    /// segments run with the streaming plane attached and a `Critical`
    /// burn-rate health signal counts as scale-up pressure even before
    /// attainment visibly sags. Off by default; when off, trajectories are
    /// bit-identical to the pre-streaming controller.
    pub mid_segment_signals: bool,
}

impl Default for AutoscaleConfig {
    fn default() -> Self {
        AutoscaleConfig {
            attainment_floor: 0.85,
            attainment_ceiling: 0.95,
            queue_depth_high: 4.0,
            occupancy_low: 0.35,
            cooldown_segments: 1,
            warning_lead_time: SimDuration::from_secs(120),
            max_acquire_per_step: 2,
            max_release_per_step: 1,
            full_replan_fraction: 0.5,
            heartbeat_timeout: SimDuration::from_secs(1),
            mid_segment_signals: false,
        }
    }
}

impl AutoscaleConfig {
    /// Validates threshold ordering (floor below ceiling, sane fractions).
    ///
    /// # Panics
    /// Panics on inconsistent thresholds; called by the harness up front so
    /// misconfiguration fails loudly rather than producing a quietly absurd
    /// trajectory.
    pub fn validate(&self) {
        assert!(
            self.attainment_floor < self.attainment_ceiling,
            "attainment floor {} must lie below ceiling {}",
            self.attainment_floor,
            self.attainment_ceiling
        );
        assert!(
            (0.0..=1.0).contains(&self.attainment_floor)
                && (0.0..=1.0).contains(&self.attainment_ceiling),
            "attainment thresholds must be fractions"
        );
        assert!(
            self.occupancy_low >= 0.0 && self.queue_depth_high >= 0.0,
            "utilization thresholds must be non-negative"
        );
        assert!(
            (0.0..=1.0).contains(&self.full_replan_fraction),
            "full_replan_fraction must be a fraction"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        AutoscaleConfig::default().validate();
    }

    #[test]
    #[should_panic(expected = "floor")]
    fn inverted_thresholds_panic() {
        let cfg = AutoscaleConfig {
            attainment_floor: 0.99,
            attainment_ceiling: 0.9,
            ..AutoscaleConfig::default()
        };
        cfg.validate();
    }
}
