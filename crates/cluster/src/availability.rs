//! Availability events for dynamic-cluster experiments.
//!
//! Cloud resources are unstable (§3.4): nodes fail heartbeats, spot instances
//! are preempted, and capacity is added back later. A [`ClusterEvent`] is a
//! timestamped change to the availability mask of a [`crate::Cluster`]; the
//! runtime replays a script of these events to drive the Figure 11
//! experiment (4 of 32 GPUs going offline).
//!
//! Scripts have a line-oriented text form (one `event <micros> <kind> …`
//! line each, see [`script_to_text`]) so failure scenarios can be saved and
//! replayed without a JSON dependency.

use serde::{Deserialize, Serialize};
use ts_common::{Error, GpuId, NodeId, Result, SimTime};

use crate::topology::Cluster;

/// What changed.
///
/// The `*Down`/`*Up` kinds flip the cluster's availability mask (crash-stop
/// failures). The degradation kinds — [`EventKind::NodeSlow`],
/// [`EventKind::LinkDegraded`] and [`EventKind::HeartbeatFlaky`] — describe
/// *gray* failures: capacity that stays online but underperforms. They do
/// not touch the availability mask (the resource is still schedulable);
/// engines consume them by projecting onto replica-level degradation faults
/// (`ts_sim::FaultScript::from_cluster_events`). A degradation factor of
/// exactly 1 (or a loss probability of 0) means "healed".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// A whole node went offline (heartbeat timeout).
    NodeDown(NodeId),
    /// A whole node came back online (outage ended / replacement arrived).
    NodeUp(NodeId),
    /// Specific GPUs went offline.
    GpusDown(Vec<GpuId>),
    /// Specific GPUs came (back) online.
    GpusUp(Vec<GpuId>),
    /// A node became a straggler: compute on it runs `factor`× slower
    /// (factor ≥ 1; 1 heals).
    NodeSlow(NodeId, f64),
    /// The network path between two nodes lost bandwidth: transfers run
    /// `factor`× slower (factor ≥ 1; 1 heals).
    LinkDegraded(NodeId, NodeId, f64),
    /// A node's heartbeats are lost with the given probability per beat
    /// (0 ≤ p ≤ 1; 0 heals), flapping it in and out of routing.
    HeartbeatFlaky(NodeId, f64),
    /// The fleet deliberately acquired this node (autoscaler scale-up or a
    /// spot grant). Activates the node like [`EventKind::NodeUp`], but marks
    /// the change as *intentional*: the runtime registers heartbeats rather
    /// than treating it as an outage ending.
    ScaleUp(NodeId),
    /// The fleet deliberately released this node (autoscaler scale-down or
    /// a spot reclaim firing). Deactivates the node like
    /// [`EventKind::NodeDown`], but the control plane deregisters its
    /// heartbeats instead of waiting for a timeout.
    ScaleDown(NodeId),
    /// The provider announced it will reclaim this spot node soon. The
    /// availability mask is untouched — the node still serves — but an
    /// autoscaler with enough warning lead time drains it proactively
    /// instead of paying crash recovery when the `scale-down` lands.
    PreemptionWarning(NodeId),
}

/// A timestamped availability change.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterEvent {
    /// When the change is observed.
    pub at: SimTime,
    /// The change itself.
    pub kind: EventKind,
}

impl ClusterEvent {
    /// Creates an event.
    pub fn new(at: SimTime, kind: EventKind) -> Self {
        ClusterEvent { at, kind }
    }

    /// Applies this event to a cluster's availability mask. Degradation
    /// events leave the mask untouched (the resource stays schedulable);
    /// they only validate their node ids.
    ///
    /// # Errors
    /// Propagates [`ts_common::Error::InvalidConfig`] for unknown ids.
    pub fn apply(&self, cluster: &mut Cluster) -> Result<()> {
        let check_node = |n: NodeId| {
            if (n.0 as usize) < cluster.nodes().len() {
                Ok(())
            } else {
                Err(Error::InvalidConfig(format!("unknown node {}", n.0)))
            }
        };
        match &self.kind {
            EventKind::NodeDown(n) | EventKind::ScaleDown(n) => cluster.deactivate_node(*n),
            EventKind::NodeUp(n) | EventKind::ScaleUp(n) => cluster.activate_node(*n),
            EventKind::GpusDown(ids) => cluster.deactivate_gpus(ids),
            EventKind::GpusUp(ids) => cluster.activate_gpus(ids),
            EventKind::NodeSlow(n, _)
            | EventKind::HeartbeatFlaky(n, _)
            | EventKind::PreemptionWarning(n) => check_node(*n),
            EventKind::LinkDegraded(a, b, _) => check_node(*a).and_then(|()| check_node(*b)),
        }
    }
}

/// Sorts a script of events by time (stable), so it can be replayed in order.
pub fn sort_script(events: &mut [ClusterEvent]) {
    events.sort_by_key(|e| e.at);
}

/// Renders a script in the text format, one event per line:
///
/// ```text
/// event 2000000 node-down 1
/// event 5000000 gpus-up 4,5
/// ```
pub fn script_to_text(events: &[ClusterEvent]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for e in events {
        let _ = write!(out, "event {} ", e.at.as_micros());
        match &e.kind {
            EventKind::NodeDown(n) => {
                let _ = writeln!(out, "node-down {}", n.0);
            }
            EventKind::NodeUp(n) => {
                let _ = writeln!(out, "node-up {}", n.0);
            }
            EventKind::GpusDown(ids) => {
                let _ = writeln!(out, "gpus-down {}", join_ids(ids));
            }
            EventKind::GpusUp(ids) => {
                let _ = writeln!(out, "gpus-up {}", join_ids(ids));
            }
            EventKind::NodeSlow(n, f) => {
                let _ = writeln!(out, "node-slow {} {}", n.0, f);
            }
            EventKind::LinkDegraded(a, b, f) => {
                let _ = writeln!(out, "link-degraded {} {} {}", a.0, b.0, f);
            }
            EventKind::HeartbeatFlaky(n, p) => {
                let _ = writeln!(out, "heartbeat-flaky {} {}", n.0, p);
            }
            EventKind::ScaleUp(n) => {
                let _ = writeln!(out, "scale-up {}", n.0);
            }
            EventKind::ScaleDown(n) => {
                let _ = writeln!(out, "scale-down {}", n.0);
            }
            EventKind::PreemptionWarning(n) => {
                let _ = writeln!(out, "preemption-warning {}", n.0);
            }
        }
    }
    out
}

fn join_ids(ids: &[GpuId]) -> String {
    ids.iter()
        .map(|g| g.0.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

/// Parses a script from the text format (blank lines ignored).
///
/// # Errors
/// Returns [`Error::InvalidConfig`] describing the first malformed line.
pub fn script_from_text(text: &str) -> Result<Vec<ClusterEvent>> {
    let bad = |msg: String| Error::InvalidConfig(format!("script parse: {msg}"));
    let mut events = Vec::new();
    for line in text.lines().map(str::trim).filter(|l| !l.is_empty()) {
        let mut parts = line.split_whitespace();
        if parts.next() != Some("event") {
            return Err(bad(format!("expected 'event ...', got {line:?}")));
        }
        let at: u64 = parts
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| bad(format!("bad timestamp in {line:?}")))?;
        let kind = parts
            .next()
            .ok_or_else(|| bad(format!("missing kind in {line:?}")))?;
        let args: Vec<&str> = parts.collect();
        let want = |n: usize| -> Result<()> {
            match args.len().cmp(&n) {
                std::cmp::Ordering::Less => Err(bad(format!("missing argument in {line:?}"))),
                std::cmp::Ordering::Greater => Err(bad(format!("trailing tokens in {line:?}"))),
                std::cmp::Ordering::Equal => Ok(()),
            }
        };
        let parse_node = |v: &str| {
            v.parse::<u32>()
                .map(NodeId)
                .map_err(|_| bad(format!("bad node id {v:?}")))
        };
        let parse_gpus = |v: &str| -> Result<Vec<GpuId>> {
            v.split(',')
                .map(|t| {
                    t.parse::<u32>()
                        .map(GpuId)
                        .map_err(|_| bad(format!("bad gpu id {t:?}")))
                })
                .collect()
        };
        // Degradation factors are slowdown multipliers: a factor below 1
        // would be a speed-up and a factor of 0 or less is meaningless, so
        // both are rejected (exactly 1 means "healed").
        let parse_factor = |v: &str| -> Result<f64> {
            let f: f64 = v
                .parse()
                .map_err(|_| bad(format!("bad degradation factor {v:?}")))?;
            if f.is_finite() && f >= 1.0 {
                Ok(f)
            } else {
                Err(bad(format!(
                    "degradation factor must be >= 1 (got {v}; 1 heals)"
                )))
            }
        };
        let parse_prob = |v: &str| -> Result<f64> {
            let p: f64 = v
                .parse()
                .map_err(|_| bad(format!("bad loss probability {v:?}")))?;
            if p.is_finite() && (0.0..=1.0).contains(&p) {
                Ok(p)
            } else {
                Err(bad(format!("loss probability must be in [0, 1] (got {v})")))
            }
        };
        let kind = match kind {
            "node-down" => {
                want(1)?;
                EventKind::NodeDown(parse_node(args[0])?)
            }
            "node-up" => {
                want(1)?;
                EventKind::NodeUp(parse_node(args[0])?)
            }
            "gpus-down" => {
                want(1)?;
                EventKind::GpusDown(parse_gpus(args[0])?)
            }
            "gpus-up" => {
                want(1)?;
                EventKind::GpusUp(parse_gpus(args[0])?)
            }
            "node-slow" => {
                want(2)?;
                EventKind::NodeSlow(parse_node(args[0])?, parse_factor(args[1])?)
            }
            "link-degraded" => {
                want(3)?;
                EventKind::LinkDegraded(
                    parse_node(args[0])?,
                    parse_node(args[1])?,
                    parse_factor(args[2])?,
                )
            }
            "heartbeat-flaky" => {
                want(2)?;
                EventKind::HeartbeatFlaky(parse_node(args[0])?, parse_prob(args[1])?)
            }
            "scale-up" => {
                want(1)?;
                EventKind::ScaleUp(parse_node(args[0])?)
            }
            "scale-down" => {
                want(1)?;
                EventKind::ScaleDown(parse_node(args[0])?)
            }
            "preemption-warning" => {
                want(1)?;
                EventKind::PreemptionWarning(parse_node(args[0])?)
            }
            other => return Err(bad(format!("unknown event kind {other:?}"))),
        };
        events.push(ClusterEvent::new(SimTime::from_micros(at), kind));
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::GpuModel;
    use crate::topology::ClusterBuilder;

    fn cluster() -> Cluster {
        ClusterBuilder::new()
            .node("a", GpuModel::A5000, 2)
            .node("b", GpuModel::A5000, 2)
            .build()
            .unwrap()
    }

    #[test]
    fn node_down_then_gpus_up() {
        let mut c = cluster();
        ClusterEvent::new(SimTime::ZERO, EventKind::NodeDown(NodeId(1)))
            .apply(&mut c)
            .unwrap();
        assert_eq!(c.num_gpus(), 2);
        ClusterEvent::new(SimTime::from_micros(5), EventKind::GpusUp(vec![GpuId(2)]))
            .apply(&mut c)
            .unwrap();
        assert_eq!(c.num_gpus(), 3);
    }

    #[test]
    fn node_up_restores_the_whole_node() {
        let mut c = cluster();
        ClusterEvent::new(SimTime::ZERO, EventKind::NodeDown(NodeId(0)))
            .apply(&mut c)
            .unwrap();
        assert_eq!(c.num_gpus(), 2);
        ClusterEvent::new(SimTime::from_micros(9), EventKind::NodeUp(NodeId(0)))
            .apply(&mut c)
            .unwrap();
        assert_eq!(c.num_gpus(), 4);
        assert!(c.is_active(GpuId(0)) && c.is_active(GpuId(1)));
    }

    #[test]
    fn script_sorts_by_time() {
        let mut script = vec![
            ClusterEvent::new(
                SimTime::from_micros(10),
                EventKind::GpusDown(vec![GpuId(0)]),
            ),
            ClusterEvent::new(SimTime::ZERO, EventKind::GpusDown(vec![GpuId(1)])),
        ];
        sort_script(&mut script);
        assert_eq!(script[0].at, SimTime::ZERO);
    }

    #[test]
    fn unknown_node_errors() {
        let mut c = cluster();
        let e = ClusterEvent::new(SimTime::ZERO, EventKind::NodeDown(NodeId(9)));
        assert!(e.apply(&mut c).is_err());
        let e = ClusterEvent::new(SimTime::ZERO, EventKind::NodeUp(NodeId(9)));
        assert!(e.apply(&mut c).is_err());
    }

    #[test]
    fn text_round_trips_every_kind() {
        let script = vec![
            ClusterEvent::new(
                SimTime::from_micros(2_000_000),
                EventKind::NodeDown(NodeId(1)),
            ),
            ClusterEvent::new(
                SimTime::from_micros(3_500_000),
                EventKind::NodeUp(NodeId(1)),
            ),
            ClusterEvent::new(
                SimTime::from_micros(4_000_000),
                EventKind::GpusDown(vec![GpuId(0), GpuId(3)]),
            ),
            ClusterEvent::new(
                SimTime::from_micros(5_000_000),
                EventKind::GpusUp(vec![GpuId(0)]),
            ),
        ];
        let text = script_to_text(&script);
        assert!(text.contains("event 2000000 node-down 1"));
        assert!(text.contains("event 4000000 gpus-down 0,3"));
        let back = script_from_text(&text).unwrap();
        assert_eq!(script, back);
    }

    #[test]
    fn text_rejects_malformed_lines() {
        assert!(script_from_text("event x node-down 1").is_err());
        assert!(script_from_text("event 5 explode 1").is_err());
        assert!(script_from_text("event 5 node-down").is_err());
        assert!(script_from_text("event 5 gpus-up 1,x").is_err());
        assert!(script_from_text("event 5 node-up 1 junk").is_err());
        assert!(script_from_text("not-an-event 5 node-up 1").is_err());
        assert!(script_from_text("").unwrap().is_empty());
    }

    #[test]
    fn text_round_trips_degradation_kinds() {
        let script = vec![
            ClusterEvent::new(
                SimTime::from_micros(1_000_000),
                EventKind::NodeSlow(NodeId(0), 3.5),
            ),
            ClusterEvent::new(
                SimTime::from_micros(2_000_000),
                EventKind::LinkDegraded(NodeId(0), NodeId(1), 8.0),
            ),
            ClusterEvent::new(
                SimTime::from_micros(3_000_000),
                EventKind::HeartbeatFlaky(NodeId(1), 0.25),
            ),
            // Healing forms round-trip too.
            ClusterEvent::new(
                SimTime::from_micros(4_000_000),
                EventKind::NodeSlow(NodeId(0), 1.0),
            ),
            ClusterEvent::new(
                SimTime::from_micros(5_000_000),
                EventKind::HeartbeatFlaky(NodeId(1), 0.0),
            ),
        ];
        let text = script_to_text(&script);
        assert!(text.contains("event 1000000 node-slow 0 3.5"));
        assert!(text.contains("event 2000000 link-degraded 0 1 8"));
        assert!(text.contains("event 3000000 heartbeat-flaky 1 0.25"));
        let back = script_from_text(&text).unwrap();
        assert_eq!(script, back);
    }

    #[test]
    fn text_rejects_malformed_factors() {
        for bad in [
            "event 5 node-slow 0 0",       // factor of zero
            "event 5 node-slow 0 -2",      // negative factor
            "event 5 node-slow 0 0.5",     // < 1 is a speed-up, not a fault
            "event 5 link-degraded 0 1 0", // zero bandwidth factor
            "event 5 link-degraded 0 1 nan",
            "event 5 heartbeat-flaky 0 1.5", // probability > 1
            "event 5 heartbeat-flaky 0 -0.1",
            "event 5 node-slow 0",           // missing factor
            "event 5 link-degraded 0 1 2 9", // trailing token
        ] {
            let err = script_from_text(bad).expect_err(bad).to_string();
            assert!(
                err.contains("factor")
                    || err.contains("probability")
                    || err.contains("tokens")
                    || err.contains("argument"),
                "unhelpful message for {bad:?}: {err}"
            );
        }
    }

    #[test]
    fn text_round_trips_fleet_lifecycle_kinds() {
        // The extended vocabulary (scale-up / scale-down / preemption-
        // warning) must survive the text serde round trip like every other
        // kind, preserving order, timestamps and node ids exactly.
        let script = vec![
            ClusterEvent::new(
                SimTime::from_micros(1_000_000),
                EventKind::PreemptionWarning(NodeId(1)),
            ),
            ClusterEvent::new(
                SimTime::from_micros(2_000_000),
                EventKind::ScaleDown(NodeId(1)),
            ),
            ClusterEvent::new(
                SimTime::from_micros(3_000_000),
                EventKind::ScaleUp(NodeId(0)),
            ),
        ];
        let text = script_to_text(&script);
        assert!(text.contains("event 1000000 preemption-warning 1"));
        assert!(text.contains("event 2000000 scale-down 1"));
        assert!(text.contains("event 3000000 scale-up 0"));
        let back = script_from_text(&text).unwrap();
        assert_eq!(script, back);
        // Malformed forms are rejected with the usual diagnostics.
        assert!(script_from_text("event 5 scale-up").is_err());
        assert!(script_from_text("event 5 scale-down x").is_err());
        assert!(script_from_text("event 5 preemption-warning 0 junk").is_err());
    }

    #[test]
    fn fleet_lifecycle_events_move_the_mask_deliberately() {
        let mut c = cluster();
        ClusterEvent::new(SimTime::ZERO, EventKind::ScaleDown(NodeId(1)))
            .apply(&mut c)
            .unwrap();
        assert_eq!(c.num_gpus(), 2, "scale-down releases the node");
        // A preemption warning is advisory: the node keeps serving.
        ClusterEvent::new(
            SimTime::from_micros(1),
            EventKind::PreemptionWarning(NodeId(0)),
        )
        .apply(&mut c)
        .unwrap();
        assert_eq!(c.num_gpus(), 2, "warning must not deactivate capacity");
        ClusterEvent::new(SimTime::from_micros(2), EventKind::ScaleUp(NodeId(1)))
            .apply(&mut c)
            .unwrap();
        assert_eq!(c.num_gpus(), 4, "scale-up re-acquires the node");
        // Unknown nodes are rejected for all three kinds.
        for kind in [
            EventKind::ScaleUp(NodeId(9)),
            EventKind::ScaleDown(NodeId(9)),
            EventKind::PreemptionWarning(NodeId(9)),
        ] {
            let e = ClusterEvent::new(SimTime::ZERO, kind);
            assert!(e.apply(&mut c).is_err());
        }
    }

    #[test]
    fn degradation_events_leave_the_mask_alone() {
        let mut c = cluster();
        for kind in [
            EventKind::NodeSlow(NodeId(0), 4.0),
            EventKind::LinkDegraded(NodeId(0), NodeId(1), 2.0),
            EventKind::HeartbeatFlaky(NodeId(1), 0.5),
        ] {
            ClusterEvent::new(SimTime::ZERO, kind)
                .apply(&mut c)
                .unwrap();
        }
        assert_eq!(c.num_gpus(), 4, "degradation must not deactivate capacity");
        let e = ClusterEvent::new(SimTime::ZERO, EventKind::NodeSlow(NodeId(9), 2.0));
        assert!(e.apply(&mut c).is_err(), "unknown node must be rejected");
    }
}
