//! Availability events for dynamic-cluster experiments.
//!
//! Cloud resources are unstable (§3.4): nodes fail heartbeats, spot instances
//! are preempted, and capacity is added back later. A [`ClusterEvent`] is a
//! timestamped change to the availability mask of a [`crate::Cluster`]; the
//! runtime replays a script of these events to drive the Figure 11
//! experiment (4 of 32 GPUs going offline).

use serde::{Deserialize, Serialize};
use ts_common::{GpuId, NodeId, Result, SimTime};

use crate::topology::Cluster;

/// What changed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// A whole node went offline (heartbeat timeout).
    NodeDown(NodeId),
    /// Specific GPUs went offline.
    GpusDown(Vec<GpuId>),
    /// Specific GPUs came (back) online.
    GpusUp(Vec<GpuId>),
}

/// A timestamped availability change.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterEvent {
    /// When the change is observed.
    pub at: SimTime,
    /// The change itself.
    pub kind: EventKind,
}

impl ClusterEvent {
    /// Creates an event.
    pub fn new(at: SimTime, kind: EventKind) -> Self {
        ClusterEvent { at, kind }
    }

    /// Applies this event to a cluster's availability mask.
    ///
    /// # Errors
    /// Propagates [`ts_common::Error::InvalidConfig`] for unknown ids.
    pub fn apply(&self, cluster: &mut Cluster) -> Result<()> {
        match &self.kind {
            EventKind::NodeDown(n) => cluster.deactivate_node(*n),
            EventKind::GpusDown(ids) => cluster.deactivate_gpus(ids),
            EventKind::GpusUp(ids) => cluster.activate_gpus(ids),
        }
    }
}

/// Sorts a script of events by time (stable), so it can be replayed in order.
pub fn sort_script(events: &mut [ClusterEvent]) {
    events.sort_by_key(|e| e.at);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::GpuModel;
    use crate::topology::ClusterBuilder;

    fn cluster() -> Cluster {
        ClusterBuilder::new()
            .node("a", GpuModel::A5000, 2)
            .node("b", GpuModel::A5000, 2)
            .build()
            .unwrap()
    }

    #[test]
    fn node_down_then_gpus_up() {
        let mut c = cluster();
        ClusterEvent::new(SimTime::ZERO, EventKind::NodeDown(NodeId(1)))
            .apply(&mut c)
            .unwrap();
        assert_eq!(c.num_gpus(), 2);
        ClusterEvent::new(SimTime::from_micros(5), EventKind::GpusUp(vec![GpuId(2)]))
            .apply(&mut c)
            .unwrap();
        assert_eq!(c.num_gpus(), 3);
    }

    #[test]
    fn script_sorts_by_time() {
        let mut script = vec![
            ClusterEvent::new(SimTime::from_micros(10), EventKind::GpusDown(vec![GpuId(0)])),
            ClusterEvent::new(SimTime::ZERO, EventKind::GpusDown(vec![GpuId(1)])),
        ];
        sort_script(&mut script);
        assert_eq!(script[0].at, SimTime::ZERO);
    }

    #[test]
    fn unknown_node_errors() {
        let mut c = cluster();
        let e = ClusterEvent::new(SimTime::ZERO, EventKind::NodeDown(NodeId(9)));
        assert!(e.apply(&mut c).is_err());
    }
}
