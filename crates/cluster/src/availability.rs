//! Availability events for dynamic-cluster experiments.
//!
//! Cloud resources are unstable (§3.4): nodes fail heartbeats, spot instances
//! are preempted, and capacity is added back later. A [`ClusterEvent`] is a
//! timestamped change to the availability mask of a [`crate::Cluster`]; the
//! runtime replays a script of these events to drive the Figure 11
//! experiment (4 of 32 GPUs going offline).
//!
//! Scripts have a line-oriented text form (one `event <micros> <kind> …`
//! line each, see [`script_to_text`]) so failure scenarios can be saved and
//! replayed without a JSON dependency.

use serde::{Deserialize, Serialize};
use ts_common::{Error, GpuId, NodeId, Result, SimTime};

use crate::topology::Cluster;

/// What changed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// A whole node went offline (heartbeat timeout).
    NodeDown(NodeId),
    /// A whole node came back online (outage ended / replacement arrived).
    NodeUp(NodeId),
    /// Specific GPUs went offline.
    GpusDown(Vec<GpuId>),
    /// Specific GPUs came (back) online.
    GpusUp(Vec<GpuId>),
}

/// A timestamped availability change.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterEvent {
    /// When the change is observed.
    pub at: SimTime,
    /// The change itself.
    pub kind: EventKind,
}

impl ClusterEvent {
    /// Creates an event.
    pub fn new(at: SimTime, kind: EventKind) -> Self {
        ClusterEvent { at, kind }
    }

    /// Applies this event to a cluster's availability mask.
    ///
    /// # Errors
    /// Propagates [`ts_common::Error::InvalidConfig`] for unknown ids.
    pub fn apply(&self, cluster: &mut Cluster) -> Result<()> {
        match &self.kind {
            EventKind::NodeDown(n) => cluster.deactivate_node(*n),
            EventKind::NodeUp(n) => cluster.activate_node(*n),
            EventKind::GpusDown(ids) => cluster.deactivate_gpus(ids),
            EventKind::GpusUp(ids) => cluster.activate_gpus(ids),
        }
    }
}

/// Sorts a script of events by time (stable), so it can be replayed in order.
pub fn sort_script(events: &mut [ClusterEvent]) {
    events.sort_by_key(|e| e.at);
}

/// Renders a script in the text format, one event per line:
///
/// ```text
/// event 2000000 node-down 1
/// event 5000000 gpus-up 4,5
/// ```
pub fn script_to_text(events: &[ClusterEvent]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for e in events {
        let _ = write!(out, "event {} ", e.at.as_micros());
        match &e.kind {
            EventKind::NodeDown(n) => {
                let _ = writeln!(out, "node-down {}", n.0);
            }
            EventKind::NodeUp(n) => {
                let _ = writeln!(out, "node-up {}", n.0);
            }
            EventKind::GpusDown(ids) => {
                let _ = writeln!(out, "gpus-down {}", join_ids(ids));
            }
            EventKind::GpusUp(ids) => {
                let _ = writeln!(out, "gpus-up {}", join_ids(ids));
            }
        }
    }
    out
}

fn join_ids(ids: &[GpuId]) -> String {
    ids.iter()
        .map(|g| g.0.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

/// Parses a script from the text format (blank lines ignored).
///
/// # Errors
/// Returns [`Error::InvalidConfig`] describing the first malformed line.
pub fn script_from_text(text: &str) -> Result<Vec<ClusterEvent>> {
    let bad = |msg: String| Error::InvalidConfig(format!("script parse: {msg}"));
    let mut events = Vec::new();
    for line in text.lines().map(str::trim).filter(|l| !l.is_empty()) {
        let mut parts = line.split_whitespace();
        if parts.next() != Some("event") {
            return Err(bad(format!("expected 'event ...', got {line:?}")));
        }
        let at: u64 = parts
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| bad(format!("bad timestamp in {line:?}")))?;
        let kind = parts
            .next()
            .ok_or_else(|| bad(format!("missing kind in {line:?}")))?;
        let arg = parts
            .next()
            .ok_or_else(|| bad(format!("missing argument in {line:?}")))?;
        if parts.next().is_some() {
            return Err(bad(format!("trailing tokens in {line:?}")));
        }
        let parse_node = |v: &str| {
            v.parse::<u32>()
                .map(NodeId)
                .map_err(|_| bad(format!("bad node id {v:?}")))
        };
        let parse_gpus = |v: &str| -> Result<Vec<GpuId>> {
            v.split(',')
                .map(|t| {
                    t.parse::<u32>()
                        .map(GpuId)
                        .map_err(|_| bad(format!("bad gpu id {t:?}")))
                })
                .collect()
        };
        let kind = match kind {
            "node-down" => EventKind::NodeDown(parse_node(arg)?),
            "node-up" => EventKind::NodeUp(parse_node(arg)?),
            "gpus-down" => EventKind::GpusDown(parse_gpus(arg)?),
            "gpus-up" => EventKind::GpusUp(parse_gpus(arg)?),
            other => return Err(bad(format!("unknown event kind {other:?}"))),
        };
        events.push(ClusterEvent::new(SimTime::from_micros(at), kind));
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::GpuModel;
    use crate::topology::ClusterBuilder;

    fn cluster() -> Cluster {
        ClusterBuilder::new()
            .node("a", GpuModel::A5000, 2)
            .node("b", GpuModel::A5000, 2)
            .build()
            .unwrap()
    }

    #[test]
    fn node_down_then_gpus_up() {
        let mut c = cluster();
        ClusterEvent::new(SimTime::ZERO, EventKind::NodeDown(NodeId(1)))
            .apply(&mut c)
            .unwrap();
        assert_eq!(c.num_gpus(), 2);
        ClusterEvent::new(SimTime::from_micros(5), EventKind::GpusUp(vec![GpuId(2)]))
            .apply(&mut c)
            .unwrap();
        assert_eq!(c.num_gpus(), 3);
    }

    #[test]
    fn node_up_restores_the_whole_node() {
        let mut c = cluster();
        ClusterEvent::new(SimTime::ZERO, EventKind::NodeDown(NodeId(0)))
            .apply(&mut c)
            .unwrap();
        assert_eq!(c.num_gpus(), 2);
        ClusterEvent::new(SimTime::from_micros(9), EventKind::NodeUp(NodeId(0)))
            .apply(&mut c)
            .unwrap();
        assert_eq!(c.num_gpus(), 4);
        assert!(c.is_active(GpuId(0)) && c.is_active(GpuId(1)));
    }

    #[test]
    fn script_sorts_by_time() {
        let mut script = vec![
            ClusterEvent::new(
                SimTime::from_micros(10),
                EventKind::GpusDown(vec![GpuId(0)]),
            ),
            ClusterEvent::new(SimTime::ZERO, EventKind::GpusDown(vec![GpuId(1)])),
        ];
        sort_script(&mut script);
        assert_eq!(script[0].at, SimTime::ZERO);
    }

    #[test]
    fn unknown_node_errors() {
        let mut c = cluster();
        let e = ClusterEvent::new(SimTime::ZERO, EventKind::NodeDown(NodeId(9)));
        assert!(e.apply(&mut c).is_err());
        let e = ClusterEvent::new(SimTime::ZERO, EventKind::NodeUp(NodeId(9)));
        assert!(e.apply(&mut c).is_err());
    }

    #[test]
    fn text_round_trips_every_kind() {
        let script = vec![
            ClusterEvent::new(
                SimTime::from_micros(2_000_000),
                EventKind::NodeDown(NodeId(1)),
            ),
            ClusterEvent::new(
                SimTime::from_micros(3_500_000),
                EventKind::NodeUp(NodeId(1)),
            ),
            ClusterEvent::new(
                SimTime::from_micros(4_000_000),
                EventKind::GpusDown(vec![GpuId(0), GpuId(3)]),
            ),
            ClusterEvent::new(
                SimTime::from_micros(5_000_000),
                EventKind::GpusUp(vec![GpuId(0)]),
            ),
        ];
        let text = script_to_text(&script);
        assert!(text.contains("event 2000000 node-down 1"));
        assert!(text.contains("event 4000000 gpus-down 0,3"));
        let back = script_from_text(&text).unwrap();
        assert_eq!(script, back);
    }

    #[test]
    fn text_rejects_malformed_lines() {
        assert!(script_from_text("event x node-down 1").is_err());
        assert!(script_from_text("event 5 explode 1").is_err());
        assert!(script_from_text("event 5 node-down").is_err());
        assert!(script_from_text("event 5 gpus-up 1,x").is_err());
        assert!(script_from_text("event 5 node-up 1 junk").is_err());
        assert!(script_from_text("not-an-event 5 node-up 1").is_err());
        assert!(script_from_text("").unwrap().is_empty());
    }
}
