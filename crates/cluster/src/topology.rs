//! Cluster topology: nodes, GPUs and the inter-GPU network.
//!
//! The scheduler never talks to real hardware; it observes a [`Cluster`] —
//! a set of nodes (cloud instances), each holding GPUs of one or more
//! models, plus a pairwise bandwidth/latency model. Intra-node links model
//! PCIe (or NVLink for the in-house preset); inter-node links model cloud
//! ethernet, and may differ per node pair to reproduce the heterogeneous
//! heatmap of the paper's Figure 13.

use crate::catalog::{GpuModel, GpuSpec};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use ts_common::{Error, GpuId, NodeId, Result, SimDuration};

/// A single physical GPU placed on a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Gpu {
    /// Cluster-wide id (index into the cluster's GPU table).
    pub id: GpuId,
    /// Hosting node.
    pub node: NodeId,
    /// Catalog model.
    pub model: GpuModel,
}

impl Gpu {
    /// Hardware spec from the catalog.
    #[inline]
    pub fn spec(&self) -> GpuSpec {
        self.model.spec()
    }
}

/// A node (cloud instance) holding one or more GPUs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Node id (index into the cluster's node table).
    pub id: NodeId,
    /// Human-readable name, e.g. `"a40-0"`.
    pub name: String,
    /// GPUs hosted on this node.
    pub gpus: Vec<GpuId>,
    /// Intra-node GPU-to-GPU bandwidth in bytes/s (PCIe or NVLink).
    pub intra_bw: f64,
    /// Intra-node link latency (the alpha term).
    pub intra_latency: SimDuration,
}

/// Classification of the link between two GPUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkClass {
    /// Same GPU (no transfer needed).
    Loopback,
    /// Same node: PCIe/NVLink.
    IntraNode,
    /// Different nodes: ethernet.
    InterNode,
}

/// An immutable cluster description plus a mutable GPU-availability mask.
///
/// Built with [`ClusterBuilder`]; see [`crate::presets`] for the paper's
/// environments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    gpus: Vec<Gpu>,
    nodes: Vec<Node>,
    /// node × node ethernet bandwidth (bytes/s); diagonal unused.
    inter_bw: Vec<Vec<f64>>,
    /// node × node ethernet latency; diagonal unused.
    inter_latency: Vec<Vec<SimDuration>>,
    /// Per-GPU availability (false once failed/preempted).
    active: Vec<bool>,
}

impl Cluster {
    /// Number of *active* GPUs.
    pub fn num_gpus(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    /// Total number of GPUs ever provisioned (active or not).
    pub fn num_gpus_provisioned(&self) -> usize {
        self.gpus.len()
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Ids of all active GPUs, ascending.
    pub fn active_gpus(&self) -> Vec<GpuId> {
        self.gpus
            .iter()
            .filter(|g| self.active[g.id.index()])
            .map(|g| g.id)
            .collect()
    }

    /// Whether the GPU is currently available.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[inline]
    pub fn is_active(&self, id: GpuId) -> bool {
        self.active[id.index()]
    }

    /// Looks up a GPU.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[inline]
    pub fn gpu(&self, id: GpuId) -> &Gpu {
        &self.gpus[id.index()]
    }

    /// Looks up a node.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Active GPUs grouped by catalog model, ascending ids within a model.
    pub fn gpus_by_model(&self) -> BTreeMap<GpuModel, Vec<GpuId>> {
        let mut map: BTreeMap<GpuModel, Vec<GpuId>> = BTreeMap::new();
        for id in self.active_gpus() {
            map.entry(self.gpu(id).model).or_default().push(id);
        }
        map
    }

    /// Whether two GPUs share a node.
    #[inline]
    pub fn same_node(&self, a: GpuId, b: GpuId) -> bool {
        self.gpu(a).node == self.gpu(b).node
    }

    /// Classifies the link between two GPUs.
    pub fn link_class(&self, a: GpuId, b: GpuId) -> LinkClass {
        if a == b {
            LinkClass::Loopback
        } else if self.same_node(a, b) {
            LinkClass::IntraNode
        } else {
            LinkClass::InterNode
        }
    }

    /// Point-to-point bandwidth between two GPUs in bytes/s (the beta term of
    /// the alpha-beta model). Loopback links are effectively infinite.
    pub fn bandwidth(&self, a: GpuId, b: GpuId) -> f64 {
        match self.link_class(a, b) {
            LinkClass::Loopback => f64::INFINITY,
            LinkClass::IntraNode => self.node(self.gpu(a).node).intra_bw,
            LinkClass::InterNode => {
                self.inter_bw[self.gpu(a).node.index()][self.gpu(b).node.index()]
            }
        }
    }

    /// Point-to-point latency between two GPUs (the alpha term).
    pub fn latency(&self, a: GpuId, b: GpuId) -> SimDuration {
        match self.link_class(a, b) {
            LinkClass::Loopback => SimDuration::ZERO,
            LinkClass::IntraNode => self.node(self.gpu(a).node).intra_latency,
            LinkClass::InterNode => {
                self.inter_latency[self.gpu(a).node.index()][self.gpu(b).node.index()]
            }
        }
    }

    /// Node-level ethernet bandwidth between two distinct nodes in bytes/s —
    /// the capacity of the fabric link a flow-level network model contends
    /// on. Same-node queries return the node's intra-node bandwidth.
    pub fn inter_node_bandwidth(&self, a: NodeId, b: NodeId) -> f64 {
        if a == b {
            self.node(a).intra_bw
        } else {
            self.inter_bw[a.index()][b.index()]
        }
    }

    /// Node-level ethernet latency between two distinct nodes (the alpha
    /// term of the fabric link). Same-node queries return the intra-node
    /// latency.
    pub fn inter_node_latency(&self, a: NodeId, b: NodeId) -> SimDuration {
        if a == b {
            self.node(a).intra_latency
        } else {
            self.inter_latency[a.index()][b.index()]
        }
    }

    /// The NIC capacity of a node in bytes/s: the fastest ethernet link the
    /// node terminates. Every flow entering or leaving the node shares this
    /// capacity, whatever fabric link it then takes. Single-node clusters
    /// have no NIC-crossing traffic and report `f64::INFINITY`.
    pub fn nic_bandwidth(&self, node: NodeId) -> f64 {
        let n = node.index();
        self.inter_bw[n]
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != n)
            .map(|(_, &bw)| bw)
            .fold(f64::INFINITY, |best, bw| {
                if best.is_infinite() {
                    bw
                } else {
                    best.max(bw)
                }
            })
    }

    /// Minimum pairwise bandwidth among a set of GPUs — the bottleneck link a
    /// tensor-parallel group would communicate over.
    ///
    /// Returns `f64::INFINITY` for groups of size < 2.
    pub fn bottleneck_bandwidth(&self, gpus: &[GpuId]) -> f64 {
        let mut min = f64::INFINITY;
        for (i, &a) in gpus.iter().enumerate() {
            for &b in &gpus[i + 1..] {
                min = min.min(self.bandwidth(a, b));
            }
        }
        min
    }

    /// Hourly rental price of all active GPUs in USD.
    pub fn price_per_hour(&self) -> f64 {
        self.active_gpus()
            .iter()
            .map(|&id| self.gpu(id).spec().price_per_hour)
            .sum()
    }

    /// Total device memory across active GPUs in bytes.
    pub fn total_memory(&self) -> u64 {
        self.active_gpus()
            .iter()
            .map(|&id| self.gpu(id).spec().memory_bytes)
            .sum()
    }

    /// Marks GPUs as failed/preempted. Unknown ids are an error.
    ///
    /// # Errors
    /// Returns [`Error::InvalidConfig`] if any id is out of range.
    pub fn deactivate_gpus(&mut self, ids: &[GpuId]) -> Result<()> {
        for &id in ids {
            if id.index() >= self.gpus.len() {
                return Err(Error::InvalidConfig(format!("unknown GPU {id}")));
            }
        }
        for &id in ids {
            self.active[id.index()] = false;
        }
        Ok(())
    }

    /// Marks a whole node as failed.
    ///
    /// # Errors
    /// Returns [`Error::InvalidConfig`] if the node id is out of range.
    pub fn deactivate_node(&mut self, node: NodeId) -> Result<()> {
        if node.index() >= self.nodes.len() {
            return Err(Error::InvalidConfig(format!("unknown node {node}")));
        }
        let gpus = self.nodes[node.index()].gpus.clone();
        self.deactivate_gpus(&gpus)
    }

    /// Re-activates a whole node (recovery from a heartbeat outage).
    ///
    /// # Errors
    /// Returns [`Error::InvalidConfig`] if the node id is out of range.
    pub fn activate_node(&mut self, node: NodeId) -> Result<()> {
        if node.index() >= self.nodes.len() {
            return Err(Error::InvalidConfig(format!("unknown node {node}")));
        }
        let gpus = self.nodes[node.index()].gpus.clone();
        self.activate_gpus(&gpus)
    }

    /// Re-activates GPUs (elastic scale-up).
    ///
    /// # Errors
    /// Returns [`Error::InvalidConfig`] if any id is out of range.
    pub fn activate_gpus(&mut self, ids: &[GpuId]) -> Result<()> {
        for &id in ids {
            if id.index() >= self.gpus.len() {
                return Err(Error::InvalidConfig(format!("unknown GPU {id}")));
            }
        }
        for &id in ids {
            self.active[id.index()] = true;
        }
        Ok(())
    }

    /// Full pairwise bandwidth matrix over the active GPUs (ascending id
    /// order), suitable for rendering Figure 13's heatmap. Diagonal entries
    /// hold the GPU's own memory bandwidth, mirroring how NCCL loopback
    /// measurements appear in the paper's heatmaps.
    pub fn bandwidth_matrix(&self) -> Vec<Vec<f64>> {
        let ids = self.active_gpus();
        ids.iter()
            .map(|&a| {
                ids.iter()
                    .map(|&b| {
                        if a == b {
                            self.gpu(a).spec().mem_bandwidth
                        } else {
                            self.bandwidth(a, b)
                        }
                    })
                    .collect()
            })
            .collect()
    }
}

/// Incremental [`Cluster`] constructor.
///
/// ```
/// use ts_cluster::{ClusterBuilder, GpuModel};
/// use ts_common::SimDuration;
///
/// let cluster = ClusterBuilder::new()
///     .default_inter_link(1.25e9, SimDuration::from_micros(200))
///     .node("a40-0", GpuModel::A40, 4)
///     .node("ti-0", GpuModel::Rtx3090Ti, 4)
///     .build()?;
/// assert_eq!(cluster.num_gpus(), 8);
/// # Ok::<(), ts_common::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct ClusterBuilder {
    nodes: Vec<NodeDraft>,
    default_inter_bw: f64,
    default_inter_latency: SimDuration,
    overrides: Vec<(usize, usize, f64, SimDuration)>,
}

#[derive(Debug, Clone)]
struct NodeDraft {
    name: String,
    gpus: Vec<GpuModel>,
    intra_bw: f64,
    intra_latency: SimDuration,
}

/// Default intra-node PCIe bandwidth (≈ PCIe 4.0 x16 effective).
pub const DEFAULT_PCIE_BW: f64 = 16e9;
/// Default intra-node link latency.
pub const DEFAULT_PCIE_LATENCY: SimDuration = SimDuration::from_micros(10);
/// Default inter-node ethernet bandwidth (10 Gbps).
pub const DEFAULT_ETH_BW: f64 = 1.25e9;
/// Default inter-node link latency.
pub const DEFAULT_ETH_LATENCY: SimDuration = SimDuration::from_micros(200);

impl ClusterBuilder {
    /// Creates an empty builder with PCIe/ethernet defaults.
    pub fn new() -> Self {
        ClusterBuilder {
            nodes: Vec::new(),
            default_inter_bw: DEFAULT_ETH_BW,
            default_inter_latency: DEFAULT_ETH_LATENCY,
            overrides: Vec::new(),
        }
    }

    /// Sets the default inter-node link used for all node pairs without an
    /// explicit override.
    pub fn default_inter_link(mut self, bw: f64, latency: SimDuration) -> Self {
        self.default_inter_bw = bw;
        self.default_inter_latency = latency;
        self
    }

    /// Adds a node with `count` GPUs of a single model and default PCIe.
    pub fn node(self, name: &str, model: GpuModel, count: usize) -> Self {
        self.node_with_intra(name, model, count, DEFAULT_PCIE_BW, DEFAULT_PCIE_LATENCY)
    }

    /// Adds a node with an explicit intra-node link (e.g. NVLink).
    pub fn node_with_intra(
        mut self,
        name: &str,
        model: GpuModel,
        count: usize,
        intra_bw: f64,
        intra_latency: SimDuration,
    ) -> Self {
        self.nodes.push(NodeDraft {
            name: name.to_owned(),
            gpus: vec![model; count],
            intra_bw,
            intra_latency,
        });
        self
    }

    /// Overrides the link between two nodes (by insertion order index),
    /// e.g. to model a slow cross-datacenter hop.
    pub fn inter_link(mut self, a: usize, b: usize, bw: f64, latency: SimDuration) -> Self {
        self.overrides.push((a, b, bw, latency));
        self
    }

    /// Finalizes the cluster.
    ///
    /// # Errors
    /// Returns [`Error::InvalidConfig`] if no GPUs were added, a node is
    /// empty, a bandwidth is non-positive, or an override references an
    /// unknown node.
    pub fn build(self) -> Result<Cluster> {
        if self.nodes.is_empty() {
            return Err(Error::InvalidConfig("cluster has no nodes".into()));
        }
        let mut gpus = Vec::new();
        let mut nodes = Vec::new();
        for (ni, draft) in self.nodes.iter().enumerate() {
            if draft.gpus.is_empty() {
                return Err(Error::InvalidConfig(format!(
                    "node {} has no GPUs",
                    draft.name
                )));
            }
            if draft.intra_bw <= 0.0 {
                return Err(Error::InvalidConfig(format!(
                    "node {} has non-positive intra bandwidth",
                    draft.name
                )));
            }
            let node_id = NodeId(ni as u32);
            let mut ids = Vec::new();
            for &model in &draft.gpus {
                let id = GpuId(gpus.len() as u32);
                gpus.push(Gpu {
                    id,
                    node: node_id,
                    model,
                });
                ids.push(id);
            }
            nodes.push(Node {
                id: node_id,
                name: draft.name.clone(),
                gpus: ids,
                intra_bw: draft.intra_bw,
                intra_latency: draft.intra_latency,
            });
        }
        let n = nodes.len();
        let mut inter_bw = vec![vec![self.default_inter_bw; n]; n];
        let mut inter_latency = vec![vec![self.default_inter_latency; n]; n];
        for (a, b, bw, lat) in self.overrides {
            if a >= n || b >= n {
                return Err(Error::InvalidConfig(format!(
                    "inter-link override references unknown node ({a}, {b})"
                )));
            }
            if bw <= 0.0 {
                return Err(Error::InvalidConfig("non-positive inter bandwidth".into()));
            }
            inter_bw[a][b] = bw;
            inter_bw[b][a] = bw;
            inter_latency[a][b] = lat;
            inter_latency[b][a] = lat;
        }
        let active = vec![true; gpus.len()];
        Ok(Cluster {
            gpus,
            nodes,
            inter_bw,
            inter_latency,
            active,
        })
    }
}

impl Default for ClusterBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node_cluster() -> Cluster {
        ClusterBuilder::new()
            .node("a", GpuModel::A40, 2)
            .node("b", GpuModel::Rtx3090Ti, 2)
            .inter_link(0, 1, 0.625e9, SimDuration::from_micros(300))
            .build()
            .unwrap()
    }

    #[test]
    fn builder_assigns_sequential_ids() {
        let c = two_node_cluster();
        assert_eq!(c.num_gpus(), 4);
        assert_eq!(c.gpu(GpuId(0)).node, NodeId(0));
        assert_eq!(c.gpu(GpuId(3)).node, NodeId(1));
        assert_eq!(c.gpu(GpuId(3)).model, GpuModel::Rtx3090Ti);
    }

    #[test]
    fn link_classification() {
        let c = two_node_cluster();
        assert_eq!(c.link_class(GpuId(0), GpuId(0)), LinkClass::Loopback);
        assert_eq!(c.link_class(GpuId(0), GpuId(1)), LinkClass::IntraNode);
        assert_eq!(c.link_class(GpuId(0), GpuId(2)), LinkClass::InterNode);
    }

    #[test]
    fn bandwidth_respects_overrides() {
        let c = two_node_cluster();
        assert_eq!(c.bandwidth(GpuId(0), GpuId(1)), DEFAULT_PCIE_BW);
        assert_eq!(c.bandwidth(GpuId(1), GpuId(2)), 0.625e9);
        assert_eq!(c.latency(GpuId(1), GpuId(2)), SimDuration::from_micros(300));
        assert!(c.bandwidth(GpuId(2), GpuId(2)).is_infinite());
    }

    #[test]
    fn bottleneck_is_slowest_pair() {
        let c = two_node_cluster();
        let all: Vec<GpuId> = c.active_gpus();
        assert_eq!(c.bottleneck_bandwidth(&all), 0.625e9);
        assert_eq!(c.bottleneck_bandwidth(&all[..2]), DEFAULT_PCIE_BW);
        assert!(c.bottleneck_bandwidth(&all[..1]).is_infinite());
    }

    #[test]
    fn deactivation_updates_everything() {
        let mut c = two_node_cluster();
        let price_before = c.price_per_hour();
        c.deactivate_node(NodeId(1)).unwrap();
        assert_eq!(c.num_gpus(), 2);
        assert!(!c.is_active(GpuId(2)));
        assert!(c.price_per_hour() < price_before);
        assert_eq!(c.active_gpus(), vec![GpuId(0), GpuId(1)]);
        c.activate_gpus(&[GpuId(2)]).unwrap();
        assert_eq!(c.num_gpus(), 3);
    }

    #[test]
    fn deactivate_unknown_gpu_is_atomic_error() {
        let mut c = two_node_cluster();
        assert!(c.deactivate_gpus(&[GpuId(0), GpuId(99)]).is_err());
        // atomic: GPU 0 must still be active
        assert!(c.is_active(GpuId(0)));
    }

    #[test]
    fn gpus_by_model_partitions_active_set() {
        let mut c = two_node_cluster();
        c.deactivate_gpus(&[GpuId(3)]).unwrap();
        let by = c.gpus_by_model();
        assert_eq!(by[&GpuModel::A40].len(), 2);
        assert_eq!(by[&GpuModel::Rtx3090Ti], vec![GpuId(2)]);
    }

    #[test]
    fn node_level_links_and_nic_capacity() {
        let c = two_node_cluster();
        assert_eq!(c.inter_node_bandwidth(NodeId(0), NodeId(1)), 0.625e9);
        assert_eq!(
            c.inter_node_bandwidth(NodeId(0), NodeId(0)),
            DEFAULT_PCIE_BW
        );
        assert_eq!(
            c.inter_node_latency(NodeId(0), NodeId(1)),
            SimDuration::from_micros(300)
        );
        // The NIC is the fastest link the node terminates (only one here).
        assert_eq!(c.nic_bandwidth(NodeId(0)), 0.625e9);
        let single = ClusterBuilder::new()
            .node("solo", GpuModel::A40, 2)
            .build()
            .unwrap();
        assert!(single.nic_bandwidth(NodeId(0)).is_infinite());
    }

    #[test]
    fn bandwidth_matrix_is_square_and_symmetric() {
        let c = two_node_cluster();
        let m = c.bandwidth_matrix();
        assert_eq!(m.len(), 4);
        for i in 0..4 {
            assert_eq!(m[i].len(), 4);
            for j in 0..4 {
                assert_eq!(m[i][j], m[j][i]);
            }
        }
    }

    #[test]
    fn empty_builder_errors() {
        assert!(ClusterBuilder::new().build().is_err());
    }
}
