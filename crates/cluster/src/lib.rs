//! # ts-cluster
//!
//! GPU catalog, cluster topology and pricing for heterogeneous cloud serving.
//!
//! This crate models the *hardware substrate* of the ThunderServe paper:
//! the five GPU models of Table 1 with their peak FP16 throughput, memory
//! bandwidth, memory capacity and hourly rental price ([`catalog`]); clusters
//! of nodes holding those GPUs together with a pairwise inter-GPU bandwidth /
//! latency matrix ([`topology`]); the paper's two experimental environments
//! ([`presets`]); and availability bookkeeping for node-failure experiments
//! ([`availability`]).
//!
//! # Examples
//!
//! ```
//! use ts_cluster::presets;
//!
//! let cloud = presets::paper_cloud_cluster();
//! assert_eq!(cloud.num_gpus(), 32);
//! // Table 1 per-GPU prices sum to ~$11.3/hr for the heterogeneous rig
//! assert!((cloud.price_per_hour() - 11.328).abs() < 0.01);
//! ```

pub mod availability;
pub mod catalog;
pub mod presets;
pub mod topology;

pub use availability::{ClusterEvent, EventKind};
pub use catalog::{GpuModel, GpuSpec, PricingTier};
pub use presets::ElasticPool;
pub use topology::{Cluster, ClusterBuilder, Gpu, LinkClass, Node};
