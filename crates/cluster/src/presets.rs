//! The paper's experimental environments (§5.1 and Appendices C/H), plus
//! the elastic spot-market pool used by the autoscaling experiments.

use crate::catalog::{GpuModel, PricingTier};
use crate::topology::{Cluster, ClusterBuilder};
use ts_common::{NodeId, SimDuration};

/// NVLink bandwidth for the in-house A100 server (bytes/s).
pub const NVLINK_BW: f64 = 600e9;
/// PCIe 4.0-class intra-node bandwidth used for the cloud instances.
pub const CLOUD_PCIE_BW: f64 = 16e9;
/// 40 Gbps, the fastest inter-instance link observed on the cloud.
pub const ETH_40GBPS: f64 = 5e9;
/// 10 Gbps, a mid-tier cloud link.
pub const ETH_10GBPS: f64 = 1.25e9;
/// 5 Gbps, the slow cross-datacenter link of Appendix H.
pub const ETH_5GBPS: f64 = 0.625e9;

const INTRA_LAT: SimDuration = SimDuration::from_micros(10);
const ETH_LAT: SimDuration = SimDuration::from_micros(250);

/// The heterogeneous cloud environment of §5.1: two 4×A6000 instances, two
/// 4×A5000 instances, one 8×A40 instance and two 4×3090Ti instances —
/// 32 GPUs, ≈$13.5/hour.
///
/// Node indices: 0-1 A6000, 2-3 A5000, 4 A40, 5-6 3090Ti. Inter-node links
/// are heterogeneous (10-40 Gbps) following the variability of the paper's
/// Figure 13 heatmap: instances rented in the same zone see ~40 Gbps, others
/// 10-25 Gbps.
pub fn paper_cloud_cluster() -> Cluster {
    let b = ClusterBuilder::new()
        .default_inter_link(ETH_10GBPS, ETH_LAT)
        .node_with_intra("a6000-0", GpuModel::A6000, 4, CLOUD_PCIE_BW, INTRA_LAT)
        .node_with_intra("a6000-1", GpuModel::A6000, 4, CLOUD_PCIE_BW, INTRA_LAT)
        .node_with_intra("a5000-0", GpuModel::A5000, 4, CLOUD_PCIE_BW, INTRA_LAT)
        .node_with_intra("a5000-1", GpuModel::A5000, 4, CLOUD_PCIE_BW, INTRA_LAT)
        .node_with_intra("a40-0", GpuModel::A40, 8, CLOUD_PCIE_BW, INTRA_LAT)
        .node_with_intra("3090ti-0", GpuModel::Rtx3090Ti, 4, CLOUD_PCIE_BW, INTRA_LAT)
        .node_with_intra("3090ti-1", GpuModel::Rtx3090Ti, 4, CLOUD_PCIE_BW, INTRA_LAT)
        // Same-zone fast links (40 Gbps): the A40 box with the 3090Ti boxes,
        // and each same-model pair.
        .inter_link(0, 1, ETH_40GBPS, ETH_LAT)
        .inter_link(2, 3, ETH_40GBPS, ETH_LAT)
        .inter_link(5, 6, ETH_40GBPS, ETH_LAT)
        .inter_link(4, 5, ETH_40GBPS, ETH_LAT)
        .inter_link(4, 6, ETH_40GBPS, ETH_LAT)
        // A5000 ↔ 3090Ti sit in the same rack in the paper's mixed replicas.
        .inter_link(2, 5, ETH_40GBPS, ETH_LAT)
        .inter_link(3, 6, ETH_40GBPS, ETH_LAT)
        // Mid-tier links.
        .inter_link(0, 4, 2.5e9, ETH_LAT)
        .inter_link(1, 4, 2.5e9, ETH_LAT);
    b.build().expect("paper cloud preset is valid")
}

/// The homogeneous in-house environment of §5.1: one server with 8×A100-80GB
/// connected by NVLink (≈$14.0/hour at cloud prices).
pub fn paper_inhouse_cluster() -> Cluster {
    ClusterBuilder::new()
        .node_with_intra(
            "a100-dgx",
            GpuModel::A100,
            8,
            NVLINK_BW,
            SimDuration::from_micros(3),
        )
        .build()
        .expect("in-house preset is valid")
}

/// A homogeneous cloud cluster of `n` A5000 GPUs split into 4-GPU instances
/// (Figure 6 / Figure 14 use 8, 12 and 16 of these).
///
/// # Panics
/// Panics if `n` is zero or not a multiple of 4.
pub fn a5000_cluster(n: usize) -> Cluster {
    assert!(
        n > 0 && n.is_multiple_of(4),
        "A5000 cluster size must be a positive multiple of 4"
    );
    let mut b = ClusterBuilder::new().default_inter_link(ETH_40GBPS, ETH_LAT);
    for i in 0..n / 4 {
        b = b.node_with_intra(
            &format!("a5000-{i}"),
            GpuModel::A5000,
            4,
            CLOUD_PCIE_BW,
            INTRA_LAT,
        );
    }
    b.build().expect("A5000 preset is valid")
}

/// Appendix H's two-instance environment: one 4×A40 node and one 4×3090Ti
/// node, with a configurable inter-instance bandwidth (40 Gbps for "Case A:
/// within data center", 5 Gbps for "Case B: cross data centers").
pub fn network_case_cluster(inter_bw: f64) -> Cluster {
    let lat = if inter_bw >= ETH_40GBPS {
        ETH_LAT
    } else {
        SimDuration::from_millis(2) // cross-DC latency
    };
    ClusterBuilder::new()
        .node_with_intra("a40-0", GpuModel::A40, 4, CLOUD_PCIE_BW, INTRA_LAT)
        .node_with_intra("3090ti-0", GpuModel::Rtx3090Ti, 4, CLOUD_PCIE_BW, INTRA_LAT)
        .inter_link(0, 1, inter_bw, lat)
        .build()
        .expect("network case preset is valid")
}

/// An elastic cloud pool: every instance the fleet *could* hold, split into
/// a permanently held on-demand base and a spot-market expansion set.
///
/// The [`ElasticPool::cluster`] is built with every node active (the full
/// static fleet); an autoscaler deactivates the spot nodes it does not
/// currently hold and re-activates them on acquisition. Billing follows the
/// tier: base nodes at the catalog on-demand rate, spot nodes at the
/// discounted (preemptible) spot rate — see [`ElasticPool::node_price`].
#[derive(Debug, Clone)]
pub struct ElasticPool {
    /// The full provisionable topology, all nodes active.
    pub cluster: Cluster,
    /// Nodes held on demand for the whole trace (never released).
    pub base: Vec<NodeId>,
    /// Spot-market nodes the autoscaler may acquire and release.
    pub spot: Vec<NodeId>,
}

impl ElasticPool {
    /// The billing tier of a node in this pool.
    pub fn tier(&self, node: NodeId) -> PricingTier {
        if self.spot.contains(&node) {
            PricingTier::Spot
        } else {
            PricingTier::OnDemand
        }
    }

    /// Hourly price of one node at its tier (sum over its GPUs).
    pub fn node_price(&self, node: NodeId) -> f64 {
        let tier = self.tier(node);
        self.cluster
            .node(node)
            .gpus
            .iter()
            .map(|&g| self.cluster.gpu(g).model.price_per_hour(tier))
            .sum()
    }

    /// Hourly price of the full pool if every node were held at the
    /// *on-demand* rate — what a peak-provisioned static fleet pays.
    pub fn static_price_per_hour(&self) -> f64 {
        self.cluster
            .nodes()
            .iter()
            .enumerate()
            .map(|(i, _)| {
                let n = NodeId(i as u32);
                self.cluster
                    .node(n)
                    .gpus
                    .iter()
                    .map(|&g| {
                        self.cluster
                            .gpu(g)
                            .model
                            .price_per_hour(PricingTier::OnDemand)
                    })
                    .sum::<f64>()
            })
            .sum()
    }
}

/// The elastic pool of the autoscaling experiments: a 2-node on-demand base
/// (4×A40 + 4×3090Ti — one prefill-friendly and one decode-friendly
/// instance, enough to serve the overnight trough) plus six spot-market
/// nodes (2×4×A40, 2×4×3090Ti, 2×4×A5000) the controller can grab when the
/// diurnal ramp or a flash crowd needs them. 32 GPUs fully provisioned.
///
/// Node indices: 0 A40 base, 1 3090Ti base, 2-3 A40 spot, 4-5 3090Ti spot,
/// 6-7 A5000 spot.
pub fn elastic_cloud_pool() -> ElasticPool {
    let b = ClusterBuilder::new()
        .default_inter_link(ETH_40GBPS, ETH_LAT)
        .node_with_intra("a40-base", GpuModel::A40, 4, CLOUD_PCIE_BW, INTRA_LAT)
        .node_with_intra(
            "3090ti-base",
            GpuModel::Rtx3090Ti,
            4,
            CLOUD_PCIE_BW,
            INTRA_LAT,
        )
        .node_with_intra("a40-spot-0", GpuModel::A40, 4, CLOUD_PCIE_BW, INTRA_LAT)
        .node_with_intra("a40-spot-1", GpuModel::A40, 4, CLOUD_PCIE_BW, INTRA_LAT)
        .node_with_intra(
            "3090ti-spot-0",
            GpuModel::Rtx3090Ti,
            4,
            CLOUD_PCIE_BW,
            INTRA_LAT,
        )
        .node_with_intra(
            "3090ti-spot-1",
            GpuModel::Rtx3090Ti,
            4,
            CLOUD_PCIE_BW,
            INTRA_LAT,
        )
        .node_with_intra("a5000-spot-0", GpuModel::A5000, 4, CLOUD_PCIE_BW, INTRA_LAT)
        .node_with_intra("a5000-spot-1", GpuModel::A5000, 4, CLOUD_PCIE_BW, INTRA_LAT);
    ElasticPool {
        cluster: b.build().expect("elastic pool preset is valid"),
        base: vec![NodeId(0), NodeId(1)],
        spot: (2..8).map(NodeId).collect(),
    }
}

/// The §4 KV-compression testbed: two A5000 GPUs on separate instances with a
/// 40 Gbps link.
pub fn a5000_pair_40gbps() -> Cluster {
    ClusterBuilder::new()
        .node_with_intra("a5000-a", GpuModel::A5000, 1, CLOUD_PCIE_BW, INTRA_LAT)
        .node_with_intra("a5000-b", GpuModel::A5000, 1, CLOUD_PCIE_BW, INTRA_LAT)
        .inter_link(0, 1, ETH_40GBPS, ETH_LAT)
        .build()
        .expect("A5000 pair preset is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn cloud_preset_matches_paper_inventory() {
        let c = paper_cloud_cluster();
        assert_eq!(c.num_gpus(), 32);
        assert_eq!(c.num_nodes(), 7);
        let by: BTreeMap<_, _> = c
            .gpus_by_model()
            .into_iter()
            .map(|(m, v)| (m, v.len()))
            .collect();
        assert_eq!(by[&GpuModel::A6000], 8);
        assert_eq!(by[&GpuModel::A5000], 8);
        assert_eq!(by[&GpuModel::A40], 8);
        assert_eq!(by[&GpuModel::Rtx3090Ti], 8);
        // Summing Table 1 per-GPU prices gives $11.328/hr; the paper quotes
        // $13.542/hr at the instance level (which bundles CPU/RAM overhead).
        assert!((c.price_per_hour() - 11.328).abs() < 0.01);
    }

    #[test]
    fn budgets_are_comparable() {
        // The paper's point: the cloud rig costs no more per hour than the
        // in-house A100 box ($13.542 vs $14.024 at instance level; 11.3 vs
        // 14.0 when summing Table 1 per-GPU prices).
        let cloud = paper_cloud_cluster().price_per_hour();
        let inhouse = paper_inhouse_cluster().price_per_hour();
        assert!((inhouse - 14.024).abs() < 0.01);
        assert!(cloud <= inhouse);
        assert!(cloud / inhouse > 0.75);
    }

    #[test]
    fn inhouse_has_nvlink() {
        let c = paper_inhouse_cluster();
        let g = c.active_gpus();
        assert_eq!(c.bandwidth(g[0], g[1]), NVLINK_BW);
    }

    #[test]
    fn a5000_cluster_sizes() {
        for n in [8, 12, 16] {
            let c = a5000_cluster(n);
            assert_eq!(c.num_gpus(), n);
            assert_eq!(c.num_nodes(), n / 4);
        }
    }

    #[test]
    #[should_panic]
    fn a5000_cluster_rejects_non_multiple() {
        let _ = a5000_cluster(6);
    }

    #[test]
    fn elastic_pool_prices_base_on_demand_and_spot_discounted() {
        let pool = elastic_cloud_pool();
        assert_eq!(pool.cluster.num_gpus(), 32);
        assert_eq!(pool.base.len() + pool.spot.len(), pool.cluster.num_nodes());
        // Base nodes bill at the catalog rate.
        assert_eq!(pool.tier(NodeId(0)), PricingTier::OnDemand);
        let a40_od = GpuModel::A40.spec().price_per_hour;
        assert!((pool.node_price(NodeId(0)) - 4.0 * a40_od).abs() < 1e-9);
        // Spot nodes bill at the discount.
        assert_eq!(pool.tier(NodeId(2)), PricingTier::Spot);
        let a40_spot = GpuModel::A40.spot_price_per_hour();
        assert!((pool.node_price(NodeId(2)) - 4.0 * a40_spot).abs() < 1e-9);
        assert!(pool.node_price(NodeId(2)) < pool.node_price(NodeId(0)));
        // A peak-provisioned static fleet pays on-demand for everything,
        // which costs strictly more than the same pool with spot discounts.
        let all_spot_priced: f64 = (0..8).map(|i| pool.node_price(NodeId(i))).sum();
        assert!(pool.static_price_per_hour() > all_spot_priced);
    }

    #[test]
    fn network_cases_differ_only_in_inter_link() {
        let fast = network_case_cluster(ETH_40GBPS);
        let slow = network_case_cluster(ETH_5GBPS);
        let g = fast.active_gpus();
        assert_eq!(fast.bandwidth(g[0], g[4]), ETH_40GBPS);
        assert_eq!(slow.bandwidth(g[0], g[4]), ETH_5GBPS);
        assert_eq!(fast.bandwidth(g[0], g[1]), slow.bandwidth(g[0], g[1]));
    }

    #[test]
    fn cloud_heatmap_is_heterogeneous_inhouse_is_uniform() {
        let cloud = paper_cloud_cluster().bandwidth_matrix();
        let mut off_diag: Vec<u64> = Vec::new();
        for (i, row) in cloud.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if i != j {
                    off_diag.push(v as u64);
                }
            }
        }
        off_diag.sort_unstable();
        off_diag.dedup();
        assert!(off_diag.len() >= 3, "cloud bandwidths should be diverse");

        let inhouse = paper_inhouse_cluster().bandwidth_matrix();
        let mut vals: Vec<u64> = Vec::new();
        for (i, row) in inhouse.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if i != j {
                    vals.push(v as u64);
                }
            }
        }
        vals.sort_unstable();
        vals.dedup();
        assert_eq!(vals.len(), 1, "in-house bandwidth should be uniform");
    }
}
