//! The paper's experimental environments (§5.1 and Appendices C/H).

use crate::catalog::GpuModel;
use crate::topology::{Cluster, ClusterBuilder};
use ts_common::SimDuration;

/// NVLink bandwidth for the in-house A100 server (bytes/s).
pub const NVLINK_BW: f64 = 600e9;
/// PCIe 4.0-class intra-node bandwidth used for the cloud instances.
pub const CLOUD_PCIE_BW: f64 = 16e9;
/// 40 Gbps, the fastest inter-instance link observed on the cloud.
pub const ETH_40GBPS: f64 = 5e9;
/// 10 Gbps, a mid-tier cloud link.
pub const ETH_10GBPS: f64 = 1.25e9;
/// 5 Gbps, the slow cross-datacenter link of Appendix H.
pub const ETH_5GBPS: f64 = 0.625e9;

const INTRA_LAT: SimDuration = SimDuration::from_micros(10);
const ETH_LAT: SimDuration = SimDuration::from_micros(250);

/// The heterogeneous cloud environment of §5.1: two 4×A6000 instances, two
/// 4×A5000 instances, one 8×A40 instance and two 4×3090Ti instances —
/// 32 GPUs, ≈$13.5/hour.
///
/// Node indices: 0-1 A6000, 2-3 A5000, 4 A40, 5-6 3090Ti. Inter-node links
/// are heterogeneous (10-40 Gbps) following the variability of the paper's
/// Figure 13 heatmap: instances rented in the same zone see ~40 Gbps, others
/// 10-25 Gbps.
pub fn paper_cloud_cluster() -> Cluster {
    let b = ClusterBuilder::new()
        .default_inter_link(ETH_10GBPS, ETH_LAT)
        .node_with_intra("a6000-0", GpuModel::A6000, 4, CLOUD_PCIE_BW, INTRA_LAT)
        .node_with_intra("a6000-1", GpuModel::A6000, 4, CLOUD_PCIE_BW, INTRA_LAT)
        .node_with_intra("a5000-0", GpuModel::A5000, 4, CLOUD_PCIE_BW, INTRA_LAT)
        .node_with_intra("a5000-1", GpuModel::A5000, 4, CLOUD_PCIE_BW, INTRA_LAT)
        .node_with_intra("a40-0", GpuModel::A40, 8, CLOUD_PCIE_BW, INTRA_LAT)
        .node_with_intra("3090ti-0", GpuModel::Rtx3090Ti, 4, CLOUD_PCIE_BW, INTRA_LAT)
        .node_with_intra("3090ti-1", GpuModel::Rtx3090Ti, 4, CLOUD_PCIE_BW, INTRA_LAT)
        // Same-zone fast links (40 Gbps): the A40 box with the 3090Ti boxes,
        // and each same-model pair.
        .inter_link(0, 1, ETH_40GBPS, ETH_LAT)
        .inter_link(2, 3, ETH_40GBPS, ETH_LAT)
        .inter_link(5, 6, ETH_40GBPS, ETH_LAT)
        .inter_link(4, 5, ETH_40GBPS, ETH_LAT)
        .inter_link(4, 6, ETH_40GBPS, ETH_LAT)
        // A5000 ↔ 3090Ti sit in the same rack in the paper's mixed replicas.
        .inter_link(2, 5, ETH_40GBPS, ETH_LAT)
        .inter_link(3, 6, ETH_40GBPS, ETH_LAT)
        // Mid-tier links.
        .inter_link(0, 4, 2.5e9, ETH_LAT)
        .inter_link(1, 4, 2.5e9, ETH_LAT);
    b.build().expect("paper cloud preset is valid")
}

/// The homogeneous in-house environment of §5.1: one server with 8×A100-80GB
/// connected by NVLink (≈$14.0/hour at cloud prices).
pub fn paper_inhouse_cluster() -> Cluster {
    ClusterBuilder::new()
        .node_with_intra(
            "a100-dgx",
            GpuModel::A100,
            8,
            NVLINK_BW,
            SimDuration::from_micros(3),
        )
        .build()
        .expect("in-house preset is valid")
}

/// A homogeneous cloud cluster of `n` A5000 GPUs split into 4-GPU instances
/// (Figure 6 / Figure 14 use 8, 12 and 16 of these).
///
/// # Panics
/// Panics if `n` is zero or not a multiple of 4.
pub fn a5000_cluster(n: usize) -> Cluster {
    assert!(
        n > 0 && n.is_multiple_of(4),
        "A5000 cluster size must be a positive multiple of 4"
    );
    let mut b = ClusterBuilder::new().default_inter_link(ETH_40GBPS, ETH_LAT);
    for i in 0..n / 4 {
        b = b.node_with_intra(
            &format!("a5000-{i}"),
            GpuModel::A5000,
            4,
            CLOUD_PCIE_BW,
            INTRA_LAT,
        );
    }
    b.build().expect("A5000 preset is valid")
}

/// Appendix H's two-instance environment: one 4×A40 node and one 4×3090Ti
/// node, with a configurable inter-instance bandwidth (40 Gbps for "Case A:
/// within data center", 5 Gbps for "Case B: cross data centers").
pub fn network_case_cluster(inter_bw: f64) -> Cluster {
    let lat = if inter_bw >= ETH_40GBPS {
        ETH_LAT
    } else {
        SimDuration::from_millis(2) // cross-DC latency
    };
    ClusterBuilder::new()
        .node_with_intra("a40-0", GpuModel::A40, 4, CLOUD_PCIE_BW, INTRA_LAT)
        .node_with_intra("3090ti-0", GpuModel::Rtx3090Ti, 4, CLOUD_PCIE_BW, INTRA_LAT)
        .inter_link(0, 1, inter_bw, lat)
        .build()
        .expect("network case preset is valid")
}

/// The §4 KV-compression testbed: two A5000 GPUs on separate instances with a
/// 40 Gbps link.
pub fn a5000_pair_40gbps() -> Cluster {
    ClusterBuilder::new()
        .node_with_intra("a5000-a", GpuModel::A5000, 1, CLOUD_PCIE_BW, INTRA_LAT)
        .node_with_intra("a5000-b", GpuModel::A5000, 1, CLOUD_PCIE_BW, INTRA_LAT)
        .inter_link(0, 1, ETH_40GBPS, ETH_LAT)
        .build()
        .expect("A5000 pair preset is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn cloud_preset_matches_paper_inventory() {
        let c = paper_cloud_cluster();
        assert_eq!(c.num_gpus(), 32);
        assert_eq!(c.num_nodes(), 7);
        let by: BTreeMap<_, _> = c
            .gpus_by_model()
            .into_iter()
            .map(|(m, v)| (m, v.len()))
            .collect();
        assert_eq!(by[&GpuModel::A6000], 8);
        assert_eq!(by[&GpuModel::A5000], 8);
        assert_eq!(by[&GpuModel::A40], 8);
        assert_eq!(by[&GpuModel::Rtx3090Ti], 8);
        // Summing Table 1 per-GPU prices gives $11.328/hr; the paper quotes
        // $13.542/hr at the instance level (which bundles CPU/RAM overhead).
        assert!((c.price_per_hour() - 11.328).abs() < 0.01);
    }

    #[test]
    fn budgets_are_comparable() {
        // The paper's point: the cloud rig costs no more per hour than the
        // in-house A100 box ($13.542 vs $14.024 at instance level; 11.3 vs
        // 14.0 when summing Table 1 per-GPU prices).
        let cloud = paper_cloud_cluster().price_per_hour();
        let inhouse = paper_inhouse_cluster().price_per_hour();
        assert!((inhouse - 14.024).abs() < 0.01);
        assert!(cloud <= inhouse);
        assert!(cloud / inhouse > 0.75);
    }

    #[test]
    fn inhouse_has_nvlink() {
        let c = paper_inhouse_cluster();
        let g = c.active_gpus();
        assert_eq!(c.bandwidth(g[0], g[1]), NVLINK_BW);
    }

    #[test]
    fn a5000_cluster_sizes() {
        for n in [8, 12, 16] {
            let c = a5000_cluster(n);
            assert_eq!(c.num_gpus(), n);
            assert_eq!(c.num_nodes(), n / 4);
        }
    }

    #[test]
    #[should_panic]
    fn a5000_cluster_rejects_non_multiple() {
        let _ = a5000_cluster(6);
    }

    #[test]
    fn network_cases_differ_only_in_inter_link() {
        let fast = network_case_cluster(ETH_40GBPS);
        let slow = network_case_cluster(ETH_5GBPS);
        let g = fast.active_gpus();
        assert_eq!(fast.bandwidth(g[0], g[4]), ETH_40GBPS);
        assert_eq!(slow.bandwidth(g[0], g[4]), ETH_5GBPS);
        assert_eq!(fast.bandwidth(g[0], g[1]), slow.bandwidth(g[0], g[1]));
    }

    #[test]
    fn cloud_heatmap_is_heterogeneous_inhouse_is_uniform() {
        let cloud = paper_cloud_cluster().bandwidth_matrix();
        let mut off_diag: Vec<u64> = Vec::new();
        for (i, row) in cloud.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if i != j {
                    off_diag.push(v as u64);
                }
            }
        }
        off_diag.sort_unstable();
        off_diag.dedup();
        assert!(off_diag.len() >= 3, "cloud bandwidths should be diverse");

        let inhouse = paper_inhouse_cluster().bandwidth_matrix();
        let mut vals: Vec<u64> = Vec::new();
        for (i, row) in inhouse.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if i != j {
                    vals.push(v as u64);
                }
            }
        }
        vals.sort_unstable();
        vals.dedup();
        assert_eq!(vals.len(), 1, "in-house bandwidth should be uniform");
    }
}
