//! The GPU catalog: Table 1 of the paper.

use serde::{Deserialize, Serialize};
use std::fmt;

const GIB: u64 = 1 << 30;

/// How an instance is billed.
///
/// On-demand capacity is held until released and billed at the catalog rate
/// ([`GpuSpec::price_per_hour`]); spot capacity is billed at a steep
/// discount ([`GpuModel::spot_price_per_hour`]) but can be reclaimed by the
/// provider with little warning (a `preemption-warning` availability event
/// followed by a `scale-down`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PricingTier {
    /// Provider-guaranteed capacity at the full catalog rate.
    OnDemand,
    /// Preemptible capacity at the discounted spot rate.
    Spot,
}

impl fmt::Display for PricingTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PricingTier::OnDemand => f.write_str("on-demand"),
            PricingTier::Spot => f.write_str("spot"),
        }
    }
}

/// The GPU models used in the paper's evaluation (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum GpuModel {
    /// NVIDIA A100-80GB (the in-house baseline GPU).
    A100,
    /// NVIDIA RTX A6000 48GB.
    A6000,
    /// NVIDIA RTX A5000 24GB.
    A5000,
    /// NVIDIA A40 48GB — high FP16 throughput, favoured for prefill.
    A40,
    /// NVIDIA GeForce RTX 3090 Ti 24GB — high memory bandwidth, favoured for
    /// decode.
    Rtx3090Ti,
}

impl GpuModel {
    /// All catalog entries, in Table 1 order.
    pub const ALL: [GpuModel; 5] = [
        GpuModel::A100,
        GpuModel::A6000,
        GpuModel::A5000,
        GpuModel::A40,
        GpuModel::Rtx3090Ti,
    ];

    /// Hardware specification for this model (Table 1).
    pub const fn spec(self) -> GpuSpec {
        match self {
            GpuModel::A100 => GpuSpec {
                model: self,
                mem_bandwidth: 2_000e9,
                peak_fp16_flops: 312e12,
                memory_bytes: 80 * GIB,
                price_per_hour: 1.753,
            },
            GpuModel::A6000 => GpuSpec {
                model: self,
                mem_bandwidth: 768e9,
                peak_fp16_flops: 38.7e12,
                memory_bytes: 48 * GIB,
                price_per_hour: 0.483,
            },
            GpuModel::A5000 => GpuSpec {
                model: self,
                mem_bandwidth: 626.8e9,
                peak_fp16_flops: 27.8e12,
                memory_bytes: 24 * GIB,
                price_per_hour: 0.223,
            },
            GpuModel::A40 => GpuSpec {
                model: self,
                mem_bandwidth: 696e9,
                peak_fp16_flops: 149.7e12,
                memory_bytes: 48 * GIB,
                price_per_hour: 0.403,
            },
            GpuModel::Rtx3090Ti => GpuSpec {
                model: self,
                mem_bandwidth: 1_008e9,
                peak_fp16_flops: 40e12,
                memory_bytes: 24 * GIB,
                price_per_hour: 0.307,
            },
        }
    }

    /// Spot-market rental price in USD per GPU-hour.
    ///
    /// Roughly 40% of the on-demand rate, matching the discount the paper's
    /// cloud provider advertises for preemptible capacity. The trade-off is
    /// reclamation risk: spot instances receive a `preemption-warning`
    /// availability event and are pulled shortly after.
    pub const fn spot_price_per_hour(self) -> f64 {
        match self {
            GpuModel::A100 => 0.701,
            GpuModel::A6000 => 0.193,
            GpuModel::A5000 => 0.089,
            GpuModel::A40 => 0.161,
            GpuModel::Rtx3090Ti => 0.123,
        }
    }

    /// Rental price in USD per GPU-hour at the given billing tier.
    pub const fn price_per_hour(self, tier: PricingTier) -> f64 {
        match tier {
            PricingTier::OnDemand => self.spec().price_per_hour,
            PricingTier::Spot => self.spot_price_per_hour(),
        }
    }

    /// Short display name matching the paper's tables.
    pub const fn short_name(self) -> &'static str {
        match self {
            GpuModel::A100 => "A100",
            GpuModel::A6000 => "A6000",
            GpuModel::A5000 => "A5000",
            GpuModel::A40 => "A40",
            GpuModel::Rtx3090Ti => "3090Ti",
        }
    }
}

impl fmt::Display for GpuModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

/// Hardware specification of one GPU model.
///
/// ```
/// use ts_cluster::GpuModel;
/// let a40 = GpuModel::A40.spec();
/// let ti = GpuModel::Rtx3090Ti.spec();
/// // A40 has more compute; 3090Ti has more memory bandwidth (Fig. 1's point)
/// assert!(a40.peak_fp16_flops > ti.peak_fp16_flops);
/// assert!(ti.mem_bandwidth > a40.mem_bandwidth);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// The catalog model.
    pub model: GpuModel,
    /// Device memory access bandwidth in bytes/second.
    pub mem_bandwidth: f64,
    /// Peak FP16 throughput in FLOP/second.
    pub peak_fp16_flops: f64,
    /// Device memory capacity in bytes.
    pub memory_bytes: u64,
    /// Rental price in USD per GPU-hour.
    pub price_per_hour: f64,
}

impl GpuSpec {
    /// Ratio of compute to memory bandwidth (FLOPs per byte at the roofline
    /// ridge). Higher values favour the compute-bound prefill phase.
    pub fn compute_intensity(&self) -> f64 {
        self.peak_fp16_flops / self.mem_bandwidth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let a100 = GpuModel::A100.spec();
        assert_eq!(a100.memory_bytes, 80 * GIB);
        assert!((a100.price_per_hour - 1.753).abs() < 1e-9);
        let a5000 = GpuModel::A5000.spec();
        assert!((a5000.mem_bandwidth - 626.8e9).abs() < 1.0);
        assert!((a5000.peak_fp16_flops - 27.8e12).abs() < 1.0);
    }

    #[test]
    fn a40_is_prefill_friendly_3090ti_is_decode_friendly() {
        // The motivating observation (Fig. 1): A40 has ~3.7x the FLOPS of the
        // 3090Ti while the 3090Ti has ~1.45x the bandwidth of the A40.
        let a40 = GpuModel::A40.spec();
        let ti = GpuModel::Rtx3090Ti.spec();
        assert!(a40.compute_intensity() > 4.0 * ti.compute_intensity());
    }

    #[test]
    fn all_lists_every_model_once() {
        let mut names: Vec<_> = GpuModel::ALL.iter().map(|m| m.short_name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn spot_prices_discount_every_model() {
        for m in GpuModel::ALL {
            let od = m.price_per_hour(PricingTier::OnDemand);
            let spot = m.price_per_hour(PricingTier::Spot);
            assert_eq!(od, m.spec().price_per_hour);
            assert_eq!(spot, m.spot_price_per_hour());
            assert!(spot > 0.0, "{m}: spot price must be positive");
            let discount = spot / od;
            assert!(
                (0.3..=0.5).contains(&discount),
                "{m}: spot should be a steep discount, got {discount:.2}x"
            );
        }
    }

    #[test]
    fn specs_are_physically_sane() {
        for m in GpuModel::ALL {
            let s = m.spec();
            assert!(s.mem_bandwidth > 100e9);
            assert!(s.peak_fp16_flops > 1e12);
            assert!(s.memory_bytes >= 24 * GIB);
            assert!(s.price_per_hour > 0.0);
        }
    }
}
