//! Scheduler search introspection: per-step rows recorded by the tabu
//! search and by lightweight rescheduling when
//! `SchedulerConfig::search_trace` is on.

/// What one search step did: how many neighbors were generated, how the
/// filter pipeline (tabu list, evaluation cache, intra-batch dedup,
/// feasibility pre-checks) thinned them, and what the step concluded.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SearchStep {
    /// Step index (0-based).
    pub step: usize,
    /// Candidate neighbors generated this step.
    pub generated: usize,
    /// Neighbors rejected by the tabu list.
    pub tabu_filtered: usize,
    /// Neighbors answered from the evaluation cache (prior steps).
    pub cache_hits: usize,
    /// Neighbors deduplicated within this step's batch.
    pub duplicates: usize,
    /// Neighbors rejected by structural pre-checks (e.g. a move that
    /// leaves one phase empty) before any evaluation.
    pub infeasible: usize,
    /// Neighbors actually evaluated (cache misses sent to the pool).
    pub evaluated: usize,
    /// Score of the step's winning neighbor, if any was feasible.
    pub winner_score: Option<f64>,
    /// Wall-clock seconds this step took. Recorded for humans only — it is
    /// never fed back into the search, so determinism is unaffected.
    pub wall_s: f64,
}

/// The per-step trace of one search run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SearchTrace {
    /// One row per executed step, in order.
    pub steps: Vec<SearchStep>,
}

impl SearchTrace {
    /// Total neighbors generated across all steps.
    pub fn total_generated(&self) -> usize {
        self.steps.iter().map(|s| s.generated).sum()
    }

    /// Total neighbors evaluated (cache misses) across all steps.
    pub fn total_evaluated(&self) -> usize {
        self.steps.iter().map(|s| s.evaluated).sum()
    }

    /// Fraction of non-tabu lookups answered by the evaluation cache.
    pub fn cache_hit_rate(&self) -> f64 {
        let hits: usize = self.steps.iter().map(|s| s.cache_hits).sum();
        let total = hits + self.total_evaluated();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// A compact fixed-width table of the per-step rows.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("step   gen  tabu cache   dup infeas  eval  winner        wall\n");
        for s in &self.steps {
            out.push_str(&format!(
                "{:>4} {:>5} {:>5} {:>5} {:>5} {:>6} {:>5}  {:<12} {:>8.2}ms\n",
                s.step,
                s.generated,
                s.tabu_filtered,
                s.cache_hits,
                s.duplicates,
                s.infeasible,
                s.evaluated,
                s.winner_score
                    .map(|w| format!("{w:.6}"))
                    .unwrap_or_else(|| "-".into()),
                s.wall_s * 1e3,
            ));
        }
        out.push_str(&format!(
            "total: {} generated, {} evaluated, cache hit rate {:.1}%\n",
            self.total_generated(),
            self.total_evaluated(),
            100.0 * self.cache_hit_rate(),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_hit_rate() {
        let t = SearchTrace {
            steps: vec![
                SearchStep {
                    step: 0,
                    generated: 10,
                    cache_hits: 2,
                    evaluated: 6,
                    ..Default::default()
                },
                SearchStep {
                    step: 1,
                    generated: 10,
                    cache_hits: 6,
                    evaluated: 2,
                    ..Default::default()
                },
            ],
        };
        assert_eq!(t.total_generated(), 20);
        assert_eq!(t.total_evaluated(), 8);
        assert!((t.cache_hit_rate() - 0.5).abs() < 1e-12);
        let rendered = t.render();
        assert!(rendered.contains("cache hit rate 50.0%"));
    }

    #[test]
    fn empty_trace_has_zero_hit_rate() {
        assert_eq!(SearchTrace::default().cache_hit_rate(), 0.0);
    }
}
