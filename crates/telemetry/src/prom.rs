//! Prometheus text-exposition export of a [`StreamSnapshot`] and a
//! parser-free line-format conformance validator.
//!
//! The workspace has no Prometheus client crate (and must not grow one),
//! so the exporter writes exposition-format text by hand and the validator
//! exists to keep the hand-rolled writer honest: it checks HELP/TYPE
//! ordering, metric-name and label well-formedness, label-value escaping,
//! histogram bucket monotonicity and the `+Inf`-bucket/`_count` identity —
//! all by scanning lines, never by round-tripping through a parser AST.

use crate::burn::HealthState;
use crate::sketch::QuantileSketch;
use crate::stream::StreamSnapshot;

/// Escapes a label value per the exposition format: backslash, double
/// quote and newline.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn header(out: &mut String, name: &str, help: &str, kind: &str) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
}

/// Renders one sketch as a cumulative histogram family.
fn histogram(out: &mut String, name: &str, help: &str, s: &QuantileSketch) {
    header(out, name, help, "histogram");
    let mut cum = 0u64;
    for (key, count) in s.bucket_counts() {
        cum += count;
        let le = s.bucket_upper(key);
        out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cum}\n"));
    }
    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", s.count()));
    out.push_str(&format!("{name}_sum {:.9}\n", s.sum()));
    out.push_str(&format!("{name}_count {}\n", s.count()));
}

fn gauge(out: &mut String, name: &str, help: &str, value: Option<f64>) {
    header(out, name, help, "gauge");
    if let Some(v) = value {
        out.push_str(&format!("{name} {v:.9}\n"));
    }
}

/// Renders a snapshot in Prometheus text exposition format.
pub fn render_prometheus(s: &StreamSnapshot) -> String {
    let mut out = String::new();
    histogram(
        &mut out,
        "ts_ttft_seconds",
        "Time to first token (streaming sketch).",
        &s.ttft,
    );
    histogram(
        &mut out,
        "ts_e2e_seconds",
        "End-to-end request latency (streaming sketch).",
        &s.e2e,
    );
    histogram(
        &mut out,
        "ts_queue_depth_jobs",
        "Prefill queue depth samples.",
        &s.queue_depth,
    );
    histogram(
        &mut out,
        "ts_batch_occupancy_seqs",
        "Decode batch occupancy samples.",
        &s.batch_occupancy,
    );

    header(
        &mut out,
        "ts_requests_total",
        "Terminal request outcomes.",
        "counter",
    );
    for (outcome, n) in [
        ("finished", s.totals.finished),
        ("dropped", s.totals.dropped),
        ("rejected", s.totals.rejected),
    ] {
        out.push_str(&format!(
            "ts_requests_total{{outcome=\"{}\"}} {n}\n",
            escape_label(outcome)
        ));
    }
    header(
        &mut out,
        "ts_slo_miss_total",
        "Completed requests that missed their SLO.",
        "counter",
    );
    out.push_str(&format!("ts_slo_miss_total {}\n", s.totals.slo_miss));
    header(
        &mut out,
        "ts_hedges_total",
        "Hedged duplicate launches.",
        "counter",
    );
    out.push_str(&format!("ts_hedges_total {}\n", s.totals.hedges));
    header(
        &mut out,
        "ts_requeues_total",
        "Requests requeued by fault recovery.",
        "counter",
    );
    out.push_str(&format!("ts_requeues_total {}\n", s.totals.requeues));
    header(
        &mut out,
        "ts_events_observed_total",
        "Trace events folded into the streaming plane.",
        "counter",
    );
    out.push_str(&format!("ts_events_observed_total {}\n", s.events_observed));
    header(
        &mut out,
        "ts_windows_closed_total",
        "Fixed aggregation windows closed.",
        "counter",
    );
    out.push_str(&format!("ts_windows_closed_total {}\n", s.windows_closed));

    gauge(
        &mut out,
        "ts_ttft_ewma_seconds",
        "Smoothed time to first token.",
        s.ttft_ewma,
    );
    gauge(
        &mut out,
        "ts_e2e_ewma_seconds",
        "Smoothed end-to-end latency.",
        s.e2e_ewma,
    );
    gauge(
        &mut out,
        "ts_queue_depth_ewma_jobs",
        "Smoothed prefill queue depth.",
        s.queue_depth_ewma,
    );
    gauge(
        &mut out,
        "ts_batch_occupancy_ewma_seqs",
        "Smoothed decode batch occupancy.",
        s.batch_occupancy_ewma,
    );

    header(
        &mut out,
        "ts_slo_burn_rate",
        "SLO burn rate per tenant and window.",
        "gauge",
    );
    let tenant_label =
        |t: Option<ts_common::ModelId>| t.map_or("global".to_string(), |m| m.0.to_string());
    for h in &s.health {
        let t = escape_label(&tenant_label(h.tenant));
        out.push_str(&format!(
            "ts_slo_burn_rate{{tenant=\"{t}\",window=\"fast\"}} {:.9}\n",
            h.fast_burn
        ));
        out.push_str(&format!(
            "ts_slo_burn_rate{{tenant=\"{t}\",window=\"slow\"}} {:.9}\n",
            h.slow_burn
        ));
    }
    header(
        &mut out,
        "ts_health_state",
        "Distilled health (0 healthy, 1 warning, 2 critical).",
        "gauge",
    );
    for h in &s.health {
        let v = match h.state {
            HealthState::Healthy => 0,
            HealthState::Warning => 1,
            HealthState::Critical => 2,
        };
        out.push_str(&format!(
            "ts_health_state{{tenant=\"{}\"}} {v}\n",
            escape_label(&tenant_label(h.tenant))
        ));
    }
    out
}

/// Structural statistics of a validated exposition document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpositionStats {
    /// Metric families (HELP/TYPE pairs).
    pub families: usize,
    /// Sample lines.
    pub samples: usize,
    /// Histogram families.
    pub histograms: usize,
}

fn valid_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Splits a sample line into `(metric name, label text, value text)`.
/// The label text excludes the surrounding braces and is empty when the
/// sample carries no labels.
fn split_sample(line: &str) -> Result<(&str, &str, &str), String> {
    if let Some(open) = line.find('{') {
        let name = &line[..open];
        let close = line
            .rfind('}')
            .ok_or_else(|| format!("unclosed label braces: {line:?}"))?;
        if close < open {
            return Err(format!("mismatched label braces: {line:?}"));
        }
        let labels = &line[open + 1..close];
        let rest = line[close + 1..].trim_start();
        Ok((name, labels, rest))
    } else {
        let (name, value) = line
            .split_once(' ')
            .ok_or_else(|| format!("sample without value: {line:?}"))?;
        Ok((name, "", value.trim_start()))
    }
}

/// Validates the label text of one sample, returning the value of the
/// `le` label if present.
fn validate_labels(labels: &str, line_no: usize) -> Result<Option<String>, String> {
    let mut le = None;
    let bytes = labels.as_bytes();
    let mut pos = 0;
    while pos < bytes.len() {
        let rest = &labels[pos..];
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("line {line_no}: label without '='"))?;
        let key = &rest[..eq];
        if !valid_label_name(key) {
            return Err(format!("line {line_no}: bad label name {key:?}"));
        }
        let after = &rest[eq + 1..];
        if !after.starts_with('"') {
            return Err(format!("line {line_no}: label value must be quoted"));
        }
        // Scan the quoted value, honouring escapes.
        let mut value = String::new();
        let mut chars = after[1..].char_indices();
        let mut consumed = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => {
                    consumed = Some(i + 1);
                    break;
                }
                '\\' => match chars.next() {
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    Some((_, 'n')) => value.push('\n'),
                    other => {
                        return Err(format!(
                            "line {line_no}: bad escape in label value ({other:?})"
                        ))
                    }
                },
                '\n' => {
                    return Err(format!("line {line_no}: raw newline in label value"));
                }
                _ => value.push(c),
            }
        }
        let consumed =
            consumed.ok_or_else(|| format!("line {line_no}: unterminated label value"))?;
        if key == "le" {
            le = Some(value);
        }
        pos += eq + 1 + 1 + consumed;
        // Optional comma between labels (trailing comma is legal).
        if labels[pos..].starts_with(',') {
            pos += 1;
        } else if !labels[pos..].is_empty() {
            return Err(format!("line {line_no}: expected ',' between labels"));
        }
    }
    Ok(le)
}

fn parse_value(v: &str, line_no: usize) -> Result<f64, String> {
    match v {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        _ => v
            .parse::<f64>()
            .map_err(|_| format!("line {line_no}: bad sample value {v:?}")),
    }
}

/// State of the histogram family currently being scanned.
#[derive(Default)]
struct HistogramCheck {
    last_le: Option<f64>,
    last_cum: Option<f64>,
    inf_bucket: Option<f64>,
    count: Option<f64>,
}

impl HistogramCheck {
    fn finish(&self, family: &str) -> Result<(), String> {
        match (self.inf_bucket, self.count) {
            (Some(inf), Some(count)) if inf == count => Ok(()),
            (Some(inf), Some(count)) => Err(format!(
                "histogram {family}: +Inf bucket {inf} != _count {count}"
            )),
            (None, _) => Err(format!("histogram {family}: missing +Inf bucket")),
            (_, None) => Err(format!("histogram {family}: missing _count")),
        }
    }
}

/// Validates Prometheus text-exposition output line by line.
///
/// Enforced rules: every sample belongs to a family announced by a
/// preceding `# HELP`/`# TYPE` pair (in that order, exactly once per
/// family); metric and label names are well-formed; label values are
/// quoted with only `\\`, `\"` and `\n` escapes; sample values parse;
/// histogram `le` buckets are strictly increasing with non-decreasing
/// cumulative counts, ending in a `+Inf` bucket equal to `_count`.
pub fn validate_exposition(text: &str) -> Result<ExpositionStats, String> {
    let mut stats = ExpositionStats {
        families: 0,
        samples: 0,
        histograms: 0,
    };
    let mut seen: Vec<String> = Vec::new();
    let mut pending_help: Option<String> = None;
    let mut family: Option<(String, String)> = None; // (name, type)
    let mut hist = HistogramCheck::default();

    let close_family =
        |family: &Option<(String, String)>, hist: &HistogramCheck| -> Result<(), String> {
            if let Some((name, kind)) = family {
                if kind == "histogram" {
                    hist.finish(name)?;
                }
            }
            Ok(())
        };

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, _help) = rest
                .split_once(' ')
                .ok_or_else(|| format!("line {line_no}: HELP without docstring"))?;
            if !valid_metric_name(name) {
                return Err(format!("line {line_no}: bad metric name {name:?}"));
            }
            if seen.iter().any(|s| s == name) {
                return Err(format!("line {line_no}: family {name} repeated"));
            }
            close_family(&family, &hist)?;
            family = None;
            hist = HistogramCheck::default();
            pending_help = Some(name.to_string());
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest
                .split_once(' ')
                .ok_or_else(|| format!("line {line_no}: TYPE without a type"))?;
            if pending_help.as_deref() != Some(name) {
                return Err(format!(
                    "line {line_no}: TYPE {name} must directly follow its HELP"
                ));
            }
            if !matches!(
                kind,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err(format!("line {line_no}: unknown metric type {kind:?}"));
            }
            pending_help = None;
            seen.push(name.to_string());
            if kind == "histogram" {
                stats.histograms += 1;
            }
            family = Some((name.to_string(), kind.to_string()));
            stats.families += 1;
            continue;
        }
        if line.starts_with('#') {
            // Free-form comment.
            continue;
        }
        // A sample line.
        let (fam_name, fam_kind) = family
            .as_ref()
            .ok_or_else(|| format!("line {line_no}: sample before any HELP/TYPE"))?;
        let (name, labels, value) = split_sample(line)?;
        if !valid_metric_name(name) {
            return Err(format!("line {line_no}: bad metric name {name:?}"));
        }
        let member = if fam_kind == "histogram" {
            name == format!("{fam_name}_bucket")
                || name == format!("{fam_name}_sum")
                || name == format!("{fam_name}_count")
        } else {
            name == fam_name
        };
        if !member {
            return Err(format!(
                "line {line_no}: sample {name} outside family {fam_name}"
            ));
        }
        let le = validate_labels(labels, line_no)?;
        let v = parse_value(value, line_no)?;
        stats.samples += 1;
        if fam_kind == "histogram" {
            if name.ends_with("_bucket") {
                let le =
                    le.ok_or_else(|| format!("line {line_no}: histogram bucket without le label"))?;
                let le_v = parse_value(&le, line_no)?;
                if let Some(prev) = hist.last_le {
                    if le_v <= prev {
                        return Err(format!(
                            "line {line_no}: bucket le {le} not increasing (prev {prev})"
                        ));
                    }
                }
                if let Some(prev) = hist.last_cum {
                    if v < prev {
                        return Err(format!(
                            "line {line_no}: bucket count {v} decreased (prev {prev})"
                        ));
                    }
                }
                hist.last_le = Some(le_v);
                hist.last_cum = Some(v);
                if le_v.is_infinite() {
                    hist.inf_bucket = Some(v);
                }
            } else if name.ends_with("_count") {
                hist.count = Some(v);
            }
        }
    }
    if pending_help.is_some() {
        return Err("document ends with a HELP line missing its TYPE".into());
    }
    close_family(&family, &hist)?;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceKind;
    use crate::stream::{StreamConfig, StreamingPlane};
    use ts_common::{ModelId, RequestId, SimDuration, SimTime, SloSpec};

    fn multi_tenant_snapshot() -> StreamSnapshot {
        let slo = SloSpec::new(
            SimDuration::from_millis(200),
            SimDuration::from_millis(50),
            SimDuration::from_secs(2),
        );
        let mut p = StreamingPlane::new(StreamConfig::new(slo));
        p.register_tenant(ModelId(0), slo);
        p.register_tenant(ModelId(1), slo.scaled(0.25));
        for i in 0..40u64 {
            let request = RequestId(i);
            let base = SimTime::from_micros(i * 130_000);
            p.observe(base, &TraceKind::Arrived { request });
            p.observe(
                base,
                &TraceKind::ModelTag {
                    request,
                    model: ModelId((i % 2) as u32),
                },
            );
            p.observe(
                base + SimDuration::from_millis(90),
                &TraceKind::FirstToken { request },
            );
            if i % 7 == 0 {
                p.observe(
                    base + SimDuration::from_millis(150),
                    &TraceKind::Dropped { request },
                );
            } else {
                p.observe(
                    base + SimDuration::from_millis(400),
                    &TraceKind::Finished { request },
                );
            }
            p.observe(
                base,
                &TraceKind::QueueDepth {
                    role: crate::Role::Prefill,
                    replica: 0,
                    depth: (i % 5) as usize,
                },
            );
        }
        p.snapshot()
    }

    #[test]
    fn exporter_output_conforms_round_trip() {
        let s = multi_tenant_snapshot();
        let text = render_prometheus(&s);
        let stats = validate_exposition(&text).expect("exporter must conform");
        assert_eq!(stats.histograms, 4);
        assert!(stats.families >= 12, "{stats:?}");
        assert!(stats.samples > 20);
        // Both tenants and the global signal appear.
        assert!(text.contains("ts_slo_burn_rate{tenant=\"global\",window=\"fast\"}"));
        assert!(text.contains("ts_health_state{tenant=\"1\"}"));
        assert!(text.contains("ts_requests_total{outcome=\"dropped\"}"));
    }

    #[test]
    fn validator_rejects_type_before_help() {
        let bad = "# TYPE x counter\nx 1\n";
        assert!(validate_exposition(bad).is_err());
    }

    #[test]
    fn validator_rejects_non_monotone_buckets() {
        let bad = "# HELP h d\n# TYPE h histogram\n\
                   h_bucket{le=\"1\"} 5\nh_bucket{le=\"0.5\"} 6\n\
                   h_bucket{le=\"+Inf\"} 6\nh_sum 1\nh_count 6\n";
        let err = validate_exposition(bad).unwrap_err();
        assert!(err.contains("not increasing"), "{err}");
    }

    #[test]
    fn validator_rejects_decreasing_cumulative_counts() {
        let bad = "# HELP h d\n# TYPE h histogram\n\
                   h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n\
                   h_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n";
        let err = validate_exposition(bad).unwrap_err();
        assert!(err.contains("decreased"), "{err}");
    }

    #[test]
    fn validator_rejects_inf_count_mismatch() {
        let bad = "# HELP h d\n# TYPE h histogram\n\
                   h_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 6\n";
        let err = validate_exposition(bad).unwrap_err();
        assert!(err.contains("+Inf bucket"), "{err}");
    }

    #[test]
    fn validator_rejects_bad_escapes_and_accepts_good_ones() {
        let good = "# HELP g d\n# TYPE g gauge\ng{a=\"x\\\\y\\\"z\\n\"} 1\n";
        assert!(validate_exposition(good).is_ok());
        let bad = "# HELP g d\n# TYPE g gauge\ng{a=\"x\\qy\"} 1\n";
        assert!(validate_exposition(bad).is_err());
    }

    #[test]
    fn validator_rejects_samples_outside_their_family() {
        let bad = "# HELP a d\n# TYPE a counter\nb 1\n";
        let err = validate_exposition(bad).unwrap_err();
        assert!(err.contains("outside family"), "{err}");
    }

    #[test]
    fn validator_rejects_repeated_family() {
        let bad = "# HELP a d\n# TYPE a counter\na 1\n# HELP a d\n# TYPE a counter\na 2\n";
        assert!(validate_exposition(bad).is_err());
    }

    #[test]
    fn escape_label_round_trip() {
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
