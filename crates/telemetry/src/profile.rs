//! A zero-dependency self-profiler for the simulator/scheduler hot paths.
//!
//! Scoped wall-clock timers ([`scope`]) accumulate into a per-thread call
//! tree keyed by static scope names. Profiling is globally gated by an
//! atomic flag that defaults to off, so an un-enabled scope costs one
//! relaxed atomic load and nothing else — cheap enough to leave in
//! release binaries. The aggregated tree renders as a hierarchical text
//! report or as Chrome trace-event JSON (children laid out sequentially
//! inside their parent), which the existing
//! [`crate::validate_chrome_trace`] validator accepts.
//!
//! Wall-clock time never appears inside the deterministic simulation —
//! the profiler observes host execution, not simulated time, and is only
//! enabled by bench binaries and examples.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns profiling on (all threads).
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns profiling off.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether profiling is currently on.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

const NO_PARENT: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Node {
    name: &'static str,
    children: Vec<usize>,
    calls: u64,
    total: Duration,
}

#[derive(Default)]
struct Tree {
    nodes: Vec<Node>,
    roots: Vec<usize>,
    stack: Vec<usize>,
}

impl Tree {
    fn enter(&mut self, name: &'static str) -> usize {
        let parent = self.stack.last().copied().unwrap_or(NO_PARENT);
        let siblings = if parent == NO_PARENT {
            &self.roots
        } else {
            &self.nodes[parent].children
        };
        let found = siblings
            .iter()
            .copied()
            .find(|&i| self.nodes[i].name == name);
        let idx = match found {
            Some(i) => i,
            None => {
                let idx = self.nodes.len();
                self.nodes.push(Node {
                    name,
                    children: Vec::new(),
                    calls: 0,
                    total: Duration::ZERO,
                });
                if parent == NO_PARENT {
                    self.roots.push(idx);
                } else {
                    self.nodes[parent].children.push(idx);
                }
                idx
            }
        };
        self.stack.push(idx);
        idx
    }

    fn exit(&mut self, idx: usize, elapsed: Duration) {
        // Guards are scoped so drops are well-nested; tolerate a mismatch
        // (e.g. reset() between enter and drop) by searching the stack.
        if let Some(pos) = self.stack.iter().rposition(|&i| i == idx) {
            self.stack.truncate(pos);
            let n = &mut self.nodes[idx];
            n.calls += 1;
            n.total += elapsed;
        }
    }
}

thread_local! {
    static TREE: RefCell<Tree> = RefCell::new(Tree::default());
}

/// Clears this thread's accumulated profile.
pub fn reset() {
    TREE.with(|t| *t.borrow_mut() = Tree::default());
}

/// A scoped timer; its `Drop` charges the elapsed wall time to the scope.
#[must_use = "a profiler scope only measures while the guard lives"]
pub struct ScopeGuard {
    active: Option<(usize, Instant)>,
}

/// Opens a named profiling scope on this thread. A no-op (one relaxed
/// atomic load) while profiling is disabled.
pub fn scope(name: &'static str) -> ScopeGuard {
    if !is_enabled() {
        return ScopeGuard { active: None };
    }
    let idx = TREE.with(|t| t.borrow_mut().enter(name));
    ScopeGuard {
        active: Some((idx, Instant::now())),
    }
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if let Some((idx, start)) = self.active.take() {
            let elapsed = start.elapsed();
            TREE.with(|t| t.borrow_mut().exit(idx, elapsed));
        }
    }
}

/// One aggregated scope in a [`ProfileReport`], depth-first order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileEntry {
    /// Nesting depth (roots are 0).
    pub depth: usize,
    /// The scope name.
    pub name: &'static str,
    /// Completed invocations.
    pub calls: u64,
    /// Total wall time across invocations.
    pub total: Duration,
}

/// An immutable snapshot of this thread's profile tree.
#[derive(Debug, Clone, Default)]
pub struct ProfileReport {
    /// Aggregated scopes in depth-first order.
    pub entries: Vec<ProfileEntry>,
}

/// Snapshots this thread's accumulated profile.
pub fn report() -> ProfileReport {
    TREE.with(|t| {
        let tree = t.borrow();
        let mut entries = Vec::with_capacity(tree.nodes.len());
        fn walk(tree: &Tree, idx: usize, depth: usize, out: &mut Vec<ProfileEntry>) {
            let n = &tree.nodes[idx];
            out.push(ProfileEntry {
                depth,
                name: n.name,
                calls: n.calls,
                total: n.total,
            });
            for &c in &n.children {
                walk(tree, c, depth + 1, out);
            }
        }
        for &r in &tree.roots {
            walk(&tree, r, 0, &mut entries);
        }
        ProfileReport { entries }
    })
}

impl ProfileReport {
    /// Total wall time across root scopes.
    pub fn root_total(&self) -> Duration {
        self.entries
            .iter()
            .filter(|e| e.depth == 0)
            .map(|e| e.total)
            .sum()
    }

    /// Looks up an entry by name (first match in depth-first order).
    pub fn entry(&self, name: &str) -> Option<&ProfileEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Renders an indented hierarchical report with per-scope share of the
    /// root total.
    pub fn to_text(&self) -> String {
        let root = self.root_total().as_secs_f64().max(1e-12);
        let mut out =
            String::from("scope                                    calls      total    share\n");
        for e in &self.entries {
            let label = format!("{}{}", "  ".repeat(e.depth), e.name);
            out.push_str(&format!(
                "{label:<40} {:>6} {:>9.3}ms {:>7.2}%\n",
                e.calls,
                e.total.as_secs_f64() * 1e3,
                e.total.as_secs_f64() / root * 100.0,
            ));
        }
        out
    }

    /// Exports the aggregated tree as Chrome trace-event JSON: one `X`
    /// slice per scope, children laid out sequentially from their parent's
    /// start so the nesting is visible in Perfetto. Validated by
    /// [`crate::validate_chrome_trace`].
    pub fn to_chrome_trace(&self) -> String {
        let mut body = String::new();
        body.push_str(
            "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"ts\":0,\"name\":\"process_name\",\
             \"args\":{\"name\":\"profile\"}},\n",
        );
        // entries are depth-first, so a per-depth cursor stack suffices to
        // lay children out inside their parent.
        let mut cursors: Vec<u128> = vec![0];
        for e in &self.entries {
            cursors.truncate(e.depth + 1);
            let start = *cursors.last().unwrap();
            let dur = e.total.as_micros();
            body.push_str(&format!(
                "{{\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":{start},\"dur\":{dur},\
                 \"name\":\"{}\",\"cat\":\"profile\"}},\n",
                e.name
            ));
            *cursors.last_mut().unwrap() = start + dur;
            cursors.push(start);
        }
        let body = body.trim_end().trim_end_matches(',');
        format!("{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n{body}\n]}}\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chrome::validate_chrome_trace;

    fn with_profiler<R>(f: impl FnOnce() -> R) -> R {
        reset();
        enable();
        let r = f();
        disable();
        r
    }

    // The enable flag is process-global while trees are per-thread; the
    // sub-cases share one test so a parallel test runner cannot flip the
    // flag mid-case.
    #[test]
    fn profiler_end_to_end() {
        disabled_scopes_record_nothing();
        nested_scopes_build_a_tree();
        chrome_export_validates();
    }

    fn disabled_scopes_record_nothing() {
        reset();
        disable();
        {
            let _g = scope("idle");
        }
        assert!(report().entries.is_empty());
    }

    fn nested_scopes_build_a_tree() {
        let rep = with_profiler(|| {
            for _ in 0..3 {
                let _run = scope("run");
                {
                    let _step = scope("step");
                    std::hint::black_box(0u64);
                }
                {
                    let _step = scope("flush");
                }
            }
            report()
        });
        let names: Vec<_> = rep.entries.iter().map(|e| (e.depth, e.name)).collect();
        assert_eq!(names, vec![(0, "run"), (1, "step"), (1, "flush")]);
        assert_eq!(rep.entry("run").unwrap().calls, 3);
        assert_eq!(rep.entry("step").unwrap().calls, 3);
        assert!(rep.root_total() >= rep.entry("step").unwrap().total);
        let text = rep.to_text();
        assert!(text.contains("run"), "{text}");
        assert!(text.contains("  step"), "{text}");
    }

    fn chrome_export_validates() {
        let rep = with_profiler(|| {
            {
                let _a = scope("outer");
                let _b = scope("inner");
            }
            report()
        });
        let json = rep.to_chrome_trace();
        let stats = validate_chrome_trace(&json).expect("profile trace must validate");
        assert_eq!(stats.slices, 2);
    }
}
