//! Mergeable streaming quantile sketch with bounded relative error.
//!
//! A DDSketch-style structure: values are binned into logarithmic buckets
//! `(gamma^(k-1), gamma^k]` with `gamma = (1 + alpha) / (1 - alpha)`, so any
//! quantile estimate is within a factor `1 ± alpha` of the true value.
//! Buckets are plain integer counts, which makes merging two sketches an
//! exact element-wise addition — associative and commutative, so a sketch
//! built from shards equals one built from the concatenated stream in any
//! order (the property the window tests pin).
//!
//! The bucket store is a dense `Vec` over the occupied key range rather
//! than a map: inserts on the simulator hot path are an `ln`, an index
//! computation and one slot increment once the range is warm.

use ts_common::SimDuration;

/// Values at or below this are counted in the dedicated zero bucket: for
/// sub-nanosecond "durations" relative error is meaningless and the
/// logarithm diverges.
const MIN_VALUE: f64 = 1e-9;

/// A mergeable quantile sketch with bounded relative error (DDSketch-style).
///
/// Relative accuracy `alpha` is fixed at construction; quantile estimates
/// `q̂` satisfy `|q̂ - q| <= alpha * q` for any true quantile value `q`
/// above the zero-bucket cutoff. Two sketches with the same `alpha` merge
/// exactly (integer bucket addition).
#[derive(Debug, Clone)]
pub struct QuantileSketch {
    /// Configured relative accuracy.
    alpha: f64,
    /// `1 / ln(gamma)` — multiplies `ln(v)` to a bucket key.
    inv_ln_gamma: f64,
    /// `ln(gamma)` kept for bucket-midpoint reconstruction.
    ln_gamma: f64,
    /// Key of `buckets[0]`; the dense store covers `[offset, offset + len)`.
    offset: i32,
    /// Dense per-key counts.
    buckets: Vec<u64>,
    /// Count of values at or below [`MIN_VALUE`].
    zero: u64,
    /// Total inserted count (zero bucket included).
    count: u64,
    /// Running sum of inserted values.
    sum: f64,
    /// Smallest inserted value (`f64::INFINITY` when empty).
    min: f64,
    /// Largest inserted value (`f64::NEG_INFINITY` when empty).
    max: f64,
    /// Value of the most recent above-cutoff insert. Latency series repeat
    /// values rarely but the repeat-insert fast path is nearly free: a
    /// float compare and one slot increment, no logarithm. `NAN` (the
    /// empty state, and after a merge shifts the store) never compares
    /// equal.
    last_value: f64,
    /// Dense index `last_value` mapped to.
    last_slot: usize,
    /// Precomputed bucket keys for small integer values (`int_keys[n]` is
    /// `key_of(n)`); pressure series (queue depth, batch occupancy) are
    /// small integers sampled once per simulator step, and the table turns
    /// those inserts into a load and a slot increment. Entry 0 is unused
    /// (zero goes to the zero bucket).
    int_keys: Vec<i32>,
}

/// Size of the small-integer key table: covers every realistic queue depth
/// and batch occupancy; larger values fall back to the logarithm path.
const INT_KEYS: usize = 256;

impl QuantileSketch {
    /// Creates an empty sketch with the given relative accuracy.
    ///
    /// # Panics
    /// Panics unless `alpha` lies in `(0, 1)`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "sketch relative accuracy must lie in (0, 1), got {alpha}"
        );
        let gamma = (1.0 + alpha) / (1.0 - alpha);
        let ln_gamma = gamma.ln();
        let inv_ln_gamma = 1.0 / ln_gamma;
        let int_keys = (0..INT_KEYS)
            .map(|n| ((n as f64).ln() * inv_ln_gamma).ceil() as i32)
            .collect();
        QuantileSketch {
            alpha,
            inv_ln_gamma,
            ln_gamma,
            offset: 0,
            buckets: Vec::new(),
            zero: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            last_value: f64::NAN,
            last_slot: 0,
            int_keys,
        }
    }

    /// The configured relative accuracy.
    pub fn relative_accuracy(&self) -> f64 {
        self.alpha
    }

    /// Number of inserted values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no value has been inserted yet.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of inserted values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest inserted value, `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest inserted value, `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of inserted values, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// The bucket key of a value above the zero cutoff.
    fn key_of(&self, v: f64) -> i32 {
        // ceil(ln(v) / ln(gamma)): v lands in (gamma^(k-1), gamma^k].
        (v.ln() * self.inv_ln_gamma).ceil() as i32
    }

    /// Inserts one value.
    ///
    /// Negative values are clamped into the zero bucket (the sketch tracks
    /// non-negative quantities: durations, depths, counts).
    ///
    /// # Panics
    /// Panics on NaN or infinite input.
    #[inline]
    pub fn insert(&mut self, v: f64) {
        assert!(v.is_finite(), "sketch insert must be finite, got {v}");
        self.count += 1;
        self.sum += v;
        if v == self.last_value {
            // min/max already absorbed this value the first time around.
            self.buckets[self.last_slot] += 1;
            return;
        }
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if v <= MIN_VALUE {
            self.zero += 1;
            return;
        }
        let key = self.key_of(v);
        self.slot(key);
        let slot = (key - self.offset) as usize;
        self.buckets[slot] += 1;
        self.last_value = v;
        self.last_slot = slot;
    }

    /// Inserts a simulated duration (in seconds).
    pub fn insert_duration(&mut self, d: SimDuration) {
        self.insert(d.as_secs_f64());
    }

    /// Inserts a small non-negative integer (a queue depth, a batch
    /// occupancy): identical to `insert(n as f64)` but served from the
    /// precomputed key table on the simulator hot path — no logarithm.
    #[inline]
    pub fn insert_count(&mut self, n: usize) {
        if n >= INT_KEYS {
            self.insert(n as f64);
            return;
        }
        let v = n as f64;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if n == 0 {
            self.zero += 1;
            return;
        }
        let key = self.int_keys[n];
        self.slot(key);
        self.buckets[(key - self.offset) as usize] += 1;
    }

    /// Inserts `n` copies of `v` at once — bit-identical to `n` calls of
    /// [`QuantileSketch::insert`] with `v` whenever `v * n` is exact in
    /// `f64` (integer-valued `v`, as in the pressure histograms this
    /// serves).
    ///
    /// # Panics
    /// Panics on NaN or infinite `v`.
    pub fn insert_n(&mut self, v: f64, n: u64) {
        assert!(v.is_finite(), "sketch insert must be finite, got {v}");
        if n == 0 {
            return;
        }
        self.count += n;
        self.sum += v * n as f64;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if v <= MIN_VALUE {
            self.zero += n;
            return;
        }
        let key = self.key_of(v);
        self.slot(key);
        let slot = (key - self.offset) as usize;
        self.buckets[slot] += n;
        self.last_value = v;
        self.last_slot = slot;
    }

    /// Grows the dense store to cover `key`.
    fn slot(&mut self, key: i32) {
        if self.buckets.is_empty() {
            self.offset = key;
            self.buckets.push(0);
            return;
        }
        if key < self.offset {
            let grow = (self.offset - key) as usize;
            let mut fresh = vec![0u64; grow + self.buckets.len()];
            fresh[grow..].copy_from_slice(&self.buckets);
            self.buckets = fresh;
            self.offset = key;
            // Dense indices just shifted; the repeat-insert memo is stale.
            self.last_value = f64::NAN;
        } else if (key - self.offset) as usize >= self.buckets.len() {
            self.buckets.resize((key - self.offset) as usize + 1, 0);
        }
    }

    /// The estimated `q`-quantile (`q` clamped into `[0, 1]`), `None` when
    /// empty.
    ///
    /// Uses the same nearest-rank convention as
    /// [`ts_common::stats::percentile`] (`rank = round((count - 1) * q)`),
    /// so exact-vs-sketch comparisons measure only the binning error.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((self.count - 1) as f64 * q).round() as u64;
        if rank < self.zero {
            return Some(0.0);
        }
        let mut cum = self.zero;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum > rank {
                let key = self.offset + i as i32;
                // Midpoint of (gamma^(k-1), gamma^k]: 2 gamma^k / (gamma+1),
                // i.e. gamma^k * (1 - alpha-ish correction) — within alpha of
                // every value the bucket holds.
                let upper = (key as f64 * self.ln_gamma).exp();
                return Some(upper * 2.0 / (1.0 + (self.ln_gamma).exp()));
            }
        }
        // Rounding put the rank past the last bucket: return the max.
        Some(self.max)
    }

    /// The estimated `q`-quantile as a [`SimDuration`], `None` when empty.
    pub fn quantile_duration(&self, q: f64) -> Option<SimDuration> {
        self.quantile(q).map(SimDuration::from_secs_f64)
    }

    /// Merges `other` into `self` by exact bucket addition.
    ///
    /// # Panics
    /// Panics if the relative accuracies differ (the bucket grids would not
    /// line up).
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert!(
            (self.alpha - other.alpha).abs() < 1e-12,
            "cannot merge sketches with different accuracies ({} vs {})",
            self.alpha,
            other.alpha
        );
        if other.count == 0 {
            return;
        }
        // Growing the store may shift dense indices; drop the insert memo.
        self.last_value = f64::NAN;
        for (i, &c) in other.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let key = other.offset + i as i32;
            self.slot(key);
            self.buckets[(key - self.offset) as usize] += c;
        }
        self.zero += other.zero;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Occupied `(bucket key, count)` pairs in ascending key order, with the
    /// zero bucket reported as key `i32::MIN`. Exposed for merge-identity
    /// tests and the Prometheus histogram exporter.
    pub fn bucket_counts(&self) -> Vec<(i32, u64)> {
        let mut out = Vec::new();
        if self.zero > 0 {
            out.push((i32::MIN, self.zero));
        }
        for (i, &c) in self.buckets.iter().enumerate() {
            if c > 0 {
                out.push((self.offset + i as i32, c));
            }
        }
        out
    }

    /// Upper edge (in value space) of the bucket with the given key.
    pub fn bucket_upper(&self, key: i32) -> f64 {
        if key == i32::MIN {
            MIN_VALUE
        } else {
            (key as f64 * self.ln_gamma).exp()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_common::stats::percentile;

    fn exact(values: &[f64], q: f64) -> f64 {
        let ds: Vec<SimDuration> = values
            .iter()
            .map(|&v| SimDuration::from_secs_f64(v))
            .collect();
        percentile(&ds, q).unwrap().as_secs_f64()
    }

    #[test]
    fn empty_sketch_has_no_quantiles() {
        let s = QuantileSketch::new(0.01);
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.mean(), None);
    }

    #[test]
    #[should_panic(expected = "relative accuracy")]
    fn alpha_out_of_range_rejected() {
        let _ = QuantileSketch::new(1.5);
    }

    #[test]
    fn quantiles_within_relative_error() {
        let alpha = 0.01;
        let mut s = QuantileSketch::new(alpha);
        // Deterministic heavy-tailed-ish sample spanning 4 decades.
        let mut values = Vec::new();
        let mut x = 0.000_37_f64;
        for i in 0..5_000 {
            x = (x * 1.003_7).min(9.5) + (i % 13) as f64 * 1e-4;
            values.push(x);
            s.insert(x);
        }
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let e = exact(&values, q);
            let a = s.quantile(q).unwrap();
            // The exact path quantizes to whole microseconds; allow that on
            // top of the sketch bound.
            let tol = alpha * e + 1e-6;
            assert!(
                (a - e).abs() <= tol,
                "q={q}: sketch {a} vs exact {e} (tol {tol})"
            );
        }
    }

    #[test]
    fn zero_and_negative_values_hit_the_zero_bucket() {
        let mut s = QuantileSketch::new(0.05);
        s.insert(0.0);
        s.insert(-3.0);
        s.insert(1.0);
        assert_eq!(s.count(), 3);
        assert_eq!(s.quantile(0.0), Some(0.0));
        assert_eq!(s.bucket_counts()[0], (i32::MIN, 2));
    }

    #[test]
    fn merge_is_exact_bucket_addition() {
        let mut a = QuantileSketch::new(0.02);
        let mut b = QuantileSketch::new(0.02);
        let mut whole = QuantileSketch::new(0.02);
        for i in 1..=500 {
            let v = i as f64 * 0.003;
            whole.insert(v);
            if i % 2 == 0 {
                a.insert(v);
            } else {
                b.insert(v);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.bucket_counts(), whole.bucket_counts());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    #[should_panic(expected = "different accuracies")]
    fn merge_rejects_mismatched_alpha() {
        let mut a = QuantileSketch::new(0.01);
        a.merge(&QuantileSketch::new(0.02));
    }

    #[test]
    fn duration_round_trip() {
        let mut s = QuantileSketch::new(0.01);
        for ms in [10u64, 20, 30, 40, 50] {
            s.insert_duration(SimDuration::from_millis(ms));
        }
        let p50 = s.quantile_duration(0.5).unwrap().as_secs_f64();
        assert!((p50 - 0.030).abs() <= 0.030 * 0.01 + 1e-6, "p50 {p50}");
    }
}
