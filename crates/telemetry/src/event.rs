//! The trace-event taxonomy.
//!
//! One [`TraceEvent`] records one fact at one simulated instant. Request
//! lifecycle events follow the journey
//! `Arrived → Enqueued → PrefillStart/End → KvEnqueued → KvWireStart →
//! KvDone → DecodeJoin → Finished`, with fault/recovery detours
//! (`KvRetry`, `Requeued`, `Reprefill`, `Stalled`, `Dropped`, `Rejected`)
//! and gray-failure mitigation detours (`HedgeLaunched`, `Quarantined`,
//! `Readmitted`, `DeadlineShed`).
//! Sampling events (`QueueDepth`, `BatchOccupancy`, `LinkUtilization`,
//! `FlowRate`) carry instantaneous values from which [`crate::TraceLog`]
//! derives step-function [`crate::UtilizationSeries`].

use std::fmt;
use ts_common::{ModelId, RequestId, SimTime};

/// Which serving role a replica plays in the emitting engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Role {
    /// A disaggregated prefill replica.
    Prefill,
    /// A disaggregated decode replica.
    Decode,
    /// A colocated replica serving both phases.
    Colocated,
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Role::Prefill => write!(f, "prefill"),
            Role::Decode => write!(f, "decode"),
            Role::Colocated => write!(f, "colocated"),
        }
    }
}

/// The class of a fabric link in a [`TraceKind::LinkUtilization`] sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LinkKind {
    /// NIC uplink of the given node.
    Uplink(usize),
    /// NIC downlink of the given node.
    Downlink(usize),
    /// Intra-node bus (PCIe/NVLink) of the given node.
    Intra(usize),
    /// An inter-node fabric link (identified by its link index alone).
    Inter,
}

impl fmt::Display for LinkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkKind::Uplink(n) => write!(f, "uplink(node {n})"),
            LinkKind::Downlink(n) => write!(f, "downlink(node {n})"),
            LinkKind::Intra(n) => write!(f, "intra(node {n})"),
            LinkKind::Inter => write!(f, "inter"),
        }
    }
}

/// What a [`TraceKind::ScaleAction`] did to the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ScaleKind {
    /// A node was acquired (spot grant or on-demand scale-up).
    Acquire,
    /// A node was released back to the provider.
    Release,
    /// A node entered proactive drain after a preemption warning: it stops
    /// taking new work and will be released before the reclaim lands.
    Drain,
    /// The provider announced an upcoming spot reclaim of the node.
    PreemptionWarning,
    /// A serving group's phase designation was flipped to rebalance the
    /// prefill:decode ratio (the node hosts the flipped group).
    PhaseFlip,
}

impl fmt::Display for ScaleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScaleKind::Acquire => f.write_str("acquire"),
            ScaleKind::Release => f.write_str("release"),
            ScaleKind::Drain => f.write_str("drain"),
            ScaleKind::PreemptionWarning => f.write_str("preemption warning"),
            ScaleKind::PhaseFlip => f.write_str("phase flip"),
        }
    }
}

/// One timestamped trace fact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// When the fact holds, in simulated time.
    pub at: SimTime,
    /// What happened.
    pub kind: TraceKind,
}

/// What a [`TraceEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceKind {
    /// A request entered the system.
    Arrived {
        /// The request.
        request: RequestId,
    },
    /// A request was routed onto a replica's prefill queue.
    Enqueued {
        /// The request.
        request: RequestId,
        /// Serving role of the target replica.
        role: Role,
        /// Index of the target replica within its role.
        replica: usize,
    },
    /// A request's prompt entered a prefill launch.
    PrefillStart {
        /// The request.
        request: RequestId,
        /// Serving role of the executing replica.
        role: Role,
        /// Index of the executing replica.
        replica: usize,
        /// Prompt (or re-prefilled context) tokens processed.
        tokens: u64,
    },
    /// A request's prefill launch completed.
    PrefillEnd {
        /// The request.
        request: RequestId,
        /// Serving role of the executing replica.
        role: Role,
        /// Index of the executing replica.
        replica: usize,
    },
    /// The request's first output token was produced (set once; re-prefills
    /// keep the original instant).
    FirstToken {
        /// The request.
        request: RequestId,
    },
    /// A KV transfer was enqueued on the sender (first attempt only).
    KvEnqueued {
        /// The request whose KV is moving.
        request: RequestId,
        /// Sending prefill replica.
        from: usize,
        /// Receiving decode replica.
        to: usize,
        /// Wire bytes of the full transfer.
        bytes: u64,
    },
    /// KV bytes started moving on the wire (re-stamped by retries).
    KvWireStart {
        /// The request whose KV is moving.
        request: RequestId,
        /// Transfer attempt number (1 = first).
        attempt: u32,
    },
    /// The KV cache arrived at the decode replica.
    KvDone {
        /// The request whose KV arrived.
        request: RequestId,
    },
    /// A KV transfer failed (link fault / dead target) and was re-launched.
    KvRetry {
        /// The affected request.
        request: RequestId,
        /// The new attempt number.
        attempt: u32,
    },
    /// A sequence joined a decode replica's continuous batch.
    DecodeJoin {
        /// The request.
        request: RequestId,
        /// Serving role of the admitting replica.
        role: Role,
        /// Index of the admitting replica.
        replica: usize,
    },
    /// A decode step over the active batch completed.
    DecodeStep {
        /// Serving role of the stepping replica.
        role: Role,
        /// Index of the stepping replica.
        replica: usize,
        /// Batch size the step ran with.
        batch: usize,
    },
    /// The request completed successfully.
    Finished {
        /// The request.
        request: RequestId,
    },
    /// The request was lost mid-service (unrecovered fault, KV eviction).
    Dropped {
        /// The request.
        request: RequestId,
    },
    /// The request was shed at admission (stall queue overflow).
    Rejected {
        /// The request.
        request: RequestId,
    },
    /// The request stalled in the coordinator: no live route existed.
    Stalled {
        /// The request.
        request: RequestId,
    },
    /// Fault recovery re-queued the request's prefill work onto survivors.
    Requeued {
        /// The request.
        request: RequestId,
    },
    /// Fault recovery re-prefilled the request's lost context.
    Reprefill {
        /// The request.
        request: RequestId,
        /// Context tokens re-prefilled.
        tokens: u64,
    },
    /// A scripted fault fired.
    FaultTriggered {
        /// Index of the fault in the script.
        index: usize,
    },
    /// The coordinator detected a scripted fault (heartbeat timeout).
    FaultDetected {
        /// Index of the fault in the script.
        index: usize,
    },
    /// A service pause ended.
    ServiceResumed,
    /// Prefill queue depth of a replica after a queue transition.
    QueueDepth {
        /// Serving role of the replica.
        role: Role,
        /// Index of the replica.
        replica: usize,
        /// Queued jobs after the transition.
        depth: usize,
    },
    /// Active continuous-batch size of a replica after a batch transition.
    BatchOccupancy {
        /// Serving role of the replica.
        role: Role,
        /// Index of the replica.
        replica: usize,
        /// Sequences in the active batch.
        active: usize,
    },
    /// Instantaneous utilization of one fabric link (emitted when the
    /// link's aggregate flow rate changes).
    LinkUtilization {
        /// Stable link index within the fabric topology.
        link: usize,
        /// The link's class (and owning node, where applicable).
        kind: LinkKind,
        /// Aggregate rate of flows crossing the link, bytes/s.
        used_bps: f64,
        /// Link capacity, bytes/s.
        capacity_bps: f64,
    },
    /// A fabric flow's max-min fair rate changed.
    FlowRate {
        /// The request whose flow this is (flows are keyed by request).
        request: RequestId,
        /// The new rate, bytes/s.
        rate_bps: f64,
    },
    /// A hedged duplicate of a stuck prefill (or a re-dispatch of a stuck
    /// KV transfer) was launched on an alternate replica.
    HedgeLaunched {
        /// The hedged request.
        request: RequestId,
        /// Serving role of the replica the hedge runs on.
        role: Role,
        /// Index of the replica the hedge runs on.
        replica: usize,
    },
    /// A replica was removed from routing — straggler quarantine or a
    /// flaky-heartbeat false positive.
    Quarantined {
        /// Serving role of the quarantined replica.
        role: Role,
        /// Index of the quarantined replica.
        replica: usize,
    },
    /// A quarantined (or spuriously dead) replica rejoined routing.
    Readmitted {
        /// Serving role of the readmitted replica.
        role: Role,
        /// Index of the readmitted replica.
        replica: usize,
    },
    /// The request was shed because its SLO-derived deadline had already
    /// passed before service could start.
    DeadlineShed {
        /// The shed request.
        request: RequestId,
    },
    /// The autoscale control plane changed the fleet (between serving
    /// segments): a node was acquired, drained, released, warned of
    /// preemption, or had its group's phase flipped.
    ScaleAction {
        /// The node the action concerns.
        node: usize,
        /// What happened to it.
        kind: ScaleKind,
    },
    /// The request belongs to the given served model. Emitted once at
    /// arrival, and only on multi-model runs (a non-empty catalog) — single
    /// model traces carry no tags and stay byte-identical to older builds.
    ModelTag {
        /// The tagged request.
        request: RequestId,
        /// The served model it targets.
        model: ModelId,
    },
}

impl TraceKind {
    /// The request this event concerns, if it is request-scoped.
    pub fn request(&self) -> Option<RequestId> {
        match *self {
            TraceKind::Arrived { request }
            | TraceKind::Enqueued { request, .. }
            | TraceKind::PrefillStart { request, .. }
            | TraceKind::PrefillEnd { request, .. }
            | TraceKind::FirstToken { request }
            | TraceKind::KvEnqueued { request, .. }
            | TraceKind::KvWireStart { request, .. }
            | TraceKind::KvDone { request }
            | TraceKind::KvRetry { request, .. }
            | TraceKind::DecodeJoin { request, .. }
            | TraceKind::Finished { request }
            | TraceKind::Dropped { request }
            | TraceKind::Rejected { request }
            | TraceKind::Stalled { request }
            | TraceKind::Requeued { request }
            | TraceKind::Reprefill { request, .. }
            | TraceKind::FlowRate { request, .. }
            | TraceKind::HedgeLaunched { request, .. }
            | TraceKind::DeadlineShed { request }
            | TraceKind::ModelTag { request, .. } => Some(request),
            _ => None,
        }
    }

    /// A short stable label for this event kind (used in summaries).
    pub fn label(&self) -> &'static str {
        match self {
            TraceKind::Arrived { .. } => "arrived",
            TraceKind::Enqueued { .. } => "enqueued",
            TraceKind::PrefillStart { .. } => "prefill_start",
            TraceKind::PrefillEnd { .. } => "prefill_end",
            TraceKind::FirstToken { .. } => "first_token",
            TraceKind::KvEnqueued { .. } => "kv_enqueued",
            TraceKind::KvWireStart { .. } => "kv_wire_start",
            TraceKind::KvDone { .. } => "kv_done",
            TraceKind::KvRetry { .. } => "kv_retry",
            TraceKind::DecodeJoin { .. } => "decode_join",
            TraceKind::DecodeStep { .. } => "decode_step",
            TraceKind::Finished { .. } => "finished",
            TraceKind::Dropped { .. } => "dropped",
            TraceKind::Rejected { .. } => "rejected",
            TraceKind::Stalled { .. } => "stalled",
            TraceKind::Requeued { .. } => "requeued",
            TraceKind::Reprefill { .. } => "reprefill",
            TraceKind::FaultTriggered { .. } => "fault_triggered",
            TraceKind::FaultDetected { .. } => "fault_detected",
            TraceKind::ServiceResumed => "service_resumed",
            TraceKind::QueueDepth { .. } => "queue_depth",
            TraceKind::BatchOccupancy { .. } => "batch_occupancy",
            TraceKind::LinkUtilization { .. } => "link_utilization",
            TraceKind::FlowRate { .. } => "flow_rate",
            TraceKind::HedgeLaunched { .. } => "hedge_launched",
            TraceKind::Quarantined { .. } => "quarantined",
            TraceKind::Readmitted { .. } => "readmitted",
            TraceKind::DeadlineShed { .. } => "deadline_shed",
            TraceKind::ScaleAction { .. } => "scale_action",
            TraceKind::ModelTag { .. } => "model_tag",
        }
    }
}

impl fmt::Display for TraceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TraceKind::Arrived { .. } => write!(f, "arrived"),
            TraceKind::Enqueued { role, replica, .. } => {
                write!(f, "enqueued on {role} replica {replica}")
            }
            TraceKind::PrefillStart {
                role,
                replica,
                tokens,
                ..
            } => write!(
                f,
                "prefill start on {role} replica {replica} ({tokens} tokens)"
            ),
            TraceKind::PrefillEnd { role, replica, .. } => {
                write!(f, "prefill end on {role} replica {replica}")
            }
            TraceKind::FirstToken { .. } => write!(f, "first token"),
            TraceKind::KvEnqueued {
                from, to, bytes, ..
            } => write!(f, "kv enqueued {from} -> {to} ({bytes} B)"),
            TraceKind::KvWireStart { attempt, .. } => {
                write!(f, "kv wire start (attempt {attempt})")
            }
            TraceKind::KvDone { .. } => write!(f, "kv delivered"),
            TraceKind::KvRetry { attempt, .. } => write!(f, "kv retry (attempt {attempt})"),
            TraceKind::DecodeJoin { role, replica, .. } => {
                write!(f, "joined decode batch on {role} replica {replica}")
            }
            TraceKind::DecodeStep {
                role,
                replica,
                batch,
            } => write!(f, "decode step on {role} replica {replica} (batch {batch})"),
            TraceKind::Finished { .. } => write!(f, "finished"),
            TraceKind::Dropped { .. } => write!(f, "dropped"),
            TraceKind::Rejected { .. } => write!(f, "rejected"),
            TraceKind::Stalled { .. } => write!(f, "stalled (no live route)"),
            TraceKind::Requeued { .. } => write!(f, "requeued after fault"),
            TraceKind::Reprefill { tokens, .. } => {
                write!(f, "re-prefill of {tokens} lost context tokens")
            }
            TraceKind::FaultTriggered { index } => write!(f, "fault #{index} triggered"),
            TraceKind::FaultDetected { index } => write!(f, "fault #{index} detected"),
            TraceKind::ServiceResumed => write!(f, "service resumed"),
            TraceKind::QueueDepth {
                role,
                replica,
                depth,
            } => write!(f, "queue depth {depth} on {role} replica {replica}"),
            TraceKind::BatchOccupancy {
                role,
                replica,
                active,
            } => write!(f, "batch occupancy {active} on {role} replica {replica}"),
            TraceKind::LinkUtilization {
                link,
                kind,
                used_bps,
                capacity_bps,
            } => write!(
                f,
                "link {link} [{kind}] at {:.1}% ({used_bps:.0}/{capacity_bps:.0} B/s)",
                100.0 * used_bps / capacity_bps.max(1.0)
            ),
            TraceKind::FlowRate { rate_bps, .. } => write!(f, "flow rate {rate_bps:.0} B/s"),
            TraceKind::HedgeLaunched { role, replica, .. } => {
                write!(f, "hedge launched on {role} replica {replica}")
            }
            TraceKind::Quarantined { role, replica } => {
                write!(f, "{role} replica {replica} quarantined")
            }
            TraceKind::Readmitted { role, replica } => {
                write!(f, "{role} replica {replica} readmitted")
            }
            TraceKind::DeadlineShed { .. } => write!(f, "shed past deadline"),
            TraceKind::ScaleAction { node, kind } => write!(f, "fleet {kind} of node {node}"),
            TraceKind::ModelTag { model, .. } => write!(f, "serves {model}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_extraction_covers_lifecycle_kinds() {
        let r = RequestId(7);
        assert_eq!(TraceKind::Arrived { request: r }.request(), Some(r));
        assert_eq!(TraceKind::Finished { request: r }.request(), Some(r));
        assert_eq!(
            TraceKind::DecodeStep {
                role: Role::Decode,
                replica: 0,
                batch: 3
            }
            .request(),
            None
        );
        assert_eq!(TraceKind::ServiceResumed.request(), None);
    }

    #[test]
    fn scale_actions_are_fleet_scoped_not_request_scoped() {
        let k = TraceKind::ScaleAction {
            node: 3,
            kind: ScaleKind::Drain,
        };
        assert_eq!(k.request(), None);
        assert_eq!(k.label(), "scale_action");
        assert_eq!(k.to_string(), "fleet drain of node 3");
        let w = TraceKind::ScaleAction {
            node: 5,
            kind: ScaleKind::PreemptionWarning,
        };
        assert_eq!(w.to_string(), "fleet preemption warning of node 5");
    }

    #[test]
    fn display_is_humane() {
        let k = TraceKind::KvRetry {
            request: RequestId(1),
            attempt: 3,
        };
        assert_eq!(k.to_string(), "kv retry (attempt 3)");
        assert_eq!(k.label(), "kv_retry");
    }
}
