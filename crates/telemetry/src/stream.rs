//! The streaming observability plane: online aggregation over driver events.
//!
//! [`StreamingPlane::observe`] consumes the same [`TraceKind`] stream the
//! post-hoc recorder sees, but folds it incrementally into:
//!
//! * run-lifetime [`QuantileSketch`]es for TTFT, E2E, queue depth and batch
//!   occupancy (mergeable, relative-error bounded);
//! * [`Ewma`] smoothers over the same signals;
//! * fixed-window counters ([`WindowCounts`]) that roll deterministically
//!   at exact multiples of the configured window in *simulated* time;
//! * per-tenant and fleet-wide SLO [`BurnMonitor`]s whose
//!   [`HealthSignal`]s feed the mitigation layer and the autoscaler.
//!
//! The plane is an observer: it never schedules events, draws randomness,
//! or feeds anything back into the engine unless an explicit consumer knob
//! is on, so enabling it leaves simulation results bit-identical (pinned
//! by the golden-digest suite).

use std::collections::{BTreeMap, HashMap};

use ts_common::{ModelId, RequestId, SimDuration, SimTime, SloSpec};

use crate::burn::{BurnMonitor, HealthSignal, HealthState};
use crate::event::TraceKind;
use crate::sketch::QuantileSketch;

/// Exponentially weighted moving average with first-sample seeding.
///
/// The first observation seeds the average directly (no bias toward an
/// arbitrary zero start); later observations fold in with weight `alpha`.
#[derive(Debug, Clone, Copy)]
pub struct Ewma {
    alpha: f64,
    /// `1 - alpha`, precomputed: `observe` runs once per simulator step.
    beta: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an empty EWMA with smoothing factor `alpha`.
    ///
    /// # Panics
    /// Panics unless `alpha` lies in `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "EWMA smoothing factor must lie in (0, 1], got {alpha}"
        );
        Ewma {
            alpha,
            beta: 1.0 - alpha,
            value: None,
        }
    }

    /// Folds in one observation.
    #[inline]
    pub fn observe(&mut self, x: f64) {
        self.value = Some(match self.value {
            None => x,
            Some(v) => self.alpha * x + self.beta * v,
        });
    }

    /// The current average, `None` before the first observation.
    pub fn value(&self) -> Option<f64> {
        self.value
    }
}

/// Configuration of the [`StreamingPlane`].
#[derive(Debug, Clone, PartialEq)]
pub struct StreamConfig {
    /// Fixed aggregation window length (simulated time). Windows roll at
    /// exact multiples of this from the time origin.
    pub window: SimDuration,
    /// EWMA smoothing factor for the latency/pressure averages.
    pub ewma_alpha: f64,
    /// Relative accuracy of the quantile sketches.
    pub sketch_alpha: f64,
    /// The SLO that request outcomes are judged against for burn-rate
    /// accounting (per-tenant SLOs registered via
    /// [`StreamingPlane::register_tenant`] take precedence).
    pub slo: SloSpec,
    /// SLO attainment target the burn monitors budget against (e.g. 0.99).
    pub target: f64,
    /// Depth of the fast burn window, in fixed windows.
    pub fast_windows: usize,
    /// Depth of the slow burn window, in fixed windows.
    pub slow_windows: usize,
    /// Burn rate at or above which a window counts as burning.
    pub burn_threshold: f64,
}

impl StreamConfig {
    /// A sensible default around the given SLO: 1-second windows, EWMA
    /// alpha 0.2, 1% sketches, 99% attainment target, 5-window fast / 60-
    /// window slow burn monitors firing at burn rate 2.
    pub fn new(slo: SloSpec) -> Self {
        StreamConfig {
            window: SimDuration::from_secs(1),
            ewma_alpha: 0.2,
            sketch_alpha: 0.01,
            slo,
            target: 0.99,
            fast_windows: 5,
            slow_windows: 60,
            burn_threshold: 2.0,
        }
    }

    /// Returns a copy with the given fixed window length.
    ///
    /// # Panics
    /// Panics if `window` is zero.
    pub fn with_window(mut self, window: SimDuration) -> Self {
        assert!(!window.is_zero(), "streaming window must be positive");
        self.window = window;
        self
    }

    /// Returns a copy with the given sketch relative accuracy.
    pub fn with_sketch_alpha(mut self, alpha: f64) -> Self {
        self.sketch_alpha = alpha;
        self
    }

    /// Returns a copy with the given EWMA smoothing factor.
    pub fn with_ewma_alpha(mut self, alpha: f64) -> Self {
        self.ewma_alpha = alpha;
        self
    }

    /// Returns a copy with the given attainment target and burn threshold.
    pub fn with_burn(mut self, target: f64, threshold: f64) -> Self {
        self.target = target;
        self.burn_threshold = threshold;
        self
    }

    /// Returns a copy with the given fast/slow burn-window depths.
    pub fn with_burn_windows(mut self, fast: usize, slow: usize) -> Self {
        self.fast_windows = fast;
        self.slow_windows = slow;
        self
    }
}

/// Counters of one fixed aggregation window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WindowCounts {
    /// Window start (an exact multiple of the configured window length).
    pub start: SimTime,
    /// Requests that arrived.
    pub arrived: u64,
    /// Requests that completed.
    pub finished: u64,
    /// Requests dropped mid-service.
    pub dropped: u64,
    /// Requests rejected at admission (stall-queue overflow or deadline
    /// shed).
    pub rejected: u64,
    /// Completed requests that missed their SLO (TTFT or E2E).
    pub slo_miss: u64,
    /// Hedged duplicates launched.
    pub hedges: u64,
    /// Requests requeued by fault recovery.
    pub requeues: u64,
}

impl WindowCounts {
    fn fresh(start: SimTime) -> Self {
        WindowCounts {
            start,
            ..WindowCounts::default()
        }
    }

    /// Terminal outcomes observed in this window.
    pub fn terminals(&self) -> u64 {
        self.finished + self.dropped + self.rejected
    }
}

/// Exact histogram over small non-negative integer samples (queue depths,
/// batch occupancies). Sampled once per simulator step, so recording must
/// be nearly free: one bounds check and one increment. The sketch the
/// snapshot exports is materialized from the histogram on demand —
/// bit-identical to having inserted every sample individually, since all
/// the arithmetic involved is exact on integers.
#[derive(Debug, Clone, Default)]
struct PressureStat {
    /// `counts[n]` = samples with value `n`; grown on demand.
    counts: Vec<u64>,
}

impl PressureStat {
    #[inline]
    fn record(&mut self, n: usize) {
        if n >= self.counts.len() {
            self.counts.resize(n + 1, 0);
        }
        self.counts[n] += 1;
    }

    /// Materializes the histogram as a quantile sketch with accuracy
    /// `alpha`, identical to one fed each sample in stream order.
    fn to_sketch(&self, alpha: f64) -> QuantileSketch {
        let mut s = QuantileSketch::new(alpha);
        for (v, &c) in self.counts.iter().enumerate() {
            s.insert_n(v as f64, c);
        }
        s
    }
}

/// In-flight request state the plane tracks between lifecycle events.
#[derive(Debug, Clone, Copy)]
struct Inflight {
    arrival: SimTime,
    first_token: Option<SimTime>,
    model: ModelId,
}

/// Per-tenant streaming state: the SLO outcomes are judged against and the
/// tenant's burn monitor.
#[derive(Debug, Clone)]
struct TenantState {
    slo: SloSpec,
    burn: BurnMonitor,
}

/// Worst-case health rollup consumed by coarse controllers (autoscaler).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthSummary {
    /// The worst state across the fleet-wide and all per-tenant signals.
    pub worst: HealthState,
    /// The highest fast-window burn rate observed across signals.
    pub max_fast_burn: f64,
    /// The highest slow-window burn rate observed across signals.
    pub max_slow_burn: f64,
}

/// An immutable export of the plane's state at one instant.
#[derive(Debug, Clone)]
pub struct StreamSnapshot {
    /// Simulated instant of the snapshot (the plane's event high-water
    /// mark).
    pub at: SimTime,
    /// Events the plane consumed (aggregation-relevant kinds; ignored
    /// phase-internal and fabric events are not counted).
    pub events_observed: u64,
    /// Run-lifetime TTFT sketch (seconds).
    pub ttft: QuantileSketch,
    /// Run-lifetime E2E latency sketch (seconds).
    pub e2e: QuantileSketch,
    /// Run-lifetime prefill queue-depth sketch (jobs).
    pub queue_depth: QuantileSketch,
    /// Run-lifetime decode batch-occupancy sketch (sequences).
    pub batch_occupancy: QuantileSketch,
    /// Smoothed TTFT (seconds), `None` before the first token.
    pub ttft_ewma: Option<f64>,
    /// Smoothed E2E latency (seconds).
    pub e2e_ewma: Option<f64>,
    /// Smoothed queue depth (jobs).
    pub queue_depth_ewma: Option<f64>,
    /// Smoothed batch occupancy (sequences).
    pub batch_occupancy_ewma: Option<f64>,
    /// Run-lifetime counters (same shape as a window, `start` is zero).
    pub totals: WindowCounts,
    /// The open (partial) window's counters.
    pub window: WindowCounts,
    /// The most recently closed window, `None` before the first rollover.
    pub last_window: Option<WindowCounts>,
    /// Windows closed so far.
    pub windows_closed: u64,
    /// Burn-rate signals: the fleet-wide signal first (tenant `None`),
    /// then per-tenant signals in ascending [`ModelId`] order.
    pub health: Vec<HealthSignal>,
}

impl StreamSnapshot {
    /// The fleet-wide health signal.
    pub fn global_health(&self) -> &HealthSignal {
        &self.health[0]
    }

    /// Worst-case rollup across all signals.
    pub fn health_summary(&self) -> HealthSummary {
        let mut worst = HealthState::Healthy;
        let mut fast = 0.0_f64;
        let mut slow = 0.0_f64;
        for h in &self.health {
            worst = worst.max(h.state);
            fast = fast.max(h.fast_burn);
            slow = slow.max(h.slow_burn);
        }
        HealthSummary {
            worst,
            max_fast_burn: fast,
            max_slow_burn: slow,
        }
    }

    /// Compact single-line-per-key JSON metrics dump (no external JSON
    /// dependency; validated by the exposition round-trip tests).
    pub fn to_json(&self) -> String {
        fn num(x: f64) -> String {
            if x.is_finite() {
                format!("{x:.6}")
            } else {
                "null".into()
            }
        }
        fn opt(x: Option<f64>) -> String {
            x.map_or("null".into(), num)
        }
        fn sketch(s: &QuantileSketch) -> String {
            format!(
                "{{\"count\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}",
                s.count(),
                opt(s.mean()),
                opt(s.quantile(0.5)),
                opt(s.quantile(0.9)),
                opt(s.quantile(0.99)),
                opt(s.max()),
            )
        }
        let mut health = String::from("[");
        for (i, h) in self.health.iter().enumerate() {
            if i > 0 {
                health.push(',');
            }
            health.push_str(&format!(
                "{{\"tenant\":{},\"fast_burn\":{},\"slow_burn\":{},\"samples\":{},\"state\":\"{:?}\"}}",
                h.tenant.map_or("null".into(), |m| m.0.to_string()),
                num(h.fast_burn),
                num(h.slow_burn),
                h.samples,
                h.state,
            ));
        }
        health.push(']');
        format!(
            "{{\n  \"at_s\": {},\n  \"events_observed\": {},\n  \"windows_closed\": {},\n  \"ttft_s\": {},\n  \"e2e_s\": {},\n  \"queue_depth\": {},\n  \"batch_occupancy\": {},\n  \"ewma\": {{\"ttft_s\":{},\"e2e_s\":{},\"queue_depth\":{},\"batch_occupancy\":{}}},\n  \"window\": {{\"start_s\":{},\"arrived\":{},\"finished\":{},\"dropped\":{},\"rejected\":{},\"slo_miss\":{},\"hedges\":{},\"requeues\":{}}},\n  \"health\": {}\n}}\n",
            num(self.at.as_secs_f64()),
            self.events_observed,
            self.windows_closed,
            sketch(&self.ttft),
            sketch(&self.e2e),
            sketch(&self.queue_depth),
            sketch(&self.batch_occupancy),
            opt(self.ttft_ewma),
            opt(self.e2e_ewma),
            opt(self.queue_depth_ewma),
            opt(self.batch_occupancy_ewma),
            num(self.window.start.as_secs_f64()),
            self.window.arrived,
            self.window.finished,
            self.window.dropped,
            self.window.rejected,
            self.window.slo_miss,
            self.window.hedges,
            self.window.requeues,
            health,
        )
    }
}

/// The online aggregation core, fed one [`TraceKind`] at a time.
#[derive(Debug, Clone)]
pub struct StreamingPlane {
    cfg: StreamConfig,
    /// Event-time high-water mark.
    now: SimTime,
    /// Start of the open fixed window.
    window_start: SimTime,
    windows_closed: u64,
    events: u64,
    ttft: QuantileSketch,
    e2e: QuantileSketch,
    queue_depth: PressureStat,
    batch_occupancy: PressureStat,
    ttft_ewma: Ewma,
    e2e_ewma: Ewma,
    queue_ewma: Ewma,
    occupancy_ewma: Ewma,
    current: WindowCounts,
    last: Option<WindowCounts>,
    totals: WindowCounts,
    global: BurnMonitor,
    tenants: BTreeMap<ModelId, TenantState>,
    inflight: HashMap<RequestId, Inflight>,
}

impl StreamingPlane {
    /// Creates an empty plane.
    pub fn new(cfg: StreamConfig) -> Self {
        assert!(!cfg.window.is_zero(), "streaming window must be positive");
        let global = BurnMonitor::new(
            cfg.target,
            cfg.burn_threshold,
            cfg.fast_windows,
            cfg.slow_windows,
        );
        StreamingPlane {
            ttft: QuantileSketch::new(cfg.sketch_alpha),
            e2e: QuantileSketch::new(cfg.sketch_alpha),
            queue_depth: PressureStat::default(),
            batch_occupancy: PressureStat::default(),
            ttft_ewma: Ewma::new(cfg.ewma_alpha),
            e2e_ewma: Ewma::new(cfg.ewma_alpha),
            queue_ewma: Ewma::new(cfg.ewma_alpha),
            occupancy_ewma: Ewma::new(cfg.ewma_alpha),
            current: WindowCounts::fresh(SimTime::ZERO),
            last: None,
            totals: WindowCounts::fresh(SimTime::ZERO),
            global,
            tenants: BTreeMap::new(),
            inflight: HashMap::new(),
            now: SimTime::ZERO,
            window_start: SimTime::ZERO,
            windows_closed: 0,
            events: 0,
            cfg,
        }
    }

    /// The plane's configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.cfg
    }

    /// Registers a tenant with its own SLO (and burn monitor). Outcomes of
    /// requests tagged with this model are judged against `slo` instead of
    /// the default, and additionally feed a dedicated monitor.
    pub fn register_tenant(&mut self, model: ModelId, slo: SloSpec) {
        let burn = BurnMonitor::new(
            self.cfg.target,
            self.cfg.burn_threshold,
            self.cfg.fast_windows,
            self.cfg.slow_windows,
        );
        self.tenants.insert(model, TenantState { slo, burn });
    }

    /// Rolls fixed windows forward until `at` lies inside the open window.
    /// An event stamped exactly on a boundary lands in the *new* window
    /// (windows are `[start, start + w)`), which the window-semantics tests
    /// pin.
    fn roll_to(&mut self, at: SimTime) {
        if at > self.now {
            self.now = at;
        }
        let w = self.cfg.window;
        let mut end = self.window_start + w;
        while self.now >= end {
            self.global.roll_window();
            for t in self.tenants.values_mut() {
                t.burn.roll_window();
            }
            self.last = Some(self.current);
            self.windows_closed += 1;
            self.window_start = end;
            self.current = WindowCounts::fresh(end);
            end = self.window_start + w;
        }
    }

    /// Judges a completed request against its tenant's SLO and feeds the
    /// burn monitors.
    fn judge_completion(&mut self, model: ModelId, ttft: SimDuration, e2e: SimDuration) {
        let slo = self.tenants.get(&model).map_or(self.cfg.slo, |t| t.slo);
        let met = ttft <= slo.ttft && e2e <= slo.e2e;
        if !met {
            self.current.slo_miss += 1;
            self.totals.slo_miss += 1;
        }
        self.global.observe(met);
        if let Some(t) = self.tenants.get_mut(&model) {
            t.burn.observe(met);
        }
    }

    /// Records a terminal loss (drop/reject/shed) against the monitors.
    fn judge_loss(&mut self, model: ModelId) {
        self.global.observe(false);
        if let Some(t) = self.tenants.get_mut(&model) {
            t.burn.observe(false);
        }
    }

    /// Feeds one trace event into the plane. Events may arrive slightly
    /// out of order (retroactive coalesced-decode replays), in which case
    /// they are attributed to the window open at observation time — the
    /// stream itself is deterministic, so so is the attribution. Kinds the
    /// aggregates have no use for (phase-internal and fabric events) are
    /// complete no-ops, and engines may skip constructing trace-only
    /// events entirely when no recorder is attached.
    ///
    /// Split into a small inlinable dispatcher and an out-of-line
    /// lifecycle handler: at an emission site the event kind is statically
    /// known, so ignored kinds fold to nothing and the pressure gauges to
    /// a histogram slot bump plus an EWMA step — this is what keeps the
    /// plane's overhead on the event loop within the committed budget
    /// (`BENCH_obs.json`).
    #[inline]
    pub fn observe(&mut self, at: SimTime, kind: &TraceKind) {
        match *kind {
            TraceKind::QueueDepth { depth, .. } => {
                self.events += 1;
                self.queue_depth.record(depth);
                self.queue_ewma.observe(depth as f64);
            }
            TraceKind::BatchOccupancy { active, .. } => {
                self.events += 1;
                self.batch_occupancy.record(active);
                self.occupancy_ewma.observe(active as f64);
            }
            TraceKind::Arrived { .. }
            | TraceKind::ModelTag { .. }
            | TraceKind::FirstToken { .. }
            | TraceKind::Finished { .. }
            | TraceKind::Dropped { .. }
            | TraceKind::Rejected { .. }
            | TraceKind::DeadlineShed { .. }
            | TraceKind::HedgeLaunched { .. }
            | TraceKind::Requeued { .. } => {
                self.events += 1;
                self.observe_lifecycle(at, kind);
            }
            // Phase-internal and fabric events carry nothing the online
            // aggregates need; not even counting them keeps the hot path
            // free.
            _ => {}
        }
    }

    /// Request-lifecycle accounting: window rolls, latency sketches, burn
    /// judgement. Per-request (not per-event) frequency, so kept out of
    /// line to leave [`StreamingPlane::observe`] small enough to inline.
    fn observe_lifecycle(&mut self, at: SimTime, kind: &TraceKind) {
        match *kind {
            TraceKind::Arrived { request } => {
                self.roll_to(at);
                self.current.arrived += 1;
                self.totals.arrived += 1;
                self.inflight.insert(
                    request,
                    Inflight {
                        arrival: at,
                        first_token: None,
                        model: ModelId(0),
                    },
                );
            }
            TraceKind::ModelTag { request, model } => {
                if let Some(i) = self.inflight.get_mut(&request) {
                    i.model = model;
                }
            }
            TraceKind::FirstToken { request } => {
                self.roll_to(at);
                if let Some(i) = self.inflight.get_mut(&request) {
                    if i.first_token.is_none() {
                        i.first_token = Some(at);
                        let ttft = at.saturating_since(i.arrival).as_secs_f64();
                        self.ttft.insert(ttft);
                        self.ttft_ewma.observe(ttft);
                    }
                }
            }
            TraceKind::Finished { request } => {
                self.roll_to(at);
                if let Some(i) = self.inflight.remove(&request) {
                    self.current.finished += 1;
                    self.totals.finished += 1;
                    let e2e = at.saturating_since(i.arrival);
                    self.e2e.insert(e2e.as_secs_f64());
                    self.e2e_ewma.observe(e2e.as_secs_f64());
                    let ttft = i
                        .first_token
                        .map_or(e2e, |ft| ft.saturating_since(i.arrival));
                    self.judge_completion(i.model, ttft, e2e);
                }
            }
            TraceKind::Dropped { request } => {
                self.roll_to(at);
                if let Some(i) = self.inflight.remove(&request) {
                    self.current.dropped += 1;
                    self.totals.dropped += 1;
                    self.judge_loss(i.model);
                }
            }
            TraceKind::Rejected { request } | TraceKind::DeadlineShed { request } => {
                self.roll_to(at);
                if let Some(i) = self.inflight.remove(&request) {
                    self.current.rejected += 1;
                    self.totals.rejected += 1;
                    self.judge_loss(i.model);
                }
            }
            TraceKind::HedgeLaunched { .. } => {
                self.current.hedges += 1;
                self.totals.hedges += 1;
            }
            TraceKind::Requeued { .. } => {
                self.current.requeues += 1;
                self.totals.requeues += 1;
            }
            _ => unreachable!("observe() routes only lifecycle kinds here"),
        }
    }

    /// Advances the window clock to `at` without observing an event (used
    /// to close out windows at a segment boundary or run horizon).
    pub fn advance_to(&mut self, at: SimTime) {
        self.roll_to(at);
    }

    /// The fleet-wide health signal right now (open window included).
    pub fn global_signal(&self) -> HealthSignal {
        self.global.signal(None)
    }

    /// The health signal of one registered tenant, `None` if unregistered.
    pub fn tenant_signal(&self, model: ModelId) -> Option<HealthSignal> {
        self.tenants.get(&model).map(|t| t.burn.signal(Some(model)))
    }

    /// Exports the current state (sketches cloned, monitors read out).
    pub fn snapshot(&self) -> StreamSnapshot {
        let mut health = vec![self.global.signal(None)];
        for (&m, t) in &self.tenants {
            health.push(t.burn.signal(Some(m)));
        }
        StreamSnapshot {
            at: self.now,
            events_observed: self.events,
            ttft: self.ttft.clone(),
            e2e: self.e2e.clone(),
            queue_depth: self.queue_depth.to_sketch(self.cfg.sketch_alpha),
            batch_occupancy: self.batch_occupancy.to_sketch(self.cfg.sketch_alpha),
            ttft_ewma: self.ttft_ewma.value(),
            e2e_ewma: self.e2e_ewma.value(),
            queue_depth_ewma: self.queue_ewma.value(),
            batch_occupancy_ewma: self.occupancy_ewma.value(),
            totals: self.totals,
            window: self.current,
            last_window: self.last,
            windows_closed: self.windows_closed,
            health,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slo() -> SloSpec {
        SloSpec::new(
            SimDuration::from_millis(500),
            SimDuration::from_millis(50),
            SimDuration::from_secs(5),
        )
    }

    fn plane() -> StreamingPlane {
        StreamingPlane::new(StreamConfig::new(slo()))
    }

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    fn lifecycle(p: &mut StreamingPlane, id: u64, arrive: f64, first: f64, done: f64) {
        let request = RequestId(id);
        p.observe(t(arrive), &TraceKind::Arrived { request });
        p.observe(t(first), &TraceKind::FirstToken { request });
        p.observe(t(done), &TraceKind::Finished { request });
    }

    #[test]
    fn ttft_and_e2e_feed_sketches_and_ewma() {
        let mut p = plane();
        lifecycle(&mut p, 1, 0.0, 0.1, 0.5);
        lifecycle(&mut p, 2, 0.2, 0.5, 0.9);
        let s = p.snapshot();
        assert_eq!(s.ttft.count(), 2);
        assert_eq!(s.e2e.count(), 2);
        // TTFTs are 0.1 and 0.3; EWMA seeds on the first then folds.
        let e = s.ttft_ewma.unwrap();
        assert!((e - (0.2 * 0.3 + 0.8 * 0.1)).abs() < 1e-9, "{e}");
        assert_eq!(s.window.finished, 2);
        assert_eq!(s.window.slo_miss, 0);
    }

    #[test]
    fn window_rolls_exactly_at_the_boundary() {
        let mut p = plane();
        lifecycle(&mut p, 1, 0.4, 0.5, 0.9);
        // An event at exactly 1.0 s opens the second window.
        p.observe(
            t(1.0),
            &TraceKind::Arrived {
                request: RequestId(2),
            },
        );
        let s = p.snapshot();
        assert_eq!(s.windows_closed, 1);
        assert_eq!(s.last_window.unwrap().finished, 1);
        assert_eq!(s.last_window.unwrap().start, SimTime::ZERO);
        assert_eq!(s.window.start, t(1.0));
        assert_eq!(s.window.arrived, 1);
    }

    #[test]
    fn empty_windows_roll_without_counts() {
        let mut p = plane();
        p.advance_to(t(3.5));
        let s = p.snapshot();
        assert_eq!(s.windows_closed, 3);
        let last = s.last_window.unwrap();
        assert_eq!(last.terminals(), 0);
        assert_eq!(last.start, t(2.0));
        assert_eq!(s.window.start, t(3.0));
        // Exporting an empty plane is well-defined everywhere.
        assert_eq!(s.ttft.quantile(0.99), None);
        assert_eq!(s.global_health().fast_burn, 0.0);
    }

    #[test]
    fn slo_misses_raise_the_burn_rate() {
        let mut p = plane();
        // TTFT 0.9 s blows the 0.5 s target; e2e fine.
        for i in 0..20 {
            let base = i as f64 * 0.01;
            lifecycle(&mut p, i, base, base + 0.9, base + 1.0);
        }
        let h = p.global_signal();
        assert!(h.fast_burn > 2.0, "{h:?}");
        assert_eq!(
            p.snapshot().window.slo_miss + p.snapshot().last_window.unwrap().slo_miss,
            20
        );
    }

    #[test]
    fn tenants_are_judged_against_their_own_slo() {
        let mut p = plane();
        // Tenant 1 has a 10x tighter TTFT target.
        let tight = SloSpec::new(
            SimDuration::from_millis(50),
            SimDuration::from_millis(50),
            SimDuration::from_secs(5),
        );
        p.register_tenant(ModelId(1), tight);
        for i in 0..10 {
            let request = RequestId(i);
            p.observe(t(0.0), &TraceKind::Arrived { request });
            p.observe(
                t(0.0),
                &TraceKind::ModelTag {
                    request,
                    model: ModelId(1),
                },
            );
            // TTFT 0.1 s: fine for the default SLO, a miss for tenant 1.
            p.observe(t(0.1), &TraceKind::FirstToken { request });
            p.observe(t(0.2), &TraceKind::Finished { request });
        }
        let tenant = p.tenant_signal(ModelId(1)).unwrap();
        assert!(tenant.fast_burn > 0.0, "{tenant:?}");
        assert_eq!(tenant.samples, 10);
        assert_eq!(p.tenant_signal(ModelId(9)), None);
        // Snapshot lists global first, then the tenant.
        let s = p.snapshot();
        assert_eq!(s.health.len(), 2);
        assert_eq!(s.health[1].tenant, Some(ModelId(1)));
    }

    #[test]
    fn losses_count_against_the_budget() {
        let mut p = plane();
        let request = RequestId(1);
        p.observe(t(0.1), &TraceKind::Arrived { request });
        p.observe(t(0.2), &TraceKind::Dropped { request });
        // A second terminal event for the same request must not double
        // count (the inflight entry is gone).
        p.observe(t(0.3), &TraceKind::Rejected { request });
        let s = p.snapshot();
        assert_eq!(s.window.dropped, 1);
        assert_eq!(s.window.rejected, 0);
        assert!(s.global_health().fast_burn > 0.0);
    }

    #[test]
    fn pressure_samples_feed_the_pressure_sketches() {
        let mut p = plane();
        for depth in [0usize, 2, 4, 8] {
            p.observe(
                t(0.1),
                &TraceKind::QueueDepth {
                    role: crate::Role::Prefill,
                    replica: 0,
                    depth,
                },
            );
        }
        p.observe(
            t(0.2),
            &TraceKind::BatchOccupancy {
                role: crate::Role::Decode,
                replica: 1,
                active: 13,
            },
        );
        let s = p.snapshot();
        assert_eq!(s.queue_depth.count(), 4);
        assert_eq!(s.queue_depth.max(), Some(8.0));
        assert_eq!(s.batch_occupancy_ewma, Some(13.0));
    }

    #[test]
    fn json_dump_is_emitted() {
        let mut p = plane();
        lifecycle(&mut p, 1, 0.0, 0.1, 0.4);
        let j = p.snapshot().to_json();
        assert!(j.contains("\"events_observed\": 3"), "{j}");
        assert!(j.contains("\"health\""));
    }
}
