//! # ts-telemetry
//!
//! The observability layer of the simulator stack: a typed event taxonomy
//! for request lifecycles, network flows and scheduler search steps, a
//! [`TraceSink`] abstraction with a buffering [`Recorder`], derived
//! per-replica/per-link [`UtilizationSeries`], and exporters (Chrome
//! trace-event JSON viewable in Perfetto, plus a compact JSON summary).
//!
//! Design constraints, in order of importance:
//!
//! 1. **Zero cost when off.** Instrumented code holds an
//!    `Option<Recorder>`; the disabled path is a `None` check and must keep
//!    simulation outputs bit-identical (the same discipline
//!    `SimConfig::network_contention` follows). Instrumentation *observes*
//!    at event-handler boundaries — it never schedules events, draws
//!    randomness, or otherwise perturbs the simulation.
//! 2. **Events are facts, series are views.** The engines emit raw
//!    [`TraceEvent`]s only; occupancy/queue-depth/in-flight-bytes series
//!    are derived afterwards by [`TraceLog`], so the hot path stays free of
//!    tally state.
//! 3. **Time-sorted at finalization.** A few producers stamp events at
//!    *future* simulated times (e.g. a KV wire start scheduled behind a
//!    busy uplink); [`Recorder::finish`] stably sorts by timestamp so every
//!    consumer sees a monotone log.

pub mod burn;
pub mod chrome;
pub mod event;
pub mod log;
pub mod profile;
pub mod prom;
pub mod search;
pub mod series;
pub mod sink;
pub mod sketch;
pub mod stream;

pub use burn::{BurnMonitor, HealthSignal, HealthState};
pub use chrome::{validate_chrome_trace, ChromeTraceStats};
pub use event::{LinkKind, Role, ScaleKind, TraceEvent, TraceKind};
pub use log::{RequestSpan, TraceLog};
pub use profile::{ProfileEntry, ProfileReport, ScopeGuard};
pub use prom::{render_prometheus, validate_exposition, ExpositionStats};
pub use search::{SearchStep, SearchTrace};
pub use series::UtilizationSeries;
pub use sink::{NoopSink, Recorder, TraceSink};
pub use sketch::QuantileSketch;
pub use stream::{Ewma, HealthSummary, StreamConfig, StreamSnapshot, StreamingPlane, WindowCounts};
