//! Multi-window SLO burn-rate monitors.
//!
//! Prometheus-alerting style: an SLO with attainment target `t` has an
//! error budget `1 - t`; the *burn rate* of a window is its observed
//! miss fraction divided by that budget. A burn rate of 1 spends the
//! budget exactly at the allowed pace; a sustained burn rate of 10 spends
//! a month of budget in three days. Alerting on a **fast** and a **slow**
//! window simultaneously (the classic multi-window multi-burn-rate rule)
//! keeps the monitor both responsive and resistant to blips: the fast
//! window alone only warns, both together escalate to critical.
//!
//! The monitor is fed per fixed window by the streaming plane
//! ([`crate::StreamingPlane`]) and is fully deterministic: no wall clock,
//! no decay — just ring buffers of integer good/bad counts.

use std::collections::VecDeque;

use ts_common::ModelId;

/// Health state distilled from the two burn windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthState {
    /// Neither window is burning above the threshold.
    Healthy,
    /// The fast window burns hot but the slow window does not (a blip, or
    /// the very start of an incident).
    Warning,
    /// Both windows burn above the threshold: the error budget is being
    /// spent at an unsustainable pace right now *and* has been for a while.
    Critical,
}

/// One tenant's (or the fleet-wide) burn-rate reading.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthSignal {
    /// The tenant this signal describes; `None` is the fleet-wide signal.
    pub tenant: Option<ModelId>,
    /// Burn rate over the fast window (miss rate / error budget).
    pub fast_burn: f64,
    /// Burn rate over the slow window.
    pub slow_burn: f64,
    /// Requests judged over the slow window (good + bad).
    pub samples: u64,
    /// The distilled state.
    pub state: HealthState,
}

/// Ring of per-window `(good, bad)` counts plus the open window's tally.
#[derive(Debug, Clone)]
struct BurnWindow {
    ring: VecDeque<(u64, u64)>,
    capacity: usize,
}

impl BurnWindow {
    fn new(capacity: usize) -> Self {
        BurnWindow {
            ring: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    fn push(&mut self, good: u64, bad: u64) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back((good, bad));
    }

    /// `(good, bad)` totals over the ring plus the open window's counts.
    fn totals(&self, open: (u64, u64)) -> (u64, u64) {
        let (mut g, mut b) = open;
        for &(rg, rb) in &self.ring {
            g += rg;
            b += rb;
        }
        (g, b)
    }
}

/// A multi-window burn-rate monitor over one SLO.
#[derive(Debug, Clone)]
pub struct BurnMonitor {
    /// Error budget: `1 - attainment target`.
    budget: f64,
    /// Burn-rate threshold above which a window counts as burning.
    threshold: f64,
    fast: BurnWindow,
    slow: BurnWindow,
    /// Counts of the currently open fixed window.
    open_good: u64,
    open_bad: u64,
}

impl BurnMonitor {
    /// Creates a monitor for an SLO with the given attainment `target`
    /// (e.g. 0.99), burning threshold, and window depths measured in fixed
    /// streaming windows.
    ///
    /// # Panics
    /// Panics unless `target` is in `(0, 1)`, `threshold` is positive, and
    /// `0 < fast_windows <= slow_windows`.
    pub fn new(target: f64, threshold: f64, fast_windows: usize, slow_windows: usize) -> Self {
        assert!(
            target > 0.0 && target < 1.0,
            "attainment target must be in (0, 1), got {target}"
        );
        assert!(threshold > 0.0, "burn threshold must be positive");
        assert!(
            fast_windows > 0 && fast_windows <= slow_windows,
            "window depths must satisfy 0 < fast ({fast_windows}) <= slow ({slow_windows})"
        );
        BurnMonitor {
            budget: 1.0 - target,
            threshold,
            fast: BurnWindow::new(fast_windows),
            slow: BurnWindow::new(slow_windows),
            open_good: 0,
            open_bad: 0,
        }
    }

    /// Records one request outcome into the open window.
    pub fn observe(&mut self, met_slo: bool) {
        if met_slo {
            self.open_good += 1;
        } else {
            self.open_bad += 1;
        }
    }

    /// Closes the open fixed window, rolling its counts into both rings.
    /// Called by the streaming plane exactly once per window boundary, so
    /// rollover points are deterministic in simulated time.
    pub fn roll_window(&mut self) {
        self.fast.push(self.open_good, self.open_bad);
        self.slow.push(self.open_good, self.open_bad);
        self.open_good = 0;
        self.open_bad = 0;
    }

    /// Burn rate of a `(good, bad)` total: miss fraction over budget, 0.0
    /// with no samples.
    fn burn(&self, (good, bad): (u64, u64)) -> f64 {
        let n = good + bad;
        if n == 0 {
            return 0.0;
        }
        (bad as f64 / n as f64) / self.budget
    }

    /// The current reading. The open window participates in both rates so a
    /// mid-window incident is visible before the boundary.
    pub fn signal(&self, tenant: Option<ModelId>) -> HealthSignal {
        let open = (self.open_good, self.open_bad);
        let fast_burn = self.burn(self.fast.totals(open));
        let slow_totals = self.slow.totals(open);
        let slow_burn = self.burn(slow_totals);
        let state = match (fast_burn >= self.threshold, slow_burn >= self.threshold) {
            (true, true) => HealthState::Critical,
            (true, false) | (false, true) => HealthState::Warning,
            (false, false) => HealthState::Healthy,
        };
        HealthSignal {
            tenant,
            fast_burn,
            slow_burn,
            samples: slow_totals.0 + slow_totals.1,
            state,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor() -> BurnMonitor {
        // Target 0.9 → budget 0.1; threshold 2 → burning above a 20% miss
        // rate; fast = 2 windows, slow = 5 windows.
        BurnMonitor::new(0.9, 2.0, 2, 5)
    }

    #[test]
    fn empty_monitor_is_healthy() {
        let m = monitor();
        let s = m.signal(None);
        assert_eq!(s.state, HealthState::Healthy);
        assert_eq!(s.fast_burn, 0.0);
        assert_eq!(s.samples, 0);
    }

    #[test]
    fn sustained_misses_escalate_to_critical() {
        let mut m = monitor();
        for _ in 0..5 {
            for i in 0..10 {
                m.observe(i >= 5); // 50% miss rate → burn 5
            }
            m.roll_window();
        }
        let s = m.signal(Some(ModelId(3)));
        assert_eq!(s.state, HealthState::Critical);
        assert_eq!(s.tenant, Some(ModelId(3)));
        assert!((s.fast_burn - 5.0).abs() < 1e-9, "{}", s.fast_burn);
        assert!((s.slow_burn - 5.0).abs() < 1e-9);
        assert_eq!(s.samples, 50);
    }

    #[test]
    fn a_blip_only_warns_and_then_clears() {
        let mut m = monitor();
        // Five healthy windows fill the slow ring...
        for _ in 0..5 {
            for _ in 0..100 {
                m.observe(true);
            }
            m.roll_window();
        }
        // ...then one bad open window: fast (2-deep) burns, slow does not.
        for _ in 0..100 {
            m.observe(false);
        }
        let s = m.signal(None);
        assert_eq!(s.state, HealthState::Warning, "{s:?}");
        assert!(s.fast_burn >= 2.0 && s.slow_burn < 2.0);
        // The blip ends; healthy windows push it out of the fast ring.
        m.roll_window();
        for _ in 0..2 {
            for _ in 0..100 {
                m.observe(true);
            }
            m.roll_window();
        }
        let s = m.signal(None);
        assert!(s.fast_burn < 2.0, "fast ring must forget the blip: {s:?}");
    }

    #[test]
    #[should_panic(expected = "window depths")]
    fn fast_deeper_than_slow_rejected() {
        let _ = BurnMonitor::new(0.9, 2.0, 6, 5);
    }
}
