//! Trace sinks: where instrumented code sends its events.
//!
//! The engines are generic over nothing — they hold an `Option<Recorder>`
//! directly, because the `None` arm of an `Option` check is the cheapest
//! "off" path there is and keeps the disabled simulation bit-identical.
//! The [`TraceSink`] trait exists for consumers that want to plug custom
//! sinks into replay/analysis code paths (and to document the contract);
//! [`NoopSink`] is its zero-cost default implementation.

use crate::event::TraceEvent;
use crate::log::TraceLog;

/// A destination for [`TraceEvent`]s.
pub trait TraceSink {
    /// Records one event. Implementations must not reorder events with
    /// equal timestamps (the log's stable sort relies on emission order as
    /// the tie-break).
    fn record(&mut self, event: TraceEvent);

    /// Whether this sink retains events. Call sites may skip building
    /// expensive event payloads when this returns `false`.
    fn enabled(&self) -> bool {
        true
    }
}

/// The do-nothing sink: drops every event, reports itself disabled.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn record(&mut self, _event: TraceEvent) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// A buffering sink: appends events to a growable buffer, finalized into a
/// time-sorted [`TraceLog`].
#[derive(Debug, Default, Clone)]
pub struct Recorder {
    events: Vec<TraceEvent>,
}

impl Recorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Recorder::default()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Absorbs events recorded elsewhere (e.g. by the network fabric's own
    /// recorder); ordering is restored at [`Recorder::finish`] time.
    pub fn extend(&mut self, events: impl IntoIterator<Item = TraceEvent>) {
        self.events.extend(events);
    }

    /// Consumes the recorder, returning the raw event buffer in emission
    /// order — for producers that hand their events to another recorder to
    /// merge (via [`Recorder::extend`]) rather than finalizing themselves.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }

    /// Finalizes the buffer into a [`TraceLog`]: a stable sort by timestamp
    /// (producers may stamp events at future instants, e.g. a KV wire
    /// start scheduled behind a busy uplink), preserving emission order
    /// among equal timestamps.
    pub fn finish(mut self) -> TraceLog {
        self.events.sort_by_key(|e| e.at);
        TraceLog::new(self.events)
    }
}

impl TraceSink for Recorder {
    fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceKind;
    use ts_common::{RequestId, SimTime};

    #[test]
    fn noop_sink_is_disabled_and_silent() {
        let mut s = NoopSink;
        assert!(!s.enabled());
        s.record(TraceEvent {
            at: SimTime::ZERO,
            kind: TraceKind::ServiceResumed,
        });
    }

    #[test]
    fn finish_sorts_stably_by_time() {
        let mut r = Recorder::new();
        let ev = |us: u64, request: u64| TraceEvent {
            at: SimTime::from_micros(us),
            kind: TraceKind::Arrived {
                request: RequestId(request),
            },
        };
        // Out-of-order stamps plus a tie: 5(a), 3, 5(b).
        r.record(ev(5, 1));
        r.record(ev(3, 2));
        r.record(ev(5, 3));
        assert!(r.enabled());
        assert_eq!(r.len(), 3);
        let log = r.finish();
        let order: Vec<u64> = log
            .events()
            .iter()
            .map(|e| e.kind.request().unwrap().0)
            .collect();
        assert_eq!(order, vec![2, 1, 3], "stable: tie keeps emission order");
    }
}
