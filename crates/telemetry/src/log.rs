//! The finalized, time-sorted event log and everything derived from it:
//! per-request spans, per-replica/per-link utilization series, timelines
//! and the compact JSON summary.

use crate::event::{LinkKind, Role, TraceEvent, TraceKind};
use crate::series::UtilizationSeries;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use ts_common::{ModelId, RequestId, SimDuration, SimTime};

/// A time-sorted trace, produced by [`crate::Recorder::finish`].
#[derive(Debug, Default, Clone)]
pub struct TraceLog {
    events: Vec<TraceEvent>,
    end: SimTime,
}

/// The landmark instants of one request's journey, extracted from its
/// events. `kv_wire_start`/`kv_done` keep the *last* occurrence (retries
/// re-stamp the wire start; only the successful attempt delivers), while
/// `kv_enqueued` keeps the first — exactly the accounting the engine's
/// `RequestRecord` uses, so span-derived latencies reconcile bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestSpan {
    /// The request.
    pub request: RequestId,
    /// Arrival instant.
    pub arrived: SimTime,
    /// First output token, if prefill completed.
    pub first_token: Option<SimTime>,
    /// Completion instant, if the request finished.
    pub finished: Option<SimTime>,
    /// First KV-transfer enqueue on the sender, if any transfer ran.
    pub kv_enqueued: Option<SimTime>,
    /// Last wire start (the successful attempt's).
    pub kv_wire_start: Option<SimTime>,
    /// Last KV delivery at the decode replica.
    pub kv_done: Option<SimTime>,
    /// KV transfer retries observed.
    pub kv_retries: u32,
    /// Fault-recovery requeues observed.
    pub requeues: u32,
    /// Fault-recovery re-prefills observed.
    pub reprefills: u32,
    /// Hedged duplicate launches observed (gray-failure mitigation).
    pub hedges: u32,
}

impl RequestSpan {
    /// Time to first token, if produced.
    pub fn ttft(&self) -> Option<SimDuration> {
        self.first_token.map(|t| t.saturating_since(self.arrived))
    }

    /// End-to-end latency, if the request finished.
    pub fn e2e(&self) -> Option<SimDuration> {
        self.finished.map(|t| t.saturating_since(self.arrived))
    }

    /// Sender-side queue wait of the KV transfer (zero when no transfer
    /// ran), matching `RequestRecord::kv_queue_wait`.
    pub fn kv_queue_wait(&self) -> SimDuration {
        match (self.kv_enqueued, self.kv_wire_start) {
            (Some(enq), Some(wire)) => wire.saturating_since(enq),
            _ => SimDuration::ZERO,
        }
    }

    /// Wire time of the (successful) KV transfer attempt, matching
    /// `RequestRecord::kv_wire_time`.
    pub fn kv_wire_time(&self) -> SimDuration {
        match (self.kv_wire_start, self.kv_done) {
            (Some(wire), Some(done)) => done.saturating_since(wire),
            _ => SimDuration::ZERO,
        }
    }

    /// Total KV overhead (queue wait + wire time).
    pub fn kv_overhead(&self) -> SimDuration {
        self.kv_queue_wait() + self.kv_wire_time()
    }
}

impl TraceLog {
    /// Wraps a time-sorted event vector.
    pub(crate) fn new(events: Vec<TraceEvent>) -> Self {
        let end = events.last().map(|e| e.at).unwrap_or(SimTime::ZERO);
        TraceLog { events, end }
    }

    /// Every event, sorted by timestamp (stable in emission order).
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events in the log.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Timestamp of the last event (the origin for an empty log).
    pub fn end(&self) -> SimTime {
        self.end
    }

    /// Every request id appearing in the log, ascending.
    pub fn request_ids(&self) -> Vec<RequestId> {
        let ids: BTreeSet<RequestId> = self
            .events
            .iter()
            .filter_map(|e| e.kind.request())
            .collect();
        ids.into_iter().collect()
    }

    /// Request ids that finished successfully, ascending.
    pub fn completed_requests(&self) -> Vec<RequestId> {
        let ids: BTreeSet<RequestId> = self
            .events
            .iter()
            .filter_map(|e| match e.kind {
                TraceKind::Finished { request } => Some(request),
                _ => None,
            })
            .collect();
        ids.into_iter().collect()
    }

    /// The served model each tagged request targets, keyed by request id.
    ///
    /// Tags only appear on multi-model runs; a single-model trace yields an
    /// empty map.
    pub fn model_tags(&self) -> BTreeMap<RequestId, ModelId> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                TraceKind::ModelTag { request, model } => Some((request, model)),
                _ => None,
            })
            .collect()
    }

    /// Request ids tagged to the given model, ascending.
    pub fn requests_for_model(&self, model: ModelId) -> Vec<RequestId> {
        self.model_tags()
            .into_iter()
            .filter_map(|(r, m)| (m == model).then_some(r))
            .collect()
    }

    /// The events concerning one request, in time order.
    pub fn request_events(&self, request: RequestId) -> Vec<&TraceEvent> {
        self.events
            .iter()
            .filter(|e| e.kind.request() == Some(request))
            .collect()
    }

    /// The landmark span of one request, or `None` if the log never saw it
    /// arrive.
    pub fn request_span(&self, request: RequestId) -> Option<RequestSpan> {
        let mut span: Option<RequestSpan> = None;
        for e in &self.events {
            if e.kind.request() != Some(request) {
                continue;
            }
            if span.is_none() {
                if let TraceKind::Arrived { .. } = e.kind {
                    span = Some(RequestSpan {
                        request,
                        arrived: e.at,
                        first_token: None,
                        finished: None,
                        kv_enqueued: None,
                        kv_wire_start: None,
                        kv_done: None,
                        kv_retries: 0,
                        requeues: 0,
                        reprefills: 0,
                        hedges: 0,
                    });
                }
                continue;
            }
            let s = span.as_mut().unwrap();
            match e.kind {
                TraceKind::FirstToken { .. } => s.first_token = Some(e.at),
                TraceKind::Finished { .. } => s.finished = Some(e.at),
                TraceKind::KvEnqueued { .. } if s.kv_enqueued.is_none() => {
                    s.kv_enqueued = Some(e.at);
                }
                TraceKind::KvWireStart { .. } => s.kv_wire_start = Some(e.at),
                TraceKind::KvDone { .. } => s.kv_done = Some(e.at),
                TraceKind::KvRetry { .. } => s.kv_retries += 1,
                TraceKind::Requeued { .. } => s.requeues += 1,
                TraceKind::Reprefill { .. } => s.reprefills += 1,
                TraceKind::HedgeLaunched { .. } => s.hedges += 1,
                _ => {}
            }
        }
        span
    }

    /// The `(role, replica)` pairs observed anywhere in the log, ascending.
    pub fn replicas(&self) -> Vec<(Role, usize)> {
        let mut set = BTreeSet::new();
        for e in &self.events {
            match e.kind {
                TraceKind::Enqueued { role, replica, .. }
                | TraceKind::PrefillStart { role, replica, .. }
                | TraceKind::PrefillEnd { role, replica, .. }
                | TraceKind::DecodeJoin { role, replica, .. }
                | TraceKind::DecodeStep { role, replica, .. }
                | TraceKind::QueueDepth { role, replica, .. }
                | TraceKind::BatchOccupancy { role, replica, .. }
                | TraceKind::HedgeLaunched { role, replica, .. }
                | TraceKind::Quarantined { role, replica }
                | TraceKind::Readmitted { role, replica } => {
                    set.insert((role, replica));
                }
                _ => {}
            }
        }
        set.into_iter().collect()
    }

    /// Prefill queue depth of one replica over time.
    pub fn queue_depth_series(&self, role: Role, replica: usize) -> UtilizationSeries {
        let mut s = UtilizationSeries::new();
        for e in &self.events {
            if let TraceKind::QueueDepth {
                role: r,
                replica: i,
                depth,
            } = e.kind
            {
                if r == role && i == replica {
                    s.push(e.at, depth as f64);
                }
            }
        }
        s
    }

    /// Active continuous-batch occupancy of one replica over time.
    pub fn batch_occupancy_series(&self, role: Role, replica: usize) -> UtilizationSeries {
        let mut s = UtilizationSeries::new();
        for e in &self.events {
            if let TraceKind::BatchOccupancy {
                role: r,
                replica: i,
                active,
            } = e.kind
            {
                if r == role && i == replica {
                    s.push(e.at, active as f64);
                }
            }
        }
        s
    }

    /// Total KV bytes in flight over time, derived from enqueue/delivery/
    /// drop events (no engine-side tally exists).
    pub fn inflight_kv_bytes_series(&self) -> UtilizationSeries {
        let mut s = UtilizationSeries::new();
        let mut inflight: HashMap<RequestId, u64> = HashMap::new();
        let mut total = 0u64;
        for e in &self.events {
            match e.kind {
                TraceKind::KvEnqueued { request, bytes, .. }
                    if !inflight.contains_key(&request) =>
                {
                    inflight.insert(request, bytes);
                    total += bytes;
                    s.push(e.at, total as f64);
                }
                TraceKind::KvDone { request } | TraceKind::Dropped { request } => {
                    if let Some(bytes) = inflight.remove(&request) {
                        total -= bytes;
                        s.push(e.at, total as f64);
                    }
                }
                _ => {}
            }
        }
        s
    }

    /// The fabric links sampled in this log: `(link index, kind, capacity)`,
    /// ascending by index. Empty unless the flow-level fabric ran with
    /// telemetry on.
    pub fn links(&self) -> Vec<(usize, LinkKind, f64)> {
        let mut map: BTreeMap<usize, (LinkKind, f64)> = BTreeMap::new();
        for e in &self.events {
            if let TraceKind::LinkUtilization {
                link,
                kind,
                capacity_bps,
                ..
            } = e.kind
            {
                map.entry(link).or_insert((kind, capacity_bps));
            }
        }
        map.into_iter().map(|(l, (k, c))| (l, k, c)).collect()
    }

    /// Utilization of one fabric link over time, as a fraction of capacity
    /// in `[0, 1]`.
    pub fn link_utilization_series(&self, link: usize) -> UtilizationSeries {
        let mut s = UtilizationSeries::new();
        for e in &self.events {
            if let TraceKind::LinkUtilization {
                link: l,
                used_bps,
                capacity_bps,
                ..
            } = e.kind
            {
                if l == link {
                    s.push(e.at, used_bps / capacity_bps.max(f64::MIN_POSITIVE));
                }
            }
        }
        s
    }

    /// A human-readable timeline of one request's events, one line per
    /// event with absolute time and offset since arrival.
    pub fn render_request_timeline(&self, request: RequestId) -> String {
        let events = self.request_events(request);
        let Some(first) = events.first() else {
            return format!("request {request}: no events\n");
        };
        let arrival = first.at;
        let mut out = format!("request {request} timeline ({} events):\n", events.len());
        for e in events {
            out.push_str(&format!(
                "  t={:>12.6}s  (+{:>10.6}s)  {}\n",
                e.at.as_secs_f64(),
                e.at.saturating_since(arrival).as_secs_f64(),
                e.kind,
            ));
        }
        out
    }

    /// A compact JSON summary of the log: event counts per kind, request
    /// outcomes, and time-weighted mean / peak of every derived series.
    pub fn summary_json(&self) -> String {
        let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
        for e in &self.events {
            *counts.entry(e.kind.label()).or_insert(0) += 1;
        }
        let end = self.end;
        let mut json = String::new();
        json.push_str("{\n");
        json.push_str(&format!("  \"events\": {},\n", self.events.len()));
        json.push_str(&format!("  \"end_s\": {:.6},\n", end.as_secs_f64()));
        json.push_str(&format!("  \"requests\": {},\n", self.request_ids().len()));
        json.push_str(&format!(
            "  \"completed\": {},\n",
            self.completed_requests().len()
        ));
        json.push_str("  \"event_counts\": {");
        for (i, (label, n)) in counts.iter().enumerate() {
            if i > 0 {
                json.push_str(", ");
            }
            json.push_str(&format!("\"{label}\": {n}"));
        }
        json.push_str("},\n");
        json.push_str("  \"replicas\": [\n");
        let replicas = self.replicas();
        for (i, &(role, idx)) in replicas.iter().enumerate() {
            let queue = self.queue_depth_series(role, idx);
            let batch = self.batch_occupancy_series(role, idx);
            json.push_str(&format!(
                "    {{\"role\": \"{role}\", \"replica\": {idx}, \
                 \"queue_mean\": {:.4}, \"queue_peak\": {:.1}, \
                 \"batch_mean\": {:.4}, \"batch_peak\": {:.1}}}{}\n",
                queue.time_weighted_mean(end),
                queue.peak(),
                batch.time_weighted_mean(end),
                batch.peak(),
                if i + 1 == replicas.len() { "" } else { "," }
            ));
        }
        json.push_str("  ],\n");
        let kv = self.inflight_kv_bytes_series();
        json.push_str(&format!(
            "  \"inflight_kv_bytes\": {{\"mean\": {:.1}, \"peak\": {:.1}}},\n",
            kv.time_weighted_mean(end),
            kv.peak()
        ));
        json.push_str("  \"links\": [\n");
        let links = self.links();
        for (i, &(link, kind, capacity)) in links.iter().enumerate() {
            let util = self.link_utilization_series(link);
            json.push_str(&format!(
                "    {{\"link\": {link}, \"kind\": \"{kind}\", \"capacity_bps\": {capacity:.0}, \
                 \"util_mean\": {:.6}, \"util_peak\": {:.6}}}{}\n",
                util.time_weighted_mean(end),
                util.peak(),
                if i + 1 == links.len() { "" } else { "," }
            ));
        }
        json.push_str("  ]\n}\n");
        json
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{Recorder, TraceSink};

    fn ev(us: u64, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            at: SimTime::from_micros(us),
            kind,
        }
    }

    fn sample_log() -> TraceLog {
        let r = RequestId(1);
        let mut rec = Recorder::new();
        for e in [
            ev(0, TraceKind::Arrived { request: r }),
            ev(
                0,
                TraceKind::Enqueued {
                    request: r,
                    role: Role::Prefill,
                    replica: 0,
                },
            ),
            ev(
                0,
                TraceKind::QueueDepth {
                    role: Role::Prefill,
                    replica: 0,
                    depth: 1,
                },
            ),
            ev(
                10,
                TraceKind::PrefillStart {
                    request: r,
                    role: Role::Prefill,
                    replica: 0,
                    tokens: 512,
                },
            ),
            ev(
                50,
                TraceKind::PrefillEnd {
                    request: r,
                    role: Role::Prefill,
                    replica: 0,
                },
            ),
            ev(50, TraceKind::FirstToken { request: r }),
            ev(
                50,
                TraceKind::KvEnqueued {
                    request: r,
                    from: 0,
                    to: 0,
                    bytes: 1000,
                },
            ),
            ev(
                60,
                TraceKind::KvWireStart {
                    request: r,
                    attempt: 1,
                },
            ),
            ev(
                70,
                TraceKind::KvRetry {
                    request: r,
                    attempt: 2,
                },
            ),
            ev(
                80,
                TraceKind::KvWireStart {
                    request: r,
                    attempt: 2,
                },
            ),
            ev(95, TraceKind::KvDone { request: r }),
            ev(
                95,
                TraceKind::DecodeJoin {
                    request: r,
                    role: Role::Decode,
                    replica: 1,
                },
            ),
            ev(200, TraceKind::Finished { request: r }),
        ] {
            rec.record(e);
        }
        rec.finish()
    }

    #[test]
    fn span_reconciles_landmarks() {
        let log = sample_log();
        let s = log.request_span(RequestId(1)).unwrap();
        assert_eq!(s.ttft(), Some(SimDuration::from_micros(50)));
        assert_eq!(s.e2e(), Some(SimDuration::from_micros(200)));
        // Queue wait uses first enqueue and LAST wire start.
        assert_eq!(s.kv_queue_wait(), SimDuration::from_micros(30));
        assert_eq!(s.kv_wire_time(), SimDuration::from_micros(15));
        assert_eq!(s.kv_retries, 1);
        assert_eq!(log.completed_requests(), vec![RequestId(1)]);
    }

    #[test]
    fn model_tags_index_requests_by_tenant() {
        let mut rec = Recorder::new();
        for (id, m) in [(1u64, 1u32), (2, 2), (3, 1)] {
            rec.record(ev(
                id,
                TraceKind::Arrived {
                    request: RequestId(id),
                },
            ));
            rec.record(ev(
                id,
                TraceKind::ModelTag {
                    request: RequestId(id),
                    model: ModelId(m),
                },
            ));
        }
        let log = rec.finish();
        assert_eq!(log.model_tags().len(), 3);
        assert_eq!(
            log.requests_for_model(ModelId(1)),
            vec![RequestId(1), RequestId(3)]
        );
        assert_eq!(log.requests_for_model(ModelId(2)), vec![RequestId(2)]);
        // Untagged logs (single-model runs) carry no tags at all.
        assert!(sample_log().model_tags().is_empty());
    }

    #[test]
    fn inflight_bytes_rise_and_fall() {
        let log = sample_log();
        let s = log.inflight_kv_bytes_series();
        assert_eq!(s.value_at(SimTime::from_micros(55)), 1000.0);
        assert_eq!(s.value_at(SimTime::from_micros(100)), 0.0);
        assert_eq!(s.peak(), 1000.0);
    }

    #[test]
    fn replicas_and_timeline_render() {
        let log = sample_log();
        assert_eq!(log.replicas(), vec![(Role::Prefill, 0), (Role::Decode, 1)]);
        let text = log.render_request_timeline(RequestId(1));
        assert!(text.contains("kv retry (attempt 2)"));
        assert!(text.contains("finished"));
        let missing = log.render_request_timeline(RequestId(99));
        assert!(missing.contains("no events"));
    }

    #[test]
    fn summary_json_mentions_counts() {
        let log = sample_log();
        let json = log.summary_json();
        assert!(json.contains("\"completed\": 1"));
        assert!(json.contains("\"kv_retry\": 1"));
    }
}
