//! Step-function time series derived from sampled trace events.

use ts_common::SimTime;

/// A right-continuous step function of simulated time: the value set at
/// instant `t` holds until the next sample. Before the first sample the
/// value is implicitly zero.
///
/// ```
/// use ts_common::SimTime;
/// use ts_telemetry::UtilizationSeries;
/// let mut s = UtilizationSeries::new();
/// s.push(SimTime::from_micros(2), 4.0);
/// s.push(SimTime::from_micros(6), 1.0);
/// assert_eq!(s.peak(), 4.0);
/// // 0 for 2us, 4 for 4us, 1 for 2us over [0, 8us): mean = 18/8.
/// assert!((s.time_weighted_mean(SimTime::from_micros(8)) - 2.25).abs() < 1e-12);
/// ```
#[derive(Debug, Default, Clone, PartialEq)]
pub struct UtilizationSeries {
    /// `(instant, value)` samples, strictly increasing in time.
    points: Vec<(SimTime, f64)>,
}

impl UtilizationSeries {
    /// An empty series (constantly zero).
    pub fn new() -> Self {
        UtilizationSeries::default()
    }

    /// Appends a sample. Samples must arrive in non-decreasing time order;
    /// a sample at the same instant as the last one overwrites it (only the
    /// final value at an instant is observable).
    ///
    /// # Panics
    /// Panics if `at` precedes the last sample.
    pub fn push(&mut self, at: SimTime, value: f64) {
        if let Some(last) = self.points.last_mut() {
            assert!(at >= last.0, "series samples must be time-ordered");
            if last.0 == at {
                last.1 = value;
                return;
            }
        }
        self.points.push((at, value));
    }

    /// The raw `(instant, value)` samples.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Whether the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The value holding at instant `t` (zero before the first sample).
    pub fn value_at(&self, t: SimTime) -> f64 {
        match self.points.partition_point(|&(at, _)| at <= t) {
            0 => 0.0,
            n => self.points[n - 1].1,
        }
    }

    /// The largest sampled value (zero for an empty series).
    pub fn peak(&self) -> f64 {
        self.points.iter().map(|&(_, v)| v).fold(0.0, f64::max)
    }

    /// The time-weighted mean over `[0, end)`, counting the implicit zero
    /// before the first sample. Returns zero when `end` is the origin.
    pub fn time_weighted_mean(&self, end: SimTime) -> f64 {
        let horizon = end.as_micros();
        if horizon == 0 {
            return 0.0;
        }
        let mut integral = 0.0;
        for (i, &(at, v)) in self.points.iter().enumerate() {
            if at >= end {
                break;
            }
            let until = self
                .points
                .get(i + 1)
                .map(|&(next, _)| next.min(end))
                .unwrap_or(end);
            integral += v * (until.as_micros() - at.as_micros()) as f64;
        }
        integral / horizon as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_series_is_constant_zero() {
        let s = UtilizationSeries::new();
        assert!(s.is_empty());
        assert_eq!(s.value_at(SimTime::from_micros(100)), 0.0);
        assert_eq!(s.peak(), 0.0);
        assert_eq!(s.time_weighted_mean(SimTime::from_micros(100)), 0.0);
    }

    #[test]
    fn value_at_is_right_continuous() {
        let mut s = UtilizationSeries::new();
        s.push(SimTime::from_micros(10), 2.0);
        assert_eq!(s.value_at(SimTime::from_micros(9)), 0.0);
        assert_eq!(s.value_at(SimTime::from_micros(10)), 2.0);
        assert_eq!(s.value_at(SimTime::from_micros(11)), 2.0);
    }

    #[test]
    fn same_instant_sample_overwrites() {
        let mut s = UtilizationSeries::new();
        s.push(SimTime::from_micros(5), 1.0);
        s.push(SimTime::from_micros(5), 3.0);
        assert_eq!(s.points().len(), 1);
        assert_eq!(s.value_at(SimTime::from_micros(5)), 3.0);
    }

    #[test]
    fn mean_truncates_at_end() {
        let mut s = UtilizationSeries::new();
        s.push(SimTime::ZERO, 2.0);
        s.push(SimTime::from_micros(100), 8.0);
        // Only the first 50us count: mean = 2.
        assert_eq!(s.time_weighted_mean(SimTime::from_micros(50)), 2.0);
        // Over 200us: 2 for 100us + 8 for 100us = 5.
        assert_eq!(s.time_weighted_mean(SimTime::from_micros(200)), 5.0);
    }

    #[test]
    #[should_panic]
    fn out_of_order_sample_panics() {
        let mut s = UtilizationSeries::new();
        s.push(SimTime::from_micros(10), 1.0);
        s.push(SimTime::from_micros(5), 1.0);
    }
}
