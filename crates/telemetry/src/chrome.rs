//! Chrome trace-event JSON export (Perfetto / `chrome://tracing`) and a
//! small structural validator for the exported format.
//!
//! The export writes the classic `{"traceEvents": [...]}` container:
//!
//! * **pid 1 "requests"** — one thread per request, complete (`X`) slices
//!   for each lifecycle phase (`queue`, `prefill`, `kv queue`, `kv wire`,
//!   `decode`) plus instant (`i`) markers for first token, retries and
//!   recovery events;
//! * **pid 2 "prefill replicas" / pid 3 "decode replicas"** — one thread
//!   per replica, a slice per prefill launch / per decode residency;
//! * **pid 4 "counters"** — counter (`C`) tracks for queue depth, batch
//!   occupancy, in-flight KV bytes and per-link utilization, plus global
//!   instant markers for faults.
//!
//! The workspace's serde shim has no serializer backend, so both the
//! exporter and [`validate_chrome_trace`]'s parser are hand-rolled; the
//! validator exists precisely so the hand-rolled exporter cannot silently
//! rot (it runs in CI against `bench_trace` output).

use crate::event::{Role, TraceKind};
use crate::log::TraceLog;
use ts_common::{RequestId, SimTime};

const PID_REQUESTS: u64 = 1;
const PID_PREFILL: u64 = 2;
const PID_DECODE: u64 = 3;
const PID_COUNTERS: u64 = 4;

fn push_meta(out: &mut String, pid: u64, tid: Option<u64>, key: &str, name: &str) {
    let tid_s = tid.unwrap_or(0);
    out.push_str(&format!(
        "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid_s},\"ts\":0,\"name\":\"{key}\",\
         \"args\":{{\"name\":\"{name}\"}}}},\n"
    ));
}

fn push_slice(
    out: &mut String,
    pid: u64,
    tid: u64,
    name: &str,
    cat: &str,
    start: SimTime,
    end: SimTime,
) {
    let ts = start.as_micros();
    let dur = end.saturating_since(start).as_micros();
    out.push_str(&format!(
        "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"dur\":{dur},\
         \"name\":\"{name}\",\"cat\":\"{cat}\"}},\n"
    ));
}

fn push_instant(out: &mut String, pid: u64, tid: u64, name: &str, cat: &str, at: SimTime) {
    out.push_str(&format!(
        "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"name\":\"{name}\",\
         \"cat\":\"{cat}\",\"s\":\"t\"}},\n",
        at.as_micros()
    ));
}

fn push_counter(out: &mut String, tid: u64, name: &str, at: SimTime, value: f64) {
    out.push_str(&format!(
        "{{\"ph\":\"C\",\"pid\":{PID_COUNTERS},\"tid\":{tid},\"ts\":{},\"name\":\"{name}\",\
         \"args\":{{\"value\":{value:.6}}}}},\n",
        at.as_micros()
    ));
}

/// Per-request phase slices: walks the request's events pairing starts
/// with their closing events.
fn export_request(out: &mut String, log: &TraceLog, request: RequestId) {
    let events = log.request_events(request);
    let tid = request.0;
    let mut queue_open: Option<SimTime> = None;
    let mut prefill_open: Option<SimTime> = None;
    let mut kv_enq: Option<SimTime> = None;
    let mut wire_open: Option<SimTime> = None;
    let mut decode_open: Option<SimTime> = None;
    for e in &events {
        match e.kind {
            TraceKind::Enqueued { .. } => queue_open = Some(e.at),
            TraceKind::PrefillStart { .. } => {
                if let Some(start) = queue_open.take() {
                    push_slice(out, PID_REQUESTS, tid, "queue", "lifecycle", start, e.at);
                }
                prefill_open = Some(e.at);
            }
            TraceKind::PrefillEnd { .. } => {
                if let Some(start) = prefill_open.take() {
                    push_slice(out, PID_REQUESTS, tid, "prefill", "lifecycle", start, e.at);
                }
            }
            TraceKind::KvEnqueued { .. } => kv_enq = Some(e.at),
            TraceKind::KvWireStart { .. } => {
                if let Some(start) = kv_enq.take() {
                    push_slice(out, PID_REQUESTS, tid, "kv queue", "kv", start, e.at);
                }
                wire_open = Some(e.at);
            }
            TraceKind::KvDone { .. } => {
                if let Some(start) = wire_open.take() {
                    push_slice(out, PID_REQUESTS, tid, "kv wire", "kv", start, e.at);
                }
            }
            TraceKind::DecodeJoin { .. } => decode_open = Some(e.at),
            TraceKind::Finished { .. } => {
                if let Some(start) = decode_open.take() {
                    push_slice(out, PID_REQUESTS, tid, "decode", "lifecycle", start, e.at);
                }
                push_instant(out, PID_REQUESTS, tid, "finished", "lifecycle", e.at);
            }
            TraceKind::FirstToken { .. } => {
                push_instant(out, PID_REQUESTS, tid, "first token", "lifecycle", e.at)
            }
            TraceKind::KvRetry { .. } => {
                push_instant(out, PID_REQUESTS, tid, "kv retry", "kv", e.at)
            }
            TraceKind::Requeued { .. } => {
                push_instant(out, PID_REQUESTS, tid, "requeued", "recovery", e.at)
            }
            TraceKind::Reprefill { .. } => {
                push_instant(out, PID_REQUESTS, tid, "re-prefill", "recovery", e.at)
            }
            TraceKind::Dropped { .. } => {
                push_instant(out, PID_REQUESTS, tid, "dropped", "lifecycle", e.at)
            }
            TraceKind::Rejected { .. } => {
                push_instant(out, PID_REQUESTS, tid, "rejected", "lifecycle", e.at)
            }
            TraceKind::Stalled { .. } => {
                push_instant(out, PID_REQUESTS, tid, "stalled", "recovery", e.at)
            }
            _ => {}
        }
    }
}

/// Per-replica slices on the role tracks.
fn export_replica_tracks(out: &mut String, log: &TraceLog) {
    // Prefill launches: pair each request's PrefillStart with its next
    // PrefillEnd on the same replica.
    let mut open: Vec<(RequestId, usize, SimTime)> = Vec::new();
    for e in log.events() {
        match e.kind {
            TraceKind::PrefillStart {
                request, replica, ..
            } => open.push((request, replica, e.at)),
            TraceKind::PrefillEnd {
                request, replica, ..
            } => {
                if let Some(pos) = open
                    .iter()
                    .position(|&(r, i, _)| r == request && i == replica)
                {
                    let (_, _, start) = open.swap_remove(pos);
                    push_slice(
                        out,
                        PID_PREFILL,
                        replica as u64,
                        &format!("r{}", request.0),
                        "prefill",
                        start,
                        e.at,
                    );
                }
            }
            _ => {}
        }
    }
    // Decode residency: DecodeJoin → Finished/Dropped (or a later re-join
    // after recovery, whichever comes first).
    let mut joined: Vec<(RequestId, usize, SimTime)> = Vec::new();
    for e in log.events() {
        match e.kind {
            TraceKind::DecodeJoin {
                request, replica, ..
            } => {
                if let Some(pos) = joined.iter().position(|&(r, _, _)| r == request) {
                    let (_, i, start) = joined.swap_remove(pos);
                    push_slice(
                        out,
                        PID_DECODE,
                        i as u64,
                        &format!("r{}", request.0),
                        "decode",
                        start,
                        e.at,
                    );
                }
                joined.push((request, replica, e.at));
            }
            TraceKind::Finished { request } | TraceKind::Dropped { request } => {
                if let Some(pos) = joined.iter().position(|&(r, _, _)| r == request) {
                    let (_, i, start) = joined.swap_remove(pos);
                    push_slice(
                        out,
                        PID_DECODE,
                        i as u64,
                        &format!("r{}", request.0),
                        "decode",
                        start,
                        e.at,
                    );
                }
            }
            _ => {}
        }
    }
}

/// Counter tracks and global fault markers.
fn export_counters(out: &mut String, log: &TraceLog) {
    let mut counter_tid = 0u64;
    for (role, replica) in log.replicas() {
        let queue = log.queue_depth_series(role, replica);
        if !queue.is_empty() {
            let name = format!("queue depth {role}[{replica}]");
            for &(at, v) in queue.points() {
                push_counter(out, counter_tid, &name, at, v);
            }
            counter_tid += 1;
        }
        let batch = log.batch_occupancy_series(role, replica);
        if !batch.is_empty() {
            let name = format!("batch {role}[{replica}]");
            for &(at, v) in batch.points() {
                push_counter(out, counter_tid, &name, at, v);
            }
            counter_tid += 1;
        }
    }
    let kv = log.inflight_kv_bytes_series();
    if !kv.is_empty() {
        for &(at, v) in kv.points() {
            push_counter(out, counter_tid, "inflight kv bytes", at, v);
        }
        counter_tid += 1;
    }
    for (link, kind, _) in log.links() {
        let util = log.link_utilization_series(link);
        let name = format!("link {link} {kind} util");
        for &(at, v) in util.points() {
            push_counter(out, counter_tid, &name, at, v);
        }
        counter_tid += 1;
    }
    for e in log.events() {
        match e.kind {
            TraceKind::FaultTriggered { index } => push_instant(
                out,
                PID_COUNTERS,
                0,
                &format!("fault {index} triggered"),
                "fault",
                e.at,
            ),
            TraceKind::FaultDetected { index } => push_instant(
                out,
                PID_COUNTERS,
                0,
                &format!("fault {index} detected"),
                "fault",
                e.at,
            ),
            _ => {}
        }
    }
}

/// Exports the log as Chrome trace-event JSON.
pub fn export(log: &TraceLog) -> String {
    let mut body = String::new();
    push_meta(&mut body, PID_REQUESTS, None, "process_name", "requests");
    push_meta(
        &mut body,
        PID_PREFILL,
        None,
        "process_name",
        "prefill replicas",
    );
    push_meta(
        &mut body,
        PID_DECODE,
        None,
        "process_name",
        "decode replicas",
    );
    push_meta(&mut body, PID_COUNTERS, None, "process_name", "counters");
    for (role, replica) in log.replicas() {
        let pid = match role {
            Role::Prefill => PID_PREFILL,
            Role::Decode | Role::Colocated => PID_DECODE,
        };
        push_meta(
            &mut body,
            pid,
            Some(replica as u64),
            "thread_name",
            &format!("{role} {replica}"),
        );
    }
    for request in log.request_ids() {
        push_meta(
            &mut body,
            PID_REQUESTS,
            Some(request.0),
            "thread_name",
            &format!("request {}", request.0),
        );
        export_request(&mut body, log, request);
    }
    export_replica_tracks(&mut body, log);
    export_counters(&mut body, log);
    let body = body.trim_end().trim_end_matches(',').to_string();
    format!("{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n{body}\n]}}\n")
}

/// Structural statistics of a validated Chrome trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChromeTraceStats {
    /// Total events in `traceEvents`.
    pub events: usize,
    /// Complete (`X`) slices.
    pub slices: usize,
    /// Counter (`C`) samples.
    pub counters: usize,
    /// Instant (`i`) markers.
    pub instants: usize,
}

/// Validates Chrome trace-event JSON structurally: the document parses,
/// `traceEvents` is a non-empty array, and every event has a string `ph`
/// plus numeric `pid`/`tid`/`ts` (and numeric `dur` on `X` slices).
pub fn validate_chrome_trace(json: &str) -> Result<ChromeTraceStats, String> {
    let doc = json::parse(json)?;
    let root = doc
        .as_object()
        .ok_or_else(|| "root is not an object".to_string())?;
    let events = root
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v)
        .ok_or_else(|| "missing traceEvents".to_string())?;
    let events = events
        .as_array()
        .ok_or_else(|| "traceEvents is not an array".to_string())?;
    if events.is_empty() {
        return Err("traceEvents is empty".into());
    }
    let mut stats = ChromeTraceStats {
        events: events.len(),
        slices: 0,
        counters: 0,
        instants: 0,
    };
    for (i, e) in events.iter().enumerate() {
        let obj = e
            .as_object()
            .ok_or_else(|| format!("event {i} is not an object"))?;
        let field = |name: &str| obj.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        let ph = field("ph")
            .and_then(json::Value::as_str)
            .ok_or_else(|| format!("event {i}: ph missing or not a string"))?;
        for key in ["pid", "tid", "ts"] {
            let ok = field(key).map(|v| v.as_number().is_some()).unwrap_or(false);
            if !ok {
                return Err(format!(
                    "event {i} (ph={ph}): {key} missing or not a number"
                ));
            }
        }
        match ph {
            "X" => {
                if field("dur").and_then(json::Value::as_number).is_none() {
                    return Err(format!("event {i}: X slice without numeric dur"));
                }
                stats.slices += 1;
            }
            "C" => stats.counters += 1,
            "i" => stats.instants += 1,
            "M" | "B" | "E" => {}
            other => return Err(format!("event {i}: unknown phase {other:?}")),
        }
        if field("name").and_then(json::Value::as_str).is_none() && ph != "i" {
            return Err(format!("event {i}: name missing or not a string"));
        }
    }
    Ok(stats)
}

/// A minimal recursive-descent JSON parser — just enough to validate the
/// hand-rolled exporter (the workspace serde shim has no parser either).
mod json {
    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any JSON number.
        Number(f64),
        /// A string.
        String(String),
        /// An array.
        Array(Vec<Value>),
        /// An object, in document order.
        Object(Vec<(String, Value)>),
    }

    impl Value {
        /// The string payload, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::String(s) => Some(s),
                _ => None,
            }
        }

        /// The numeric payload, if this is a number.
        pub fn as_number(&self) -> Option<f64> {
            match self {
                Value::Number(n) => Some(*n),
                _ => None,
            }
        }

        /// The members, if this is an object.
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Object(m) => Some(m),
                _ => None,
            }
        }

        /// The elements, if this is an array.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(v) => Some(v),
                _ => None,
            }
        }
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    /// Parses a complete JSON document.
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }

        fn peek(&mut self) -> Result<u8, String> {
            self.skip_ws();
            self.bytes
                .get(self.pos)
                .copied()
                .ok_or_else(|| "unexpected end of input".to_string())
        }

        fn expect(&mut self, b: u8) -> Result<(), String> {
            if self.peek()? == b {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!("expected {:?} at byte {}", b as char, self.pos))
            }
        }

        fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                Ok(v)
            } else {
                Err(format!("invalid literal at byte {}", self.pos))
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            match self.peek()? {
                b'{' => self.object(),
                b'[' => self.array(),
                b'"' => Ok(Value::String(self.string()?)),
                b't' => self.literal("true", Value::Bool(true)),
                b'f' => self.literal("false", Value::Bool(false)),
                b'n' => self.literal("null", Value::Null),
                b'-' | b'0'..=b'9' => self.number(),
                other => Err(format!(
                    "unexpected {:?} at byte {}",
                    other as char, self.pos
                )),
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect(b'{')?;
            let mut members = Vec::new();
            if self.peek()? == b'}' {
                self.pos += 1;
                return Ok(Value::Object(members));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.expect(b':')?;
                members.push((key, self.value()?));
                match self.peek()? {
                    b',' => self.pos += 1,
                    b'}' => {
                        self.pos += 1;
                        return Ok(Value::Object(members));
                    }
                    other => {
                        return Err(format!(
                            "expected ',' or '}}', got {:?} at byte {}",
                            other as char, self.pos
                        ))
                    }
                }
            }
        }

        fn array(&mut self) -> Result<Value, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            if self.peek()? == b']' {
                self.pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(self.value()?);
                match self.peek()? {
                    b',' => self.pos += 1,
                    b']' => {
                        self.pos += 1;
                        return Ok(Value::Array(items));
                    }
                    other => {
                        return Err(format!(
                            "expected ',' or ']', got {:?} at byte {}",
                            other as char, self.pos
                        ))
                    }
                }
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                let b = *self
                    .bytes
                    .get(self.pos)
                    .ok_or_else(|| "unterminated string".to_string())?;
                self.pos += 1;
                match b {
                    b'"' => return Ok(out),
                    b'\\' => {
                        let esc = *self
                            .bytes
                            .get(self.pos)
                            .ok_or_else(|| "unterminated escape".to_string())?;
                        self.pos += 1;
                        match esc {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'n' => out.push('\n'),
                            b't' => out.push('\t'),
                            b'r' => out.push('\r'),
                            b'b' => out.push('\u{8}'),
                            b'f' => out.push('\u{c}'),
                            b'u' => {
                                let hex = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .ok_or_else(|| "truncated \\u escape".to_string())?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex)
                                        .map_err(|_| "bad \\u escape".to_string())?,
                                    16,
                                )
                                .map_err(|_| "bad \\u escape".to_string())?;
                                self.pos += 4;
                                out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            }
                            other => {
                                return Err(format!("bad escape \\{}", other as char));
                            }
                        }
                    }
                    _ => out.push(b as char),
                }
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            std::str::from_utf8(&self.bytes[start..self.pos])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .map(Value::Number)
                .ok_or_else(|| format!("invalid number at byte {start}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;
    use crate::sink::{Recorder, TraceSink};

    fn tiny_log() -> TraceLog {
        let r = RequestId(3);
        let mut rec = Recorder::new();
        let ev = |us: u64, kind: TraceKind| TraceEvent {
            at: SimTime::from_micros(us),
            kind,
        };
        rec.record(ev(0, TraceKind::Arrived { request: r }));
        rec.record(ev(
            0,
            TraceKind::Enqueued {
                request: r,
                role: Role::Prefill,
                replica: 0,
            },
        ));
        rec.record(ev(
            5,
            TraceKind::PrefillStart {
                request: r,
                role: Role::Prefill,
                replica: 0,
                tokens: 64,
            },
        ));
        rec.record(ev(
            9,
            TraceKind::PrefillEnd {
                request: r,
                role: Role::Prefill,
                replica: 0,
            },
        ));
        rec.record(ev(9, TraceKind::FirstToken { request: r }));
        rec.record(ev(
            20,
            TraceKind::DecodeJoin {
                request: r,
                role: Role::Decode,
                replica: 1,
            },
        ));
        rec.record(ev(
            21,
            TraceKind::BatchOccupancy {
                role: Role::Decode,
                replica: 1,
                active: 1,
            },
        ));
        rec.record(ev(40, TraceKind::Finished { request: r }));
        rec.finish()
    }

    #[test]
    fn export_validates_round_trip() {
        let json = export(&tiny_log());
        let stats = validate_chrome_trace(&json).expect("exported trace must validate");
        assert!(stats.events > 0);
        assert!(stats.slices >= 3, "queue + prefill + decode slices");
        assert!(stats.counters >= 1, "batch occupancy counter");
        assert!(stats.instants >= 2, "first token + finished markers");
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[]}").is_err());
        assert!(
            validate_chrome_trace("{\"traceEvents\":[{\"ph\":\"X\",\"pid\":1}]}").is_err(),
            "missing tid/ts must fail"
        );
        assert!(validate_chrome_trace(
            "{\"traceEvents\":[{\"ph\":\"X\",\"pid\":1,\"tid\":\"a\",\"ts\":0}]}"
        )
        .is_err());
    }

    #[test]
    fn validator_accepts_minimal_wellformed_trace() {
        let ok = "{\"traceEvents\":[{\"ph\":\"i\",\"pid\":1,\"tid\":2,\"ts\":3,\"s\":\"g\"}]}";
        let stats = validate_chrome_trace(ok).unwrap();
        assert_eq!(stats.events, 1);
        assert_eq!(stats.instants, 1);
    }
}
