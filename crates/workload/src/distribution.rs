//! Token-length distributions.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A clamped lognormal distribution over token counts, parameterized by its
/// median (the statistic the paper reports for the Azure traces).
///
/// ```
/// use ts_workload::LengthDistribution;
/// let d = LengthDistribution::lognormal(129, 0.7, 1, 2048);
/// let mut rng = ts_common::seeded_rng(1);
/// let samples: Vec<u32> = (0..1000).map(|_| d.sample(&mut rng)).collect();
/// let mut sorted = samples.clone();
/// sorted.sort_unstable();
/// let median = sorted[500];
/// assert!((median as f64 / 129.0 - 1.0).abs() < 0.25);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LengthDistribution {
    /// Median token count (lognormal `exp(mu)`).
    pub median: u32,
    /// Lognormal shape parameter (sigma of the underlying normal).
    pub sigma: f64,
    /// Inclusive lower clamp.
    pub min: u32,
    /// Inclusive upper clamp.
    pub max: u32,
}

impl LengthDistribution {
    /// Creates a lognormal length distribution.
    ///
    /// # Panics
    /// Panics if `median` is zero, `sigma` is negative/non-finite, or
    /// `min > max`.
    pub fn lognormal(median: u32, sigma: f64, min: u32, max: u32) -> Self {
        assert!(median > 0, "median must be positive");
        assert!(sigma.is_finite() && sigma >= 0.0, "bad sigma {sigma}");
        assert!(min <= max, "min {min} > max {max}");
        LengthDistribution {
            median,
            sigma,
            min,
            max,
        }
    }

    /// A degenerate distribution always returning `value`.
    pub fn constant(value: u32) -> Self {
        LengthDistribution {
            median: value.max(1),
            sigma: 0.0,
            min: value.max(1),
            max: value.max(1),
        }
    }

    /// Draws one length.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u32 {
        if self.sigma == 0.0 {
            return self.median.clamp(self.min, self.max);
        }
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = (self.median as f64) * (self.sigma * z).exp();
        (v.round() as u32).clamp(self.min, self.max)
    }

    /// Analytic mean of the clamped-free lognormal (`median·exp(σ²/2)`);
    /// a good approximation when clamps are loose. Used for cost estimation.
    pub fn mean(&self) -> f64 {
        let m = self.median as f64 * (self.sigma * self.sigma / 2.0).exp();
        m.clamp(self.min as f64, self.max as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_common::seeded_rng;

    #[test]
    fn constant_always_returns_value() {
        let d = LengthDistribution::constant(42);
        let mut rng = seeded_rng(0);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 42);
        }
    }

    #[test]
    fn samples_respect_clamps() {
        let d = LengthDistribution::lognormal(100, 1.5, 50, 200);
        let mut rng = seeded_rng(1);
        for _ in 0..1000 {
            let s = d.sample(&mut rng);
            assert!((50..=200).contains(&s));
        }
    }

    #[test]
    fn empirical_median_tracks_parameter() {
        let d = LengthDistribution::lognormal(1000, 0.5, 1, 100_000);
        let mut rng = seeded_rng(2);
        let mut v: Vec<u32> = (0..4000).map(|_| d.sample(&mut rng)).collect();
        v.sort_unstable();
        let med = v[2000] as f64;
        assert!((med / 1000.0 - 1.0).abs() < 0.1, "median {med}");
    }

    #[test]
    fn mean_exceeds_median_for_lognormal() {
        let d = LengthDistribution::lognormal(100, 0.8, 1, 10_000);
        assert!(d.mean() > 100.0);
        let c = LengthDistribution::constant(7);
        assert_eq!(c.mean(), 7.0);
    }

    #[test]
    #[should_panic]
    fn zero_median_panics() {
        let _ = LengthDistribution::lognormal(0, 0.5, 1, 10);
    }
}
