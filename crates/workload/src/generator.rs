//! Poisson arrival generation.
//!
//! Following the paper (§5.1, after AlpaServe/HexGen), requests arrive as a
//! Poisson process: inter-arrival times are exponential with mean `1/rate`.
//! [`generate_phased`] chains several workload phases back to back, which
//! drives the workload-shift rescheduling experiments.

use crate::spec::WorkloadSpec;
use rand::Rng;
use ts_common::{seeded_rng, ModelId, Request, RequestId, SimDuration, SimTime};

/// Generates a Poisson-arrival trace for `spec` over `[0, horizon)`.
///
/// Deterministic for a given `(spec, horizon, seed)`.
pub fn generate(spec: &WorkloadSpec, horizon: SimDuration, seed: u64) -> Vec<Request> {
    let mut rng = seeded_rng(seed);
    let mut out = Vec::new();
    let mut t = 0.0f64;
    let horizon_s = horizon.as_secs_f64();
    let mut id = 0u64;
    loop {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        t += -u.ln() / spec.rate;
        if t >= horizon_s {
            break;
        }
        out.push(Request::new(
            RequestId(id),
            SimTime::from_secs_f64(t),
            spec.prompt.sample(&mut rng),
            spec.output.sample(&mut rng),
        ));
        id += 1;
    }
    out
}

/// One phase of a time-varying workload script.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadPhase {
    /// The workload active during this phase.
    pub spec: WorkloadSpec,
    /// Phase duration.
    pub duration: SimDuration,
}

/// Generates a trace that switches workloads at phase boundaries (e.g.
/// coding for 10 min, then conversation) with globally increasing ids and
/// arrival times.
pub fn generate_phased(phases: &[WorkloadPhase], seed: u64) -> Vec<Request> {
    let mut out: Vec<Request> = Vec::new();
    let mut offset = SimDuration::ZERO;
    for (pi, phase) in phases.iter().enumerate() {
        let base_id = out.len() as u64;
        let reqs = generate(
            &phase.spec,
            phase.duration,
            ts_common::rng::derive_seed(seed, pi as u64),
        );
        out.extend(reqs.into_iter().map(|r| Request {
            id: RequestId(base_id + r.id.0),
            arrival: SimTime::ZERO + offset + (r.arrival - SimTime::ZERO),
            ..r
        }));
        offset += phase.duration;
    }
    out
}

/// Builds the phase list of a sinusoidal diurnal cycle: the arrival rate
/// follows `base.rate * (1 - amplitude * cos(2π t / period))`, sampled at
/// the midpoint of each `bucket`-long phase. At `t = 0` the rate sits at
/// its overnight trough `base.rate * (1 - amplitude)` and climbs through
/// the morning ramp to the midday peak `base.rate * (1 + amplitude)` at
/// `t = period / 2`. The time-weighted mean rate over a whole period stays
/// `base.rate`.
///
/// The returned phases all share `base`'s length distributions — feed them
/// to [`generate_phased`] (or splice a flash crowd in first with
/// [`with_flash_crowd`]).
///
/// # Panics
/// Panics if `period` or `bucket` is zero, or `amplitude` is outside
/// `[0, 1)` (an amplitude of 1 would zero the trough rate).
pub fn diurnal_phases(
    base: &WorkloadSpec,
    horizon: SimDuration,
    period: SimDuration,
    amplitude: f64,
    bucket: SimDuration,
) -> Vec<WorkloadPhase> {
    assert!(!period.is_zero(), "diurnal period must be positive");
    assert!(!bucket.is_zero(), "diurnal bucket must be positive");
    assert!(
        (0.0..1.0).contains(&amplitude),
        "diurnal amplitude must be in [0, 1), got {amplitude}"
    );
    let period_s = period.as_secs_f64();
    let mut phases = Vec::new();
    let mut t = SimDuration::ZERO;
    while t < horizon {
        let len = bucket.min(horizon - t);
        let mid_s = (t + len.mul_f64(0.5)).as_secs_f64();
        let factor = 1.0 - amplitude * (std::f64::consts::TAU * mid_s / period_s).cos();
        phases.push(WorkloadPhase {
            spec: base.with_rate(base.rate * factor),
            duration: len,
        });
        t += len;
    }
    phases
}

/// Splices a flash crowd into a phase list: every part of the timeline
/// inside `[start, start + duration)` has its arrival rate multiplied by
/// `multiplier`. Phases straddling a window edge are split at the boundary,
/// so the total duration and everything outside the window are untouched.
///
/// # Panics
/// Panics if `multiplier < 1` or `duration` is zero.
pub fn with_flash_crowd(
    phases: &[WorkloadPhase],
    start: SimDuration,
    duration: SimDuration,
    multiplier: f64,
) -> Vec<WorkloadPhase> {
    assert!(multiplier >= 1.0, "flash-crowd multiplier must be >= 1");
    assert!(!duration.is_zero(), "flash-crowd duration must be positive");
    let end = start + duration;
    let mut out = Vec::new();
    let mut t = SimDuration::ZERO;
    for phase in phases {
        let p_start = t;
        let p_end = t + phase.duration;
        // Up to three slices: before, inside and after the window. The two
        // middle cuts are the window edges clamped into the phase, so the
        // array is already ordered and degenerate slices collapse away.
        let cuts = [
            p_start,
            start.clamp(p_start, p_end),
            end.clamp(p_start, p_end),
            p_end,
        ];
        for w in cuts.windows(2) {
            let (s, e) = (w[0], w[1]);
            if e <= s {
                continue;
            }
            let inside = s >= start && s < end;
            let rate = if inside {
                phase.spec.rate * multiplier
            } else {
                phase.spec.rate
            };
            out.push(WorkloadPhase {
                spec: phase.spec.with_rate(rate),
                duration: e - s,
            });
        }
        t = p_end;
    }
    out
}

/// Generates a full diurnal trace: [`diurnal_phases`] fed through
/// [`generate_phased`]. Deterministic for a given
/// `(base, horizon, period, amplitude, bucket, seed)`.
pub fn generate_diurnal(
    base: &WorkloadSpec,
    horizon: SimDuration,
    period: SimDuration,
    amplitude: f64,
    bucket: SimDuration,
    seed: u64,
) -> Vec<Request> {
    generate_phased(
        &diurnal_phases(base, horizon, period, amplitude, bucket),
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec;

    #[test]
    fn arrival_count_matches_rate() {
        let w = spec::coding(4.0);
        let reqs = generate(&w, SimDuration::from_secs(500), 7);
        let expected = 2000.0;
        let n = reqs.len() as f64;
        assert!((n / expected - 1.0).abs() < 0.15, "{n} arrivals");
    }

    #[test]
    fn arrivals_sorted_unique_ids() {
        let w = spec::conversation(3.0);
        let reqs = generate(&w, SimDuration::from_secs(100), 3);
        for (i, pair) in reqs.windows(2).enumerate() {
            assert!(pair[0].arrival <= pair[1].arrival, "unsorted at {i}");
        }
        let mut ids: Vec<u64> = reqs.iter().map(|r| r.id.0).collect();
        ids.dedup();
        assert_eq!(ids.len(), reqs.len());
    }

    #[test]
    fn deterministic_for_seed() {
        let w = spec::coding(2.0);
        let a = generate(&w, SimDuration::from_secs(50), 9);
        let b = generate(&w, SimDuration::from_secs(50), 9);
        assert_eq!(a, b);
        let c = generate(&w, SimDuration::from_secs(50), 10);
        assert_ne!(a, c);
    }

    #[test]
    fn phased_trace_shifts_statistics() {
        let phases = [
            WorkloadPhase {
                spec: spec::coding(5.0),
                duration: SimDuration::from_secs(200),
            },
            WorkloadPhase {
                spec: spec::conversation(5.0),
                duration: SimDuration::from_secs(200),
            },
        ];
        let reqs = generate_phased(&phases, 11);
        let cut = SimTime::from_secs_f64(200.0);
        let (first, second): (Vec<_>, Vec<_>) = reqs.iter().partition(|r| r.arrival < cut);
        let mean_out =
            |v: &[&Request]| v.iter().map(|r| r.output_len as f64).sum::<f64>() / v.len() as f64;
        assert!(mean_out(&second) > 3.0 * mean_out(&first));
        // ids strictly increasing across the whole trace
        for w in reqs.windows(2) {
            assert!(w[0].id.0 < w[1].id.0);
        }
    }

    #[test]
    fn empty_horizon_gives_empty_trace() {
        let w = spec::coding(2.0);
        assert!(generate(&w, SimDuration::ZERO, 1).is_empty());
    }

    #[test]
    fn diurnal_phases_ramp_from_trough_to_peak() {
        let base = spec::conversation(4.0);
        let day = SimDuration::from_secs(24 * 3600);
        let phases = diurnal_phases(&base, day, day, 0.6, SimDuration::from_secs(3600));
        assert_eq!(phases.len(), 24);
        let total: SimDuration = phases
            .iter()
            .map(|p| p.duration)
            .fold(SimDuration::ZERO, |a, b| a + b);
        assert_eq!(total, day, "phases must tile the horizon exactly");
        // t = 0 is the overnight trough; midday is the peak.
        let trough = phases[0].spec.rate;
        let peak = phases[12].spec.rate;
        assert!(trough < base.rate * 0.5, "trough {trough}");
        assert!(peak > base.rate * 1.5, "peak {peak}");
        // The time-weighted mean rate stays near the base rate.
        let mean: f64 = phases.iter().map(|p| p.spec.rate).sum::<f64>() / 24.0;
        assert!((mean / base.rate - 1.0).abs() < 0.01, "mean {mean}");
        // Shapes are untouched: only the rate varies.
        for p in &phases {
            assert_eq!(p.spec.prompt, base.prompt);
            assert_eq!(p.spec.output, base.output);
        }
    }

    #[test]
    fn diurnal_partial_final_bucket_and_determinism() {
        let base = spec::coding(2.0);
        let horizon = SimDuration::from_secs(250);
        let phases = diurnal_phases(
            &base,
            horizon,
            SimDuration::from_secs(400),
            0.4,
            SimDuration::from_secs(100),
        );
        assert_eq!(phases.len(), 3);
        assert_eq!(phases[2].duration, SimDuration::from_secs(50));
        let a = generate_diurnal(
            &base,
            horizon,
            SimDuration::from_secs(400),
            0.4,
            SimDuration::from_secs(100),
            7,
        );
        let b = generate_diurnal(
            &base,
            horizon,
            SimDuration::from_secs(400),
            0.4,
            SimDuration::from_secs(100),
            7,
        );
        assert_eq!(a, b, "diurnal traces are bit-reproducible");
        assert!(!a.is_empty());
        for w in a.windows(2) {
            assert!(w[0].id.0 < w[1].id.0, "globally increasing ids");
            assert!(w[0].arrival <= w[1].arrival);
        }
    }

    #[test]
    fn flash_crowd_boosts_only_the_window() {
        let base = spec::conversation(3.0);
        let phases = vec![
            WorkloadPhase {
                spec: base.clone(),
                duration: SimDuration::from_secs(300),
            },
            WorkloadPhase {
                spec: base.clone(),
                duration: SimDuration::from_secs(300),
            },
        ];
        // Window straddles the phase boundary: 200s..400s at 5x.
        let crowd = with_flash_crowd(
            &phases,
            SimDuration::from_secs(200),
            SimDuration::from_secs(200),
            5.0,
        );
        let total: SimDuration = crowd
            .iter()
            .map(|p| p.duration)
            .fold(SimDuration::ZERO, |a, b| a + b);
        assert_eq!(total, SimDuration::from_secs(600), "duration preserved");
        // Expected slices: [0,200) 1x | [200,300) 5x | [300,400) 5x | [400,600) 1x.
        let rates: Vec<f64> = crowd.iter().map(|p| p.spec.rate).collect();
        assert_eq!(rates, vec![3.0, 15.0, 15.0, 3.0]);
        // The generated trace really is denser inside the window.
        let reqs = generate_phased(&crowd, 13);
        let in_window = reqs
            .iter()
            .filter(|r| {
                r.arrival >= SimTime::from_secs_f64(200.0)
                    && r.arrival < SimTime::from_secs_f64(400.0)
            })
            .count();
        let outside = reqs.len() - in_window;
        assert!(
            in_window as f64 > 2.0 * outside as f64,
            "window {in_window} vs outside {outside}"
        );
    }

    #[test]
    fn flash_crowd_outside_horizon_is_identity() {
        let base = spec::coding(1.5);
        let phases = diurnal_phases(
            &base,
            SimDuration::from_secs(100),
            SimDuration::from_secs(100),
            0.3,
            SimDuration::from_secs(50),
        );
        let spliced = with_flash_crowd(
            &phases,
            SimDuration::from_secs(500),
            SimDuration::from_secs(10),
            4.0,
        );
        assert_eq!(spliced, phases, "a window past the horizon changes nothing");
    }

    #[test]
    #[should_panic]
    fn diurnal_rejects_full_amplitude() {
        let _ = diurnal_phases(
            &spec::coding(1.0),
            SimDuration::from_secs(10),
            SimDuration::from_secs(10),
            1.0,
            SimDuration::from_secs(5),
        );
    }
}

/// Generates a superposition of several independent Poisson workloads (the
/// paper's online services mix coding and conversation traffic whose
/// proportions drift). Ids are reassigned globally in arrival order.
pub fn generate_mixture(specs: &[WorkloadSpec], horizon: SimDuration, seed: u64) -> Vec<Request> {
    let mut all: Vec<Request> = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        all.extend(generate(
            spec,
            horizon,
            ts_common::rng::derive_seed(seed, 0x31 + i as u64),
        ));
    }
    all.sort_by_key(|r| (r.arrival, r.prompt_len, r.output_len));
    for (i, r) in all.iter_mut().enumerate() {
        r.id = RequestId(i as u64);
    }
    all
}

/// Generates a multi-tenant trace: one independent Poisson stream per
/// `(model, workload)` tenant, each request tagged with its tenant's
/// [`ModelId`], merged into a single arrival-ordered trace with globally
/// reassigned ids. This is the request stream a shared multi-model pool
/// serves — per-tenant rates are free to differ, matching the asymmetric
/// traffic shares of a [`ts_common::ServedModel`] catalog.
///
/// Deterministic for a given `(tenants, horizon, seed)`; each tenant's
/// stream is salted independently, so adding a tenant never perturbs the
/// others' arrivals.
pub fn generate_multi_tenant(
    tenants: &[(ModelId, WorkloadSpec)],
    horizon: SimDuration,
    seed: u64,
) -> Vec<Request> {
    let mut all: Vec<Request> = Vec::new();
    for (i, (model, spec)) in tenants.iter().enumerate() {
        all.extend(
            generate(
                spec,
                horizon,
                ts_common::rng::derive_seed(seed, 0x4D54 + i as u64),
            )
            .into_iter()
            .map(|r| r.with_model(*model)),
        );
    }
    all.sort_by_key(|r| (r.arrival, r.prompt_len, r.output_len));
    for (i, r) in all.iter_mut().enumerate() {
        r.id = RequestId(i as u64);
    }
    all
}

/// Generates a bursty trace via a two-state Markov-modulated Poisson
/// process: the arrival rate alternates between `burst_factor × rate` and
/// `rate / burst_factor`, with exponentially distributed state dwell times
/// of mean `dwell`. The long-run mean rate stays close to `spec.rate`.
///
/// # Panics
/// Panics if `burst_factor < 1` or `dwell` is zero.
pub fn generate_bursty(
    spec: &WorkloadSpec,
    horizon: SimDuration,
    burst_factor: f64,
    dwell: SimDuration,
    seed: u64,
) -> Vec<Request> {
    assert!(burst_factor >= 1.0, "burst factor must be >= 1");
    assert!(!dwell.is_zero(), "dwell time must be positive");
    let mut rng = seeded_rng(seed);
    let horizon_s = horizon.as_secs_f64();
    let dwell_s = dwell.as_secs_f64();
    // Normalize so the time-weighted mean rate equals spec.rate.
    let norm = (burst_factor + 1.0 / burst_factor) / 2.0;
    let high_rate = spec.rate * burst_factor / norm;
    let low_rate = spec.rate / burst_factor / norm;
    let mut out = Vec::new();
    let mut t = 0.0f64;
    let mut state_high = false;
    let mut state_end = {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        -u.ln() * dwell_s
    };
    let mut id = 0u64;
    loop {
        let rate = if state_high { high_rate } else { low_rate };
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let dt = -u.ln() / rate;
        if t + dt >= state_end {
            // state switch: advance to the boundary and resample
            t = state_end;
            state_high = !state_high;
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            state_end = t - u.ln() * dwell_s;
            if t >= horizon_s {
                break;
            }
            continue;
        }
        t += dt;
        if t >= horizon_s {
            break;
        }
        out.push(Request::new(
            RequestId(id),
            SimTime::from_secs_f64(t),
            spec.prompt.sample(&mut rng),
            spec.output.sample(&mut rng),
        ));
        id += 1;
    }
    out
}

#[cfg(test)]
mod mixture_tests {
    use super::*;
    use crate::spec;

    #[test]
    fn mixture_interleaves_components() {
        let specs = [spec::coding(2.0), spec::conversation(2.0)];
        let reqs = generate_mixture(&specs, SimDuration::from_secs(200), 5);
        // arrival-sorted, sequential ids
        for (i, w) in reqs.windows(2).enumerate() {
            assert!(w[0].arrival <= w[1].arrival, "unsorted at {i}");
        }
        for (i, r) in reqs.iter().enumerate() {
            assert_eq!(r.id.0, i as u64);
        }
        // total rate ~4 req/s
        let n = reqs.len() as f64;
        assert!((n / 800.0 - 1.0).abs() < 0.15, "{n} arrivals");
        // both short- and long-output requests present
        assert!(reqs.iter().any(|r| r.output_len <= 16));
        assert!(reqs.iter().any(|r| r.output_len >= 64));
    }

    #[test]
    fn multi_tenant_tags_and_merges_streams() {
        let tenants = [
            (ModelId(1), spec::conversation(3.0)),
            (ModelId(2), spec::coding(1.0)),
        ];
        let reqs = generate_multi_tenant(&tenants, SimDuration::from_secs(300), 7);
        for (i, w) in reqs.windows(2).enumerate() {
            assert!(w[0].arrival <= w[1].arrival, "unsorted at {i}");
        }
        for (i, r) in reqs.iter().enumerate() {
            assert_eq!(r.id.0, i as u64);
        }
        let n1 = reqs.iter().filter(|r| r.model == ModelId(1)).count();
        let n2 = reqs.iter().filter(|r| r.model == ModelId(2)).count();
        assert_eq!(n1 + n2, reqs.len(), "every request carries a tenant tag");
        // 3:1 rate asymmetry survives the merge
        let ratio = n1 as f64 / n2 as f64;
        assert!((2.0..=4.5).contains(&ratio), "tenant ratio {ratio}");
    }

    #[test]
    fn multi_tenant_streams_are_independent_of_tenant_count() {
        // adding a tenant must not perturb the first tenant's arrivals
        let one = generate_multi_tenant(
            &[(ModelId(1), spec::coding(2.0))],
            SimDuration::from_secs(100),
            11,
        );
        let two = generate_multi_tenant(
            &[
                (ModelId(1), spec::coding(2.0)),
                (ModelId(2), spec::conversation(2.0)),
            ],
            SimDuration::from_secs(100),
            11,
        );
        let only_m1: Vec<SimTime> = two
            .iter()
            .filter(|r| r.model == ModelId(1))
            .map(|r| r.arrival)
            .collect();
        let arrivals: Vec<SimTime> = one.iter().map(|r| r.arrival).collect();
        assert_eq!(arrivals, only_m1);
    }

    #[test]
    fn bursty_preserves_mean_rate_but_raises_variance() {
        let w = spec::coding(3.0);
        let horizon = SimDuration::from_secs(600);
        let smooth = generate(&w, horizon, 9);
        let bursty = generate_bursty(&w, horizon, 4.0, SimDuration::from_secs(20), 9);
        let rate_ratio = bursty.len() as f64 / smooth.len() as f64;
        assert!((0.6..=1.4).contains(&rate_ratio), "rate ratio {rate_ratio}");

        // squared coefficient of variation of inter-arrivals: Poisson ~1,
        // MMPP substantially higher.
        let cv2 = |reqs: &[Request]| {
            let gaps: Vec<f64> = reqs
                .windows(2)
                .map(|p| (p[1].arrival - p[0].arrival).as_secs_f64())
                .collect();
            let n = gaps.len() as f64;
            let mean = gaps.iter().sum::<f64>() / n;
            let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / n;
            var / (mean * mean)
        };
        let cv_smooth = cv2(&smooth);
        let cv_bursty = cv2(&bursty);
        assert!(cv_smooth < 1.5, "Poisson CV^2 {cv_smooth}");
        assert!(
            cv_bursty > cv_smooth * 1.5,
            "bursty CV^2 {cv_bursty} should exceed Poisson {cv_smooth}"
        );
    }

    #[test]
    fn bursty_is_deterministic() {
        let w = spec::conversation(2.0);
        let a = generate_bursty(
            &w,
            SimDuration::from_secs(100),
            3.0,
            SimDuration::from_secs(10),
            1,
        );
        let b = generate_bursty(
            &w,
            SimDuration::from_secs(100),
            3.0,
            SimDuration::from_secs(10),
            1,
        );
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn bursty_rejects_sub_unit_factor() {
        let w = spec::coding(1.0);
        let _ = generate_bursty(
            &w,
            SimDuration::from_secs(10),
            0.5,
            SimDuration::from_secs(5),
            1,
        );
    }
}
