//! Poisson arrival generation.
//!
//! Following the paper (§5.1, after AlpaServe/HexGen), requests arrive as a
//! Poisson process: inter-arrival times are exponential with mean `1/rate`.
//! [`generate_phased`] chains several workload phases back to back, which
//! drives the workload-shift rescheduling experiments.

use crate::spec::WorkloadSpec;
use rand::Rng;
use ts_common::{seeded_rng, ModelId, Request, RequestId, SimDuration, SimTime};

/// Generates a Poisson-arrival trace for `spec` over `[0, horizon)`.
///
/// Deterministic for a given `(spec, horizon, seed)`.
pub fn generate(spec: &WorkloadSpec, horizon: SimDuration, seed: u64) -> Vec<Request> {
    let mut rng = seeded_rng(seed);
    let mut out = Vec::new();
    let mut t = 0.0f64;
    let horizon_s = horizon.as_secs_f64();
    let mut id = 0u64;
    loop {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        t += -u.ln() / spec.rate;
        if t >= horizon_s {
            break;
        }
        out.push(Request::new(
            RequestId(id),
            SimTime::from_secs_f64(t),
            spec.prompt.sample(&mut rng),
            spec.output.sample(&mut rng),
        ));
        id += 1;
    }
    out
}

/// One phase of a time-varying workload script.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadPhase {
    /// The workload active during this phase.
    pub spec: WorkloadSpec,
    /// Phase duration.
    pub duration: SimDuration,
}

/// Generates a trace that switches workloads at phase boundaries (e.g.
/// coding for 10 min, then conversation) with globally increasing ids and
/// arrival times.
pub fn generate_phased(phases: &[WorkloadPhase], seed: u64) -> Vec<Request> {
    let mut out: Vec<Request> = Vec::new();
    let mut offset = SimDuration::ZERO;
    for (pi, phase) in phases.iter().enumerate() {
        let base_id = out.len() as u64;
        let reqs = generate(
            &phase.spec,
            phase.duration,
            ts_common::rng::derive_seed(seed, pi as u64),
        );
        out.extend(reqs.into_iter().map(|r| Request {
            id: RequestId(base_id + r.id.0),
            arrival: SimTime::ZERO + offset + (r.arrival - SimTime::ZERO),
            ..r
        }));
        offset += phase.duration;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec;

    #[test]
    fn arrival_count_matches_rate() {
        let w = spec::coding(4.0);
        let reqs = generate(&w, SimDuration::from_secs(500), 7);
        let expected = 2000.0;
        let n = reqs.len() as f64;
        assert!((n / expected - 1.0).abs() < 0.15, "{n} arrivals");
    }

    #[test]
    fn arrivals_sorted_unique_ids() {
        let w = spec::conversation(3.0);
        let reqs = generate(&w, SimDuration::from_secs(100), 3);
        for (i, pair) in reqs.windows(2).enumerate() {
            assert!(pair[0].arrival <= pair[1].arrival, "unsorted at {i}");
        }
        let mut ids: Vec<u64> = reqs.iter().map(|r| r.id.0).collect();
        ids.dedup();
        assert_eq!(ids.len(), reqs.len());
    }

    #[test]
    fn deterministic_for_seed() {
        let w = spec::coding(2.0);
        let a = generate(&w, SimDuration::from_secs(50), 9);
        let b = generate(&w, SimDuration::from_secs(50), 9);
        assert_eq!(a, b);
        let c = generate(&w, SimDuration::from_secs(50), 10);
        assert_ne!(a, c);
    }

    #[test]
    fn phased_trace_shifts_statistics() {
        let phases = [
            WorkloadPhase {
                spec: spec::coding(5.0),
                duration: SimDuration::from_secs(200),
            },
            WorkloadPhase {
                spec: spec::conversation(5.0),
                duration: SimDuration::from_secs(200),
            },
        ];
        let reqs = generate_phased(&phases, 11);
        let cut = SimTime::from_secs_f64(200.0);
        let (first, second): (Vec<_>, Vec<_>) = reqs.iter().partition(|r| r.arrival < cut);
        let mean_out =
            |v: &[&Request]| v.iter().map(|r| r.output_len as f64).sum::<f64>() / v.len() as f64;
        assert!(mean_out(&second) > 3.0 * mean_out(&first));
        // ids strictly increasing across the whole trace
        for w in reqs.windows(2) {
            assert!(w[0].id.0 < w[1].id.0);
        }
    }

    #[test]
    fn empty_horizon_gives_empty_trace() {
        let w = spec::coding(2.0);
        assert!(generate(&w, SimDuration::ZERO, 1).is_empty());
    }
}

/// Generates a superposition of several independent Poisson workloads (the
/// paper's online services mix coding and conversation traffic whose
/// proportions drift). Ids are reassigned globally in arrival order.
pub fn generate_mixture(specs: &[WorkloadSpec], horizon: SimDuration, seed: u64) -> Vec<Request> {
    let mut all: Vec<Request> = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        all.extend(generate(
            spec,
            horizon,
            ts_common::rng::derive_seed(seed, 0x31 + i as u64),
        ));
    }
    all.sort_by_key(|r| (r.arrival, r.prompt_len, r.output_len));
    for (i, r) in all.iter_mut().enumerate() {
        r.id = RequestId(i as u64);
    }
    all
}

/// Generates a multi-tenant trace: one independent Poisson stream per
/// `(model, workload)` tenant, each request tagged with its tenant's
/// [`ModelId`], merged into a single arrival-ordered trace with globally
/// reassigned ids. This is the request stream a shared multi-model pool
/// serves — per-tenant rates are free to differ, matching the asymmetric
/// traffic shares of a [`ts_common::ServedModel`] catalog.
///
/// Deterministic for a given `(tenants, horizon, seed)`; each tenant's
/// stream is salted independently, so adding a tenant never perturbs the
/// others' arrivals.
pub fn generate_multi_tenant(
    tenants: &[(ModelId, WorkloadSpec)],
    horizon: SimDuration,
    seed: u64,
) -> Vec<Request> {
    let mut all: Vec<Request> = Vec::new();
    for (i, (model, spec)) in tenants.iter().enumerate() {
        all.extend(
            generate(
                spec,
                horizon,
                ts_common::rng::derive_seed(seed, 0x4D54 + i as u64),
            )
            .into_iter()
            .map(|r| r.with_model(*model)),
        );
    }
    all.sort_by_key(|r| (r.arrival, r.prompt_len, r.output_len));
    for (i, r) in all.iter_mut().enumerate() {
        r.id = RequestId(i as u64);
    }
    all
}

/// Generates a bursty trace via a two-state Markov-modulated Poisson
/// process: the arrival rate alternates between `burst_factor × rate` and
/// `rate / burst_factor`, with exponentially distributed state dwell times
/// of mean `dwell`. The long-run mean rate stays close to `spec.rate`.
///
/// # Panics
/// Panics if `burst_factor < 1` or `dwell` is zero.
pub fn generate_bursty(
    spec: &WorkloadSpec,
    horizon: SimDuration,
    burst_factor: f64,
    dwell: SimDuration,
    seed: u64,
) -> Vec<Request> {
    assert!(burst_factor >= 1.0, "burst factor must be >= 1");
    assert!(!dwell.is_zero(), "dwell time must be positive");
    let mut rng = seeded_rng(seed);
    let horizon_s = horizon.as_secs_f64();
    let dwell_s = dwell.as_secs_f64();
    // Normalize so the time-weighted mean rate equals spec.rate.
    let norm = (burst_factor + 1.0 / burst_factor) / 2.0;
    let high_rate = spec.rate * burst_factor / norm;
    let low_rate = spec.rate / burst_factor / norm;
    let mut out = Vec::new();
    let mut t = 0.0f64;
    let mut state_high = false;
    let mut state_end = {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        -u.ln() * dwell_s
    };
    let mut id = 0u64;
    loop {
        let rate = if state_high { high_rate } else { low_rate };
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let dt = -u.ln() / rate;
        if t + dt >= state_end {
            // state switch: advance to the boundary and resample
            t = state_end;
            state_high = !state_high;
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            state_end = t - u.ln() * dwell_s;
            if t >= horizon_s {
                break;
            }
            continue;
        }
        t += dt;
        if t >= horizon_s {
            break;
        }
        out.push(Request::new(
            RequestId(id),
            SimTime::from_secs_f64(t),
            spec.prompt.sample(&mut rng),
            spec.output.sample(&mut rng),
        ));
        id += 1;
    }
    out
}

#[cfg(test)]
mod mixture_tests {
    use super::*;
    use crate::spec;

    #[test]
    fn mixture_interleaves_components() {
        let specs = [spec::coding(2.0), spec::conversation(2.0)];
        let reqs = generate_mixture(&specs, SimDuration::from_secs(200), 5);
        // arrival-sorted, sequential ids
        for (i, w) in reqs.windows(2).enumerate() {
            assert!(w[0].arrival <= w[1].arrival, "unsorted at {i}");
        }
        for (i, r) in reqs.iter().enumerate() {
            assert_eq!(r.id.0, i as u64);
        }
        // total rate ~4 req/s
        let n = reqs.len() as f64;
        assert!((n / 800.0 - 1.0).abs() < 0.15, "{n} arrivals");
        // both short- and long-output requests present
        assert!(reqs.iter().any(|r| r.output_len <= 16));
        assert!(reqs.iter().any(|r| r.output_len >= 64));
    }

    #[test]
    fn multi_tenant_tags_and_merges_streams() {
        let tenants = [
            (ModelId(1), spec::conversation(3.0)),
            (ModelId(2), spec::coding(1.0)),
        ];
        let reqs = generate_multi_tenant(&tenants, SimDuration::from_secs(300), 7);
        for (i, w) in reqs.windows(2).enumerate() {
            assert!(w[0].arrival <= w[1].arrival, "unsorted at {i}");
        }
        for (i, r) in reqs.iter().enumerate() {
            assert_eq!(r.id.0, i as u64);
        }
        let n1 = reqs.iter().filter(|r| r.model == ModelId(1)).count();
        let n2 = reqs.iter().filter(|r| r.model == ModelId(2)).count();
        assert_eq!(n1 + n2, reqs.len(), "every request carries a tenant tag");
        // 3:1 rate asymmetry survives the merge
        let ratio = n1 as f64 / n2 as f64;
        assert!((2.0..=4.5).contains(&ratio), "tenant ratio {ratio}");
    }

    #[test]
    fn multi_tenant_streams_are_independent_of_tenant_count() {
        // adding a tenant must not perturb the first tenant's arrivals
        let one = generate_multi_tenant(
            &[(ModelId(1), spec::coding(2.0))],
            SimDuration::from_secs(100),
            11,
        );
        let two = generate_multi_tenant(
            &[
                (ModelId(1), spec::coding(2.0)),
                (ModelId(2), spec::conversation(2.0)),
            ],
            SimDuration::from_secs(100),
            11,
        );
        let only_m1: Vec<SimTime> = two
            .iter()
            .filter(|r| r.model == ModelId(1))
            .map(|r| r.arrival)
            .collect();
        let arrivals: Vec<SimTime> = one.iter().map(|r| r.arrival).collect();
        assert_eq!(arrivals, only_m1);
    }

    #[test]
    fn bursty_preserves_mean_rate_but_raises_variance() {
        let w = spec::coding(3.0);
        let horizon = SimDuration::from_secs(600);
        let smooth = generate(&w, horizon, 9);
        let bursty = generate_bursty(&w, horizon, 4.0, SimDuration::from_secs(20), 9);
        let rate_ratio = bursty.len() as f64 / smooth.len() as f64;
        assert!((0.6..=1.4).contains(&rate_ratio), "rate ratio {rate_ratio}");

        // squared coefficient of variation of inter-arrivals: Poisson ~1,
        // MMPP substantially higher.
        let cv2 = |reqs: &[Request]| {
            let gaps: Vec<f64> = reqs
                .windows(2)
                .map(|p| (p[1].arrival - p[0].arrival).as_secs_f64())
                .collect();
            let n = gaps.len() as f64;
            let mean = gaps.iter().sum::<f64>() / n;
            let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / n;
            var / (mean * mean)
        };
        let cv_smooth = cv2(&smooth);
        let cv_bursty = cv2(&bursty);
        assert!(cv_smooth < 1.5, "Poisson CV^2 {cv_smooth}");
        assert!(
            cv_bursty > cv_smooth * 1.5,
            "bursty CV^2 {cv_bursty} should exceed Poisson {cv_smooth}"
        );
    }

    #[test]
    fn bursty_is_deterministic() {
        let w = spec::conversation(2.0);
        let a = generate_bursty(
            &w,
            SimDuration::from_secs(100),
            3.0,
            SimDuration::from_secs(10),
            1,
        );
        let b = generate_bursty(
            &w,
            SimDuration::from_secs(100),
            3.0,
            SimDuration::from_secs(10),
            1,
        );
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn bursty_rejects_sub_unit_factor() {
        let w = spec::coding(1.0);
        let _ = generate_bursty(
            &w,
            SimDuration::from_secs(10),
            0.5,
            SimDuration::from_secs(5),
            1,
        );
    }
}
