//! # ts-workload
//!
//! Synthetic serving workloads for the ThunderServe evaluation.
//!
//! The paper drives its experiments with two production-derived workloads
//! from the Azure LLM inference traces — *coding* (long prompts, very short
//! completions; median output 13 tokens) and *conversation* (long prompts,
//! long completions; median output 129 tokens) — replayed as a Poisson
//! arrival process at a configurable request rate. We reproduce the same
//! structure synthetically:
//!
//! * [`distribution`] — clamped lognormal token-length distributions
//!   parameterized by median;
//! * [`spec`] — named workload presets ([`spec::coding`],
//!   [`spec::conversation`]) and arbitrary custom mixes;
//! * [`generator`] — Poisson/exponential arrival generation and time-varying
//!   workload scripts (for the rescheduling experiments);
//! * [`profiler`] — the online workload profiler of Appendix E, which
//!   monitors average prompt/output lengths and arrival rate over a sliding
//!   window and flags workload shifts.
//!
//! # Examples
//!
//! ```
//! use ts_workload::{generator::generate, spec};
//! use ts_common::SimDuration;
//!
//! let coding = spec::coding(2.0); // 2 requests/second
//! let reqs = generate(&coding, SimDuration::from_secs(60), 42);
//! assert!(!reqs.is_empty());
//! // arrivals are sorted and within the horizon
//! assert!(reqs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
//! ```

pub mod distribution;
pub mod generator;
pub mod profiler;
pub mod spec;
pub mod trace;

pub use distribution::LengthDistribution;
pub use generator::{
    generate, generate_bursty, generate_mixture, generate_multi_tenant, generate_phased,
    WorkloadPhase,
};
pub use profiler::{WorkloadProfiler, WorkloadStats};
pub use spec::WorkloadSpec;
