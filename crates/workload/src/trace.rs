//! Trace import/export.
//!
//! Real deployments replay production traces (the paper uses the Azure LLM
//! inference traces). This module defines a minimal interchange format so
//! users can feed their own traces to the simulator and CLI: one request per
//! line, `arrival_seconds,prompt_tokens,output_tokens`, with `#` comments.

use ts_common::{Error, Request, RequestId, Result, SimTime};

/// Serializes requests to the CSV-like trace format.
pub fn to_csv(requests: &[Request]) -> String {
    let mut out = String::from("# arrival_s,prompt_tokens,output_tokens\n");
    for r in requests {
        out.push_str(&format!(
            "{:.6},{},{}\n",
            r.arrival.as_secs_f64(),
            r.prompt_len,
            r.output_len
        ));
    }
    out
}

/// Parses the CSV-like trace format. Requests are sorted by arrival and get
/// sequential ids.
///
/// # Errors
/// Returns [`Error::InvalidConfig`] naming the first malformed line.
pub fn from_csv(text: &str) -> Result<Vec<Request>> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split(',').map(str::trim);
        let bad = |what: &str| {
            Error::InvalidConfig(format!("trace line {}: {what}: {line:?}", lineno + 1))
        };
        let arrival: f64 = parts
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| bad("bad arrival"))?;
        if !arrival.is_finite() || arrival < 0.0 {
            return Err(bad("negative or non-finite arrival"));
        }
        let prompt: u32 = parts
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| bad("bad prompt length"))?;
        let output: u32 = parts
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| bad("bad output length"))?;
        if parts.next().is_some() {
            return Err(bad("trailing fields"));
        }
        out.push(Request::new(
            RequestId(0),
            SimTime::from_secs_f64(arrival),
            prompt,
            output,
        ));
    }
    out.sort_by_key(|r| r.arrival);
    for (i, r) in out.iter_mut().enumerate() {
        r.id = RequestId(i as u64);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;
    use crate::spec;
    use ts_common::SimDuration;

    #[test]
    fn round_trips_generated_traces() {
        let reqs = generate(&spec::coding(3.0), SimDuration::from_secs(60), 3);
        let csv = to_csv(&reqs);
        let back = from_csv(&csv).unwrap();
        assert_eq!(reqs.len(), back.len());
        for (a, b) in reqs.iter().zip(&back) {
            assert_eq!(a.prompt_len, b.prompt_len);
            assert_eq!(a.output_len, b.output_len);
            // arrivals match to the printed microsecond precision
            assert!(
                a.arrival.saturating_since(b.arrival).as_micros() <= 1
                    && b.arrival.saturating_since(a.arrival).as_micros() <= 1
            );
        }
    }

    #[test]
    fn sorts_and_renumbers() {
        let csv = "# header\n5.0,100,10\n1.0,200,20\n\n3.0,300,30\n";
        let reqs = from_csv(csv).unwrap();
        assert_eq!(reqs.len(), 3);
        assert_eq!(reqs[0].prompt_len, 200);
        assert_eq!(reqs[2].prompt_len, 100);
        for (i, r) in reqs.iter().enumerate() {
            assert_eq!(r.id.0, i as u64);
        }
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(from_csv("abc,1,2").is_err());
        assert!(from_csv("1.0,x,2").is_err());
        assert!(from_csv("1.0,1").is_err());
        assert!(from_csv("1.0,1,2,3").is_err());
        assert!(from_csv("-1.0,1,2").is_err());
        assert!(from_csv("").unwrap().is_empty());
    }
}
