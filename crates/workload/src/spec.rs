//! Workload presets.

use crate::distribution::LengthDistribution;
use serde::{Deserialize, Serialize};

/// A named serving workload: prompt/output length distributions plus a mean
/// Poisson arrival rate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Human-readable name (`"coding"`, `"conversation"`, ...).
    pub name: String,
    /// Prompt-length distribution.
    pub prompt: LengthDistribution,
    /// Output-length distribution.
    pub output: LengthDistribution,
    /// Mean arrival rate in requests/second.
    pub rate: f64,
}

impl WorkloadSpec {
    /// Creates a custom workload.
    ///
    /// # Panics
    /// Panics if `rate` is not positive and finite.
    pub fn new(
        name: &str,
        prompt: LengthDistribution,
        output: LengthDistribution,
        rate: f64,
    ) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "bad rate {rate}");
        WorkloadSpec {
            name: name.to_owned(),
            prompt,
            output,
            rate,
        }
    }

    /// Returns a copy with a different arrival rate.
    pub fn with_rate(&self, rate: f64) -> Self {
        let mut w = self.clone();
        assert!(rate.is_finite() && rate > 0.0, "bad rate {rate}");
        w.rate = rate;
        w
    }

    /// Mean total tokens per request (prompt + output), for capacity math.
    pub fn mean_total_tokens(&self) -> f64 {
        self.prompt.mean() + self.output.mean()
    }

    /// Ratio of mean prompt tokens to mean output tokens — the statistic the
    /// profiler watches to detect coding↔conversation shifts.
    pub fn prompt_output_ratio(&self) -> f64 {
        self.prompt.mean() / self.output.mean()
    }
}

/// The coding workload of the paper (Appendix E): median prompt >1000
/// tokens, median output 13 tokens — prefill-heavy.
pub fn coding(rate: f64) -> WorkloadSpec {
    WorkloadSpec::new(
        "coding",
        LengthDistribution::lognormal(1400, 0.4, 64, 4096),
        LengthDistribution::lognormal(13, 0.8, 1, 256),
        rate,
    )
}

/// The conversation workload of the paper: median prompt ~1000 tokens,
/// median output 129 tokens — decode-heavy.
pub fn conversation(rate: f64) -> WorkloadSpec {
    WorkloadSpec::new(
        "conversation",
        LengthDistribution::lognormal(1000, 0.5, 32, 4096),
        LengthDistribution::lognormal(129, 0.7, 4, 1024),
        rate,
    )
}

/// A single [`WorkloadSpec`] whose mean prompt/output lengths match a
/// weighted mixture of workloads — what the scheduler plans for when the
/// profiler reports blended traffic (Appendix E: "the overall system
/// workload varies when the proportions of incoming requests for various
/// services change").
///
/// The blend preserves weighted mean lengths and total rate; per-request
/// variance uses the weighted average sigma.
///
/// # Panics
/// Panics if `parts` is empty or any weight is non-positive.
pub fn blend(parts: &[(WorkloadSpec, f64)]) -> WorkloadSpec {
    assert!(!parts.is_empty(), "blend needs at least one component");
    assert!(
        parts.iter().all(|(_, w)| w.is_finite() && *w > 0.0),
        "blend weights must be positive"
    );
    let total_w: f64 = parts.iter().map(|(_, w)| w).sum();
    let mut mean_prompt = 0.0;
    let mut mean_output = 0.0;
    let mut sigma_p = 0.0;
    let mut sigma_o = 0.0;
    let mut rate = 0.0;
    let mut max_p = 0u32;
    let mut max_o = 0u32;
    for (spec, w) in parts {
        let f = w / total_w;
        mean_prompt += f * spec.prompt.mean();
        mean_output += f * spec.output.mean();
        sigma_p += f * spec.prompt.sigma;
        sigma_o += f * spec.output.sigma;
        rate += spec.rate;
        max_p = max_p.max(spec.prompt.max);
        max_o = max_o.max(spec.output.max);
    }
    // median = mean / exp(sigma^2/2) for a lognormal
    let med = |mean: f64, sigma: f64| ((mean / (sigma * sigma / 2.0).exp()).round() as u32).max(1);
    WorkloadSpec::new(
        "blend",
        LengthDistribution::lognormal(med(mean_prompt, sigma_p), sigma_p, 1, max_p),
        LengthDistribution::lognormal(med(mean_output, sigma_o), sigma_o, 1, max_o),
        rate,
    )
}

/// The fixed-shape micro-benchmark workload used by Figures 1/18 and
/// Table 5: constant `prompt_len`/`output_len`.
pub fn fixed(prompt_len: u32, output_len: u32, rate: f64) -> WorkloadSpec {
    WorkloadSpec::new(
        "fixed",
        LengthDistribution::constant(prompt_len),
        LengthDistribution::constant(output_len),
        rate,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coding_is_prefill_heavy_conversation_is_decode_heavy() {
        let c = coding(1.0);
        let v = conversation(1.0);
        assert!(
            c.prompt_output_ratio() > 25.0,
            "{}",
            c.prompt_output_ratio()
        );
        assert!(
            v.prompt_output_ratio() < 10.0,
            "{}",
            v.prompt_output_ratio()
        );
        assert!(c.output.mean() < v.output.mean());
    }

    #[test]
    fn with_rate_only_changes_rate() {
        let c = coding(1.0);
        let c2 = c.with_rate(5.0);
        assert_eq!(c2.prompt, c.prompt);
        assert_eq!(c2.rate, 5.0);
    }

    #[test]
    fn fixed_workload_is_degenerate() {
        let f = fixed(512, 16, 2.0);
        assert_eq!(f.mean_total_tokens(), 528.0);
    }

    #[test]
    #[should_panic]
    fn zero_rate_panics() {
        let _ = coding(0.0);
    }

    #[test]
    fn blend_matches_weighted_means() {
        let c = coding(2.0);
        let v = conversation(2.0);
        let b = blend(&[(c.clone(), 1.0), (v.clone(), 1.0)]);
        assert_eq!(b.rate, 4.0);
        let want_prompt = (c.prompt.mean() + v.prompt.mean()) / 2.0;
        let want_output = (c.output.mean() + v.output.mean()) / 2.0;
        assert!(
            (b.prompt.mean() / want_prompt - 1.0).abs() < 0.05,
            "{} vs {want_prompt}",
            b.prompt.mean()
        );
        assert!(
            (b.output.mean() / want_output - 1.0).abs() < 0.05,
            "{} vs {want_output}",
            b.output.mean()
        );
        // blend's ratio sits between the components'
        assert!(b.prompt_output_ratio() < c.prompt_output_ratio());
        assert!(b.prompt_output_ratio() > v.prompt_output_ratio());
    }

    #[test]
    #[should_panic]
    fn blend_rejects_empty() {
        let _ = blend(&[]);
    }
}
