//! The online workload profiler (Appendix E).
//!
//! The profiler observes completed requests over a sliding time window and
//! maintains the statistics the scheduler needs (mean prompt length, mean
//! output length, arrival rate). When the prompt/output ratio drifts by more
//! than a configurable factor from the ratio at the last (re)schedule, it
//! reports a *workload shift*, which triggers lightweight rescheduling.

use std::collections::VecDeque;
use ts_common::{Request, SimDuration, SimTime};

/// Aggregate statistics over the profiler window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadStats {
    /// Number of requests in the window.
    pub count: usize,
    /// Mean prompt length (tokens).
    pub mean_prompt: f64,
    /// Mean output length (tokens).
    pub mean_output: f64,
    /// Observed arrival rate (requests/second over the window).
    pub rate: f64,
}

impl WorkloadStats {
    /// Mean prompt-to-output token ratio.
    pub fn prompt_output_ratio(&self) -> f64 {
        if self.mean_output <= 0.0 {
            return f64::INFINITY;
        }
        self.mean_prompt / self.mean_output
    }
}

/// Sliding-window workload monitor with shift detection.
#[derive(Debug, Clone)]
pub struct WorkloadProfiler {
    window: SimDuration,
    shift_factor: f64,
    min_samples: usize,
    seen: VecDeque<Request>,
    baseline_ratio: Option<f64>,
}

impl WorkloadProfiler {
    /// Creates a profiler.
    ///
    /// * `window` — how far back observations count;
    /// * `shift_factor` — a shift is flagged when the current prompt/output
    ///   ratio differs from the baseline by more than this factor (e.g. 2.0);
    /// * `min_samples` — minimum window population before shifts are flagged.
    ///
    /// # Panics
    /// Panics if `shift_factor <= 1` or the window is zero.
    pub fn new(window: SimDuration, shift_factor: f64, min_samples: usize) -> Self {
        assert!(shift_factor > 1.0, "shift factor must exceed 1");
        assert!(!window.is_zero(), "window must be positive");
        WorkloadProfiler {
            window,
            shift_factor,
            min_samples,
            seen: VecDeque::new(),
            baseline_ratio: None,
        }
    }

    /// Records an observed request (call in arrival order).
    pub fn observe(&mut self, req: Request) {
        let cutoff = req.arrival.saturating_since(ts_common::SimTime::ZERO);
        self.seen.push_back(req);
        // Evict entries older than the window.
        while let Some(front) = self.seen.front() {
            if cutoff - front.arrival.saturating_since(ts_common::SimTime::ZERO) > self.window {
                self.seen.pop_front();
            } else {
                break;
            }
        }
    }

    /// Current window statistics, or `None` if the window is empty.
    pub fn stats(&self) -> Option<WorkloadStats> {
        if self.seen.is_empty() {
            return None;
        }
        let n = self.seen.len();
        let mean_prompt = self.seen.iter().map(|r| r.prompt_len as f64).sum::<f64>() / n as f64;
        let mean_output = self.seen.iter().map(|r| r.output_len as f64).sum::<f64>() / n as f64;
        let first = self.seen.front().unwrap().arrival;
        let last = self.seen.back().unwrap().arrival;
        let span = (last.saturating_since(first)).as_secs_f64().max(1e-9);
        Some(WorkloadStats {
            count: n,
            mean_prompt,
            mean_output,
            rate: if n > 1 { (n - 1) as f64 / span } else { 0.0 },
        })
    }

    /// Marks the current statistics as the post-(re)schedule baseline.
    pub fn rebaseline(&mut self) {
        self.baseline_ratio = self.stats().map(|s| s.prompt_output_ratio());
    }

    /// Whether the workload has shifted relative to the last baseline.
    ///
    /// Returns `false` until both a baseline exists and the window holds at
    /// least `min_samples` requests.
    pub fn shift_detected(&self) -> bool {
        let (Some(base), Some(stats)) = (self.baseline_ratio, self.stats()) else {
            return false;
        };
        if stats.count < self.min_samples {
            return false;
        }
        let ratio = stats.prompt_output_ratio();
        if !base.is_finite() || !ratio.is_finite() {
            return base.is_finite() != ratio.is_finite();
        }
        ratio > base * self.shift_factor || ratio < base / self.shift_factor
    }

    /// Time of the most recent observation.
    pub fn last_arrival(&self) -> Option<SimTime> {
        self.seen.back().map(|r| r.arrival)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;
    use crate::spec;
    use ts_common::{RequestId, SimTime};

    fn feed(p: &mut WorkloadProfiler, reqs: &[Request]) {
        for r in reqs {
            p.observe(*r);
        }
    }

    #[test]
    fn stats_track_means() {
        let mut p = WorkloadProfiler::new(SimDuration::from_secs(600), 2.0, 5);
        for i in 0..10 {
            p.observe(Request::new(
                RequestId(i),
                SimTime::from_secs_f64(i as f64),
                1000,
                10,
            ));
        }
        let s = p.stats().unwrap();
        assert_eq!(s.count, 10);
        assert_eq!(s.mean_prompt, 1000.0);
        assert_eq!(s.mean_output, 10.0);
        assert!((s.rate - 1.0).abs() < 0.01);
    }

    #[test]
    fn old_entries_evicted() {
        let mut p = WorkloadProfiler::new(SimDuration::from_secs(10), 2.0, 1);
        p.observe(Request::new(RequestId(0), SimTime::ZERO, 100, 10));
        p.observe(Request::new(
            RequestId(1),
            SimTime::from_secs_f64(100.0),
            200,
            20,
        ));
        let s = p.stats().unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean_prompt, 200.0);
    }

    #[test]
    fn detects_coding_to_conversation_shift() {
        let mut p = WorkloadProfiler::new(SimDuration::from_secs(3600), 2.0, 20);
        let coding = generate(&spec::coding(5.0), SimDuration::from_secs(60), 1);
        feed(&mut p, &coding);
        p.rebaseline();
        assert!(!p.shift_detected(), "no shift right after baseline");
        // Conversation traffic arrives next (shift output lengths up).
        let conv: Vec<Request> = generate(&spec::conversation(5.0), SimDuration::from_secs(400), 2)
            .into_iter()
            .map(|r| Request {
                arrival: SimTime::from_secs_f64(60.0 + r.arrival.as_secs_f64()),
                ..r
            })
            .collect();
        feed(&mut p, &conv);
        assert!(p.shift_detected(), "conversation shift should be flagged");
    }

    #[test]
    fn no_shift_without_baseline() {
        let mut p = WorkloadProfiler::new(SimDuration::from_secs(60), 2.0, 1);
        p.observe(Request::new(RequestId(0), SimTime::ZERO, 100, 10));
        assert!(!p.shift_detected());
    }

    #[test]
    fn min_samples_gate() {
        let mut p = WorkloadProfiler::new(SimDuration::from_secs(60), 1.5, 100);
        p.observe(Request::new(RequestId(0), SimTime::ZERO, 1000, 10));
        p.rebaseline();
        p.observe(Request::new(
            RequestId(1),
            SimTime::from_secs_f64(1.0),
            10,
            1000,
        ));
        assert!(!p.shift_detected(), "below min samples");
    }
}
