//! Shared regression gate over the committed `BENCH_*.json` artifacts.
//!
//! One checker replaces the ad-hoc floor asserts that used to live in each
//! bench binary: every binary runs [`check`] on the JSON it just wrote, and
//! the `bench_gate` binary (wired into CI) runs the same checks over all
//! committed artifacts plus a >15% regression comparison of freshly
//! measured deterministic metrics against the committed trajectory's last
//! entry.
//!
//! Wall-clock figures (events/sec, evals/sec) are machine-dependent, so
//! they are guarded by *floors* in the structural checks and excluded from
//! the percentage comparison; simulated-time figures (p99 latencies,
//! attainment, cost, sketch errors) are deterministic and compared
//! strictly.

use std::fmt::Write as _;

/// Maximum tolerated relative regression of a deterministic metric between
/// the committed artifact and a fresh measurement.
pub const REGRESSION_TOLERANCE: f64 = 0.15;

/// Streaming-plane overhead budget on the committed (full-mode) event-loop
/// arm at 100k requests and up: wall-clock with the plane attached may
/// exceed the plain run by at most this fraction.
pub const OBS_OVERHEAD_BUDGET: f64 = 0.05;

/// Lax overhead budget applied to quick-mode runs on untrusted machines
/// (CI runners) and to the small smoke arms, where runs last tens of
/// milliseconds and timer noise dominates the ratio.
pub const OBS_OVERHEAD_BUDGET_QUICK: f64 = 0.50;

/// Arm size (requests) at which the strict overhead budget applies: below
/// this, runs are too short for a trustworthy wall-clock ratio.
pub const OBS_STRICT_ARM_REQUESTS: f64 = 100_000.0;

/// How far (in attainment points) the autoscaler may trail the oracle
/// static fleet on the committed 24-hour trace.
pub const AUTOSCALE_GAP_BOUND: f64 = 0.05;

/// Lax gap bound for quick-mode runs: the compressed trace is structurally
/// harsher on a boundary-reactive controller (each segment is a sixth of
/// the day, so one lagged boundary costs ~10x more weight).
pub const AUTOSCALE_GAP_BOUND_QUICK: f64 = 0.15;

/// Minimum cost saving the elastic fleet must deliver over the all-on-demand
/// static fleet, as a fraction of the static cost.
pub const AUTOSCALE_MIN_SAVING: f64 = 0.2;

/// Minimal JSON value, parsed without any external dependency.
pub mod json {
    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Any number (JSON has only doubles).
        Number(f64),
        /// A string, unescaped.
        String(String),
        /// An array.
        Array(Vec<Value>),
        /// An object, in source order.
        Object(Vec<(String, Value)>),
    }

    impl Value {
        /// The string payload, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::String(s) => Some(s),
                _ => None,
            }
        }

        /// The numeric payload, if this is a number.
        pub fn as_number(&self) -> Option<f64> {
            match self {
                Value::Number(n) => Some(*n),
                _ => None,
            }
        }

        /// The boolean payload, if this is a bool.
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Value::Bool(b) => Some(*b),
                _ => None,
            }
        }

        /// The elements, if this is an array.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(a) => Some(a),
                _ => None,
            }
        }

        /// The members, if this is an object.
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Object(o) => Some(o),
                _ => None,
            }
        }

        /// Object member lookup (first match).
        pub fn get(&self, key: &str) -> Option<&Value> {
            self.as_object()?
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
        }

        /// Numeric member lookup.
        pub fn num(&self, key: &str) -> Option<f64> {
            self.get(key)?.as_number()
        }
    }

    /// Parses a complete JSON document.
    ///
    /// # Errors
    /// Returns a position-annotated message on malformed input.
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            None => Err("unexpected end of input".into()),
            Some(b'{') => {
                *pos += 1;
                let mut members = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Value::Object(members));
                }
                loop {
                    skip_ws(b, pos);
                    let key = parse_string(b, pos)?;
                    skip_ws(b, pos);
                    if b.get(*pos) != Some(&b':') {
                        return Err(format!("expected ':' at byte {pos}"));
                    }
                    *pos += 1;
                    let v = parse_value(b, pos)?;
                    members.push((key, v));
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Value::Object(members));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                    }
                }
            }
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(parse_value(b, pos)?);
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                    }
                }
            }
            Some(b'"') => Ok(Value::String(parse_string(b, pos)?)),
            Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
            Some(b'n') => parse_lit(b, pos, "null", Value::Null),
            Some(_) => parse_number(b, pos),
        }
    }

    fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {pos}"))
        }
    }

    fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        }
        let s = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
        s.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| format!("invalid number {s:?} at byte {start}"))
    }

    fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected string at byte {pos}"));
        }
        *pos += 1;
        let mut out = Vec::new();
        while let Some(&c) = b.get(*pos) {
            *pos += 1;
            match c {
                b'"' => {
                    return String::from_utf8(out).map_err(|e| e.to_string());
                }
                b'\\' => {
                    let esc = b.get(*pos).ok_or("unterminated escape")?;
                    *pos += 1;
                    match esc {
                        b'"' => out.push(b'"'),
                        b'\\' => out.push(b'\\'),
                        b'/' => out.push(b'/'),
                        b'n' => out.push(b'\n'),
                        b't' => out.push(b'\t'),
                        b'r' => out.push(b'\r'),
                        b'b' => out.push(0x08),
                        b'f' => out.push(0x0c),
                        b'u' => {
                            let hex = b
                                .get(*pos..*pos + 4)
                                .ok_or("truncated \\u escape")
                                .and_then(|h| std::str::from_utf8(h).map_err(|_| "bad \\u"))?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            *pos += 4;
                            let ch = char::from_u32(code).unwrap_or('\u{FFFD}');
                            let mut buf = [0u8; 4];
                            out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                        }
                        _ => return Err(format!("bad escape at byte {pos}")),
                    }
                }
                _ => out.push(c),
            }
        }
        Err("unterminated string".into())
    }
}

use json::Value;

/// Which direction of change is an improvement for a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Better {
    /// Larger values are better (attainment, savings).
    Higher,
    /// Smaller values are better (latency, cost, error).
    Lower,
}

/// One deterministic (simulated-time) metric extracted from an artifact.
#[derive(Debug, Clone)]
pub struct Metric {
    /// Stable name, unique within the artifact.
    pub name: String,
    /// The measured value.
    pub value: f64,
    /// Improvement direction.
    pub better: Better,
}

/// Outcome of a structural check.
#[derive(Debug, Clone)]
pub struct GateReport {
    /// Artifact stem, e.g. `BENCH_sim`.
    pub file: String,
    /// Structural invariants verified.
    pub checks: usize,
    /// Deterministic metrics extracted (available for comparison).
    pub metrics: usize,
}

/// A tiny helper collecting named invariant checks.
struct Checker {
    file: String,
    checks: usize,
}

impl Checker {
    fn require(&mut self, ok: bool, what: &str) -> Result<(), String> {
        self.checks += 1;
        if ok {
            Ok(())
        } else {
            Err(format!("{}: {}", self.file, what))
        }
    }
}

fn arms<'a>(root: &'a Value, c: &mut Checker) -> Result<&'a [Value], String> {
    let arms = root
        .get("arms")
        .and_then(Value::as_array)
        .unwrap_or_default();
    c.require(!arms.is_empty(), "no arms recorded")?;
    Ok(arms)
}

fn finite_positive(v: Option<f64>) -> bool {
    v.is_some_and(|x| x.is_finite() && x > 0.0)
}

fn fraction(v: Option<f64>) -> bool {
    v.is_some_and(|x| (0.0..=1.0).contains(&x))
}

/// Structurally validates one artifact and enforces its committed floors.
///
/// `strict` applies the full-mode floors (committed artifacts are produced
/// by full runs); quick CI reruns on weaker machines pass `strict = false`
/// to get the lax wall-clock floors while keeping every deterministic
/// invariant.
///
/// # Errors
/// Returns `file: problem` on the first violated invariant or parse error.
pub fn check(stem: &str, text: &str, strict: bool) -> Result<GateReport, String> {
    let root = json::parse(text).map_err(|e| format!("{stem}: {e}"))?;
    let mut c = Checker {
        file: stem.to_string(),
        checks: 0,
    };
    c.require(root.as_object().is_some(), "top level must be an object")?;
    match stem {
        "BENCH_sim" => check_sim(&root, &mut c, strict)?,
        "BENCH_scheduler" => check_scheduler(&root, &mut c)?,
        "BENCH_net" => check_net(&root, &mut c)?,
        "BENCH_fault" => check_fault(&root, &mut c)?,
        "BENCH_mm" => check_mm(&root, &mut c)?,
        "BENCH_autoscale" => check_autoscale(&root, &mut c, strict)?,
        "BENCH_obs" => check_obs(&root, &mut c, strict)?,
        _ => {}
    }
    let metrics = metrics_of(stem, &root).len();
    Ok(GateReport {
        file: stem.to_string(),
        checks: c.checks,
        metrics,
    })
}

fn check_sim(root: &Value, c: &mut Checker, strict: bool) -> Result<(), String> {
    for arm in arms(root, c)? {
        let label = format!(
            "{}x{}",
            arm.num("requests").unwrap_or(0.0),
            arm.num("replicas").unwrap_or(0.0)
        );
        c.require(
            finite_positive(arm.num("wall_clock_s")),
            &format!("{label}: wall_clock_s must be positive"),
        )?;
        c.require(
            finite_positive(arm.num("events_per_sec")),
            &format!("{label}: events_per_sec must be positive"),
        )?;
        if let Some(speedup) = arm.num("speedup_events_per_sec") {
            // The floor that used to be an ad-hoc assert in bench_sim:
            // parity with the pre-refactor loop always, 5x on the 100k arm
            // for committed (full-mode) artifacts.
            c.require(
                speedup >= 1.0,
                &format!("{label}: {speedup:.2}x below the pre-refactor parity floor"),
            )?;
            if strict && arm.num("requests") == Some(100_000.0) {
                c.require(
                    speedup >= 5.0,
                    &format!("{label}: {speedup:.2}x below the committed 5x floor"),
                )?;
            }
        }
    }
    Ok(())
}

fn check_scheduler(root: &Value, c: &mut Checker) -> Result<(), String> {
    let arms = arms(root, c)?;
    for arm in arms {
        c.require(
            finite_positive(arm.num("median_s")),
            "median_s must be positive",
        )?;
        c.require(
            finite_positive(arm.num("evals_per_s")),
            "evals_per_s must be positive",
        )?;
    }
    // The search is bit-identical across thread counts: every arm on the
    // same GPU count must report the same evaluation count and score.
    for w in arms.windows(2) {
        if w[0].num("gpus") == w[1].num("gpus") {
            c.require(
                w[0].num("evaluations") == w[1].num("evaluations")
                    && w[0].num("score") == w[1].num("score"),
                "search must be bit-identical across thread counts",
            )?;
        }
    }
    Ok(())
}

fn check_net(root: &Value, c: &mut Checker) -> Result<(), String> {
    let arms = arms(root, c)?;
    for arm in arms {
        c.require(
            finite_positive(arm.num("mean_transfer_s")),
            "mean_transfer_s must be positive",
        )?;
        c.require(
            arm.num("max_transfer_s") >= arm.num("mean_transfer_s"),
            "max transfer below mean",
        )?;
    }
    // Under max-min sharing, mean latency must grow with flow count (same
    // precision), and the fp16-vs-int4 gap must widen with contention —
    // every extra wire byte is paid at a shared rate.
    for a in arms {
        for b in arms {
            let same_precision = a.get("precision") == b.get("precision");
            if same_precision && a.num("flows") < b.num("flows") {
                c.require(
                    a.num("mean_transfer_s") < b.num("mean_transfer_s"),
                    "mean transfer latency must grow as contention rises",
                )?;
            }
        }
    }
    let mean_at = |flows: f64, precision: &str| {
        arms.iter()
            .find(|a| {
                a.num("flows") == Some(flows)
                    && a.get("precision").and_then(Value::as_str) == Some(precision)
            })
            .and_then(|a| a.num("mean_transfer_s"))
    };
    let flow_counts: Vec<f64> = arms.iter().filter_map(|a| a.num("flows")).collect();
    let (lo, hi) = flow_counts
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &f| {
            (lo.min(f), hi.max(f))
        });
    let gap = |flows: f64| match (mean_at(flows, "fp16"), mean_at(flows, "int4")) {
        (Some(fp16), Some(int4)) => Some(fp16 - int4),
        _ => None,
    };
    if let (Some(widest), Some(narrowest)) = (gap(hi), gap(lo)) {
        if hi > lo {
            c.require(
                widest > narrowest,
                "the fp16-vs-int4 gap must widen under contention",
            )?;
        }
    }
    Ok(())
}

fn check_fault(root: &Value, c: &mut Checker) -> Result<(), String> {
    let arms = arms(root, c)?;
    for arm in arms {
        c.require(
            finite_positive(arm.num("p99_ttft_s")) && finite_positive(arm.num("p99_e2e_s")),
            "p99 latencies must be positive",
        )?;
        c.require(
            fraction(arm.num("shed_rate")),
            "shed_rate must be a fraction",
        )?;
    }
    // Mitigation must recover the role-relevant tail at every committed
    // slowdown — hedging rescues prefill TTFT, quarantine rescues decode
    // E2E — and the mechanism must actually have fired.
    for role in ["prefill", "decode"] {
        let (key, counter) = if role == "prefill" {
            ("p99_ttft_s", "hedges")
        } else {
            ("p99_e2e_s", "quarantines")
        };
        let slowdowns: Vec<f64> = arms
            .iter()
            .filter(|a| a.get("role").and_then(Value::as_str) == Some(role))
            .filter_map(|a| a.num("slowdown"))
            .collect();
        for &slowdown in &slowdowns {
            let at = |mitigated: bool| {
                arms.iter().find(|a| {
                    a.get("role").and_then(Value::as_str) == Some(role)
                        && a.num("slowdown") == Some(slowdown)
                        && a.get("mitigated").and_then(Value::as_bool) == Some(mitigated)
                })
            };
            let (Some(off), Some(on)) = (at(false), at(true)) else {
                continue;
            };
            c.require(
                on.num(key) < off.num(key),
                &format!("{role} mitigation must cut {key} at slowdown {slowdown}x"),
            )?;
            c.require(
                on.num(counter).unwrap_or(0.0) >= 1.0,
                &format!("{role} mitigation at slowdown {slowdown}x must record {counter}"),
            )?;
        }
    }
    Ok(())
}

fn check_mm(root: &Value, c: &mut Checker) -> Result<(), String> {
    let arms = arms(root, c)?;
    let weighted = |name: &str| {
        arms.iter()
            .find(|a| a.get("arm").and_then(Value::as_str) == Some(name))
            .and_then(|a| a.num("weighted_attainment"))
    };
    for arm in arms {
        c.require(
            fraction(arm.num("weighted_attainment")),
            "weighted_attainment must be a fraction",
        )?;
        c.require(
            finite_positive(arm.num("cost_per_hour")),
            "cost_per_hour must be positive",
        )?;
    }
    if let (Some(shared), Some(part)) = (weighted("shared"), weighted("partitioned")) {
        c.require(
            shared >= part,
            "shared plan must not lose to the static partition",
        )?;
    }
    let cost = |name: &str| {
        arms.iter()
            .find(|a| a.get("arm").and_then(Value::as_str) == Some(name))
            .and_then(|a| a.num("cost_per_hour"))
    };
    if let (Some(shared), Some(part)) = (cost("shared"), cost("partitioned")) {
        c.require(
            shared <= part,
            "shared pool must not cost more than the partition",
        )?;
    }
    Ok(())
}

fn check_autoscale(root: &Value, c: &mut Checker, strict: bool) -> Result<(), String> {
    c.require(
        fraction(root.num("saving_fraction")),
        "saving_fraction must be a fraction",
    )?;
    let arms = arms(root, c)?;
    let of = |name: &str, key: &str| {
        arms.iter()
            .find(|a| a.get("arm").and_then(Value::as_str) == Some(name))
            .and_then(|a| a.num(key))
    };
    for arm in arms {
        c.require(
            fraction(arm.num("attainment")),
            "attainment must be a fraction",
        )?;
        for seg in arm
            .get("segments")
            .and_then(Value::as_array)
            .unwrap_or_default()
        {
            c.require(
                seg.num("completed") <= seg.num("submitted"),
                "segment completed beyond submitted",
            )?;
        }
    }
    c.require(
        of("autoscale", "total_cost").is_some() && of("static", "total_cost").is_some(),
        "both the autoscale and static arms must be present",
    )?;
    if let (Some(elastic), Some(stat)) = (of("autoscale", "total_cost"), of("static", "total_cost"))
    {
        c.require(
            elastic <= (1.0 - AUTOSCALE_MIN_SAVING) * stat,
            &format!(
                "autoscaler must save at least {:.0}%",
                AUTOSCALE_MIN_SAVING * 100.0
            ),
        )?;
    }
    if let (Some(elastic), Some(stat)) = (of("autoscale", "attainment"), of("static", "attainment"))
    {
        let bound = if strict {
            AUTOSCALE_GAP_BOUND
        } else {
            AUTOSCALE_GAP_BOUND_QUICK
        };
        c.require(
            stat - elastic <= bound,
            &format!("autoscaler must stay within {bound} attainment of the static oracle"),
        )?;
    }
    Ok(())
}

fn check_obs(root: &Value, c: &mut Checker, strict: bool) -> Result<(), String> {
    for arm in arms(root, c)? {
        // The committed 5% budget is enforced on the big (100k-request)
        // arm, whose half-second runs give the ratio a stable denominator;
        // smoke arms and quick-mode CI runs get the lax budget.
        let big = arm.num("requests").unwrap_or(0.0) >= OBS_STRICT_ARM_REQUESTS;
        let budget = if strict && big {
            OBS_OVERHEAD_BUDGET
        } else {
            OBS_OVERHEAD_BUDGET_QUICK
        };
        c.require(
            finite_positive(arm.num("wall_off_s")) && finite_positive(arm.num("wall_on_s")),
            "wall clocks must be positive",
        )?;
        c.require(
            finite_positive(arm.num("events_observed")),
            "plane must have observed events",
        )?;
        let overhead = arm.num("overhead_fraction").unwrap_or(f64::INFINITY);
        c.require(
            overhead <= budget,
            &format!("streaming overhead {overhead:.4} exceeds the {budget:.2} budget"),
        )?;
    }
    if let Some(sketch) = root.get("sketch") {
        let alpha = sketch.num("alpha").unwrap_or(0.0);
        c.require(alpha > 0.0 && alpha < 1.0, "sketch alpha must be in (0, 1)")?;
        for (k, v) in sketch.as_object().unwrap_or_default() {
            if k.ends_with("_err_rel") {
                let e = v.as_number().unwrap_or(f64::INFINITY);
                c.require(
                    e <= alpha + 1e-9,
                    &format!("{k} {e:.6} exceeds the configured bound {alpha}"),
                )?;
            }
        }
    }
    if let Some(p) = root.get("profiler") {
        c.require(
            finite_positive(p.num("chrome_slices")),
            "profiler must export at least one slice",
        )?;
    }
    Ok(())
}

/// Extracts the deterministic (simulated-time) metrics of an artifact.
/// Wall-clock figures are deliberately absent: they move with the machine,
/// not the code under test.
pub fn metrics_of(stem: &str, root: &Value) -> Vec<Metric> {
    let mut out = Vec::new();
    let mut push = |name: String, value: Option<f64>, better: Better| {
        if let Some(v) = value {
            if v.is_finite() {
                out.push(Metric {
                    name,
                    value: v,
                    better,
                });
            }
        }
    };
    let arms = root
        .get("arms")
        .and_then(Value::as_array)
        .unwrap_or_default();
    match stem {
        "BENCH_net" => {
            for a in arms {
                let label = format!(
                    "flows{}_{}",
                    a.num("flows").unwrap_or(0.0),
                    a.get("precision").and_then(Value::as_str).unwrap_or("?")
                );
                push(
                    format!("{label}.mean_transfer_s"),
                    a.num("mean_transfer_s"),
                    Better::Lower,
                );
                push(
                    format!("{label}.max_transfer_s"),
                    a.num("max_transfer_s"),
                    Better::Lower,
                );
            }
        }
        "BENCH_fault" => {
            for a in arms {
                let label = format!(
                    "{}_x{}_{}",
                    a.get("role").and_then(Value::as_str).unwrap_or("?"),
                    a.num("slowdown").unwrap_or(0.0),
                    if a.get("mitigated").and_then(Value::as_bool) == Some(true) {
                        "mitigated"
                    } else {
                        "raw"
                    }
                );
                push(
                    format!("{label}.p99_ttft_s"),
                    a.num("p99_ttft_s"),
                    Better::Lower,
                );
                push(
                    format!("{label}.p99_e2e_s"),
                    a.num("p99_e2e_s"),
                    Better::Lower,
                );
                push(
                    format!("{label}.shed_rate"),
                    a.num("shed_rate"),
                    Better::Lower,
                );
            }
        }
        "BENCH_mm" => {
            for a in arms {
                let label = a.get("arm").and_then(Value::as_str).unwrap_or("?");
                push(
                    format!("{label}.weighted_attainment"),
                    a.num("weighted_attainment"),
                    Better::Higher,
                );
                push(
                    format!("{label}.cost_per_hour"),
                    a.num("cost_per_hour"),
                    Better::Lower,
                );
            }
        }
        "BENCH_autoscale" => {
            push("gap_points".into(), root.num("gap_points"), Better::Lower);
            push(
                "saving_fraction".into(),
                root.num("saving_fraction"),
                Better::Higher,
            );
            for a in arms {
                let label = a.get("arm").and_then(Value::as_str).unwrap_or("?");
                push(
                    format!("{label}.attainment"),
                    a.num("attainment"),
                    Better::Higher,
                );
                push(
                    format!("{label}.total_cost"),
                    a.num("total_cost"),
                    Better::Lower,
                );
            }
        }
        "BENCH_obs" => {
            if let Some(sketch) = root.get("sketch") {
                for (k, v) in sketch.as_object().unwrap_or_default() {
                    if k.ends_with("_err_rel") {
                        push(format!("sketch.{k}"), v.as_number(), Better::Lower);
                    }
                }
            }
        }
        // BENCH_sim / BENCH_scheduler record wall-clock throughput only.
        _ => {}
    }
    out
}

/// Compares a fresh artifact against the committed one: every deterministic
/// metric present in the committed file must not regress by more than
/// [`REGRESSION_TOLERANCE`] in its worse direction, and must still exist.
///
/// Returns human-readable regression descriptions (empty = pass).
///
/// # Errors
/// Returns a parse error if either document is malformed.
pub fn compare(stem: &str, committed: &str, fresh: &str) -> Result<Vec<String>, String> {
    let committed = metrics_of(
        stem,
        &json::parse(committed).map_err(|e| format!("{stem}: {e}"))?,
    );
    let fresh_root = json::parse(fresh).map_err(|e| format!("{stem} (fresh): {e}"))?;
    let fresh = metrics_of(stem, &fresh_root);
    let mut regressions = Vec::new();
    for m in &committed {
        let Some(f) = fresh.iter().find(|f| f.name == m.name) else {
            regressions.push(format!("{stem}: {} disappeared from the fresh run", m.name));
            continue;
        };
        let bad = match m.better {
            Better::Higher => f.value < m.value * (1.0 - REGRESSION_TOLERANCE) - 1e-9,
            Better::Lower => f.value > m.value * (1.0 + REGRESSION_TOLERANCE) + 1e-9,
        };
        if bad {
            let mut s = String::new();
            let _ = write!(
                s,
                "{stem}: {} regressed {:.6} -> {:.6} (tolerance {:.0}%)",
                m.name,
                m.value,
                f.value,
                REGRESSION_TOLERANCE * 100.0
            );
            regressions.push(s);
        }
    }
    Ok(regressions)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_handles_the_committed_shapes() {
        let v =
            json::parse(r#"{"a": [1, 2.5, -3e-2], "b": {"s": "x\n\"y\"", "t": true, "n": null}}"#)
                .unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("b").unwrap().get("s").unwrap().as_str(),
            Some("x\n\"y\"")
        );
        assert_eq!(v.get("b").unwrap().num("n"), None);
        assert!(json::parse("{\"a\": }").is_err());
        assert!(json::parse("[1, 2] trailing").is_err());
    }

    #[test]
    fn sim_floors_trip() {
        let ok = r#"{"arms": [{"requests": 100000, "replicas": 64,
            "wall_clock_s": 0.2, "events_per_sec": 1e6,
            "speedup_events_per_sec": 6.0}]}"#;
        check("BENCH_sim", ok, true).unwrap();
        let slow = ok.replace("6.0", "4.0");
        assert!(check("BENCH_sim", &slow, true).is_err(), "5x floor");
        check("BENCH_sim", &slow, false).unwrap();
        let broken = ok.replace("6.0", "0.5");
        assert!(check("BENCH_sim", &broken, false).is_err(), "parity floor");
    }

    #[test]
    fn obs_overhead_budget_trips() {
        let mk = |ov: f64| {
            format!(
                r#"{{"arms": [{{"requests": 100000, "wall_off_s": 1.0, "wall_on_s": {},
                   "events_observed": 100, "overhead_fraction": {ov}}}],
                   "sketch": {{"alpha": 0.01, "p99_ttft_err_rel": 0.004}},
                   "profiler": {{"chrome_slices": 3}}}}"#,
                1.0 + ov
            )
        };
        check("BENCH_obs", &mk(0.03), true).unwrap();
        assert!(check("BENCH_obs", &mk(0.08), true).is_err());
        check("BENCH_obs", &mk(0.08), false).unwrap();
        // Smoke arms (below the strict-arm size) get the lax budget even
        // in strict mode.
        check("BENCH_obs", &mk(0.08).replace("100000", "10000"), true).unwrap();
        let bad_sketch = mk(0.01).replace("0.004", "0.02");
        assert!(check("BENCH_obs", &bad_sketch, true).is_err());
    }

    #[test]
    fn compare_flags_deterministic_regressions_only() {
        let committed = r#"{"gap_points": 2.0, "saving_fraction": 0.6,
            "arms": [{"arm": "elastic", "attainment": 0.97, "total_cost": 100.0}]}"#;
        let same = compare("BENCH_autoscale", committed, committed).unwrap();
        assert!(same.is_empty(), "{same:?}");
        let worse = committed
            .replace("\"attainment\": 0.97", "\"attainment\": 0.5")
            .replace("\"total_cost\": 100.0", "\"total_cost\": 130.0");
        let regs = compare("BENCH_autoscale", committed, &worse).unwrap();
        assert_eq!(regs.len(), 2, "{regs:?}");
        // Within tolerance: no flag.
        let slight = committed.replace("\"total_cost\": 100.0", "\"total_cost\": 110.0");
        assert!(compare("BENCH_autoscale", committed, &slight)
            .unwrap()
            .is_empty());
        // A vanished metric is a regression.
        let gone = r#"{"gap_points": 2.0, "saving_fraction": 0.6, "arms": []}"#;
        assert!(!compare("BENCH_autoscale", committed, gone)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn fault_recovery_invariant_trips() {
        let ok = r#"{"arms": [
            {"role": "prefill", "slowdown": 8, "mitigated": false,
             "p99_ttft_s": 20.0, "p99_e2e_s": 25.0, "shed_rate": 0.0, "hedges": 0},
            {"role": "prefill", "slowdown": 8, "mitigated": true,
             "p99_ttft_s": 3.0, "p99_e2e_s": 6.0, "shed_rate": 0.0, "hedges": 7}]}"#;
        check("BENCH_fault", ok, true).unwrap();
        let inverted = ok.replace("\"p99_ttft_s\": 3.0", "\"p99_ttft_s\": 30.0");
        assert!(check("BENCH_fault", &inverted, true).is_err());
        // The mechanism must actually have fired on the mitigated arm.
        let inert = ok.replace("\"hedges\": 7", "\"hedges\": 0");
        assert!(check("BENCH_fault", &inert, true).is_err());
    }
}
