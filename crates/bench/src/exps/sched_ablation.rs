//! Scheduler-component ablation (extension beyond the paper's figures).
//!
//! The paper motivates three design choices in §3.2 without isolating them:
//! the hierarchical-clustering seed, the four-move neighbourhood (vs the
//! flip-only move set lightweight rescheduling uses), and — in our
//! implementation — the hardware-affinity tie-breaker. This experiment runs
//! the tabu search with each component removed and compares the objective
//! reached under the same budget, averaged over seeds.

use crate::harness::base_slo_30b;
use crate::table::Table;
use thunderserve_core::{Scheduler, SchedulerConfig};
use ts_cluster::presets;
use ts_common::ModelSpec;

struct Variant {
    name: &'static str,
    flip_only: bool,
    random_init: bool,
    no_affinity: bool,
}

const VARIANTS: [Variant; 4] = [
    Variant {
        name: "full scheduler",
        flip_only: false,
        random_init: false,
        no_affinity: false,
    },
    Variant {
        name: "- clustering init (random seed partition)",
        flip_only: false,
        random_init: true,
        no_affinity: false,
    },
    Variant {
        name: "- split/merge/move (flip-only neighbourhood)",
        flip_only: true,
        random_init: false,
        no_affinity: false,
    },
    Variant {
        name: "- affinity tie-breaker",
        flip_only: false,
        random_init: false,
        no_affinity: true,
    },
];

/// Runs the ablation grid.
pub fn run(quick: bool) -> String {
    let cluster = presets::paper_cloud_cluster();
    let model = ModelSpec::llama_30b();
    // Stressed enough that the objective does not saturate at 1.0.
    let w = ts_workload::spec::coding(4.0);
    let slo = base_slo_30b().scaled(8.0);
    let seeds: &[u64] = if quick { &[1, 2] } else { &[1, 2, 3, 4, 5] };
    let steps = if quick { 30 } else { 80 };

    let mut t = Table::new(vec![
        "variant",
        "mean objective",
        "mean evaluations",
        "mean time (ms)",
    ]);
    let mut rows = Vec::new();
    for v in &VARIANTS {
        let mut score_sum = 0.0;
        let mut eval_sum = 0usize;
        let mut time_sum = 0.0;
        for &seed in seeds {
            let mut cfg = SchedulerConfig::default();
            cfg.seed = seed;
            cfg.n_step = steps;
            cfg.flip_only_moves = v.flip_only;
            cfg.random_init = v.random_init;
            cfg.disable_affinity_tiebreak = v.no_affinity;
            let r = Scheduler::new(cfg)
                .schedule(&cluster, &model, &w, &slo)
                .expect("all variants should find some plan");
            score_sum += r.estimated_attainment;
            eval_sum += r.evaluations;
            time_sum += r.elapsed;
        }
        let n = seeds.len() as f64;
        rows.push((v.name, score_sum / n));
        t.row(vec![
            v.name.into(),
            format!("{:.3}", score_sum / n),
            format!("{:.0}", eval_sum as f64 / n),
            format!("{:.1}", 1000.0 * time_sum / n),
        ]);
    }
    let full = rows[0].1;
    let worst =
        rows[1..].iter().cloned().fold(
            ("", f64::INFINITY),
            |acc, r| if r.1 < acc.1 { r } else { acc },
        );
    format!(
        "Scheduler-component ablation (coding @4 req/s, objective = estimated \
         joint SLO attainment, {} seeds):\n\n{}\nRemoving `{}` costs the most \
         (objective {:.3} vs {:.3} for the full scheduler).\n",
        seeds.len(),
        t.render(),
        worst.0,
        worst.1,
        full
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scheduler_is_never_worst() {
        let cluster = presets::paper_cloud_cluster();
        let model = ModelSpec::llama_30b();
        let w = ts_workload::spec::coding(4.0);
        let slo = base_slo_30b().scaled(8.0);
        let score = |flip: bool, rand: bool| {
            let mut sum = 0.0;
            for seed in [1u64, 2] {
                let mut cfg = SchedulerConfig::default();
                cfg.seed = seed;
                cfg.n_step = 30;
                cfg.flip_only_moves = flip;
                cfg.random_init = rand;
                sum += Scheduler::new(cfg)
                    .schedule(&cluster, &model, &w, &slo)
                    .unwrap()
                    .estimated_attainment;
            }
            sum / 2.0
        };
        let full = score(false, false);
        let flip_only = score(true, false);
        let random_init = score(false, true);
        assert!(
            full >= flip_only - 0.05,
            "full {full} should not trail flip-only {flip_only}"
        );
        assert!(
            full >= random_init - 0.05,
            "full {full} should not trail random-init {random_init}"
        );
    }
}
