//! Figure 9: system throughput, scaled by ThunderServe's.

use crate::harness::{self, base_slo_30b};
use crate::table::Table;
use ts_cluster::presets;
use ts_common::ModelSpec;

/// Runs the throughput comparison under saturating load.
pub fn run(quick: bool) -> String {
    let cloud = presets::paper_cloud_cluster();
    let inhouse = presets::paper_inhouse_cluster();
    let model = ModelSpec::llama_30b();
    let slo = base_slo_30b().scaled(16.0);
    // Saturating arrival rate: throughput is limited by the systems, not the
    // trace.
    let rate = 6.0;
    let mut out = String::from("Figure 9: throughput scaled by ThunderServe's\n\n");
    for &(wname, is_coding) in &[("coding", true), ("conversation", false)] {
        let w = if is_coding {
            ts_workload::spec::coding(rate)
        } else {
            ts_workload::spec::conversation(rate)
        };
        let ts = harness::run_thunderserve(&cloud, &model, &w, &slo, quick, 23).unwrap();
        let hx = harness::run_hexgen(&cloud, &model, &w, quick, 23).unwrap();
        let ds = harness::run_distserve(&inhouse, &model, &w, &slo, quick, 23).unwrap();
        let vl = harness::run_vllm(&inhouse, &model, &w, quick, 23).unwrap();
        let base_t = ts.throughput_tokens();
        let mut t = Table::new(vec!["system", "tokens/s", "relative"]);
        for (name, m) in [
            ("ThunderServe(cloud)", &ts),
            ("HexGen-like(cloud)", &hx),
            ("DistServe(in-house)", &ds),
            ("vLLM(in-house)", &vl),
        ] {
            t.row(vec![
                name.into(),
                format!("{:.0}", m.throughput_tokens()),
                format!("{:.2}x", m.throughput_tokens() / base_t),
            ]);
        }
        out.push_str(&format!(
            "{wname} workload (rate {rate} req/s):\n{}\n",
            t.render()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thunderserve_throughput_leads_baselines() {
        let cloud = presets::paper_cloud_cluster();
        let inhouse = presets::paper_inhouse_cluster();
        let model = ModelSpec::llama_30b();
        let slo = base_slo_30b().scaled(16.0);
        let w = ts_workload::spec::coding(6.0);
        // full-budget scheduling: the trimmed search can land on clearly
        // suboptimal plans at saturating load
        let ts = harness::run_thunderserve(&cloud, &model, &w, &slo, false, 3).unwrap();
        let hx = harness::run_hexgen(&cloud, &model, &w, false, 3).unwrap();
        let ds = harness::run_distserve(&inhouse, &model, &w, &slo, false, 3).unwrap();
        assert!(
            ts.throughput_tokens() >= hx.throughput_tokens() * 0.95,
            "ThunderServe {:.0} should be >= HexGen-like {:.0}",
            ts.throughput_tokens(),
            hx.throughput_tokens()
        );
        // Under a pure roofline substrate the A100 box is hardware-superior
        // at this budget (see EXPERIMENTS.md), so we assert ThunderServe
        // stays within a modest factor of the in-house DistServe rather than
        // strictly ahead (the paper's testbed showed 1.5x the other way).
        assert!(
            ts.throughput_tokens() >= ds.throughput_tokens() * 0.5,
            "ThunderServe {:.0} should be within 2x of DistServe {:.0}",
            ts.throughput_tokens(),
            ds.throughput_tokens()
        );
    }
}
