//! Figure 13 (Appendix C): inter-connection bandwidth heatmaps for the
//! cloud and in-house environments, rendered as character maps.

use ts_cluster::{presets, Cluster};

fn heatmap(cluster: &Cluster) -> String {
    let m = cluster.bandwidth_matrix();
    // bucket bandwidths into glyphs: ' ' < '.' < ':' < 'o' < '#' < '@'
    let glyph = |bw: f64| -> char {
        if bw >= 100e9 {
            '@'
        } else if bw >= 10e9 {
            '#'
        } else if bw >= 4e9 {
            'o'
        } else if bw >= 2e9 {
            ':'
        } else if bw >= 1e9 {
            '.'
        } else {
            ' '
        }
    };
    let mut out = String::new();
    for row in &m {
        for &v in row {
            out.push(glyph(v));
        }
        out.push('\n');
    }
    out
}

/// Renders both heatmaps plus summary statistics.
pub fn run(_quick: bool) -> String {
    let cloud = presets::paper_cloud_cluster();
    let inhouse = presets::paper_inhouse_cluster();
    let stats = |c: &Cluster| -> (f64, f64, usize) {
        let m = c.bandwidth_matrix();
        let mut lo = f64::INFINITY;
        let mut hi: f64 = 0.0;
        let mut distinct = std::collections::BTreeSet::new();
        for (i, row) in m.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if i != j {
                    lo = lo.min(v);
                    hi = hi.max(v);
                    distinct.insert(v as u64);
                }
            }
        }
        (lo, hi, distinct.len())
    };
    let (clo, chi, cn) = stats(&cloud);
    let (ilo, ihi, inn) = stats(&inhouse);
    format!(
        "Figure 13: inter-GPU bandwidth heatmaps\n\n\
         Cloud (32 GPUs, glyphs: ' '<1GB/s '.'<2 ':'<4 'o'<10 '#'<100 '@'>=100):\n{}\n\
         cloud off-diagonal: {:.1}-{:.1} GB/s, {cn} distinct levels (heterogeneous)\n\n\
         In-house (8xA100 NVLink):\n{}\n\
         in-house off-diagonal: {:.0}-{:.0} GB/s, {inn} distinct level (uniform)\n",
        heatmap(&cloud),
        clo / 1e9,
        chi / 1e9,
        heatmap(&inhouse),
        ilo / 1e9,
        ihi / 1e9,
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn cloud_is_heterogeneous_inhouse_uniform() {
        let out = super::run(true);
        assert!(out.contains("heterogeneous"));
        assert!(out.contains("1 distinct level (uniform)"));
    }
}
