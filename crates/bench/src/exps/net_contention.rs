//! Network-contention ablation: flow-level fabric vs legacy serialization.
//!
//! The Appendix-H disaggregated layout (4×A40 prefill → 4×3090Ti decode)
//! runs on a 5 Gbps inter-instance link with
//! [`ts_sim::config::SimConfig::network_contention`] on, sweeping the
//! arrival rate (which controls how many KV transfers overlap on the link)
//! against {4-bit, fp16} wire precision. Under max-min sharing the
//! per-transfer wire time stretches with the number of concurrent flows —
//! something the legacy per-sender serialization cannot express — and the
//! fp16-vs-4-bit gap widens as the link saturates, since every extra byte
//! is paid at a contended rate. `bench_net` records the same sweep at the
//! raw fabric level in `BENCH_net.json`.

use crate::exps::network::disaggregated_plan;
use crate::harness::{self};
use crate::table::Table;
use ts_cluster::presets;
use ts_common::{ModelSpec, SloKind};
use ts_kvcache::codec::KvWirePrecision;
use ts_sim::config::SimConfig;
use ts_sim::metrics::Metrics;

/// Arrival rates swept (req/s): each transfer is ~0.3 s (4-bit) to ~1.3 s
/// (fp16) at 5 Gbps, so the low rate barely overlaps and the high rate
/// keeps several flows on the link at once.
const RATES: [f64; 3] = [0.4, 1.0, 1.6];

/// Mean sender-side queue wait and wire time over requests that actually
/// transferred KV, in seconds.
pub fn mean_kv_times(m: &Metrics) -> (f64, f64) {
    let moved: Vec<_> = m
        .records()
        .iter()
        .filter(|r| r.kv_done_at.is_some())
        .collect();
    let n = moved.len().max(1) as f64;
    (
        moved
            .iter()
            .map(|r| r.kv_queue_wait.as_secs_f64())
            .sum::<f64>()
            / n,
        moved
            .iter()
            .map(|r| r.kv_wire_time.as_secs_f64())
            .sum::<f64>()
            / n,
    )
}

/// Runs one arm of the sweep.
pub fn arm(rate: f64, precision: KvWirePrecision, contention: bool, quick: bool) -> Metrics {
    let model = ModelSpec::llama_13b();
    let cluster = presets::network_case_cluster(presets::ETH_5GBPS);
    let plan = disaggregated_plan(&model);
    let cfg = SimConfig::new(model)
        .with_kv_precision(precision)
        .with_network_contention(contention);
    let w = ts_workload::spec::fixed(1024, 32, rate);
    harness::run_phase_split(&cluster, &plan, cfg, &harness::trace(&w, quick, 41)).unwrap()
}

/// Runs the contention sweep.
pub fn run(quick: bool) -> String {
    let mut out = String::from(
        "Network contention: flow-level fabric, 4xA40 -> 4x3090Ti over 5 Gbps\n\
         (LLaMA-13B, 1024-token prompts; wire/queue means over transferred requests)\n\n",
    );
    let mut t = Table::new(vec![
        "rate (req/s)",
        "precision",
        "mean wire (ms)",
        "mean queue (ms)",
        "mean E2E (s)",
        "tokens/s",
    ]);
    for &rate in &RATES {
        for (name, p) in [
            ("4-bit", KvWirePrecision::DEFAULT_COMPRESSED),
            ("fp16", KvWirePrecision::F16),
        ] {
            let m = arm(rate, p, true, quick);
            let (queue, wire) = mean_kv_times(&m);
            t.row(vec![
                format!("{rate:.1}"),
                name.into(),
                format!("{:.1}", wire * 1e3),
                format!("{:.1}", queue * 1e3),
                format!("{:.2}", m.mean_latency(SloKind::E2e).unwrap().as_secs_f64()),
                format!("{:.0}", m.throughput_tokens()),
            ]);
        }
    }
    out.push_str(&t.render());
    out.push_str(
        "\nWire time stretches with the arrival rate as concurrent flows split \
         the 5 Gbps link max-min fairly, and the fp16-vs-4-bit gap widens under \
         contention: every extra wire byte is paid at a shared, not dedicated, \
         rate. The legacy model keeps wire time load-independent and charges \
         waiting to the sender queue instead.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_time_grows_with_concurrent_load() {
        let (_, lo) = mean_kv_times(&arm(0.4, KvWirePrecision::DEFAULT_COMPRESSED, true, true));
        let (_, hi) = mean_kv_times(&arm(1.6, KvWirePrecision::DEFAULT_COMPRESSED, true, true));
        assert!(
            hi > lo,
            "contended wire time must grow with load: {hi} <= {lo}"
        );
    }

    #[test]
    fn precision_gap_widens_under_contention() {
        let wire = |rate, p| mean_kv_times(&arm(rate, p, true, true)).1;
        let gap_lo =
            wire(0.4, KvWirePrecision::F16) - wire(0.4, KvWirePrecision::DEFAULT_COMPRESSED);
        let gap_hi =
            wire(1.6, KvWirePrecision::F16) - wire(1.6, KvWirePrecision::DEFAULT_COMPRESSED);
        assert!(gap_lo > 0.0, "fp16 moves 4x the bytes: gap {gap_lo}");
        assert!(
            gap_hi > gap_lo,
            "the fp16-vs-4-bit gap must widen under contention: {gap_hi} <= {gap_lo}"
        );
    }

    #[test]
    fn legacy_model_keeps_wire_time_load_independent() {
        // The counterpoint that motivates the fabric: under per-sender
        // serialization the wire time is a pure function of bytes and
        // bandwidth, so load moves *queue* time only.
        let wire =
            |rate| mean_kv_times(&arm(rate, KvWirePrecision::DEFAULT_COMPRESSED, false, true)).1;
        let lo = wire(0.4);
        let hi = wire(1.6);
        assert!(
            (hi - lo).abs() < 1e-4,
            "legacy wire time should not depend on load: {lo} vs {hi}"
        );
    }
}
