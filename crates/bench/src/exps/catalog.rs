//! Table 1: GPU specifications and pricing.

use crate::table::Table;
use ts_cluster::GpuModel;

/// Prints the catalog (Table 1).
pub fn run(_quick: bool) -> String {
    let mut t = Table::new(vec![
        "GPU",
        "Mem BW",
        "Peak FP16",
        "Memory",
        "Price/hr",
        "FLOPs/byte",
    ]);
    for m in GpuModel::ALL {
        let s = m.spec();
        t.row(vec![
            m.short_name().into(),
            format!("{:.0} GB/s", s.mem_bandwidth / 1e9),
            format!("{:.1} TFLOPS", s.peak_fp16_flops / 1e12),
            format!("{} GB", s.memory_bytes >> 30),
            format!("${:.3}", s.price_per_hour),
            format!("{:.0}", s.compute_intensity()),
        ]);
    }
    format!("Table 1: GPU specifications and pricing\n{}", t.render())
}

#[cfg(test)]
mod tests {
    #[test]
    fn lists_all_five_gpus() {
        let out = super::run(true);
        for name in ["A100", "A6000", "A5000", "A40", "3090Ti"] {
            assert!(out.contains(name), "missing {name}");
        }
    }
}
