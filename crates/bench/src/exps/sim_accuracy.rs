//! Figure 19 (Appendix J): accuracy of the analytic estimator and the
//! alpha-beta model against the discrete-event engine.
//!
//! For a sweep of SLO scales and arrival rates, compare the estimator's
//! predicted attainment with the measured attainment, and compare the
//! alpha-beta KV transfer time with the engine's per-request transfer delays.

use crate::harness::{self, base_slo_30b};
use crate::table::Table;
use ts_cluster::presets;
use ts_common::ModelSpec;
use ts_sim::config::SimConfig;
use ts_sim::estimate::estimate_attainment;

/// Runs the estimator-vs-engine comparison.
pub fn run(quick: bool) -> String {
    let cluster = presets::network_case_cluster(presets::ETH_40GBPS);
    let model = ModelSpec::llama_30b();
    let base = base_slo_30b();
    let plan = super::network::disaggregated_plan(&model);
    let scales: &[f64] = if quick {
        &[2.0, 8.0]
    } else {
        &[2.0, 4.0, 8.0, 16.0, 32.0]
    };
    let rates: &[f64] = if quick { &[1.2] } else { &[0.5, 0.8, 1.2, 1.8] };

    let mut t = Table::new(vec![
        "rate",
        "SLO scale",
        "estimated att.",
        "measured att.",
        "abs. error",
    ]);
    let mut errs = Vec::new();
    for &rate in rates {
        let w = ts_workload::spec::fixed(1024, 64, rate);
        let reqs = harness::trace(&w, quick, 37);
        let cfg = SimConfig::new(model.clone());
        let measured_all = harness::run_phase_split(&cluster, &plan, cfg.clone(), &reqs).unwrap();
        for &s in scales {
            let slo = base.scaled(s);
            let est = estimate_attainment(&cluster, &plan, &cfg, &w, &slo).unwrap();
            let measured = measured_all.joint_attainment(&slo);
            let err = (est.overall - measured).abs();
            errs.push(err);
            t.row(vec![
                format!("{rate:.1}"),
                format!("{s}x"),
                format!("{:.3}", est.overall),
                format!("{measured:.3}"),
                format!("{err:.3}"),
            ]);
        }
    }
    let mean_err = errs.iter().sum::<f64>() / errs.len() as f64;
    format!(
        "Figure 19: analytic estimator vs discrete-event measurement\n\n{}\n\
         mean absolute attainment error: {mean_err:.3} \
         (the estimator tracks the engine closely enough to rank plans).\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimator_ranks_scales_like_the_engine() {
        // The estimator and the engine must agree on direction: looser SLO
        // scale → attainment does not decrease, for both.
        let cluster = presets::network_case_cluster(presets::ETH_40GBPS);
        let model = ModelSpec::llama_30b();
        let base = base_slo_30b();
        let plan = crate::exps::network::disaggregated_plan(&model);
        let w = ts_workload::spec::fixed(1024, 64, 0.8);
        let cfg = SimConfig::new(model.clone());
        let reqs = harness::trace(&w, true, 37);
        let measured = harness::run_phase_split(&cluster, &plan, cfg.clone(), &reqs).unwrap();
        let mut last_est = -1.0;
        let mut last_meas = -1.0;
        for s in [2.0, 8.0, 32.0] {
            let slo = base.scaled(s);
            let e = estimate_attainment(&cluster, &plan, &cfg, &w, &slo)
                .unwrap()
                .overall;
            let m = measured.joint_attainment(&slo);
            assert!(e >= last_est - 1e-9, "estimator not monotone");
            assert!(m >= last_meas - 1e-9, "engine not monotone");
            last_est = e;
            last_meas = m;
        }
    }
}
