//! Extension: coordinated prefill/decode autoscaling over a spot-priced
//! elastic fleet vs an oracle-provisioned static fleet.
//!
//! A 24-hour diurnal conversation trace (morning ramp into a midday peak, an
//! early-afternoon flash crowd, a spot reclaim wave mid-ramp) is sliced
//! into hourly segments and served two ways over the same
//! [`elastic_cloud_pool`]:
//!
//! * **autoscale** — [`ts_autoscale::run_elastic`]: the fleet starts as the
//!   two on-demand base nodes; the controller acquires and releases
//!   spot nodes at segment boundaries from observed attainment, queue
//!   depth and occupancy, drains warned nodes ahead of their reclaim, and
//!   hands every fleet edit to the lightweight (no weight reload)
//!   rescheduler. Each segment is billed at the fleet's actual spot/
//!   on-demand composition.
//! * **static** — [`ts_autoscale::run_static`]: the whole 32-GPU pool held
//!   on-demand all day. On-demand capacity is not preempted, so the
//!   reclaim wave does not apply; this is the oracle peak-provisioned
//!   quality ceiling and cost ceiling.
//!
//! The claim measured here (and asserted by `bench_autoscale`): the
//! autoscaler stays within a few points of the oracle's request-weighted
//! SLO attainment at a materially lower dollar total, bit-reproducibly.

use crate::table::{pct, Table};
use thunderserve_core::SchedulerConfig;
use ts_autoscale::{run_elastic, run_static, AutoscaleConfig, AutoscaleTrajectory, Segment};
use ts_cluster::availability::{ClusterEvent, EventKind};
use ts_cluster::presets::elastic_cloud_pool;
use ts_common::{ModelSpec, NodeId, Request, SimDuration, SimTime, SloSpec};
use ts_telemetry::{ScaleKind, TraceKind};
use ts_workload::generator::{diurnal_phases, generate_phased, with_flash_crowd};
use ts_workload::spec;

/// Both arms of the comparison, as full trajectories.
#[derive(Debug, Clone)]
pub struct AutoscaleReport {
    /// The coordinated autoscaler over base + spot capacity.
    pub elastic: AutoscaleTrajectory,
    /// The oracle static fleet: the whole pool, on-demand, all day.
    pub static_fleet: AutoscaleTrajectory,
}

fn model() -> ModelSpec {
    ModelSpec::llama_30b()
}

fn slo() -> SloSpec {
    SloSpec::new(
        SimDuration::from_secs(5),
        SimDuration::from_millis(300),
        SimDuration::from_secs(60),
    )
}

fn sched() -> SchedulerConfig {
    // More tabu budget than `fast()`: the static arm plans the whole
    // 32-GPU heterogeneous pool, where a 12-step search routinely stalls
    // in a poor initial grouping.
    let mut c = SchedulerConfig::fast();
    c.n_step = 40;
    c.n_nghb = 10;
    c.seed = 47;
    c
}

/// The controller policy under test.
pub fn autoscale_cfg(quick: bool) -> AutoscaleConfig {
    AutoscaleConfig {
        attainment_floor: 0.97,
        attainment_ceiling: 0.98,
        queue_depth_high: 1.0,
        occupancy_low: 0.20,
        cooldown_segments: 1,
        // Warnings are announced a segment ahead and reclaims land 900 s
        // (full) / 9 s (quick) into the following segment, so this lead
        // covers them: the boundary drain beats the provider to the node.
        warning_lead_time: SimDuration::from_secs(if quick { 120 } else { 1200 }),
        // Quick mode compresses the day into 90 s segments: a full-replan
        // weight-reload blackout would eat a whole segment there, so fleet
        // edits always take the graft path, and bigger steps compensate for
        // having six boundaries instead of twenty-four.
        max_acquire_per_step: if quick { 4 } else { 2 },
        max_release_per_step: 1,
        full_replan_fraction: if quick { 1.0 } else { 0.5 },
        ..AutoscaleConfig::default()
    }
}

/// The trace: hourly segments of a diurnal day (trough at midnight, peak at
/// noon), a flash crowd at 13:00, and a staggered spot reclaim wave taking
/// the two cheapest spot nodes at 11:00 and 12:00 — each warned one
/// segment ahead. `--quick` compresses the same shape to six 90 s segments.
pub fn segments(quick: bool) -> Vec<Segment> {
    let (n, window, base_rate, flash_seg, flash_mult) = if quick {
        (6usize, SimDuration::from_secs(90), 2.0, 4usize, 1.5)
    } else {
        (24usize, SimDuration::from_secs(3600), 1.2, 13usize, 2.0)
    };
    let horizon = window.mul_f64(n as f64);
    let phases = with_flash_crowd(
        &diurnal_phases(
            &spec::conversation(base_rate),
            horizon,
            horizon,
            0.65,
            window,
        ),
        window.mul_f64(flash_seg as f64),
        window,
        flash_mult,
    );
    assert_eq!(phases.len(), n, "flash crowd must stay segment-aligned");

    // Reclaim wave, segment-relative times: node 6 warned in segment W,
    // reclaimed early in W+1; node 7 one segment later.
    let wave_seg = if quick { 2usize } else { 10usize };
    let warn_at = SimTime::ZERO + window.mul_f64(if quick { 0.1 } else { 0.5 });
    let kill_at = SimTime::ZERO + window.mul_f64(if quick { 0.1 } else { 0.25 });
    let events = |i: usize| -> Vec<ClusterEvent> {
        let mut evs = Vec::new();
        if i == wave_seg {
            evs.push(ClusterEvent::new(
                warn_at,
                EventKind::PreemptionWarning(NodeId(6)),
            ));
        }
        if i == wave_seg + 1 {
            evs.push(ClusterEvent::new(kill_at, EventKind::ScaleDown(NodeId(6))));
            if !quick {
                evs.push(ClusterEvent::new(
                    warn_at,
                    EventKind::PreemptionWarning(NodeId(7)),
                ));
            }
        }
        if !quick && i == wave_seg + 2 {
            evs.push(ClusterEvent::new(kill_at, EventKind::ScaleDown(NodeId(7))));
        }
        evs
    };

    let all = generate_phased(&phases, 1009);
    let mut out = Vec::with_capacity(n);
    let mut start = SimTime::ZERO;
    for (i, ph) in phases.iter().enumerate() {
        let end = start + window;
        let requests: Vec<Request> = all
            .iter()
            .filter(|r| r.arrival >= start && r.arrival < end)
            .map(|r| {
                let mut q = *r;
                q.arrival = SimTime::ZERO + r.arrival.saturating_since(start);
                q
            })
            .collect();
        out.push(Segment {
            requests,
            window,
            workload: ph.spec.clone(),
            events: events(i),
        });
        start = end;
    }
    out
}

/// Runs the autoscaled arm.
pub fn measure_elastic(quick: bool) -> AutoscaleTrajectory {
    run_elastic(
        &elastic_cloud_pool(),
        &model(),
        &slo(),
        &sched(),
        &autoscale_cfg(quick),
        &segments(quick),
    )
    .expect("elastic trajectory must serve")
}

/// Runs the oracle static arm.
pub fn measure_static(quick: bool) -> AutoscaleTrajectory {
    run_static(
        &elastic_cloud_pool(),
        &model(),
        &slo(),
        &sched(),
        &segments(quick),
    )
    .expect("static trajectory must serve")
}

/// Runs both arms.
pub fn measure(quick: bool) -> AutoscaleReport {
    AutoscaleReport {
        elastic: measure_elastic(quick),
        static_fleet: measure_static(quick),
    }
}

/// Count of one action kind in a trajectory's scale log.
pub fn action_count(t: &AutoscaleTrajectory, k: ScaleKind) -> usize {
    t.scale_log
        .iter()
        .filter(|e| matches!(e.kind, TraceKind::ScaleAction { kind, .. } if kind == k))
        .count()
}

/// Renders the comparison for the `reproduce` registry.
pub fn run(quick: bool) -> String {
    let r = measure(quick);
    let submitted: usize = r.elastic.records.iter().map(|x| x.submitted).sum();
    let mut t = Table::new(vec![
        "arm",
        "attainment",
        "completed",
        "mean $/hr",
        "total $",
        "acq/rel/drain",
    ]);
    for (name, arm) in [("static", &r.static_fleet), ("autoscale", &r.elastic)] {
        t.row(vec![
            name.into(),
            pct(arm.mean_attainment()),
            format!("{}/{}", arm.completed(), submitted),
            format!("${:.2}", arm.mean_rate_per_hour()),
            format!("${:.2}", arm.total_cost()),
            format!(
                "{}/{}/{}",
                action_count(arm, ScaleKind::Acquire),
                action_count(arm, ScaleKind::Release),
                action_count(arm, ScaleKind::Drain)
            ),
        ]);
    }
    format!(
        "Extension: diurnal day (flash crowd + spot reclaim wave) on the elastic cloud pool\n{}\n\
         Autoscaling gives up {:.1} points of SLO attainment and saves {} of the oracle static fleet's bill.\n",
        t.render(),
        100.0 * (r.static_fleet.mean_attainment() - r.elastic.mean_attainment()),
        pct(1.0 - r.elastic.total_cost() / r.static_fleet.total_cost()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_compares_both_arms() {
        let out = run(true);
        assert!(out.contains("autoscale"));
        assert!(out.contains("static"));
        assert!(out.contains("acq/rel/drain"));
    }

    #[test]
    fn trace_is_segment_aligned_in_both_modes() {
        for quick in [true, false] {
            let segs = segments(quick);
            assert_eq!(segs.len(), if quick { 6 } else { 24 });
            let warned = segs
                .iter()
                .flat_map(|s| &s.events)
                .filter(|e| matches!(e.kind, EventKind::PreemptionWarning(_)))
                .count();
            let reclaimed = segs
                .iter()
                .flat_map(|s| &s.events)
                .filter(|e| matches!(e.kind, EventKind::ScaleDown(_)))
                .count();
            assert_eq!(warned, reclaimed, "every reclaim is announced");
            for s in &segs {
                assert!(s
                    .requests
                    .iter()
                    .all(|r| r.arrival < SimTime::ZERO + s.window && r.arrival >= SimTime::ZERO));
            }
        }
    }
}
