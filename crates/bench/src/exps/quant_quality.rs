//! Tables 2, 6 and 7 (proxy): KV-cache quantization quality.
//!
//! The paper reports CoQA/TruthfulQA/GSM8K accuracy (Table 2), WikiText/
//! PTB/CBT perplexity (Table 6) and ROUGE against 16-bit outputs (Table 7),
//! all showing <2% degradation at 4-bit. Without the real LLaMA weights we
//! measure the quantity that bounds those scores in ThunderServe's design:
//! the reconstruction fidelity of the one-shot quantize→transmit→dequantize
//! path (computation always runs on the dequantized 16-bit values), plus the
//! cosine similarity of attention outputs computed from original vs
//! reconstructed caches.

use crate::table::Table;
use ts_common::{seeded_rng, ModelSpec};
use ts_kvcache::fidelity::{attention_outputs, compare, reconstruct_channelwise};
use ts_kvcache::quant::QuantBits;
use ts_kvcache::synthetic::generate_kv;

/// Runs the fidelity sweep over model sizes and bit widths.
pub fn run(quick: bool) -> String {
    let tokens = if quick { 64 } else { 256 };
    let models = [
        ModelSpec::llama_7b(),
        ModelSpec::llama_13b(),
        ModelSpec::llama_30b(),
    ];
    let mut t = Table::new(vec![
        "model",
        "bits",
        "wire ratio vs fp16",
        "SNR (dB)",
        "cosine",
        "attention cosine",
    ]);
    for model in &models {
        let mut rng = seeded_rng(0x5EED);
        let k = generate_kv(model, tokens, &mut rng);
        let v = generate_kv(model, tokens, &mut rng);
        for bits in [QuantBits::Int8, QuantBits::Int4, QuantBits::Int2] {
            let kr = reconstruct_channelwise(&k, bits, 64);
            let vr = reconstruct_channelwise(&v, bits, 64);
            let rep = compare(&k.values, &kr.values);
            let attn_ref = attention_outputs(&k, &v, model.num_heads, 2, &mut seeded_rng(99));
            let attn_q = attention_outputs(&kr, &vr, model.num_heads, 2, &mut seeded_rng(99));
            let attn = compare(&attn_ref, &attn_q);
            let ratio = bits.bits() as f64 / 16.0 + 8.0 / (64.0 * 16.0);
            t.row(vec![
                model.name.clone(),
                format!("{}-bit", bits.bits()),
                format!("{ratio:.3}"),
                format!("{:.1}", rep.snr_db),
                format!("{:.4}", rep.cosine),
                format!("{:.4}", attn.cosine),
            ]);
        }
    }
    format!(
        "Tables 2/6/7 (proxy): KV quantization quality on synthetic LLM-like caches\n\
         (computation always runs on dequantized 16-bit values, so downstream\n\
         quality is bounded by this reconstruction fidelity)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn covers_all_models_and_bitwidths() {
        let out = super::run(true);
        for s in ["llama-7b", "llama-13b", "llama-30b", "4-bit", "8-bit"] {
            assert!(out.contains(s), "missing {s}");
        }
    }
}
