//! Grouped-query attention extension (beyond the paper's figures).
//!
//! The paper's KV-transfer problem is sized by MHA-era caches (LLaMA-30B
//! carries ~1.6 MB of KV per token). Modern GQA/MQA models shrink that by
//! the head-group factor, which changes the phase-splitting calculus on slow
//! links: this experiment serves an MHA model and a GQA variant of the same
//! architecture across the 5 Gbps cross-datacenter link of Appendix H and
//! shows the link stops being the bottleneck.

use crate::harness;
use crate::table::Table;
use ts_cluster::presets;
use ts_common::{ModelSpec, SloKind};
use ts_sim::config::SimConfig;

use super::network::disaggregated_plan;

/// LLaMA-30B with 4 KV heads instead of 52 (a 13x smaller KV cache).
pub fn llama_30b_gqa() -> ModelSpec {
    let mut m = ModelSpec::llama_30b();
    m.name = "llama-30b-gqa4".into();
    m.num_kv_heads = 4;
    m
}

/// Runs the MHA vs GQA comparison on the slow link.
pub fn run(quick: bool) -> String {
    let cluster = presets::network_case_cluster(presets::ETH_5GBPS);
    let w = ts_workload::spec::fixed(1024, 64, 2.2);
    let reqs = harness::trace(&w, quick, 17);

    let mut t = Table::new(vec!["model", "KV bytes/token", "mean E2E (s)", "tokens/s"]);
    let mut results = Vec::new();
    for model in [ModelSpec::llama_30b(), llama_30b_gqa()] {
        let plan = disaggregated_plan(&model);
        let m = harness::run_phase_split(&cluster, &plan, SimConfig::new(model.clone()), &reqs)
            .unwrap();
        results.push(m.throughput_tokens());
        t.row(vec![
            model.name.clone(),
            format!("{:.2} MB", model.kv_bytes_per_token() as f64 / 1e6),
            format!("{:.2}", t_last(&m).unwrap_or(0.0)),
            format!("{:.0}", m.throughput_tokens()),
        ]);
    }
    format!(
        "GQA extension: cross-instance phase splitting at 5 Gbps\n\
         (A40 prefill → 3090Ti decode, 1024 in / 64 out @2.2 req/s)\n\n{}\n\
         A 13x smaller KV cache ({}x throughput here) makes cross-datacenter \
         disaggregation viable where the paper's MHA-era models needed the \
         4-bit codec or topology changes.\n",
        t.render(),
        (results[1] / results[0].max(1e-9) * 10.0).round() / 10.0,
    )
}

fn t_last(m: &ts_sim::metrics::Metrics) -> Option<f64> {
    m.mean_latency(SloKind::E2e).map(|d| d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gqa_rescues_the_slow_link() {
        let cluster = presets::network_case_cluster(presets::ETH_5GBPS);
        let w = ts_workload::spec::fixed(1024, 64, 2.2);
        let reqs = harness::trace(&w, true, 17);
        let run = |model: ModelSpec| {
            let plan = disaggregated_plan(&model);
            harness::run_phase_split(&cluster, &plan, SimConfig::new(model), &reqs)
                .unwrap()
                .throughput_tokens()
        };
        let mha = run(ModelSpec::llama_30b());
        let gqa = run(llama_30b_gqa());
        assert!(
            gqa > mha * 1.2,
            "GQA throughput {gqa:.0} should clearly beat MHA {mha:.0} at 5 Gbps"
        );
    }

    #[test]
    fn gqa_kv_is_13x_smaller() {
        let mha = ModelSpec::llama_30b();
        let gqa = llama_30b_gqa();
        let ratio = mha.kv_bytes_per_token() as f64 / gqa.kv_bytes_per_token() as f64;
        assert!((ratio - 13.0).abs() < 0.1, "ratio {ratio}");
    }
}
