//! Figure 8: cost-efficiency — ThunderServe on the 32-GPU cloud rig versus
//! DistServe-like and vLLM-like on the 8×A100 in-house box, at (nearly) the
//! same hourly budget.

use crate::harness::{self, base_slo_30b, min_scale_cell};
use crate::table::Table;
use ts_cluster::presets;
use ts_common::{ModelSpec, SloKind};

/// Runs the same-budget comparison.
pub fn run(quick: bool) -> String {
    let cloud = presets::paper_cloud_cluster();
    let inhouse = presets::paper_inhouse_cluster();
    let model = ModelSpec::llama_30b();
    let base = base_slo_30b();
    let rates: &[f64] = if quick { &[2.5] } else { &[2.0, 4.0, 6.0] };
    let mut out = format!(
        "Figure 8: same-budget comparison (cloud ${:.2}/hr vs in-house ${:.2}/hr)\n\n",
        cloud.price_per_hour(),
        inhouse.price_per_hour()
    );
    for &(wname, is_coding) in &[("coding", true), ("conversation", false)] {
        let mut t = Table::new(vec![
            "rate", "system", "TTFT@90", "TPOT@90", "E2E@90", "E2E@99",
        ]);
        for &rate in rates {
            let w = if is_coding {
                ts_workload::spec::coding(rate)
            } else {
                ts_workload::spec::conversation(rate)
            };
            let slo = base.scaled(8.0);
            let ts = harness::run_thunderserve(&cloud, &model, &w, &slo, quick, 17).unwrap();
            let ds = harness::run_distserve(&inhouse, &model, &w, &slo, quick, 17).unwrap();
            let vl = harness::run_vllm(&inhouse, &model, &w, quick, 17).unwrap();
            for (name, m) in [
                ("ThunderServe(cloud)", &ts),
                ("DistServe(in-house)", &ds),
                ("vLLM(in-house)", &vl),
            ] {
                t.row(vec![
                    format!("{rate:.1}"),
                    name.into(),
                    min_scale_cell(m, &base, SloKind::Ttft, 0.9),
                    min_scale_cell(m, &base, SloKind::Tpot, 0.9),
                    min_scale_cell(m, &base, SloKind::E2e, 0.9),
                    min_scale_cell(m, &base, SloKind::E2e, 0.99),
                ]);
            }
        }
        out.push_str(&format!("{wname} workload:\n{}\n", t.render()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 8's claim at high load: more replicas on the cloud beat the
    /// 4-replica A100 box on E2E deadlines for the same budget.
    #[test]
    fn cloud_wins_at_high_rate() {
        let cloud = presets::paper_cloud_cluster();
        let inhouse = presets::paper_inhouse_cluster();
        let model = ModelSpec::llama_30b();
        let base = base_slo_30b();
        let w = ts_workload::spec::coding(3.0);
        let ts = harness::run_thunderserve(&cloud, &model, &w, &base.scaled(8.0), true, 9).unwrap();
        let vl = harness::run_vllm(&inhouse, &model, &w, true, 9).unwrap();
        let ts_scale = ts
            .min_scale_for(&base, SloKind::E2e, 0.9, harness::SLO_SCALES)
            .unwrap_or(f64::INFINITY);
        let vl_scale = vl
            .min_scale_for(&base, SloKind::E2e, 0.9, harness::SLO_SCALES)
            .unwrap_or(f64::INFINITY);
        assert!(
            ts_scale <= vl_scale,
            "cloud ThunderServe {ts_scale}x should beat in-house vLLM {vl_scale}x at 3 req/s"
        );
    }
}
