//! Extension: multi-model serving on one shared GPU pool vs static
//! partitioning.
//!
//! Two tenants rent capacity on the same 12×A5000 pool: a light LLaMA-7B
//! conversation service (60% traffic share) and a heavier LLaMA-13B coding
//! service (40% share), each with its own SLO. The partitioned baseline
//! carves the pool by contract share — 8 GPUs for the 7B tenant, 4 for the
//! 13B tenant — and schedules each tenant alone inside its partition. The
//! shared arm runs [`thunderserve_core::Scheduler::schedule_multi`] on the
//! whole pool, letting the two-level search trade GPUs between tenants.
//!
//! The asymmetry is the point: the 13B coding tenant is compute-hungry and
//! starves inside its 4-GPU contract slice, while the 7B tenant strands
//! capacity it cannot use. Sharing the pool moves the stranded GPUs to the
//! tenant that needs them, so share-weighted joint SLO attainment must not
//! drop — at the same (or lower) $/hr, since both arms draw from the same
//! 12 GPUs.

use crate::table::{pct, Table};
use thunderserve_core::{Scheduler, SchedulerConfig};
use ts_cluster::{presets, Cluster};
use ts_common::{DeploymentPlan, GpuId, ModelId, Request, ServedModel, SimDuration};
use ts_sim::config::SimConfig;
use ts_sim::engine::Simulation;
use ts_workload::{generator::generate_multi_tenant, spec, WorkloadSpec};

/// Measured outcome of one tenant under one arm.
#[derive(Debug, Clone, Copy)]
pub struct TenantOutcome {
    /// The served model.
    pub model: ModelId,
    /// Joint SLO attainment of this tenant's traffic under its own SLO.
    pub attainment: f64,
    /// Requests this tenant submitted.
    pub submitted: usize,
    /// Requests that completed.
    pub completed: usize,
}

/// One arm (shared pool or static partition) of the comparison.
#[derive(Debug, Clone)]
pub struct MmArm {
    /// `"shared"` or `"partitioned"`.
    pub name: &'static str,
    /// Per-tenant outcomes, catalog order.
    pub tenants: Vec<TenantOutcome>,
    /// Traffic-share-weighted joint attainment across tenants.
    pub weighted_attainment: f64,
    /// Hourly price of the GPUs the arm's plan(s) actually occupy.
    pub cost_per_hour: f64,
}

/// Both arms of the shared-pool vs partitioned comparison.
#[derive(Debug, Clone)]
pub struct MmReport {
    /// The shared-pool arm.
    pub shared: MmArm,
    /// The statically partitioned arm.
    pub partitioned: MmArm,
}

fn catalog() -> Vec<ServedModel> {
    // Catalog presets scaled to what A5000s can actually deliver: the 13B
    // coding tenant's default TTFT bound is unreachable for long prompts on
    // this GPU class, which would flatten every allocation to attainment 0
    // and leave the search nothing to optimize.
    let m7 = ServedModel::llama_7b_chat(ModelId(1), 0.6).expect("valid share");
    let m13 = ServedModel::llama_13b_chat(ModelId(2), 0.4).expect("valid share");
    vec![
        ServedModel::new(m7.id, m7.spec, m7.slo.scaled(2.0), 0.6).expect("valid tenant"),
        ServedModel::new(m13.id, m13.spec, m13.slo.scaled(3.0), 0.4).expect("valid tenant"),
    ]
}

fn workloads(quick: bool) -> Vec<WorkloadSpec> {
    // Light conversation traffic for the 7B tenant; coding traffic heavy
    // enough that the 13B tenant saturates a 4-GPU partition.
    let scale = if quick { 0.75 } else { 1.0 };
    vec![spec::conversation(0.8 * scale), spec::coding(1.2 * scale)]
}

fn plan_cost(cluster: &Cluster, plan: &DeploymentPlan) -> f64 {
    plan.groups
        .iter()
        .flat_map(|g| g.gpus())
        .map(|id| cluster.gpu(id).spec().price_per_hour)
        .sum()
}

fn tenant_requests(quick: bool) -> Vec<Request> {
    let horizon = SimDuration::from_secs(if quick { 30 } else { 90 });
    let ws = workloads(quick);
    generate_multi_tenant(
        &[(ModelId(1), ws[0].clone()), (ModelId(2), ws[1].clone())],
        horizon,
        11,
    )
}

fn scheduler() -> Scheduler {
    // More steps than `fast()`: the multi-tenant neighbourhood also mutates
    // group-to-model assignment, so a 12-step budget rarely escapes its
    // initial partition of the pool.
    let mut cfg = SchedulerConfig::fast();
    cfg.n_step = 40;
    cfg.n_nghb = 10;
    cfg.seed = 23;
    Scheduler::new(cfg)
}

/// Runs the shared-pool arm: one `schedule_multi` plan, one simulation of
/// the merged two-tenant trace, per-tenant attainment from the tagged views.
pub fn measure_shared(quick: bool) -> MmArm {
    let cluster = presets::a5000_cluster(12);
    let models = catalog();
    let r = scheduler()
        .schedule_multi(&cluster, &models, &workloads(quick))
        .expect("shared pool must be schedulable");
    let plan = r.schedule.plan;
    let reqs = tenant_requests(quick);
    let cfg = SimConfig::new(models[0].spec.clone()).with_catalog(models.clone());
    let metrics = Simulation::new(&cluster, &plan, cfg)
        .expect("shared plan must instantiate")
        .run(&reqs)
        .expect("shared run must succeed");
    let mut tenants = Vec::new();
    let mut weighted = 0.0;
    for m in &models {
        let view = metrics.for_model(m.id);
        let att = view.joint_attainment(&m.slo);
        weighted += m.traffic_share * att;
        tenants.push(TenantOutcome {
            model: m.id,
            attainment: att,
            submitted: reqs.iter().filter(|r| r.model == m.id).count(),
            completed: view.num_completed(),
        });
    }
    MmArm {
        name: "shared",
        tenants,
        weighted_attainment: weighted,
        cost_per_hour: plan_cost(&cluster, &plan),
    }
}

/// Runs the partitioned arm: the pool is carved by contract share (8 GPUs
/// for the 60% tenant, 4 for the 40% tenant), each tenant scheduled and
/// simulated alone inside its slice.
pub fn measure_partitioned(quick: bool) -> MmArm {
    let models = catalog();
    let ws = workloads(quick);
    let all_reqs = tenant_requests(quick);
    // Contract slices: tenant 1 gets nodes 0-1 (GPUs 0..8), tenant 2 node 2.
    let slices: [Vec<GpuId>; 2] = [(8..12).map(GpuId).collect(), (0..8).map(GpuId).collect()];
    let mut tenants = Vec::new();
    let mut weighted = 0.0;
    let mut cost = 0.0;
    for ((m, w), off_slice) in models.iter().zip(&ws).zip(&slices) {
        let mut cluster = presets::a5000_cluster(12);
        cluster
            .deactivate_gpus(off_slice)
            .expect("slice ids are valid");
        let r = scheduler()
            .schedule(&cluster, &m.spec, w, &m.slo)
            .expect("partition must be schedulable");
        let reqs: Vec<Request> = all_reqs
            .iter()
            .filter(|r| r.model == m.id)
            .cloned()
            .collect();
        let metrics = Simulation::new(&cluster, &r.plan, SimConfig::new(m.spec.clone()))
            .expect("partition plan must instantiate")
            .run(&reqs)
            .expect("partition run must succeed");
        let att = metrics.joint_attainment(&m.slo);
        weighted += m.traffic_share * att;
        cost += plan_cost(&cluster, &r.plan);
        tenants.push(TenantOutcome {
            model: m.id,
            attainment: att,
            submitted: reqs.len(),
            completed: metrics.num_completed(),
        });
    }
    MmArm {
        name: "partitioned",
        tenants,
        weighted_attainment: weighted,
        cost_per_hour: cost,
    }
}

/// Runs both arms.
pub fn measure(quick: bool) -> MmReport {
    MmReport {
        shared: measure_shared(quick),
        partitioned: measure_partitioned(quick),
    }
}

/// Renders the comparison for the `reproduce` registry.
pub fn run(quick: bool) -> String {
    let r = measure(quick);
    let mut t = Table::new(vec![
        "arm",
        "7B chat att.",
        "13B coding att.",
        "weighted",
        "$/hr",
    ]);
    for arm in [&r.partitioned, &r.shared] {
        t.row(vec![
            arm.name.into(),
            pct(arm.tenants[0].attainment),
            pct(arm.tenants[1].attainment),
            pct(arm.weighted_attainment),
            format!("${:.2}", arm.cost_per_hour),
        ]);
    }
    format!(
        "Extension: two tenants on one 12xA5000 pool, shared vs contract-share partition\n{}\n\
         Sharing the pool lifts weighted attainment {} -> {} at {} the price.\n",
        t.render(),
        pct(r.partitioned.weighted_attainment),
        pct(r.shared.weighted_attainment),
        if r.shared.cost_per_hour <= r.partitioned.cost_per_hour {
            "at most"
        } else {
            "above"
        },
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_compares_both_arms() {
        let out = super::run(true);
        assert!(out.contains("shared"));
        assert!(out.contains("partitioned"));
        assert!(out.contains("weighted"));
    }
}
