//! Figure 12: ablation of KV-cache compression and orchestration.
//!
//! Three configurations on the cloud: full ThunderServe (4-bit KV +
//! orchestrated routing), no compression (fp16 KV), and no orchestration
//! (random/uniform dispatching) — the paper reports ~1.3× per-request
//! overhead without compression and a further large degradation with random
//! dispatch.

use crate::harness::{self, base_slo_30b};
use crate::table::Table;
use thunderserve_core::config::SchedulerConfig;
use thunderserve_core::orchestrate::orchestrate;
use ts_cluster::presets;
use ts_common::{DeploymentPlan, ModelSpec, RoutingMatrix, SloKind, SloSpec};
use ts_kvcache::codec::KvWirePrecision;
use ts_sim::config::SimConfig;
use ts_workload::WorkloadSpec;

/// Replaces the plan's routing with uniform (un-orchestrated) dispatch.
fn without_orchestration(plan: &DeploymentPlan) -> DeploymentPlan {
    let (p, d) = plan.phase_ratio();
    DeploymentPlan::new(plan.groups.clone(), RoutingMatrix::uniform(p, d))
        .expect("uniform routing is valid")
}

/// Re-orchestrates the same groups with fp16-aware KV costs: disabling
/// compression in the *system* also changes the routing the system would
/// compute, so the ablation must keep the pipeline consistent.
fn reorchestrate_f16(
    cluster: &ts_cluster::Cluster,
    model: &ModelSpec,
    plan: &DeploymentPlan,
    workload: &WorkloadSpec,
    slo: &SloSpec,
) -> DeploymentPlan {
    let mut cfg = SchedulerConfig::default();
    cfg.kv_precision = KvWirePrecision::F16;
    orchestrate(cluster, model, plan.groups.clone(), workload, slo, &cfg)
        .expect("re-orchestration is feasible")
        .plan
}

/// Runs the ablation for both workloads.
pub fn run(quick: bool) -> String {
    let cluster = presets::paper_cloud_cluster();
    let model = ModelSpec::llama_30b();
    let slo = base_slo_30b().scaled(8.0);
    let mut out = String::from("Figure 12: KV compression & orchestration ablation\n\n");
    for &(wname, is_coding) in &[("coding", true), ("conversation", false)] {
        let w = if is_coding {
            ts_workload::spec::coding(2.0)
        } else {
            ts_workload::spec::conversation(2.0)
        };
        let plan = harness::thunderserve_plan(&cluster, &model, &w, &slo, 42, quick).unwrap();
        let reqs = harness::trace(&w, quick, 11);
        let full = harness::run_phase_split(&cluster, &plan, SimConfig::new(model.clone()), &reqs)
            .unwrap();
        let f16_plan = reorchestrate_f16(&cluster, &model, &plan, &w, &slo);
        let no_comp = harness::run_phase_split(
            &cluster,
            &f16_plan,
            SimConfig::new(model.clone()).with_f16_kv(),
            &reqs,
        )
        .unwrap();
        let uniform = without_orchestration(&plan);
        let no_orch = harness::run_phase_split(
            &cluster,
            &uniform,
            SimConfig::new(model.clone()).with_f16_kv(),
            &reqs,
        )
        .unwrap();
        let mut t = Table::new(vec!["configuration", "mean E2E (s)", "joint SLO att."]);
        for (name, m) in [
            ("ThunderServe", &full),
            ("- KV compression", &no_comp),
            ("- compression - orchestration", &no_orch),
        ] {
            t.row(vec![
                name.into(),
                format!("{:.2}", m.mean_latency(SloKind::E2e).unwrap().as_secs_f64()),
                format!("{:.3}", m.joint_attainment(&slo)),
            ]);
        }
        out.push_str(&format!("{wname} workload:\n{}\n", t.render()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn each_ablation_hurts() {
        // Coding stresses the KV path hardest (long prompts => big caches);
        // conversation's decode-dominated E2E can mask the compression term.
        let cluster = presets::paper_cloud_cluster();
        let model = ModelSpec::llama_30b();
        let slo = base_slo_30b().scaled(8.0);
        let w = ts_workload::spec::coding(2.0);
        let plan = harness::thunderserve_plan(&cluster, &model, &w, &slo, 42, true).unwrap();
        let reqs = harness::trace(&w, true, 11);
        let e2e = |cfg: SimConfig, p: &DeploymentPlan| {
            harness::run_phase_split(&cluster, p, cfg, &reqs)
                .unwrap()
                .mean_latency(SloKind::E2e)
                .unwrap()
                .as_secs_f64()
        };
        let full = e2e(SimConfig::new(model.clone()), &plan);
        let f16_plan = reorchestrate_f16(&cluster, &model, &plan, &w, &slo);
        let no_comp = e2e(SimConfig::new(model.clone()).with_f16_kv(), &f16_plan);
        let no_orch = e2e(
            SimConfig::new(model.clone()).with_f16_kv(),
            &without_orchestration(&plan),
        );
        assert!(
            no_comp >= full * 0.999,
            "removing compression should not help: {no_comp} vs {full}"
        );
        assert!(
            no_orch >= no_comp * 0.999,
            "removing orchestration should not help: {no_orch} vs {no_comp}"
        );
    }
}
