//! Figure 10: convergence of the scheduling search for 16/24/32 GPUs.

use crate::harness::base_slo_30b;
use crate::table::Table;
use thunderserve_core::{Scheduler, SchedulerConfig};
use ts_cluster::{presets, Cluster, ClusterBuilder, GpuModel};
use ts_common::{ModelSpec, SimDuration};

/// A cloud-like cluster with `n` ∈ {16, 24, 32} GPUs (subsets of the paper's
/// instance mix).
fn cloud_subset(n: usize) -> Cluster {
    let lat = SimDuration::from_micros(250);
    let b = match n {
        16 => ClusterBuilder::new()
            .default_inter_link(presets::ETH_10GBPS, lat)
            .node("a6000-0", GpuModel::A6000, 4)
            .node("a5000-0", GpuModel::A5000, 4)
            .node("a40-0", GpuModel::A40, 4)
            .node("3090ti-0", GpuModel::Rtx3090Ti, 4),
        24 => ClusterBuilder::new()
            .default_inter_link(presets::ETH_10GBPS, lat)
            .node("a6000-0", GpuModel::A6000, 4)
            .node("a6000-1", GpuModel::A6000, 4)
            .node("a5000-0", GpuModel::A5000, 4)
            .node("a40-0", GpuModel::A40, 8)
            .node("3090ti-0", GpuModel::Rtx3090Ti, 4),
        32 => return presets::paper_cloud_cluster(),
        _ => panic!("unsupported subset size {n}"),
    };
    b.build().expect("subset preset is valid")
}

/// Runs the search at three cluster sizes and reports the trajectories.
pub fn run(quick: bool) -> String {
    let model = ModelSpec::llama_30b();
    let slo = base_slo_30b().scaled(8.0);
    let w = ts_workload::spec::coding(2.0);
    let mut out = String::from("Figure 10: tabu-search convergence\n\n");
    let mut t = Table::new(vec![
        "GPUs",
        "steps",
        "evaluations",
        "search time (s)",
        "final objective",
    ]);
    for &n in &[16usize, 24, 32] {
        let cluster = cloud_subset(n);
        let mut cfg = SchedulerConfig::default();
        cfg.seed = 7;
        cfg.n_step = if quick { 30 } else { 100 };
        let r = Scheduler::new(cfg)
            .schedule(&cluster, &model, &w, &slo)
            .unwrap();
        t.row(vec![
            n.to_string(),
            r.trajectory.len().to_string(),
            r.evaluations.to_string(),
            format!("{:.3}", r.elapsed),
            format!("{:.3}", r.estimated_attainment),
        ]);
        // print a short convergence series (best score at checkpoints)
        let pts: Vec<String> = r
            .trajectory
            .iter()
            .step_by((r.trajectory.len() / 8).max(1))
            .map(|p| format!("step {:>3}: {:.3}", p.step, p.best_score))
            .collect();
        out.push_str(&format!("{n} GPUs trajectory: {}\n", pts.join("  ")));
    }
    out.push('\n');
    out.push_str(&t.render());
    out.push_str(
        "\nSearch cost grows modestly with cluster size and is negligible \
         against hourly serving (the paper reports 21/36/54 s on its \
         hardware; absolute times differ, the scaling shape holds).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_time_grows_with_cluster_size_and_converges() {
        let model = ModelSpec::llama_30b();
        let slo = base_slo_30b().scaled(8.0);
        let w = ts_workload::spec::coding(2.0);
        let mut evals = Vec::new();
        for &n in &[16usize, 32] {
            let cluster = cloud_subset(n);
            let mut cfg = SchedulerConfig::fast();
            cfg.seed = 7;
            let r = Scheduler::new(cfg)
                .schedule(&cluster, &model, &w, &slo)
                .unwrap();
            assert!(r.estimated_attainment > 0.0);
            evals.push(r.evaluations);
        }
        // Larger clusters mean bigger neighbourhoods — at minimum the search
        // completes on both and returns feasible plans.
        assert!(evals.iter().all(|&e| e > 0));
    }
}
