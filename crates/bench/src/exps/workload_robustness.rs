//! Workload-robustness extension (beyond the paper's figures).
//!
//! Cloud traffic is neither stationary nor single-service (§3.4, BurstGPT):
//! this experiment stresses a ThunderServe deployment with (a) bursty
//! arrivals at the same mean rate as the Poisson trace it was planned for,
//! and (b) a coding+conversation mixture, and reports how much SLO headroom
//! each irregularity consumes.

use crate::harness::{self, base_slo_30b};
use crate::table::Table;
use ts_cluster::presets;
use ts_common::{ModelSpec, SimDuration};
use ts_sim::config::SimConfig;
use ts_workload::generator::{generate, generate_bursty, generate_mixture};

/// Runs the robustness comparison.
pub fn run(quick: bool) -> String {
    let cluster = presets::paper_cloud_cluster();
    let model = ModelSpec::llama_30b();
    let slo = base_slo_30b().scaled(8.0);
    let rate = 2.5;
    let coding = ts_workload::spec::coding(rate);
    let plan = harness::thunderserve_plan(&cluster, &model, &coding, &slo, 42, quick).unwrap();
    let horizon = harness::horizon(quick);

    let traces: Vec<(&str, Vec<ts_common::Request>)> = vec![
        ("Poisson (planned-for)", generate(&coding, horizon, 21)),
        (
            "bursty 3x (MMPP, 30s dwell)",
            generate_bursty(&coding, horizon, 3.0, SimDuration::from_secs(30), 21),
        ),
        (
            "50/50 coding+conversation mix",
            generate_mixture(
                &[
                    ts_workload::spec::coding(rate / 2.0),
                    ts_workload::spec::conversation(rate / 2.0),
                ],
                horizon,
                21,
            ),
        ),
    ];

    let mut t = Table::new(vec![
        "trace",
        "requests",
        "joint SLO att.",
        "p99 TTFT (s)",
        "p99 ITL (s)",
    ]);
    let mut rows = Vec::new();
    for (name, reqs) in &traces {
        let m =
            harness::run_phase_split(&cluster, &plan, SimConfig::new(model.clone()), reqs).unwrap();
        let att = m.joint_attainment(&slo);
        rows.push((name.to_string(), att));
        t.row(vec![
            name.to_string(),
            reqs.len().to_string(),
            format!("{att:.3}"),
            format!(
                "{:.2}",
                m.latency_percentile(ts_common::SloKind::Ttft, 0.99)
                    .unwrap()
                    .as_secs_f64()
            ),
            format!("{:.2}", m.itl_percentile(0.99).unwrap().as_secs_f64()),
        ]);
    }
    format!(
        "Workload robustness (coding-planned deployment, mean rate {rate} req/s):\n\n{}\n\
         Burstiness at the same mean rate consumes SLO headroom (attainment \
         {:.3} → {:.3}); a mixed stream behaves between the pure workloads. \
         This is the variability that motivates the paper's online profiler \
         and lightweight rescheduling (§3.4).\n",
        t.render(),
        rows[0].1,
        rows[1].1
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burstiness_costs_attainment() {
        let cluster = presets::paper_cloud_cluster();
        let model = ModelSpec::llama_30b();
        let slo = base_slo_30b().scaled(8.0);
        let coding = ts_workload::spec::coding(2.5);
        let plan = harness::thunderserve_plan(&cluster, &model, &coding, &slo, 42, true).unwrap();
        let horizon = harness::horizon(true);
        let run = |reqs: &[ts_common::Request]| {
            harness::run_phase_split(&cluster, &plan, SimConfig::new(model.clone()), reqs)
                .unwrap()
                .joint_attainment(&slo)
        };
        let smooth = run(&generate(&coding, horizon, 21));
        let bursty = run(&generate_bursty(
            &coding,
            horizon,
            3.0,
            SimDuration::from_secs(30),
            21,
        ));
        assert!(
            bursty <= smooth + 0.02,
            "bursty attainment {bursty} should not beat smooth {smooth}"
        );
    }
}
