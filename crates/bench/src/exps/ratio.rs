//! Figure 6 (+ Figure 14): impact of the prefill:decode replica ratio on
//! throughput and SLO attainment.
//!
//! LLaMA-13B on homogeneous A5000 clusters of 8/12/16 GPUs, two GPUs per
//! replica; the prefill:decode ratio sweeps all splits with at least one
//! replica per phase, with fixed group construction and parallel
//! configuration (exactly the paper's setup for motivating lightweight
//! rescheduling).

use crate::harness;
use crate::table::Table;
use ts_cluster::presets;
use ts_common::{
    DeploymentPlan, GpuId, GroupSpec, ModelSpec, ParallelConfig, Phase, RoutingMatrix, SimDuration,
    SloSpec, StageSpec,
};
use ts_sim::config::SimConfig;
use ts_workload::spec;

/// Builds the fixed 2-GPU-per-replica plan with `p` prefill and `d` decode
/// replicas on an A5000 cluster.
pub fn ratio_plan(model: &ModelSpec, p: usize, d: usize) -> DeploymentPlan {
    let total = p + d;
    let group = |idx: usize, phase: Phase| {
        GroupSpec::new(
            phase,
            ParallelConfig::new(2, 1).unwrap(),
            vec![StageSpec {
                gpus: vec![GpuId((idx * 2) as u32), GpuId((idx * 2 + 1) as u32)],
                layers: model.num_layers,
            }],
        )
        .unwrap()
    };
    let groups: Vec<GroupSpec> = (0..total)
        .map(|i| group(i, if i < p { Phase::Prefill } else { Phase::Decode }))
        .collect();
    DeploymentPlan::new(groups, RoutingMatrix::uniform(p, d)).unwrap()
}

/// The SLO used for the Figure 14 attainment panel.
fn slo_13b() -> SloSpec {
    SloSpec::new(
        SimDuration::from_secs(4),
        SimDuration::from_millis(150),
        SimDuration::from_secs(40),
    )
}

/// Sweeps the ratio for each cluster size and workload.
pub fn run(quick: bool) -> String {
    let model = ModelSpec::llama_13b();
    let sizes: &[usize] = if quick { &[8, 16] } else { &[8, 12, 16] };
    let mut out = String::from(
        "Figure 6 / Figure 14: throughput (tokens/s) and SLO attainment by \
         prefill:decode ratio\n(LLaMA-13B, A5000 clusters, 2 GPUs per replica)\n\n",
    );
    for &(wname, rate_per_replica) in &[("coding", 0.45f64), ("conversation", 0.40f64)] {
        for &n in sizes {
            let replicas = n / 2;
            let rate = rate_per_replica * replicas as f64;
            let w = if wname == "coding" {
                spec::coding(rate)
            } else {
                spec::conversation(rate)
            };
            let cluster = presets::a5000_cluster(n);
            let mut t = Table::new(vec!["ratio (p:d)", "tokens/s", "joint SLO att."]);
            let mut best: Option<(f64, String)> = None;
            for p in 1..replicas {
                let d = replicas - p;
                let plan = ratio_plan(&model, p, d);
                let reqs = harness::trace(&w, quick, 7);
                let m =
                    harness::run_phase_split(&cluster, &plan, SimConfig::new(model.clone()), &reqs)
                        .unwrap();
                let thpt = m.throughput_total_tokens();
                let att = m.joint_attainment(&slo_13b());
                let label = format!("{p}:{d}");
                t.row(vec![
                    label.clone(),
                    format!("{thpt:.0}"),
                    format!("{:.2}", att),
                ]);
                if best.as_ref().map(|(b, _)| thpt > *b).unwrap_or(true) {
                    best = Some((thpt, label));
                }
            }
            let (_, best_label) = best.unwrap();
            out.push_str(&format!(
                "{wname}, {n} GPUs ({replicas} replicas), rate {rate:.1} req/s — best ratio {best_label}\n{}\n",
                t.render()
            ));
        }
    }
    out.push_str(
        "Coding (long prompts, 13-token outputs) peaks at the most \
         prefill-heavy ratios; conversation's optimum shifts toward more \
         decode replicas at every cluster size (under our roofline decode is \
         cheaper than on the paper's testbed, so the absolute optima sit \
         more prefill-heavy than the paper's 3:5).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness;
    use ts_sim::config::SimConfig;

    #[test]
    fn conversation_needs_more_decode_replicas_than_coding() {
        // Qualitative Figure 6 check on the 16-GPU cluster: the
        // throughput-maximizing ratio dedicates more decode replicas to the
        // conversation workload (long outputs) than to coding (13-token
        // outputs). Absolute optima differ from the paper's testbed; the
        // direction is the claim.
        let model = ModelSpec::llama_13b();
        let cluster = presets::a5000_cluster(16);
        let best_decode = |w: &ts_workload::WorkloadSpec| -> usize {
            let mut best = (0usize, f64::NEG_INFINITY);
            for p in 1..8 {
                let d = 8 - p;
                let plan = ratio_plan(&model, p, d);
                let reqs = harness::trace(w, true, 3);
                let thpt =
                    harness::run_phase_split(&cluster, &plan, SimConfig::new(model.clone()), &reqs)
                        .unwrap()
                        .throughput_tokens();
                if thpt > best.1 {
                    best = (d, thpt);
                }
            }
            best.0
        };
        let coding_d = best_decode(&spec::coding(4.4));
        let conv_d = best_decode(&spec::conversation(3.6));
        assert!(
            conv_d >= coding_d,
            "conversation best split should use >= decode replicas: conv {conv_d} vs coding {coding_d}"
        );
    }
}
