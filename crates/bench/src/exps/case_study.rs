//! Table 3 (+ Appendix F): the deployment plans the scheduler discovers for
//! the coding and conversation workloads on the 32-GPU cloud.

use crate::harness::{base_slo_30b, thunderserve_plan};
use crate::table::Table;
use ts_cluster::{presets, Cluster};
use ts_common::{DeploymentPlan, ModelSpec};

fn describe(cluster: &Cluster, plan: &DeploymentPlan) -> Table {
    let mut t = Table::new(vec![
        "GPU configuration",
        "strategy",
        "phase",
        "layers/stage",
    ]);
    for g in &plan.groups {
        let mut counts: std::collections::BTreeMap<&str, usize> = Default::default();
        for gpu in g.gpus() {
            *counts
                .entry(cluster.gpu(gpu).model.short_name())
                .or_default() += 1;
        }
        let config = counts
            .iter()
            .map(|(m, c)| format!("{c}x{m}"))
            .collect::<Vec<_>>()
            .join("+");
        let layers = g
            .stages
            .iter()
            .map(|s| s.layers.to_string())
            .collect::<Vec<_>>()
            .join("/");
        t.row(vec![
            config,
            g.parallel.to_string(),
            g.phase.to_string(),
            layers,
        ]);
    }
    t
}

/// Prints the discovered plans for both workloads.
pub fn run(quick: bool) -> String {
    let cluster = presets::paper_cloud_cluster();
    let model = ModelSpec::llama_30b();
    let slo = base_slo_30b().scaled(8.0);
    let mut out = String::from("Table 3: model deployments discovered by ThunderServe\n\n");
    for &(wname, is_coding, rate) in &[("coding", true, 3.0), ("conversation", false, 3.0)] {
        let w = if is_coding {
            ts_workload::spec::coding(rate)
        } else {
            ts_workload::spec::conversation(rate)
        };
        let plan = thunderserve_plan(&cluster, &model, &w, &slo, 42, quick).unwrap();
        let (p, d) = plan.phase_ratio();
        out.push_str(&format!(
            "{wname} workload — {p} prefill : {d} decode replicas, {} GPUs used\n{}\n",
            plan.num_gpus(),
            describe(&cluster, &plan).render()
        ));
    }
    out.push_str(
        "ThunderServe assigns compute-rich GPUs (A40) to prefill and \
         bandwidth-rich GPUs (3090Ti) to decode, with more prefill replicas \
         for coding and more decode replicas for conversation.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_contains_both_workloads() {
        let out = super::run(true);
        assert!(out.contains("coding workload"));
        assert!(out.contains("conversation workload"));
        assert!(out.contains("prefill"));
        assert!(out.contains("decode"));
    }
}
