//! Figure 11 + Table 4: rescheduling when 4 of 32 GPUs go offline.
//!
//! The runtime deploys on the full cloud, a 3090Ti instance (4 GPUs hosting
//! decode capacity) fails, and we compare the three policies: no
//! rescheduling, lightweight rescheduling, and full rescheduling (which
//! pays a parameter-reload blackout).

use crate::harness::base_slo_30b;
use crate::table::Table;
use thunderserve_core::SchedulerConfig;
use ts_baselines::VllmPlanner;
use ts_cluster::availability::{ClusterEvent, EventKind};
use ts_cluster::presets;
use ts_common::{GpuId, ModelSpec, SimDuration, SimTime, SloSpec};
use ts_runtime::service::{ReschedulePolicy, ServingRuntime};
use ts_sim::colocated::ColocatedSimulation;
use ts_sim::config::SimConfig;
use ts_sim::fault::{FaultKind, FaultScript, TimedFault};
use ts_workload::{generator::generate, spec};

/// Picks a 4-GPU node to fail: prefer the node carrying the most prefill
/// GPUs whose loss still leaves both phases alive. (The paper removes 4 of
/// 32 GPUs; under our cost model prefill is the binding resource for the
/// coding workload, so losing prefill capacity is the stressful case.)
fn pick_failed_node(cluster: &ts_cluster::Cluster, plan: &ts_common::DeploymentPlan) -> Vec<GpuId> {
    use ts_common::Phase;
    let mut best: Option<(usize, Vec<GpuId>)> = None;
    for node in cluster.nodes() {
        let dead: std::collections::BTreeSet<GpuId> = node.gpus.iter().copied().collect();
        let mut prefill = 0usize;
        let mut decode = 0usize;
        let mut prefill_gpus_lost = 0usize;
        for g in &plan.groups {
            let alive = g.gpus().all(|id| !dead.contains(&id));
            if alive {
                match g.phase {
                    Phase::Prefill => prefill += 1,
                    Phase::Decode => decode += 1,
                }
            } else if g.phase == Phase::Prefill {
                prefill_gpus_lost += g.num_gpus();
            }
        }
        // only 4-GPU nodes, matching the paper's "4 of 32 GPUs offline"
        if node.gpus.len() <= 4
            && prefill >= 1
            && decode >= 1
            && best
                .as_ref()
                .map(|(s, _)| prefill_gpus_lost > *s)
                .unwrap_or(true)
        {
            best = Some((prefill_gpus_lost, node.gpus.clone()));
        }
    }
    best.map(|(_, g)| g)
        .expect("some node failure must keep both phases")
}

/// Picks the GPUs to fail for the mid-flight arm: up to 4 GPUs of the
/// prefill replica carrying the largest routing share (the busiest one, so
/// requests are actually in flight there when it dies). Losing any GPU
/// kills the whole replica; the other prefill replicas and all decode
/// replicas survive.
fn pick_busiest_prefill_gpus(plan: &ts_common::DeploymentPlan) -> Vec<GpuId> {
    let prefill_idx = plan.prefill_indices();
    assert!(prefill_idx.len() >= 2, "need a surviving prefill replica");
    let busiest = (0..prefill_idx.len())
        .max_by(|&a, &b| {
            plan.routing
                .prefill_share(a)
                .total_cmp(&plan.routing.prefill_share(b))
        })
        .unwrap();
    plan.groups[prefill_idx[busiest]].gpus().take(4).collect()
}

fn attainments(quick: bool, policy: ReschedulePolicy, slo: &SloSpec) -> (f64, f64, f64) {
    let model = ModelSpec::llama_30b();
    let mut cfg = SchedulerConfig::default();
    cfg.seed = 42;
    cfg.n_step = if quick { 25 } else { 80 };
    let w = spec::coding(3.0);
    let mut rt = ServingRuntime::new(presets::paper_cloud_cluster(), model, *slo, cfg);
    rt.deploy(&w).unwrap();
    let horizon = crate::harness::horizon(quick);
    let before = rt
        .serve_segment(&generate(&w, horizon, 1))
        .unwrap()
        .metrics
        .joint_attainment(slo);
    // 4 of 32 GPUs go offline: a node carrying decode capacity whose loss
    // keeps the service alive (the paper removes two decode replicas).
    let failed = pick_failed_node(rt.cluster(), rt.plan().unwrap());
    rt.handle_failure(&failed, &w, policy).unwrap();
    let after = rt.serve_segment(&generate(&w, horizon, 2)).unwrap();
    let (search, reload) = rt
        .resched_log
        .last()
        .map(|(_, o)| (o.search_time, o.reload_time.as_secs_f64()))
        .unwrap_or((0.0, 0.0));
    let _ = search;
    (before, after.metrics.joint_attainment(slo), reload)
}

/// One mid-flight arm: the node fails *during* the segment (halfway through
/// the trace) and the engine recovers — or doesn't — while requests are in
/// flight. Returns (attainment, lost = dropped + rejected, requeued
/// requests, re-prefilled tokens, max time-to-recover in seconds).
fn mid_flight(
    quick: bool,
    policy: ReschedulePolicy,
    slo: &SloSpec,
) -> (f64, usize, usize, u64, f64) {
    let model = ModelSpec::llama_30b();
    let mut cfg = SchedulerConfig::default();
    cfg.seed = 42;
    cfg.n_step = if quick { 25 } else { 80 };
    // Lower rate than the between-segment arm: the mid-flight router only
    // masks the dead replica and renormalizes (no rebalanced plan), so the
    // survivors need the headroom to absorb its routing share.
    let w = spec::coding(1.0);
    let mut rt = ServingRuntime::new(presets::paper_cloud_cluster(), model, *slo, cfg);
    rt.deploy(&w).unwrap();
    let horizon = crate::harness::horizon(quick);
    let failed = pick_busiest_prefill_gpus(rt.plan().unwrap());
    let events = vec![ClusterEvent::new(
        SimTime::ZERO + SimDuration::from_secs_f64(horizon.as_secs_f64() / 2.0),
        EventKind::GpusDown(failed),
    )];
    let rep = rt
        .serve_segment_with_faults(
            &generate(&w, horizon, 3),
            &events,
            policy,
            &w,
            SimDuration::from_secs(2),
        )
        .unwrap();
    let m = &rep.metrics;
    (
        m.joint_attainment(slo),
        m.num_dropped() + m.num_rejected(),
        m.recovery().requeued_requests,
        m.recovery().reprefilled_tokens,
        m.recovery()
            .max_time_to_recover()
            .map(|d| d.as_secs_f64())
            .unwrap_or(0.0),
    )
}

/// The colocated-baseline arm: the same mid-flight replica death applied to
/// a vLLM-like colocated deployment on the in-house cluster. The shared
/// execution core gives the colocated engine the identical fault layer, so
/// the recovery counters are directly comparable with the phase-split arms.
/// Returns (attainment, lost = dropped + rejected, requeued, re-prefilled
/// tokens, max time-to-recover in seconds).
fn colocated_mid_flight(
    quick: bool,
    recover: bool,
    slo: &SloSpec,
) -> (f64, usize, usize, u64, f64) {
    let model = ModelSpec::llama_30b();
    let cluster = presets::paper_inhouse_cluster();
    let groups = VllmPlanner::new()
        .plan(&cluster, &model)
        .expect("vLLM planner must fit the in-house cluster");
    assert!(groups.len() >= 2, "need a surviving colocated replica");
    let horizon = crate::harness::horizon(quick);
    // Decode-heavy traffic (the paper's conversation workload) at a rate
    // that keeps every replica mid-decode: the dying replica holds live KV.
    let reqs = generate(&spec::conversation(2.0), horizon, 3);
    // Replica 0 dies halfway through the segment; both phases die with it
    // (colocated), so queued prefills *and* in-flight decodes are lost.
    let script = FaultScript::new(
        vec![TimedFault {
            at: SimTime::ZERO + SimDuration::from_secs_f64(horizon.as_secs_f64() / 2.0),
            kind: FaultKind::DecodeDown(0),
        }],
        SimDuration::from_secs(2),
    );
    let script = if recover {
        script
    } else {
        script.without_recovery()
    };
    let m = ColocatedSimulation::new(&cluster, &groups, SimConfig::new(model))
        .expect("colocated deployment must be feasible")
        .run_with_faults(&reqs, &script)
        .expect("colocated fault run must succeed");
    (
        m.joint_attainment(slo),
        m.num_dropped() + m.num_rejected(),
        m.recovery().requeued_requests,
        m.recovery().reprefilled_tokens,
        m.recovery()
            .max_time_to_recover()
            .map(|d| d.as_secs_f64())
            .unwrap_or(0.0),
    )
}

/// The gray-failure arm: one decode replica runs 6x slow mid-segment — it
/// still heartbeats, so crash-stop rescheduling never triggers and the
/// damage is pure latency. Compares no mitigation against straggler
/// quarantine + hedged re-dispatch. Returns (attainment, p99 TTFT s,
/// p99 E2E s, quarantines, hedges launched).
fn straggler_arm(quick: bool, mitigate: bool, slo: &SloSpec) -> (f64, f64, f64, usize, usize) {
    use ts_common::{DeploymentPlan, GroupSpec, ParallelConfig, Phase, RoutingMatrix, StageSpec};
    use ts_sim::engine::Simulation;
    let cluster = presets::network_case_cluster(presets::ETH_40GBPS);
    let model = ModelSpec::llama_13b();
    let group = |phase, ids: &[u32]| {
        GroupSpec::new(
            phase,
            ParallelConfig::new(2, 1).unwrap(),
            vec![StageSpec {
                gpus: ids.iter().map(|&i| GpuId(i)).collect(),
                layers: model.num_layers,
            }],
        )
        .unwrap()
    };
    let plan = DeploymentPlan::new(
        vec![
            group(Phase::Prefill, &[0, 1]),
            group(Phase::Prefill, &[2, 3]),
            group(Phase::Decode, &[4, 5]),
            group(Phase::Decode, &[6, 7]),
        ],
        RoutingMatrix::uniform(2, 2),
    )
    .unwrap();
    let cfg = SimConfig::new(model);
    let cfg = if mitigate {
        cfg.with_straggler_detection(1.5)
            .with_hedging(SimDuration::from_millis(400))
    } else {
        cfg
    };
    let horizon = crate::harness::horizon(quick);
    let reqs = generate(&spec::coding(1.5), horizon, 5);
    let script = FaultScript::new(
        vec![TimedFault {
            at: SimTime::ZERO + SimDuration::from_secs_f64(horizon.as_secs_f64() / 2.0),
            kind: FaultKind::DecodeSlow(0, 6.0),
        }],
        SimDuration::from_millis(500),
    );
    let m = Simulation::new(&cluster, &plan, cfg)
        .expect("straggler testbed must be feasible")
        .run_with_faults(&reqs, &script)
        .expect("straggler run must succeed");
    (
        m.joint_attainment(slo),
        m.latency_percentile(ts_common::SloKind::Ttft, 0.99)
            .map(|d| d.as_secs_f64())
            .unwrap_or(0.0),
        m.latency_percentile(ts_common::SloKind::E2e, 0.99)
            .map(|d| d.as_secs_f64())
            .unwrap_or(0.0),
        m.recovery().quarantines,
        m.recovery().hedges_launched,
    )
}

/// Runs the failure experiment across policies.
pub fn run(quick: bool) -> String {
    let slo = base_slo_30b().scaled(8.0);
    let mut t = Table::new(vec![
        "policy",
        "SLO att. before",
        "SLO att. after",
        "reload blackout (s)",
    ]);
    let mut results = Vec::new();
    for (name, policy) in [
        ("no rescheduling", ReschedulePolicy::None),
        ("lightweight", ReschedulePolicy::Lightweight),
        ("full", ReschedulePolicy::Full),
    ] {
        let (before, after, reload) = attainments(quick, policy, &slo);
        t.row(vec![
            name.into(),
            format!("{before:.3}"),
            format!("{after:.3}"),
            format!("{reload:.1}"),
        ]);
        results.push((name, before, after, reload));
    }
    let mut t2 = Table::new(vec![
        "policy (mid-flight)",
        "SLO att.",
        "lost reqs",
        "requeued",
        "re-prefilled toks",
        "time-to-recover (s)",
    ]);
    for (name, policy) in [
        ("no rescheduling", ReschedulePolicy::None),
        ("lightweight", ReschedulePolicy::Lightweight),
        ("full", ReschedulePolicy::Full),
    ] {
        let (att, lost, requeued, reprefill, ttr) = mid_flight(quick, policy, &slo);
        t2.row(vec![
            name.into(),
            format!("{att:.3}"),
            format!("{lost}"),
            format!("{requeued}"),
            format!("{reprefill}"),
            format!("{ttr:.1}"),
        ]);
    }
    let mut t3 = Table::new(vec![
        "vLLM baseline (mid-flight)",
        "SLO att.",
        "lost reqs",
        "requeued",
        "re-prefilled toks",
        "time-to-recover (s)",
    ]);
    for (name, recover) in [("no recovery", false), ("recovery", true)] {
        let (att, lost, requeued, reprefill, ttr) = colocated_mid_flight(quick, recover, &slo);
        t3.row(vec![
            name.into(),
            format!("{att:.3}"),
            format!("{lost}"),
            format!("{requeued}"),
            format!("{reprefill}"),
            format!("{ttr:.1}"),
        ]);
    }
    let mut t4 = Table::new(vec![
        "gray failure (decode 6x slow)",
        "SLO att.",
        "p99 TTFT (s)",
        "p99 E2E (s)",
        "quarantines",
        "hedges",
    ]);
    for (name, mitigate) in [("no mitigation", false), ("quarantine+hedging", true)] {
        let (att, ttft, e2e, quarantines, hedges) = straggler_arm(quick, mitigate, &slo);
        t4.row(vec![
            name.into(),
            format!("{att:.3}"),
            format!("{ttft:.2}"),
            format!("{e2e:.2}"),
            format!("{quarantines}"),
            format!("{hedges}"),
        ]);
    }
    format!(
        "Figure 11 / Table 4: 4 of 32 GPUs offline (coding workload)\n\n{}\n\
         Lightweight rescheduling matches full rescheduling's post-recovery \
         attainment with zero reload blackout (the paper's Table 4 reports \
         13s vs 157s total adjustment cost); the blackout makes the full \
         arm's first post-failure segment collapse.\n\n\
         Mid-flight arm: 4 GPUs hosting the busiest prefill replica fail \
         halfway through the segment, while requests are in flight.\n\n{}\n\
         Without rescheduling the requests on the dead replicas are lost; \
         lightweight recovery re-routes and re-prefills them onto survivors \
         with no service pause, while full rescheduling stalls the whole \
         service for the weight reload before recovering.\n\n\
         Colocated baseline arm: one vLLM-like replica (both phases) dies \
         mid-segment on the in-house cluster.\n\n{}\n\
         The colocated engine shares the phase-split engine's fault layer, \
         so the same recovery machinery re-prefills the dead replica's \
         sequences on survivors — losing a colocated replica forfeits both \
         its queued prefills and its decode KV at once.\n\n\
         Gray-failure arm: one decode replica degrades to 6x iteration time \
         mid-segment without dying — no heartbeat fires, so crash-stop \
         rescheduling never engages.\n\n{}\n\
         Straggler quarantine routes new work away from the degraded \
         replica and hedged re-dispatch rescues the requests already stuck \
         behind it, recovering the latency tail that pure liveness-based \
         recovery cannot see.\n",
        t.render(),
        t2.render(),
        t3.render(),
        t4.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lightweight_matches_full_without_blackout() {
        let slo = base_slo_30b().scaled(8.0);
        let (_, after_none, r_none) = attainments(true, ReschedulePolicy::None, &slo);
        let (_, after_light, r_light) = attainments(true, ReschedulePolicy::Lightweight, &slo);
        let (_, after_full, r_full) = attainments(true, ReschedulePolicy::Full, &slo);
        assert_eq!(r_none, 0.0);
        assert_eq!(r_light, 0.0, "lightweight must not reload");
        assert!(
            r_full > 5.0,
            "full rescheduling should pay a reload blackout"
        );
        assert!(
            after_light >= after_none - 0.02,
            "lightweight {after_light} should not trail no-reschedule {after_none}"
        );
        assert!(
            after_light >= after_full - 0.1,
            "lightweight {after_light} should be close to full {after_full}"
        );
    }

    #[test]
    fn mid_flight_lightweight_recovers_where_none_degrades() {
        let slo = base_slo_30b().scaled(8.0);
        let (att_none, lost_none, requeued_none, reprefill_none, _) =
            mid_flight(true, ReschedulePolicy::None, &slo);
        let (att_light, lost_light, requeued_light, _, ttr_light) =
            mid_flight(true, ReschedulePolicy::Lightweight, &slo);
        assert!(lost_none > 0, "no recovery must lose in-flight requests");
        assert_eq!(requeued_none, 0, "no recovery never requeues");
        assert_eq!(reprefill_none, 0, "no recovery never re-prefills");
        assert_eq!(lost_light, 0, "lightweight recovery completes everything");
        assert!(
            requeued_light > 0,
            "recovery re-routes lost work to survivors"
        );
        assert!(ttr_light > 0.0, "recovery time should be recorded");
        assert!(
            att_light > att_none,
            "lightweight mid-flight {att_light} must beat none {att_none}"
        );
    }

    #[test]
    fn straggler_mitigation_recovers_the_tail() {
        let slo = base_slo_30b().scaled(8.0);
        let (att_off, _, e2e_off, q_off, h_off) = straggler_arm(true, false, &slo);
        let (att_on, _, e2e_on, q_on, h_on) = straggler_arm(true, true, &slo);
        assert_eq!(q_off, 0, "no detector configured");
        assert_eq!(h_off, 0, "no hedging configured");
        assert!(q_on > 0, "the degraded replica must be quarantined");
        assert!(h_on > 0, "stuck requests must be hedged");
        assert!(
            e2e_on < e2e_off,
            "mitigation must cut the p99 E2E tail: {e2e_on} >= {e2e_off}"
        );
        assert!(
            att_on >= att_off,
            "mitigation must not hurt attainment: {att_on} < {att_off}"
        );
    }

    #[test]
    fn colocated_baseline_recovers_in_flight_work() {
        let slo = base_slo_30b().scaled(8.0);
        let (att_none, lost_none, requeued_none, reprefill_none, _) =
            colocated_mid_flight(true, false, &slo);
        let (att_rec, lost_rec, _, reprefill_rec, ttr_rec) = colocated_mid_flight(true, true, &slo);
        assert!(
            lost_none > 0,
            "an unrecovered replica death must lose requests"
        );
        assert_eq!(requeued_none, 0);
        assert_eq!(reprefill_none, 0);
        assert!(
            lost_rec < lost_none,
            "recovery must save in-flight work: {lost_rec} vs {lost_none}"
        );
        assert!(
            reprefill_rec > 0,
            "losing a colocated replica loses decode KV that must be re-prefilled"
        );
        assert!(ttr_rec > 0.0, "recovery time should be recorded");
        assert!(
            att_rec >= att_none,
            "recovery should not hurt attainment: {att_rec} vs {att_none}"
        );
    }
}
