//! Figure 11 + Table 4: rescheduling when 4 of 32 GPUs go offline.
//!
//! The runtime deploys on the full cloud, a 3090Ti instance (4 GPUs hosting
//! decode capacity) fails, and we compare the three policies: no
//! rescheduling, lightweight rescheduling, and full rescheduling (which
//! pays a parameter-reload blackout).

use crate::harness::base_slo_30b;
use crate::table::Table;
use thunderserve_core::SchedulerConfig;
use ts_cluster::presets;
use ts_common::{GpuId, ModelSpec, SloSpec};
use ts_runtime::service::{ReschedulePolicy, ServingRuntime};
use ts_workload::{generator::generate, spec};


/// Picks a 4-GPU node to fail: prefer the node carrying the most prefill
/// GPUs whose loss still leaves both phases alive. (The paper removes 4 of
/// 32 GPUs; under our cost model prefill is the binding resource for the
/// coding workload, so losing prefill capacity is the stressful case.)
fn pick_failed_node(cluster: &ts_cluster::Cluster, plan: &ts_common::DeploymentPlan) -> Vec<GpuId> {
    use ts_common::Phase;
    let mut best: Option<(usize, Vec<GpuId>)> = None;
    for node in cluster.nodes() {
        let dead: std::collections::BTreeSet<GpuId> = node.gpus.iter().copied().collect();
        let mut prefill = 0usize;
        let mut decode = 0usize;
        let mut prefill_gpus_lost = 0usize;
        for g in &plan.groups {
            let alive = g.gpus().all(|id| !dead.contains(&id));
            if alive {
                match g.phase {
                    Phase::Prefill => prefill += 1,
                    Phase::Decode => decode += 1,
                }
            } else if g.phase == Phase::Prefill {
                prefill_gpus_lost += g.num_gpus();
            }
        }
        // only 4-GPU nodes, matching the paper's "4 of 32 GPUs offline"
        if node.gpus.len() <= 4
            && prefill >= 1
            && decode >= 1
            && best
                .as_ref()
                .map(|(s, _)| prefill_gpus_lost > *s)
                .unwrap_or(true)
        {
            best = Some((prefill_gpus_lost, node.gpus.clone()));
        }
    }
    best.map(|(_, g)| g).expect("some node failure must keep both phases")
}

fn attainments(
    quick: bool,
    policy: ReschedulePolicy,
    slo: &SloSpec,
) -> (f64, f64, f64) {
    let model = ModelSpec::llama_30b();
    let mut cfg = SchedulerConfig::default();
    cfg.seed = 42;
    cfg.n_step = if quick { 25 } else { 80 };
    let w = spec::coding(3.0);
    let mut rt = ServingRuntime::new(presets::paper_cloud_cluster(), model, *slo, cfg);
    rt.deploy(&w).unwrap();
    let horizon = crate::harness::horizon(quick);
    let before = rt
        .serve_segment(&generate(&w, horizon, 1))
        .unwrap()
        .metrics
        .joint_attainment(slo);
    // 4 of 32 GPUs go offline: a node carrying decode capacity whose loss
    // keeps the service alive (the paper removes two decode replicas).
    let failed = pick_failed_node(rt.cluster(), rt.plan().unwrap());
    rt.handle_failure(&failed, &w, policy).unwrap();
    let after = rt.serve_segment(&generate(&w, horizon, 2)).unwrap();
    let (search, reload) = rt
        .resched_log
        .last()
        .map(|(_, o)| (o.search_time, o.reload_time.as_secs_f64()))
        .unwrap_or((0.0, 0.0));
    let _ = search;
    (before, after.metrics.joint_attainment(slo), reload)
}

/// Runs the failure experiment across policies.
pub fn run(quick: bool) -> String {
    let slo = base_slo_30b().scaled(8.0);
    let mut t = Table::new(vec![
        "policy",
        "SLO att. before",
        "SLO att. after",
        "reload blackout (s)",
    ]);
    let mut results = Vec::new();
    for (name, policy) in [
        ("no rescheduling", ReschedulePolicy::None),
        ("lightweight", ReschedulePolicy::Lightweight),
        ("full", ReschedulePolicy::Full),
    ] {
        let (before, after, reload) = attainments(quick, policy, &slo);
        t.row(vec![
            name.into(),
            format!("{before:.3}"),
            format!("{after:.3}"),
            format!("{reload:.1}"),
        ]);
        results.push((name, before, after, reload));
    }
    format!(
        "Figure 11 / Table 4: 4 of 32 GPUs offline (coding workload)\n\n{}\n\
         Lightweight rescheduling matches full rescheduling's post-recovery \
         attainment with zero reload blackout (the paper's Table 4 reports \
         13s vs 157s total adjustment cost); the blackout makes the full \
         arm's first post-failure segment collapse.\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lightweight_matches_full_without_blackout() {
        let slo = base_slo_30b().scaled(8.0);
        let (_, after_none, r_none) = attainments(true, ReschedulePolicy::None, &slo);
        let (_, after_light, r_light) = attainments(true, ReschedulePolicy::Lightweight, &slo);
        let (_, after_full, r_full) = attainments(true, ReschedulePolicy::Full, &slo);
        assert_eq!(r_none, 0.0);
        assert_eq!(r_light, 0.0, "lightweight must not reload");
        assert!(r_full > 5.0, "full rescheduling should pay a reload blackout");
        assert!(
            after_light >= after_none - 0.02,
            "lightweight {after_light} should not trail no-reschedule {after_none}"
        );
        assert!(
            after_light >= after_full - 0.1,
            "lightweight {after_light} should be close to full {after_full}"
        );
    }
}
