//! Table 5 (+ Figures 16-17, Appendix H): the effect of inter-instance
//! bandwidth on phase splitting.
//!
//! One 4×A40 instance and one 4×3090Ti instance serve LLaMA-30B under a
//! continuous 1024-token workload. At 40 Gbps, disaggregating across
//! instances (A40 prefill → 3090Ti decode) wins; at 5 Gbps, the scheduler
//! should avoid cross-instance KV traffic (or a colocated layout becomes
//! competitive).

use crate::harness::{self, base_slo_30b};
use crate::table::Table;
use ts_baselines::HexGenPlanner;
use ts_cluster::presets;
use ts_common::{
    DeploymentPlan, GpuId, GroupSpec, ModelSpec, ParallelConfig, Phase, RoutingMatrix, SloKind,
    StageSpec,
};
use ts_sim::config::SimConfig;

/// The Appendix-H disaggregated layout: A40 node (GPUs 0..4) prefill, 3090Ti
/// node (GPUs 4..8) decode, cross-instance KV traffic. Shared with the
/// Table 8 experiment.
pub fn disaggregated_plan(model: &ModelSpec) -> DeploymentPlan {
    let group = |phase, ids: [u32; 4]| {
        GroupSpec::new(
            phase,
            ParallelConfig::new(4, 1).unwrap(),
            vec![StageSpec {
                gpus: ids.iter().map(|&i| GpuId(i)).collect(),
                layers: model.num_layers,
            }],
        )
        .unwrap()
    };
    DeploymentPlan::new(
        vec![
            group(Phase::Prefill, [0, 1, 2, 3]),
            group(Phase::Decode, [4, 5, 6, 7]),
        ],
        RoutingMatrix::uniform(1, 1),
    )
    .unwrap()
}

/// The low-bandwidth layout of Figure 17: each replica mixes 2×A40 + 2×3090Ti
/// so KV moves within the replica's own island and only pipeline activations
/// cross instances... but with TP confined per node: prefill = 2×A40, decode
/// = 2×3090Ti *within the same pairing*, two pairs total.
fn mixed_plan(model: &ModelSpec) -> DeploymentPlan {
    // Memory-proportional non-uniform partition: the 48GB A40 stage takes
    // 2/3 of the layers, the 24GB 3090Ti stage 1/3 (what Algorithm 2's
    // capacity-proportional partitioner produces for this pairing).
    let half = model.num_layers * 2 / 3;
    let mk = |phase, a40: [u32; 2], ti: [u32; 2]| {
        GroupSpec::new(
            phase,
            ParallelConfig::new(2, 2).unwrap(),
            vec![
                StageSpec {
                    gpus: a40.iter().map(|&i| GpuId(i)).collect(),
                    layers: half,
                },
                StageSpec {
                    gpus: ti.iter().map(|&i| GpuId(i)).collect(),
                    layers: model.num_layers - half,
                },
            ],
        )
        .unwrap()
    };
    DeploymentPlan::new(
        vec![
            mk(Phase::Prefill, [0, 1], [4, 5]),
            mk(Phase::Decode, [2, 3], [6, 7]),
        ],
        RoutingMatrix::uniform(1, 1),
    )
    .unwrap()
}

/// Runs the bandwidth cases.
pub fn run(quick: bool) -> String {
    let model = ModelSpec::llama_30b();
    let w = ts_workload::spec::fixed(1024, 64, 1.5);
    let mut out = String::from(
        "Table 5 / Figures 16-17: phase splitting vs inter-instance bandwidth\n\
         (4xA40 + 4x3090Ti, LLaMA-30B, 1024-token prompts)\n\n",
    );
    let mut t = Table::new(vec![
        "bandwidth",
        "configuration",
        "mean TTFT (s)",
        "mean E2E (s)",
        "tokens/s",
    ]);
    for &(bw_name, bw) in &[
        ("40 Gbps", presets::ETH_40GBPS),
        ("5 Gbps", presets::ETH_5GBPS),
    ] {
        let cluster = presets::network_case_cluster(bw);
        let reqs = harness::trace(&w, quick, 13);
        // Non-disaggregated baseline: one colocated replica per instance.
        let baseline_groups = HexGenPlanner::new().plan(&cluster, &model, &w).unwrap();
        let base_m = harness::run_colocated(
            &cluster,
            &baseline_groups,
            SimConfig::new(model.clone()),
            &reqs,
        )
        .unwrap();
        let disagg = harness::run_phase_split(
            &cluster,
            &disaggregated_plan(&model),
            SimConfig::new(model.clone()),
            &reqs,
        )
        .unwrap();
        let mixed = harness::run_phase_split(
            &cluster,
            &mixed_plan(&model),
            SimConfig::new(model.clone()),
            &reqs,
        )
        .unwrap();
        for (name, m) in [
            ("colocated baseline", &base_m),
            ("disaggregated cross-instance", &disagg),
            ("disaggregated intra-island", &mixed),
        ] {
            t.row(vec![
                bw_name.into(),
                name.into(),
                format!(
                    "{:.2}",
                    m.mean_latency(SloKind::Ttft).unwrap().as_secs_f64()
                ),
                format!("{:.2}", m.mean_latency(SloKind::E2e).unwrap().as_secs_f64()),
                format!("{:.0}", m.throughput_tokens()),
            ]);
        }
    }
    out.push_str(&t.render());
    out.push_str(
        "\nAt 40 Gbps the cross-instance split (A40 prefill → 3090Ti decode) \
         wins; at 5 Gbps cross-instance KV transfer is punished and layouts \
         that keep KV local regain ground (the paper's 2x vs 1.4x gains).\n",
    );
    let _ = base_slo_30b();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_link_caps_cross_instance_throughput() {
        // At 2.2 req/s the per-request 4-bit KV transfer (~0.75s at 5 Gbps)
        // saturates the inter-instance link: throughput collapses and E2E
        // grows without bound, while 40 Gbps keeps up.
        let model = ModelSpec::llama_30b();
        let w = ts_workload::spec::fixed(1024, 64, 1.5);
        let run = |bw: f64| {
            let cluster = presets::network_case_cluster(bw);
            let reqs = harness::trace(&w, true, 13);
            harness::run_phase_split(
                &cluster,
                &disaggregated_plan(&model),
                SimConfig::new(model.clone()),
                &reqs,
            )
            .unwrap()
        };
        let fast = run(presets::ETH_40GBPS);
        let slow = run(presets::ETH_5GBPS);
        assert!(
            fast.throughput_tokens() > 1.25 * slow.throughput_tokens(),
            "40 Gbps ({:.0} t/s) should clearly beat 5 Gbps ({:.0} t/s)",
            fast.throughput_tokens(),
            slow.throughput_tokens()
        );
        // Note: mean E2E can look similar between the two because the slow
        // link throttles admission, which shrinks the decode batch and
        // speeds up decode steps — the throughput gap is the robust signal.
    }

    #[test]
    fn intra_island_layout_rescues_slow_links() {
        // Figure 17's point: at 5 Gbps the mixed layout keeps KV local and
        // sustains throughput the cross-instance split cannot.
        let model = ModelSpec::llama_30b();
        let w = ts_workload::spec::fixed(1024, 64, 1.5);
        let cluster = presets::network_case_cluster(presets::ETH_5GBPS);
        let reqs = harness::trace(&w, true, 13);
        let cross = harness::run_phase_split(
            &cluster,
            &disaggregated_plan(&model),
            SimConfig::new(model.clone()),
            &reqs,
        )
        .unwrap();
        let mixed = harness::run_phase_split(
            &cluster,
            &mixed_plan(&model),
            SimConfig::new(model.clone()),
            &reqs,
        )
        .unwrap();
        assert!(
            mixed.throughput_tokens() > cross.throughput_tokens(),
            "mixed {:.0} t/s should beat cross-instance {:.0} t/s at 5 Gbps",
            mixed.throughput_tokens(),
            cross.throughput_tokens()
        );
    }

    #[test]
    fn disaggregation_beats_colocation_at_40gbps() {
        let model = ModelSpec::llama_30b();
        let w = ts_workload::spec::fixed(1024, 64, 1.2);
        let cluster = presets::network_case_cluster(presets::ETH_40GBPS);
        let reqs = harness::trace(&w, true, 13);
        let baseline_groups = HexGenPlanner::new().plan(&cluster, &model, &w).unwrap();
        let base_m = harness::run_colocated(
            &cluster,
            &baseline_groups,
            SimConfig::new(model.clone()),
            &reqs,
        )
        .unwrap();
        let disagg = harness::run_phase_split(
            &cluster,
            &disaggregated_plan(&model),
            SimConfig::new(model.clone()),
            &reqs,
        )
        .unwrap();
        assert!(
            disagg.throughput_tokens() >= base_m.throughput_tokens() * 0.95,
            "disaggregated {:.0} t/s should be competitive with colocated {:.0} t/s",
            disagg.throughput_tokens(),
            base_m.throughput_tokens()
        );
    }
}
