//! Figure 7: SLO attainment on the heterogeneous cloud, ThunderServe vs the
//! HexGen-like baseline, for TTFT / TPOT / E2E across request rates.
//!
//! Reported as the paper does: for each rate, the minimum SLO scale (latency
//! deadline multiple) at which each system reaches 90% and 99% attainment.

use crate::harness::{self, base_slo_30b, min_scale_cell};
use crate::table::Table;
use ts_cluster::presets;
use ts_common::{ModelSpec, SloKind};

/// Runs the cloud comparison.
pub fn run(quick: bool) -> String {
    let cluster = presets::paper_cloud_cluster();
    let model = ModelSpec::llama_30b();
    let base = base_slo_30b();
    let rates: &[f64] = if quick { &[2.5] } else { &[2.0, 4.0, 6.0] };
    let mut out = String::from(
        "Figure 7: min SLO scale for 90%/99% attainment on the cloud \
         (ThunderServe vs HexGen-like)\n\n",
    );
    for &(wname, is_coding) in &[("coding", true), ("conversation", false)] {
        let mut t = Table::new(vec![
            "rate", "system", "TTFT@90", "TPOT@90", "E2E@90", "E2E@99",
        ]);
        let mut curves = String::new();
        for &rate in rates {
            let w = if is_coding {
                ts_workload::spec::coding(rate)
            } else {
                ts_workload::spec::conversation(rate)
            };
            let slo = base.scaled(8.0);
            let ts = harness::run_thunderserve(&cluster, &model, &w, &slo, quick, 42).unwrap();
            let hx = harness::run_hexgen(&cluster, &model, &w, quick, 42).unwrap();
            curves.push_str(&format!("rate {rate:.1} req/s:\n"));
            for (name, m) in [("ThunderServe", &ts), ("HexGen-like", &hx)] {
                t.row(vec![
                    format!("{rate:.1}"),
                    name.into(),
                    min_scale_cell(m, &base, SloKind::Ttft, 0.9),
                    min_scale_cell(m, &base, SloKind::Tpot, 0.9),
                    min_scale_cell(m, &base, SloKind::E2e, 0.9),
                    min_scale_cell(m, &base, SloKind::E2e, 0.99),
                ]);
                curves.push_str(&curve_line(name, m, &base));
            }
        }
        out.push_str(&format!("{wname} workload:\n{}\n", t.render()));
        out.push_str(&curves);
        out.push('\n');
    }
    out
}

/// Renders a compact E2E attainment-vs-scale series (the figure's curves).
fn curve_line(name: &str, m: &ts_sim::metrics::Metrics, base: &ts_common::SloSpec) -> String {
    let pts = m.attainment_curve(base, SloKind::E2e, &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0]);
    let series: Vec<String> = pts.iter().map(|(s, a)| format!("{s}x:{a:.2}")).collect();
    format!("  E2E curve {name:12} {}\n", series.join(" "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_common::SloSpec;

    /// Core Figure 7 claim: ThunderServe needs a lower (or equal) E2E
    /// deadline than the HexGen-like baseline at the same rate.
    #[test]
    fn thunderserve_beats_hexgen_on_e2e_deadline() {
        let cluster = presets::paper_cloud_cluster();
        let model = ModelSpec::llama_30b();
        let base: SloSpec = base_slo_30b();
        let w = ts_workload::spec::coding(2.0);
        let ts =
            harness::run_thunderserve(&cluster, &model, &w, &base.scaled(8.0), true, 5).unwrap();
        let hx = harness::run_hexgen(&cluster, &model, &w, true, 5).unwrap();
        let ts_scale = ts
            .min_scale_for(&base, SloKind::E2e, 0.9, harness::SLO_SCALES)
            .unwrap_or(f64::INFINITY);
        let hx_scale = hx
            .min_scale_for(&base, SloKind::E2e, 0.9, harness::SLO_SCALES)
            .unwrap_or(f64::INFINITY);
        assert!(
            ts_scale <= hx_scale,
            "ThunderServe E2E deadline {ts_scale}x should be <= HexGen {hx_scale}x"
        );
    }
}
