//! Figure 1: prefill and decode prices for a single request (512 in / 16
//! out) on the 3090Ti and A40.

use crate::table::Table;
use ts_cluster::GpuModel;
use ts_common::ModelSpec;
use ts_costmodel::{price::request_price, ModelParams};

/// Regenerates the Figure 1 bars.
pub fn run(_quick: bool) -> String {
    let model = ModelSpec::llama_7b();
    let params = ModelParams::default();
    let mut t = Table::new(vec!["GPU", "prefill $/1k req", "decode $/1k req", "total"]);
    let mut lines = Vec::new();
    for gpu in [GpuModel::Rtx3090Ti, GpuModel::A40] {
        let p = request_price(&model, gpu.spec(), 512, 16, &params);
        t.row(vec![
            gpu.short_name().into(),
            format!("${:.4}", p.prefill * 1000.0),
            format!("${:.4}", p.decode * 1000.0),
            format!("${:.4}", p.total() * 1000.0),
        ]);
        lines.push((gpu, p));
    }
    let (ti, a40) = (&lines[0].1, &lines[1].1);
    format!(
        "Figure 1: per-request phase prices (LLaMA-7B, 512 in / 16 out)\n{}\n\
         A40 prefill is {:.2}x cheaper than 3090Ti; 3090Ti decode is {:.2}x cheaper than A40.\n",
        t.render(),
        ti.prefill / a40.prefill,
        a40.decode / ti.decode,
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_shows_both_gpus_and_claims() {
        let out = super::run(true);
        assert!(out.contains("3090Ti"));
        assert!(out.contains("A40"));
        assert!(out.contains("cheaper"));
    }
}
