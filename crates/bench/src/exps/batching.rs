//! Figure 2: effect of batching on the two phases (LLaMA-7B, seq len 1024).

use crate::table::Table;
use ts_cluster::GpuModel;
use ts_common::ModelSpec;
use ts_costmodel::batching::{decode_curve, prefill_curve, prefill_saturation_point};
use ts_costmodel::ModelParams;

/// Regenerates both Figure 2 panels.
pub fn run(_quick: bool) -> String {
    let model = ModelSpec::llama_7b();
    let params = ModelParams::default();
    let gpu = GpuModel::A5000.spec();

    let batch_tokens = [128u64, 256, 512, 1024, 2048, 4096, 8192];
    let pf = prefill_curve(&model, gpu, 1024, &batch_tokens, &params);
    let mut t1 = Table::new(vec!["batched tokens", "prefill tokens/s"]);
    for p in &pf {
        t1.row(vec![
            p.batch.to_string(),
            format!("{:.0}", p.tokens_per_sec),
        ]);
    }

    let batches = [1u64, 2, 4, 8, 16, 32, 64, 128];
    let dc = decode_curve(&model, gpu, 1024, &batches, &params);
    let mut t2 = Table::new(vec!["decode batch", "decode tokens/s"]);
    for p in &dc {
        t2.row(vec![
            p.batch.to_string(),
            format!("{:.0}", p.tokens_per_sec),
        ]);
    }

    let sat = prefill_saturation_point(&model, gpu, 1024, 0.10, &params);
    format!(
        "Figure 2: batching effects (LLaMA-7B on A5000, seq len 1024)\n\n\
         Prefill phase:\n{}\nPrefill saturates around {sat} batched tokens \
         (paper: ~1024).\n\nDecode phase:\n{}\nDecode throughput keeps \
         improving with batch size.\n",
        t1.render(),
        t2.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_has_both_panels() {
        let out = super::run(true);
        assert!(out.contains("Prefill phase"));
        assert!(out.contains("Decode phase"));
        assert!(out.contains("saturates around"));
    }
}
