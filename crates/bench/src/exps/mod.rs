//! Experiment implementations, one module per paper artifact.

pub mod ablation;
pub mod autoscale;
pub mod bandwidth_matrix;
pub mod batching;
pub mod budget_slo;
pub mod case_study;
pub mod catalog;
pub mod cloud_slo;
pub mod comm_precision;
pub mod convergence;
pub mod failure;
pub mod gqa;
pub mod mm;
pub mod net_contention;
pub mod network;
pub mod price;
pub mod quant_quality;
pub mod ratio;
pub mod sched_ablation;
pub mod sim_accuracy;
pub mod throughput;
pub mod workload_robustness;
