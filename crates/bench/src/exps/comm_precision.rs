//! Table 8 / Figure 18: 16-bit vs 4-bit KV communication.
//!
//! Same setup as Table 5's high-bandwidth case (4×A40 prefill → 4×3090Ti
//! decode at 40 Gbps): compare per-request KV transfer time and end-to-end
//! throughput between fp16 and int4 wire precision, plus the Figure 18
//! LLaMA-7B microbenchmark on a 2×A5000 pair.

use crate::harness;
use crate::table::Table;
use ts_cluster::presets;
use ts_common::{ModelSpec, SloKind};
use ts_costmodel::replica::{kv_route, kv_transfer_time};
use ts_costmodel::{ModelParams, ReplicaCostModel};
use ts_kvcache::codec::KvWirePrecision;
use ts_sim::config::SimConfig;

use super::network::disaggregated_plan;

/// Runs the precision comparison.
pub fn run(quick: bool) -> String {
    let model = ModelSpec::llama_30b();
    let plan = disaggregated_plan(&model);
    let w = ts_workload::spec::fixed(1024, 64, 1.5);
    let reqs = harness::trace(&w, quick, 29);
    let params = ModelParams::default();

    let mut t = Table::new(vec![
        "link",
        "config",
        "KV comm / req",
        "mean E2E (s)",
        "tokens/s",
    ]);
    let mut kv16 = ts_common::SimDuration::ZERO;
    let mut kv4 = ts_common::SimDuration::ZERO;
    for &(bw_name, bw) in &[
        ("40 Gbps", presets::ETH_40GBPS),
        ("5 Gbps", presets::ETH_5GBPS),
    ] {
        let cluster = presets::network_case_cluster(bw);
        // Analytic per-request KV transfer times (Table 8's "KV Comm").
        let pf = ReplicaCostModel::new(&cluster, &model, &plan.groups[0], &params).unwrap();
        let dc = ReplicaCostModel::new(&cluster, &model, &plan.groups[1], &params).unwrap();
        let route = kv_route(&cluster, &pf, &dc);
        kv16 = kv_transfer_time(&model, &route, 1024, 1.0);
        kv4 = kv_transfer_time(
            &model,
            &route,
            1024,
            KvWirePrecision::DEFAULT_COMPRESSED.ratio_vs_f16(),
        );
        let m16 = harness::run_phase_split(
            &cluster,
            &plan,
            SimConfig::new(model.clone()).with_f16_kv(),
            &reqs,
        )
        .unwrap();
        let m4 = harness::run_phase_split(&cluster, &plan, SimConfig::new(model.clone()), &reqs)
            .unwrap();
        for (name, kv, m) in [("16-bit", kv16, &m16), ("4-bit", kv4, &m4)] {
            t.row(vec![
                bw_name.into(),
                name.into(),
                format!("{kv}"),
                format!("{:.2}", m.mean_latency(SloKind::E2e).unwrap().as_secs_f64()),
                format!("{:.0}", m.throughput_tokens()),
            ]);
        }
    }

    // Figure 18 microbench: LLaMA-7B on the 2xA5000 40 Gbps pair.
    let m7 = ModelSpec::llama_7b();
    let pair = presets::a5000_pair_40gbps();
    let mk = |phase, gpu: u32| {
        ts_common::GroupSpec::new(
            phase,
            ts_common::ParallelConfig::new(1, 1).unwrap(),
            vec![ts_common::StageSpec {
                gpus: vec![ts_common::GpuId(gpu)],
                layers: m7.num_layers,
            }],
        )
        .unwrap()
    };
    let pair_plan = ts_common::DeploymentPlan::new(
        vec![
            mk(ts_common::Phase::Prefill, 0),
            mk(ts_common::Phase::Decode, 1),
        ],
        ts_common::RoutingMatrix::uniform(1, 1),
    )
    .unwrap();
    let w7 = ts_workload::spec::fixed(1024, 64, 1.0);
    let reqs7 = harness::trace(&w7, quick, 31);
    let p16 = harness::run_phase_split(
        &pair,
        &pair_plan,
        SimConfig::new(m7.clone()).with_f16_kv(),
        &reqs7,
    )
    .unwrap();
    let p4 =
        harness::run_phase_split(&pair, &pair_plan, SimConfig::new(m7.clone()), &reqs7).unwrap();

    // Figure 18's framing: KV comm as a fraction of the end-to-end cost of
    // one request on the A5000 pair.
    let pf7 = ReplicaCostModel::new(&pair, &m7, &pair_plan.groups[0], &params).unwrap();
    let dc7 = ReplicaCostModel::new(&pair, &m7, &pair_plan.groups[1], &params).unwrap();
    let route7 = kv_route(&pair, &pf7, &dc7);
    let kv7_16 = kv_transfer_time(&m7, &route7, 1024, 1.0).as_secs_f64();
    let kv7_4 = kv_transfer_time(
        &m7,
        &route7,
        1024,
        KvWirePrecision::DEFAULT_COMPRESSED.ratio_vs_f16(),
    )
    .as_secs_f64();
    let exec7 = pf7.prefill_latency(1024, 1024).as_secs_f64()
        + 63.0 * dc7.decode_step_latency(8, 1056).as_secs_f64();
    format!(
        "Table 8: 16-bit vs 4-bit KV communication (LLaMA-30B, A40→3090Ti)\n{}\n\
         Figure 18 microbench (LLaMA-7B, 2xA5000 @40Gbps): fp16 E2E {:.2}s vs \
         int4 E2E {:.2}s; KV comm shrinks ~{:.1}x on the wire and drops from \
         {:.0}% to {:.0}% of the per-request execution cost (paper: 16-30% \
         down to 4-9%).\n",
        t.render(),
        p16.mean_latency(SloKind::E2e).unwrap().as_secs_f64(),
        p4.mean_latency(SloKind::E2e).unwrap().as_secs_f64(),
        kv16.as_secs_f64() / kv4.as_secs_f64(),
        100.0 * kv7_16 / (exec7 + kv7_16),
        100.0 * kv7_4 / (exec7 + kv7_4),
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn four_bit_beats_sixteen_bit() {
        let out = super::run(true);
        assert!(out.contains("16-bit"));
        assert!(out.contains("4-bit"));
        assert!(out.contains("shrinks"));
    }
}
