//! Minimal fixed-width text tables for experiment reports.

/// A simple text table builder.
///
/// ```
/// let mut t = ts_bench::table::Table::new(vec!["GPU", "price"]);
/// t.row(vec!["A40".into(), "$0.403".into()]);
/// let s = t.render();
/// assert!(s.contains("A40"));
/// assert!(s.contains("price"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn row(&mut self, cells: Vec<String>) {
        let mut cells = cells;
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders to an aligned ASCII table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let sep: String = widths
            .iter()
            .map(|w| format!("-{}-", "-".repeat(*w)))
            .collect::<Vec<_>>()
            .join("+");
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .take(cols)
                .map(|(i, c)| format!(" {:<w$} ", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("|")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with 3 significant decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a float as a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.row(vec!["xxxxxx".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].len(), lines[2].len());
        assert!(lines[1].chars().all(|c| c == '-' || c == '+'));
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["1".into()]);
        assert!(t.render().lines().count() == 3);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn formatters() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(pct(0.912), "91.2%");
    }
}
