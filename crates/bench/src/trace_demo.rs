//! The shared telemetry demonstration scenario: a phase-split deployment on
//! the Appendix-H testbed serving under the flow-level fabric, with a
//! mid-flight link fault so the trace shows queueing, KV retries and
//! recovery — used by the `bench_trace` binary, by `reproduce --trace`, and
//! exercised in CI.

use ts_cluster::presets;
use ts_common::SloSpec;
use ts_common::{
    DeploymentPlan, GpuId, GroupSpec, ModelSpec, ParallelConfig, Phase, RoutingMatrix, SimDuration,
    SimTime, StageSpec,
};
use ts_sim::{FaultKind, FaultScript, Metrics, SimConfig, Simulation, TimedFault, TraceLog};
use ts_telemetry::{StreamConfig, StreamSnapshot};
use ts_workload::{generator::generate, spec};

/// Everything the demo run produces.
pub struct TraceDemo {
    /// The run's metrics (identical to an untraced run of the scenario).
    pub metrics: Metrics,
    /// The finalized event log.
    pub log: TraceLog,
    /// Streaming-plane snapshot of the same run: online sketches, EWMA
    /// gauges and SLO burn-rate signals, exportable as Prometheus text
    /// ([`ts_telemetry::render_prometheus`]) or JSON
    /// ([`StreamSnapshot::to_json`]).
    pub stream: StreamSnapshot,
    /// Requests served.
    pub num_requests: usize,
}

/// The demo's nominal SLO, used by the streaming plane's burn monitors. The
/// link fault pushes the tail past it, so the demo shows a burn episode.
pub fn demo_slo() -> SloSpec {
    SloSpec::new(
        SimDuration::from_secs(2),
        SimDuration::from_millis(100),
        SimDuration::from_secs(20),
    )
}

/// 4xA40 prefill + two 2x3090Ti decode replicas on a slow (5 Gbps) fabric,
/// so concurrent KV transfers genuinely contend and the link series moves.
fn testbed() -> (ts_cluster::Cluster, DeploymentPlan, SimConfig) {
    let cluster = presets::network_case_cluster(presets::ETH_5GBPS);
    let model = ModelSpec::llama_13b();
    let group = |phase, ids: &[u32], tp: usize| {
        GroupSpec::new(
            phase,
            ParallelConfig::new(tp, 1).unwrap(),
            vec![StageSpec {
                gpus: ids.iter().map(|&i| GpuId(i)).collect(),
                layers: model.num_layers,
            }],
        )
        .unwrap()
    };
    let plan = DeploymentPlan::new(
        vec![
            group(Phase::Prefill, &[0, 1, 2, 3], 4),
            group(Phase::Decode, &[4, 5], 2),
            group(Phase::Decode, &[6, 7], 2),
        ],
        RoutingMatrix::uniform(1, 2),
    )
    .unwrap();
    (cluster, plan, SimConfig::new(model))
}

/// Runs the demo scenario with telemetry on. `quick` trims the horizon for
/// CI; the fault still lands mid-run.
///
/// # Panics
/// Panics if the simulation rejects the (fixed, known-good) scenario.
pub fn run(quick: bool) -> TraceDemo {
    let (cluster, plan, cfg) = testbed();
    let horizon = SimDuration::from_secs(if quick { 20 } else { 60 });
    let fault_at = if quick { 6.0 } else { 18.0 };
    let reqs = generate(&spec::fixed(1024, 48, 2.0), horizon, 41);
    let script = FaultScript::new(
        vec![
            TimedFault {
                at: SimTime::from_secs_f64(fault_at),
                kind: FaultKind::LinkDown {
                    prefill: 0,
                    decode: 0,
                },
            },
            TimedFault {
                at: SimTime::from_secs_f64(fault_at + 3.0),
                kind: FaultKind::LinkUp {
                    prefill: 0,
                    decode: 0,
                },
            },
        ],
        SimDuration::from_millis(100),
    );
    let mut sim = Simulation::new(
        &cluster,
        &plan,
        cfg.with_network_contention(true)
            .with_telemetry(true)
            .with_streaming(StreamConfig::new(demo_slo())),
    )
    .expect("demo scenario must build");
    let metrics = sim
        .run_with_faults(&reqs, &script)
        .expect("demo scenario must run");
    let log = sim.take_trace().expect("telemetry was enabled");
    let stream = sim
        .take_streaming()
        .expect("streaming was enabled")
        .snapshot();
    TraceDemo {
        metrics,
        log,
        stream,
        num_requests: reqs.len(),
    }
}

impl TraceDemo {
    /// The completed request with the worst end-to-end latency.
    pub fn worst_e2e_request(&self) -> Option<ts_common::RequestId> {
        self.metrics
            .records()
            .iter()
            .max_by_key(|r| (r.e2e(), r.request.id))
            .map(|r| r.request.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_telemetry::TraceKind;

    #[test]
    fn quick_demo_produces_a_meaningful_trace() {
        let demo = run(true);
        assert_eq!(demo.metrics.num_completed(), demo.num_requests);
        assert!(!demo.log.is_empty());
        // The link fault must leave its mark: retries in the counters and
        // retry events in the log.
        assert!(demo.metrics.recovery().kv_transfer_retries > 0);
        let retries = demo
            .log
            .events()
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::KvRetry { .. }))
            .count();
        assert_eq!(retries, demo.metrics.recovery().kv_transfer_retries);
        // The fabric sampled link utilization.
        assert!(!demo.log.links().is_empty());
        // And the export round-trips through the validator.
        let json = ts_telemetry::chrome::export(&demo.log);
        let stats = ts_telemetry::validate_chrome_trace(&json).expect("valid Chrome trace");
        assert!(stats.events > 0);
        // The streaming snapshot ties out and exports cleanly.
        assert_eq!(
            demo.stream.totals.finished as usize,
            demo.metrics.num_completed()
        );
        let prom = ts_telemetry::render_prometheus(&demo.stream);
        ts_telemetry::validate_exposition(&prom).expect("valid exposition");
    }
}
