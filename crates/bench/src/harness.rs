//! Shared experiment machinery: reference SLOs, plan builders and runners.

use thunderserve_core::{Scheduler, SchedulerConfig};
use ts_baselines::{DistServePlanner, HexGenPlanner, VllmPlanner};
use ts_cluster::Cluster;
use ts_common::{DeploymentPlan, GroupSpec, ModelSpec, Request, Result, SimDuration, SloSpec};
use ts_sim::colocated::ColocatedSimulation;
use ts_sim::config::SimConfig;
use ts_sim::engine::Simulation;
use ts_sim::metrics::Metrics;
use ts_workload::{generator::generate, WorkloadSpec};

/// The SLO-scale grid swept by the attainment experiments (multiples of the
/// reference single-device latency, as in the paper's Figure 7/8 x-axis).
pub const SLO_SCALES: &[f64] = &[
    1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0, 48.0, 64.0,
];

/// Base SLO anchored to A100 execution latency for LLaMA-30B (TTFT ≈ one
/// prefill of the mean prompt on an A100 TP=2 replica; TPOT ≈ one decode
/// step; E2E combines them for the mean output length).
pub fn base_slo_30b() -> SloSpec {
    SloSpec::new(
        SimDuration::from_millis(400),
        SimDuration::from_millis(30),
        SimDuration::from_secs(6),
    )
}

/// Standard simulated horizon per run.
pub fn horizon(quick: bool) -> SimDuration {
    if quick {
        SimDuration::from_secs(60)
    } else {
        SimDuration::from_secs(240)
    }
}

/// Schedules a ThunderServe plan with a seeded, fixed-budget search.
///
/// # Errors
/// Propagates scheduler failures.
pub fn thunderserve_plan(
    cluster: &Cluster,
    model: &ModelSpec,
    workload: &WorkloadSpec,
    slo: &SloSpec,
    seed: u64,
    quick: bool,
) -> Result<DeploymentPlan> {
    let mut cfg = SchedulerConfig::default();
    cfg.seed = seed;
    cfg.n_step = if quick { 25 } else { 100 };
    Ok(Scheduler::new(cfg)
        .schedule(cluster, model, workload, slo)?
        .plan)
}

/// Runs the phase-split engine on a plan.
///
/// # Errors
/// Propagates simulation failures.
pub fn run_phase_split(
    cluster: &Cluster,
    plan: &DeploymentPlan,
    cfg: SimConfig,
    requests: &[Request],
) -> Result<Metrics> {
    Simulation::new(cluster, plan, cfg)?.run(requests)
}

/// Runs the colocated engine on a set of replicas.
///
/// # Errors
/// Propagates simulation failures.
pub fn run_colocated(
    cluster: &Cluster,
    groups: &[GroupSpec],
    cfg: SimConfig,
    requests: &[Request],
) -> Result<Metrics> {
    ColocatedSimulation::new(cluster, groups, cfg)?.run(requests)
}

/// Generates the standard trace for a workload.
pub fn trace(workload: &WorkloadSpec, quick: bool, seed: u64) -> Vec<Request> {
    generate(workload, horizon(quick), seed)
}

/// End-to-end ThunderServe run: schedule + simulate.
///
/// # Errors
/// Propagates scheduler/simulator failures.
pub fn run_thunderserve(
    cluster: &Cluster,
    model: &ModelSpec,
    workload: &WorkloadSpec,
    slo: &SloSpec,
    quick: bool,
    seed: u64,
) -> Result<Metrics> {
    let plan = thunderserve_plan(cluster, model, workload, slo, seed, quick)?;
    let cfg = SimConfig::new(model.clone());
    run_phase_split(cluster, &plan, cfg, &trace(workload, quick, seed))
}

/// End-to-end HexGen-like run (colocated heterogeneous).
///
/// # Errors
/// Propagates planner/simulator failures.
pub fn run_hexgen(
    cluster: &Cluster,
    model: &ModelSpec,
    workload: &WorkloadSpec,
    quick: bool,
    seed: u64,
) -> Result<Metrics> {
    let groups = HexGenPlanner::new().plan(cluster, model, workload)?;
    let cfg = SimConfig::new(model.clone());
    run_colocated(cluster, &groups, cfg, &trace(workload, quick, seed))
}

/// End-to-end vLLM-like run (colocated homogeneous).
///
/// # Errors
/// Propagates planner/simulator failures.
pub fn run_vllm(
    cluster: &Cluster,
    model: &ModelSpec,
    workload: &WorkloadSpec,
    quick: bool,
    seed: u64,
) -> Result<Metrics> {
    let groups = VllmPlanner::new().plan(cluster, model)?;
    let cfg = SimConfig::new(model.clone());
    run_colocated(cluster, &groups, cfg, &trace(workload, quick, seed))
}

/// End-to-end DistServe-like run (homogeneous phase split, fp16 KV).
///
/// # Errors
/// Propagates planner/simulator failures.
pub fn run_distserve(
    cluster: &Cluster,
    model: &ModelSpec,
    workload: &WorkloadSpec,
    slo: &SloSpec,
    quick: bool,
    seed: u64,
) -> Result<Metrics> {
    let plan = DistServePlanner::new().plan(cluster, model, workload, slo)?;
    let cfg = SimConfig::new(model.clone()).with_f16_kv();
    run_phase_split(cluster, &plan, cfg, &trace(workload, quick, seed))
}

/// The minimum SLO scale reaching `goal` attainment for `kind`, rendered
/// for a report cell ("-" when unreachable on the grid).
pub fn min_scale_cell(
    metrics: &Metrics,
    base: &SloSpec,
    kind: ts_common::SloKind,
    goal: f64,
) -> String {
    metrics
        .min_scale_for(base, kind, goal, SLO_SCALES)
        .map(|s| format!("{s}x"))
        .unwrap_or_else(|| "-".into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_cluster::presets;
    use ts_workload::spec;

    #[test]
    fn thunderserve_end_to_end_smoke() {
        let cluster = presets::paper_cloud_cluster();
        let model = ModelSpec::llama_30b();
        let m = run_thunderserve(
            &cluster,
            &model,
            &spec::coding(2.0),
            &base_slo_30b().scaled(8.0),
            true,
            1,
        )
        .unwrap();
        assert!(m.num_completed() > 0);
    }

    #[test]
    fn baselines_end_to_end_smoke() {
        let cloud = presets::paper_cloud_cluster();
        let inhouse = presets::paper_inhouse_cluster();
        let model = ModelSpec::llama_30b();
        let w = spec::coding(2.0);
        assert!(
            run_hexgen(&cloud, &model, &w, true, 2)
                .unwrap()
                .num_completed()
                > 0
        );
        assert!(
            run_vllm(&inhouse, &model, &w, true, 2)
                .unwrap()
                .num_completed()
                > 0
        );
        assert!(
            run_distserve(&inhouse, &model, &w, &base_slo_30b().scaled(8.0), true, 2)
                .unwrap()
                .num_completed()
                > 0
        );
    }
}
