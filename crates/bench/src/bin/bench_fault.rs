//! Records gray-failure mitigation numbers to `BENCH_fault.json`, seeding
//! the repo's robustness perf trajectory.
//!
//! Straggler sweep on the Appendix-H two-instance testbed (two tp=2 LLaMA-13B
//! prefill replicas feeding two tp=2 decode replicas): one replica runs
//! `factor`× slow from t=5s, with the mitigation layer (hedged re-dispatch +
//! straggler quarantine) off vs on. Sweeps the slowed role × slowdown factor
//! and records p99 TTFT, p99 E2E, SLO-shed rate and the mitigation counters
//! per arm. Everything is simulated time — results are bit-reproducible, no
//! wall-clock noise.
//!
//! A prefill straggler delays first tokens, so hedging must cut p99 TTFT; a
//! decode straggler delays token streams, so quarantine must cut p99 E2E.
//! Both properties are asserted before the JSON is written — CI runs this in
//! `--quick` mode so a regression that flattens them fails the build.
//!
//! Usage: `cargo run --release -p ts-bench --bin bench_fault [--quick] [out.json]`

use ts_cluster::presets;
use ts_common::{
    DeploymentPlan, GpuId, GroupSpec, ModelSpec, ParallelConfig, Phase, RoutingMatrix, SimDuration,
    SimTime, SloKind, StageSpec,
};
use ts_sim::config::SimConfig;
use ts_sim::engine::Simulation;
use ts_sim::fault::{FaultKind, FaultScript, TimedFault};
use ts_workload::{generator::generate, spec};

const FACTORS: [f64; 3] = [2.0, 4.0, 8.0];

struct Arm {
    role: &'static str,
    factor: f64,
    mitigated: bool,
    p99_ttft_s: f64,
    p99_e2e_s: f64,
    shed_rate: f64,
    hedges: usize,
    quarantines: usize,
}

fn testbed() -> (ts_cluster::Cluster, DeploymentPlan, SimConfig) {
    let cluster = presets::network_case_cluster(presets::ETH_40GBPS);
    let model = ModelSpec::llama_13b();
    let group = |phase, ids: &[u32]| {
        GroupSpec::new(
            phase,
            ParallelConfig::new(2, 1).unwrap(),
            vec![StageSpec {
                gpus: ids.iter().map(|&i| GpuId(i)).collect(),
                layers: model.num_layers,
            }],
        )
        .unwrap()
    };
    let plan = DeploymentPlan::new(
        vec![
            group(Phase::Prefill, &[0, 1]),
            group(Phase::Prefill, &[2, 3]),
            group(Phase::Decode, &[4, 5]),
            group(Phase::Decode, &[6, 7]),
        ],
        RoutingMatrix::uniform(2, 2),
    )
    .unwrap();
    (cluster, plan, SimConfig::new(model))
}

fn measure(quick: bool, role: &'static str, factor: f64, mitigated: bool) -> Arm {
    let (cluster, plan, cfg) = testbed();
    let cfg = if mitigated {
        cfg.with_hedging(SimDuration::from_millis(400))
            .with_straggler_detection(1.5)
            .with_straggler_readmit_after(SimDuration::from_secs(60))
    } else {
        cfg
    };
    let horizon = SimDuration::from_secs(if quick { 40 } else { 120 });
    let reqs = generate(&spec::coding(1.5), horizon, 7);
    let kind = match role {
        "prefill" => FaultKind::PrefillSlow(0, factor),
        _ => FaultKind::DecodeSlow(0, factor),
    };
    let script = FaultScript::new(
        vec![TimedFault {
            at: SimTime::from_secs_f64(5.0),
            kind,
        }],
        SimDuration::from_millis(500),
    );
    let m = Simulation::new(&cluster, &plan, cfg)
        .expect("testbed plan must be feasible")
        .run_with_faults(&reqs, &script)
        .expect("fault run must succeed");
    assert_eq!(
        m.num_completed() + m.num_dropped() + m.num_rejected(),
        reqs.len(),
        "conservation must hold in every arm"
    );
    Arm {
        role,
        factor,
        mitigated,
        p99_ttft_s: m
            .latency_percentile(SloKind::Ttft, 0.99)
            .expect("completions exist")
            .as_secs_f64(),
        p99_e2e_s: m
            .latency_percentile(SloKind::E2e, 0.99)
            .expect("completions exist")
            .as_secs_f64(),
        shed_rate: (m.num_dropped() + m.num_rejected()) as f64 / reqs.len() as f64,
        hedges: m.recovery().hedges_launched,
        quarantines: m.recovery().quarantines,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_fault.json".to_string());

    let mut arms = Vec::new();
    for role in ["prefill", "decode"] {
        for factor in FACTORS {
            for mitigated in [false, true] {
                let arm = measure(quick, role, factor, mitigated);
                println!(
                    "{:>7} straggler {factor:>3}x  mitigation {}  p99 TTFT {:>8.3}s  p99 E2E {:>8.3}s  shed {:>5.3}  hedges {:>3}  quarantines {:>2}",
                    arm.role,
                    if arm.mitigated { " on" } else { "off" },
                    arm.p99_ttft_s,
                    arm.p99_e2e_s,
                    arm.shed_rate,
                    arm.hedges,
                    arm.quarantines,
                );
                arms.push(arm);
            }
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"gray-failure straggler sweep: one replica runs factor-x slow from t=5s on the Appendix-H testbed (2x tp2 prefill -> 2x tp2 decode, LLaMA-13B, coding workload at 1.5 req/s)\",\n");
    json.push_str("  \"note\": \"simulated time (deterministic, no wall-clock). Mitigation = hedged re-dispatch (400ms timeout) + straggler quarantine (EWMA threshold 1.5). A prefill straggler inflates p99 TTFT, which hedging recovers; a decode straggler inflates p99 E2E, which quarantine recovers. shed_rate counts dropped + rejected over submitted.\",\n");
    json.push_str("  \"arms\": [\n");
    for (i, a) in arms.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"role\": \"{}\", \"slowdown\": {}, \"mitigated\": {}, \"p99_ttft_s\": {:.6}, \"p99_e2e_s\": {:.6}, \"shed_rate\": {:.6}, \"hedges\": {}, \"quarantines\": {}}}{}\n",
            a.role,
            a.factor,
            a.mitigated,
            a.p99_ttft_s,
            a.p99_e2e_s,
            a.shed_rate,
            a.hedges,
            a.quarantines,
            if i + 1 == arms.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");

    // The qualitative properties the mitigation layer exists for — per-factor
    // tail recovery with the mechanism actually firing — live in the shared
    // gate, so CI enforces the same invariants on the committed artifact.
    match ts_bench::gate::check("BENCH_fault", &json, !quick) {
        Ok(r) => println!("gate: {} checks held", r.checks),
        Err(e) => {
            eprintln!("gate: {e}");
            std::process::exit(1);
        }
    }
    std::fs::write(&out, json).expect("write benchmark output");
    println!("wrote {out}");
}
