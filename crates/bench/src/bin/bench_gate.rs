//! CI perf-regression gate over the committed benchmark trajectory.
//!
//! ```text
//! bench_gate [--dir <repo-root>] [--fresh <dir>] [--lax]
//! ```
//!
//! Parses every committed `BENCH_*.json` (scheduler, net, sim, fault, mm,
//! autoscale, obs) with the shared checker in [`ts_bench::gate`]: structural
//! invariants and wall-clock floors per family, and — when `--fresh <dir>`
//! points at freshly regenerated artifacts — a >15% regression comparison of
//! every deterministic metric against the committed trajectory's last entry.
//!
//! Exit status is nonzero on any violation, so this replaces the ad-hoc
//! per-binary floor asserts as the single CI gate. `--lax` applies the
//! quick-mode wall-clock budgets (for untrusted CI machines); committed
//! artifacts are expected to satisfy the strict ones.

use std::path::{Path, PathBuf};
use ts_bench::gate;

/// Every benchmark family the gate knows, in trajectory order.
const STEMS: &[&str] = &[
    "BENCH_scheduler",
    "BENCH_net",
    "BENCH_sim",
    "BENCH_fault",
    "BENCH_mm",
    "BENCH_autoscale",
    "BENCH_obs",
];

fn arg_value(args: &[String], flag: &str) -> Option<PathBuf> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dir = arg_value(&args, "--dir").unwrap_or_else(|| PathBuf::from("."));
    let fresh_dir = arg_value(&args, "--fresh");
    let strict = !args.iter().any(|a| a == "--lax");

    let mut failures = 0usize;
    let mut checked = 0usize;
    for stem in STEMS {
        let path = dir.join(format!("{stem}.json"));
        let Some(text) = read(&path, &mut failures) else {
            continue;
        };
        match gate::check(stem, &text, strict) {
            Ok(report) => {
                checked += 1;
                println!(
                    "ok   {stem}: {} checks, {} tracked metrics",
                    report.checks, report.metrics
                );
            }
            Err(e) => {
                failures += 1;
                eprintln!("FAIL {stem}: {e}");
                continue;
            }
        }
        if let Some(fdir) = &fresh_dir {
            let fpath = fdir.join(format!("{stem}.json"));
            if !fpath.exists() {
                println!("     {stem}: no fresh artifact, comparison skipped");
                continue;
            }
            let Some(fresh) = read(&fpath, &mut failures) else {
                continue;
            };
            match gate::compare(stem, &text, &fresh) {
                Ok(regressions) if regressions.is_empty() => {
                    println!("     {stem}: fresh run within tolerance");
                }
                Ok(regressions) => {
                    failures += regressions.len();
                    for r in &regressions {
                        eprintln!("FAIL {stem}: {r}");
                    }
                }
                Err(e) => {
                    failures += 1;
                    eprintln!("FAIL {stem}: comparison error: {e}");
                }
            }
        }
    }

    if checked == 0 {
        eprintln!("no BENCH_*.json found under {}", dir.display());
        std::process::exit(1);
    }
    if failures > 0 {
        eprintln!("bench_gate: {failures} failure(s)");
        std::process::exit(1);
    }
    println!("bench_gate: {checked} file(s) clean");
}

/// Reads one artifact, counting (and reporting) unreadable files as
/// failures. A *missing* committed artifact is a failure too: the gate's
/// whole point is that the trajectory stays complete.
fn read(path: &Path, failures: &mut usize) -> Option<String> {
    match std::fs::read_to_string(path) {
        Ok(text) => Some(text),
        Err(e) => {
            *failures += 1;
            eprintln!("FAIL {}: {e}", path.display());
            None
        }
    }
}
