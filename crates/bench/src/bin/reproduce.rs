//! Regenerates every table and figure of the ThunderServe paper on the
//! simulated substrate.
//!
//! ```text
//! reproduce [--exp <id>] [--quick] [--list]
//! ```

use std::time::Instant;
use ts_bench::all_experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let list = args.iter().any(|a| a == "--list");
    let exp_filter = args
        .iter()
        .position(|a| a == "--exp")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let exps = all_experiments();
    if list {
        for e in &exps {
            println!("{:8} {}", e.id, e.title);
        }
        return;
    }
    let mut ran = 0;
    for e in &exps {
        if let Some(f) = &exp_filter {
            if e.id != f {
                continue;
            }
        }
        let start = Instant::now();
        println!("==================================================================");
        println!("[{}] {}", e.id, e.title);
        println!("==================================================================");
        let report = (e.run)(quick);
        println!("{report}");
        println!(
            "({} finished in {:.1}s)\n",
            e.id,
            start.elapsed().as_secs_f64()
        );
        ran += 1;
    }
    if ran == 0 {
        eprintln!("no experiment matched; use --list to see ids");
        std::process::exit(1);
    }
}
