//! Regenerates every table and figure of the ThunderServe paper on the
//! simulated substrate.
//!
//! ```text
//! reproduce [--exp <id>] [--quick] [--list] [--trace <path>] [--metrics <base>]
//! ```
//!
//! `--trace <path>` additionally runs the telemetry demo scenario and
//! writes its Chrome trace-event JSON there (viewable in Perfetto).
//! `--metrics <base>` runs the same scenario with the streaming
//! observability plane attached and writes `<base>.prom` (Prometheus text
//! exposition, validated before writing) and `<base>.json` (compact metric
//! dump).

use std::time::Instant;
use ts_bench::all_experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let list = args.iter().any(|a| a == "--list");
    let exp_filter = args
        .iter()
        .position(|a| a == "--exp")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let trace_out = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let metrics_out = args
        .iter()
        .position(|a| a == "--metrics")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let exps = all_experiments();
    if list {
        for e in &exps {
            println!("{:8} {}", e.id, e.title);
        }
        return;
    }
    let mut ran = 0;
    for e in &exps {
        if let Some(f) = &exp_filter {
            if e.id != f {
                continue;
            }
        }
        let start = Instant::now();
        println!("==================================================================");
        println!("[{}] {}", e.id, e.title);
        println!("==================================================================");
        let report = (e.run)(quick);
        println!("{report}");
        println!(
            "({} finished in {:.1}s)\n",
            e.id,
            start.elapsed().as_secs_f64()
        );
        ran += 1;
    }
    if let Some(base) = metrics_out {
        let demo = ts_bench::trace_demo::run(quick);
        let prom = ts_telemetry::render_prometheus(&demo.stream);
        match ts_telemetry::validate_exposition(&prom) {
            Ok(stats) => {
                let prom_path = format!("{base}.prom");
                let json_path = format!("{base}.json");
                if let Err(e) = std::fs::write(&prom_path, &prom)
                    .and_then(|()| std::fs::write(&json_path, demo.stream.to_json()))
                {
                    eprintln!("cannot write metrics: {e}");
                    std::process::exit(1);
                }
                println!(
                    "metrics: wrote {prom_path} ({} families, {} samples) and {json_path}",
                    stats.families, stats.samples
                );
            }
            Err(e) => {
                eprintln!("exposition failed validation: {e}");
                std::process::exit(1);
            }
        }
        if trace_out.is_none() {
            return;
        }
    }
    if let Some(out) = trace_out {
        let demo = ts_bench::trace_demo::run(quick);
        let json = ts_telemetry::chrome::export(&demo.log);
        match ts_telemetry::validate_chrome_trace(&json) {
            Ok(stats) => {
                if let Err(e) = std::fs::write(&out, &json) {
                    eprintln!("cannot write {out}: {e}");
                    std::process::exit(1);
                }
                println!(
                    "trace: wrote {out} ({} events) — open in https://ui.perfetto.dev",
                    stats.events
                );
            }
            Err(e) => {
                eprintln!("exported trace failed validation: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    if ran == 0 {
        eprintln!("no experiment matched; use --list to see ids");
        std::process::exit(1);
    }
}
