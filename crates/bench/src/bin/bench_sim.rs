//! Raw event-loop throughput of the simulator on request-count × replica
//! grids, written as `BENCH_sim.json`.
//!
//! Each arm builds a homogeneous A5000 phase-split deployment (half prefill,
//! half decode, tp=1 per replica), generates a fixed-size Poisson trace and
//! times one full `Simulation::run`. Workload generation and plan
//! construction are excluded from the timing.
//!
//! `--quick` runs the small arms only and asserts the committed floor, for
//! CI. The full run (no flag) includes the 1M-request × 1k-replica day-trace
//! arm and asserts the ≥5x events/sec win on the 100k × 64 arm over the
//! pre-refactor loop (both numbers are recorded in the JSON).

use std::time::Instant;
use ts_cluster::presets;
use ts_common::{
    DeploymentPlan, GpuId, GroupSpec, ModelSpec, ParallelConfig, Phase, Request, RoutingMatrix,
    SimDuration, StageSpec,
};
use ts_sim::{SimConfig, Simulation};
use ts_workload::{generator::generate, spec};

/// Pre-refactor loop (BinaryHeap + HashMap state + per-step decode events),
/// measured on this machine immediately before the slab/indexed-queue/
/// coalescing rewrite landed, same arms, same traces. The 1M × 1k arm is the
/// pre-PR loop's number for reference only; the quick floor below derives
/// from the 10k arm.
struct Baseline {
    requests: usize,
    replicas: usize,
    wall_clock_s: f64,
    /// Events the pre-refactor loop processed on this arm. The old loop had
    /// no counter; this is the event count of the bit-identical compat path
    /// (coalescing disabled, arrivals counted), which dispatches exactly the
    /// same event sequence.
    events: u64,
    requests_per_sec: f64,
}

impl Baseline {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_clock_s
    }
}

const BASELINE: &[Baseline] = &[
    Baseline {
        requests: 10_000,
        replicas: 8,
        wall_clock_s: 0.1294,
        events: 341_108,
        requests_per_sec: 77_260.6,
    },
    Baseline {
        requests: 100_000,
        replicas: 64,
        wall_clock_s: 0.8824,
        events: 3_414_259,
        requests_per_sec: 113_322.4,
    },
    Baseline {
        requests: 1_000_000,
        replicas: 1024,
        wall_clock_s: 18.1879,
        events: 34_174_641,
        requests_per_sec: 54_981.5,
    },
];

struct Arm {
    requests: usize,
    replicas: usize,
    rate: f64,
}

/// ~1.25 requests/s per decode replica: a lightly loaded day-trace shape
/// (thin decode batches), the regime the ROADMAP's autoscaling sweeps live
/// in.
const ARMS: &[Arm] = &[
    Arm {
        requests: 10_000,
        replicas: 8,
        rate: 5.0,
    },
    Arm {
        requests: 100_000,
        replicas: 64,
        rate: 40.0,
    },
    Arm {
        requests: 1_000_000,
        replicas: 1024,
        rate: 640.0,
    },
];

fn split_plan(replicas: usize, layers: usize) -> DeploymentPlan {
    let replica = |phase, gpu: u32| {
        GroupSpec::new(
            phase,
            ParallelConfig::new(1, 1).unwrap(),
            vec![StageSpec {
                gpus: vec![GpuId(gpu)],
                layers,
            }],
        )
        .unwrap()
    };
    let half = replicas / 2;
    let mut groups = Vec::with_capacity(replicas);
    for g in 0..half {
        groups.push(replica(Phase::Prefill, g as u32));
    }
    for g in 0..half {
        groups.push(replica(Phase::Decode, (half + g) as u32));
    }
    // Paired routing (prefill i feeds decode i), as the KV-transfer-aware
    // orchestration produces at scale: a dense uniform matrix over 512×512
    // pairs would make every arrival an O(pairs) stride-router scan and
    // benchmark the router instead of the event loop.
    let mut rates = vec![vec![0.0; half]; half];
    for (p, row) in rates.iter_mut().enumerate() {
        row[p] = 1.0 / half as f64;
    }
    DeploymentPlan::new(groups, RoutingMatrix::new(rates).unwrap()).unwrap()
}

fn trace(arm: &Arm, seed: u64) -> Vec<Request> {
    // Over-generate slightly, then truncate to the exact request count so
    // the arm sizes in the JSON are stable across seeds.
    let horizon = SimDuration::from_secs_f64(1.25 * arm.requests as f64 / arm.rate);
    let mut reqs = generate(&spec::fixed(256, 64, arm.rate), horizon, seed);
    assert!(
        reqs.len() >= arm.requests,
        "horizon too short: {} < {}",
        reqs.len(),
        arm.requests
    );
    reqs.truncate(arm.requests);
    reqs
}

struct Measured {
    requests: usize,
    replicas: usize,
    wall_clock_s: f64,
    events_processed: u64,
    events_per_sec: f64,
    requests_per_sec: f64,
}

fn run_arm(arm: &Arm, compat: bool) -> Measured {
    let model = ModelSpec::llama_7b();
    let cluster = presets::a5000_cluster(arm.replicas);
    let plan = split_plan(arm.replicas, model.num_layers);
    let reqs = trace(arm, 0x5151);
    let cfg = SimConfig::new(model).with_decode_coalescing(!compat);
    let mut sim = Simulation::new(&cluster, &plan, cfg).unwrap();
    let t0 = Instant::now();
    let m = sim.run(&reqs).unwrap();
    let wall = t0.elapsed().as_secs_f64();
    assert_eq!(
        m.num_completed() + m.num_dropped() + m.num_rejected(),
        reqs.len(),
        "conservation violated on {}x{}",
        arm.requests,
        arm.replicas
    );
    assert_eq!(m.num_rejected(), 0, "arm must not shed load");
    let events = sim.events_processed();
    Measured {
        requests: arm.requests,
        replicas: arm.replicas,
        wall_clock_s: wall,
        events_processed: events,
        events_per_sec: events as f64 / wall,
        requests_per_sec: reqs.len() as f64 / wall,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    // Diagnostic mode: run the bit-identical per-step compatibility path
    // (decode coalescing off). Its event counts are what the pre-refactor
    // loop dispatched; the BASELINE table's `events` fields come from here.
    let compat = args.iter().any(|a| a == "--compat");
    let out = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_sim.json".into());

    let arms: Vec<&Arm> = if quick {
        ARMS.iter().take(2).collect()
    } else {
        ARMS.iter().collect()
    };

    println!(
        "simulator event-loop throughput ({} arms{})",
        arms.len(),
        if compat { ", compat path" } else { "" }
    );
    println!(
        "{:>10} {:>9} {:>12} {:>12} {:>14} {:>12}",
        "requests", "replicas", "wall (s)", "events", "events/s", "reqs/s"
    );
    let mut measured = Vec::new();
    for arm in arms {
        let m = run_arm(arm, compat);
        println!(
            "{:>10} {:>9} {:>12.3} {:>12} {:>14.0} {:>12.0}",
            m.requests,
            m.replicas,
            m.wall_clock_s,
            m.events_processed,
            m.events_per_sec,
            m.requests_per_sec
        );
        measured.push(m);
    }

    let mut json = String::from("{\n  \"arms\": [\n");
    for (i, m) in measured.iter().enumerate() {
        let base = BASELINE
            .iter()
            .find(|b| b.requests == m.requests && b.replicas == m.replicas);
        json.push_str(&format!(
            "    {{\"requests\": {}, \"replicas\": {}, \"wall_clock_s\": {:.4}, \
             \"events_processed\": {}, \"events_per_sec\": {:.0}, \"requests_per_sec\": {:.1}",
            m.requests,
            m.replicas,
            m.wall_clock_s,
            m.events_processed,
            m.events_per_sec,
            m.requests_per_sec
        ));
        if let Some(b) = base {
            // Coalescing dispatches far fewer events for the same simulated
            // work, so the honest throughput figure is *pre-refactor event
            // equivalents* retired per second: the old loop's event count
            // for this arm over the new wall time.
            let equivalent_eps = b.events as f64 / m.wall_clock_s;
            json.push_str(&format!(
                ", \"baseline_wall_clock_s\": {:.4}, \"baseline_events\": {}, \
                 \"baseline_events_per_sec\": {:.0}, \"baseline_requests_per_sec\": {:.1}, \
                 \"equivalent_events_per_sec\": {:.0}, \"speedup_events_per_sec\": {:.2}",
                b.wall_clock_s,
                b.events,
                b.events_per_sec(),
                b.requests_per_sec,
                equivalent_eps,
                equivalent_eps / b.events_per_sec()
            ));
        }
        json.push_str(if i + 1 == measured.len() {
            "}\n"
        } else {
            "},\n"
        });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out, &json).expect("write json");
    println!("wrote {out}");

    if compat {
        return; // diagnostic run: no floors apply to the per-step path
    }
    // The speedup floors (parity everywhere; 5x on the full-mode 100k arm)
    // live in the shared gate so CI enforces the same thresholds on the
    // committed artifact.
    match ts_bench::gate::check("BENCH_sim", &json, !quick) {
        Ok(r) => println!("gate: {} checks held", r.checks),
        Err(e) => {
            eprintln!("gate: {e}");
            std::process::exit(1);
        }
    }
}
