//! Overhead and accuracy of the streaming observability plane, written as
//! `BENCH_obs.json` and enforced by the shared gate (`ts_bench::gate`).
//!
//! Three sections:
//!
//! * **arms** — wall-clock of the event-loop benchmark (same plans and
//!   traces as `bench_sim`, decode coalescing off in *both* arms so the
//!   event stream is fixed) with the streaming plane detached vs attached.
//!   The plane's whole job is to be cheap enough to leave on, so the
//!   overhead fraction is the committed figure: ≤5% on the full-mode
//!   100k × 64 arm.
//! * **sketch** — relative error of the plane's online p50/p99 TTFT and
//!   E2E estimates against exact nearest-rank percentiles recomputed from
//!   the post-hoc trace of the same run, which must stay within the
//!   configured sketch accuracy.
//! * **profiler** — the zero-dependency self-profiler scoped around this
//!   benchmark's own stages; its hierarchical report is printed and its
//!   Chrome-trace export is validated.
//!
//! `--quick` runs the 10k × 8 arm only with lax wall-clock budgets, for CI
//! on untrusted machines.

use std::time::Instant;
use ts_cluster::presets;
use ts_common::{
    DeploymentPlan, GpuId, GroupSpec, ModelSpec, ParallelConfig, Phase, Request, RoutingMatrix,
    SimDuration, SloSpec, StageSpec,
};
use ts_sim::{SimConfig, Simulation};
use ts_telemetry::{profile, StreamConfig};
use ts_workload::{generator::generate, spec};

/// Timed off/on pairs per arm, run in alternating order so thermal or
/// load drift lands on both configurations equally. The reported overhead
/// compares the per-configuration *minimum* wall times: external noise
/// (scheduler steal, cache eviction by other tenants) only ever adds
/// time, so the minima are the best available estimate of true cost.
const PAIRS: usize = 7;

struct Arm {
    requests: usize,
    replicas: usize,
    rate: f64,
}

const ARMS: &[Arm] = &[
    Arm {
        requests: 10_000,
        replicas: 8,
        rate: 5.0,
    },
    Arm {
        requests: 100_000,
        replicas: 64,
        rate: 40.0,
    },
];

fn slo() -> SloSpec {
    SloSpec::new(
        SimDuration::from_millis(500),
        SimDuration::from_millis(50),
        SimDuration::from_secs(10),
    )
}

/// Same homogeneous paired phase-split shape as `bench_sim`.
fn split_plan(replicas: usize, layers: usize) -> DeploymentPlan {
    let replica = |phase, gpu: u32| {
        GroupSpec::new(
            phase,
            ParallelConfig::new(1, 1).unwrap(),
            vec![StageSpec {
                gpus: vec![GpuId(gpu)],
                layers,
            }],
        )
        .unwrap()
    };
    let half = replicas / 2;
    let mut groups = Vec::with_capacity(replicas);
    for g in 0..half {
        groups.push(replica(Phase::Prefill, g as u32));
    }
    for g in 0..half {
        groups.push(replica(Phase::Decode, (half + g) as u32));
    }
    let mut rates = vec![vec![0.0; half]; half];
    for (p, row) in rates.iter_mut().enumerate() {
        row[p] = 1.0 / half as f64;
    }
    DeploymentPlan::new(groups, RoutingMatrix::new(rates).unwrap()).unwrap()
}

fn trace(arm: &Arm, seed: u64) -> Vec<Request> {
    let horizon = SimDuration::from_secs_f64(1.25 * arm.requests as f64 / arm.rate);
    let mut reqs = generate(&spec::fixed(256, 64, arm.rate), horizon, seed);
    assert!(reqs.len() >= arm.requests, "horizon too short");
    reqs.truncate(arm.requests);
    reqs
}

struct Measured {
    requests: usize,
    replicas: usize,
    wall_off_s: f64,
    wall_on_s: f64,
    events_observed: u64,
    overhead_fraction: f64,
    ns_per_event: f64,
}

/// One timed run of the arm; returns its wall clock and the plane's
/// observed-event count when streaming was attached.
fn time_once(
    cluster: &ts_cluster::Cluster,
    plan: &DeploymentPlan,
    model: &ModelSpec,
    reqs: &[Request],
    streaming: bool,
) -> (f64, u64) {
    // Decode coalescing off in both arms: the observing and plain runs
    // then dispatch the identical per-step event stream, so the delta
    // is purely the plane's per-event cost.
    let mut cfg = SimConfig::new(model.clone()).with_decode_coalescing(false);
    if streaming {
        cfg = cfg.with_streaming(StreamConfig::new(slo()));
    }
    let mut sim = Simulation::new(cluster, plan, cfg).unwrap();
    let t0 = Instant::now();
    let m = sim.run(reqs).unwrap();
    let wall = t0.elapsed().as_secs_f64();
    assert_eq!(
        m.num_completed() + m.num_dropped() + m.num_rejected(),
        reqs.len(),
        "conservation violated"
    );
    let observed = sim
        .take_streaming()
        .map_or(0, |p| p.snapshot().events_observed);
    (wall, observed)
}

fn run_arm(arm: &Arm) -> Measured {
    let model = ModelSpec::llama_7b();
    let cluster = presets::a5000_cluster(arm.replicas);
    let plan = split_plan(arm.replicas, model.num_layers);
    let reqs = {
        let _g = profile::scope("generate_trace");
        trace(arm, 0x5151)
    };
    let mut wall_off = f64::INFINITY;
    let mut wall_on = f64::INFINITY;
    let mut observed = 0;
    // Untimed warmup faults in code pages and allocator arenas.
    time_once(&cluster, &plan, &model, &reqs, false);
    for i in 0..PAIRS {
        let _g = profile::scope("measure_pair");
        // Alternate the order within each pair so warmup and slow drift
        // bias neither configuration.
        let streaming_first = i % 2 == 0;
        let (w1, o1) = time_once(&cluster, &plan, &model, &reqs, streaming_first);
        let (w2, o2) = time_once(&cluster, &plan, &model, &reqs, !streaming_first);
        let (off, on) = if streaming_first { (w2, w1) } else { (w1, w2) };
        wall_off = wall_off.min(off);
        wall_on = wall_on.min(on);
        observed = o1.max(o2);
    }
    assert!(observed > 0, "plane observed nothing");
    let overhead = wall_on / wall_off - 1.0;
    Measured {
        requests: arm.requests,
        replicas: arm.replicas,
        wall_off_s: wall_off,
        wall_on_s: wall_on,
        events_observed: observed,
        overhead_fraction: overhead,
        ns_per_event: overhead.max(0.0) * wall_off * 1e9 / observed as f64,
    }
}

struct SketchAccuracy {
    alpha: f64,
    p50_ttft_err_rel: f64,
    p99_ttft_err_rel: f64,
    p50_e2e_err_rel: f64,
    p99_e2e_err_rel: f64,
}

/// Online-vs-exact accuracy on the small arm: the plane's sketch quantiles
/// against nearest-rank percentiles from the same run's trace spans.
fn sketch_accuracy(alpha: f64) -> SketchAccuracy {
    let _g = profile::scope("sketch_accuracy");
    let arm = &ARMS[0];
    let model = ModelSpec::llama_7b();
    let cluster = presets::a5000_cluster(arm.replicas);
    let plan = split_plan(arm.replicas, model.num_layers);
    let reqs = trace(arm, 0x5151);
    let cfg = SimConfig::new(model)
        .with_decode_coalescing(false)
        .with_telemetry(true)
        .with_streaming(StreamConfig::new(slo()).with_sketch_alpha(alpha));
    let mut sim = Simulation::new(&cluster, &plan, cfg).unwrap();
    sim.run(&reqs).unwrap();
    let log = sim.take_trace().unwrap();
    let snap = sim.take_streaming().unwrap().snapshot();

    // One pass over the raw events (a per-request span scan would be
    // quadratic), mirroring the plane's own insert semantics: first
    // FirstToken per request wins.
    let mut arrivals = std::collections::BTreeMap::new();
    let mut first_seen = std::collections::BTreeSet::new();
    let mut ttfts = Vec::new();
    let mut e2es = Vec::new();
    for e in log.events() {
        match e.kind {
            ts_telemetry::TraceKind::Arrived { request } => {
                arrivals.insert(request, e.at);
            }
            ts_telemetry::TraceKind::FirstToken { request } if first_seen.insert(request) => {
                ttfts.push(e.at.saturating_since(arrivals[&request]));
            }
            ts_telemetry::TraceKind::Finished { request } => {
                e2es.push(e.at.saturating_since(arrivals[&request]));
            }
            _ => {}
        }
    }
    ttfts.sort_unstable();
    e2es.sort_unstable();
    let rel = |sketch: &ts_telemetry::QuantileSketch, exact: &[SimDuration], q: f64| {
        let s = sketch.quantile_duration(q).unwrap().as_secs_f64();
        let e = ts_common::stats::percentile(exact, q)
            .unwrap()
            .as_secs_f64();
        (s - e).abs() / e
    };
    SketchAccuracy {
        alpha,
        p50_ttft_err_rel: rel(&snap.ttft, &ttfts, 0.5),
        p99_ttft_err_rel: rel(&snap.ttft, &ttfts, 0.99),
        p50_e2e_err_rel: rel(&snap.e2e, &e2es, 0.5),
        p99_e2e_err_rel: rel(&snap.e2e, &e2es, 0.99),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_obs.json".into());

    profile::reset();
    profile::enable();
    let root = profile::scope("bench_obs");

    let arms: Vec<&Arm> = if quick {
        ARMS.iter().take(1).collect()
    } else {
        ARMS.iter().collect()
    };
    println!(
        "streaming-plane overhead ({} arms, best of {PAIRS} alternating paired runs)",
        arms.len()
    );
    println!(
        "{:>10} {:>9} {:>12} {:>12} {:>10} {:>12} {:>10}",
        "requests", "replicas", "off (s)", "on (s)", "overhead", "events", "ns/event"
    );
    let mut measured = Vec::new();
    for arm in arms {
        let m = run_arm(arm);
        println!(
            "{:>10} {:>9} {:>12.4} {:>12.4} {:>9.2}% {:>12} {:>10.1}",
            m.requests,
            m.replicas,
            m.wall_off_s,
            m.wall_on_s,
            m.overhead_fraction * 100.0,
            m.events_observed,
            m.ns_per_event
        );
        measured.push(m);
    }

    let acc = sketch_accuracy(0.01);
    println!(
        "sketch accuracy (alpha {}): ttft p50 {:.5} p99 {:.5}, e2e p50 {:.5} p99 {:.5}",
        acc.alpha,
        acc.p50_ttft_err_rel,
        acc.p99_ttft_err_rel,
        acc.p50_e2e_err_rel,
        acc.p99_e2e_err_rel
    );

    drop(root);
    let report = profile::report();
    println!("\nself-profile:\n{}", report.to_text());
    let chrome = report.to_chrome_trace();
    let stats = ts_telemetry::validate_chrome_trace(&chrome).expect("valid self-profile trace");
    profile::disable();

    let mut json = String::from("{\n");
    json.push_str(
        "  \"benchmark\": \"streaming observability plane: event-loop wall-clock with the \
         plane detached vs attached (decode coalescing off in both arms, fixed event stream), \
         online sketch accuracy vs post-hoc exact percentiles, and the zero-dependency \
         self-profiler\",\n",
    );
    json.push_str(
        "  \"note\": \"wall_*_s are per-configuration minima over alternating off/on pairs; \
         overhead_fraction = min(on)/min(off) - 1. External noise only ever adds time, so \
         the minima estimate true cost. The committed (full-mode) 100k x 64 arm must stay \
         within the 5% budget enforced by bench_gate. Sketch errors are deterministic \
         (simulated time) and must stay within the configured relative accuracy.\",\n",
    );
    json.push_str("  \"arms\": [\n");
    for (i, m) in measured.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"requests\": {}, \"replicas\": {}, \"wall_off_s\": {:.4}, \
             \"wall_on_s\": {:.4}, \"events_observed\": {}, \"overhead_fraction\": {:.4}, \
             \"ns_per_event\": {:.1}}}{}\n",
            m.requests,
            m.replicas,
            m.wall_off_s,
            m.wall_on_s,
            m.events_observed,
            m.overhead_fraction,
            m.ns_per_event,
            if i + 1 == measured.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"sketch\": {{\"alpha\": {}, \"p50_ttft_err_rel\": {:.6}, \
         \"p99_ttft_err_rel\": {:.6}, \"p50_e2e_err_rel\": {:.6}, \
         \"p99_e2e_err_rel\": {:.6}}},\n",
        acc.alpha,
        acc.p50_ttft_err_rel,
        acc.p99_ttft_err_rel,
        acc.p50_e2e_err_rel,
        acc.p99_e2e_err_rel
    ));
    json.push_str(&format!(
        "  \"profiler\": {{\"root_total_s\": {:.4}, \"entries\": {}, \"chrome_slices\": {}}}\n",
        report.root_total().as_secs_f64(),
        report.entries.len(),
        stats.slices
    ));
    json.push_str("}\n");
    std::fs::write(&out, &json).expect("write json");
    println!("wrote {out}");

    // The shared gate replaces the ad-hoc floor asserts: quick CI runs get
    // the lax wall-clock budget, full runs the committed 5% budget.
    match ts_bench::gate::check("BENCH_obs", &json, !quick) {
        Ok(r) => println!("gate: {} checks held", r.checks),
        Err(e) => {
            eprintln!("gate: {e}");
            std::process::exit(1);
        }
    }
}
