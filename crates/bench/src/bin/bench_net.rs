//! Records flow-level KV-transfer contention numbers to `BENCH_net.json`,
//! seeding the repo's network-fabric perf trajectory.
//!
//! Drives `ts_net::FlowFabric` directly on the Appendix-H two-instance
//! cluster (4×A40 + 4×3090Ti over 5 Gbps): `n` KV transfers of a
//! 1024-token LLaMA-13B cache start simultaneously from the A40 node to
//! the 3090Ti node and the fabric is drained event by event, exactly as
//! the simulator does. Sweeps the concurrent-flow count against {4-bit,
//! fp16} wire precision. Everything is simulated time — results are
//! bit-reproducible, no wall-clock noise.
//!
//! Usage: `cargo run --release -p ts-bench --bin bench_net [out.json]`

use ts_cluster::presets;
use ts_common::{GpuId, ModelSpec, SimTime};
use ts_kvcache::codec::{KvCodec, KvWirePrecision};
use ts_net::{FlowEstimate, FlowFabric, FlowPoll};

const FLOW_SWEEP: [usize; 5] = [1, 2, 4, 8, 16];
const TOKENS: u64 = 1024;

struct Arm {
    flows: usize,
    precision: &'static str,
    wire_bytes_per_flow: u64,
    mean_transfer_s: f64,
    max_transfer_s: f64,
}

/// Starts `n` simultaneous node-a → node-b flows and drains the fabric,
/// returning each flow's completion time.
fn drain(n: usize, codec: &KvCodec) -> Vec<SimTime> {
    let cluster = presets::network_case_cluster(presets::ETH_5GBPS);
    let mut fabric = FlowFabric::from_cluster(&cluster);
    let bytes = codec.wire_bytes(TOKENS) as f64;
    let mut events: Vec<FlowEstimate> = Vec::new();
    for i in 0..n {
        let from = GpuId((i % 4) as u32);
        let to = GpuId(4 + (i % 4) as u32);
        events = fabric.start(i as u64, from, to, bytes, SimTime::ZERO);
    }
    let mut done = vec![SimTime::ZERO; n];
    while !fabric.is_empty() {
        // Pop the earliest pending estimate, exactly like the event queue.
        let idx = events
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.done_at)
            .map(|(i, _)| i)
            .expect("active flows must have pending events");
        let e = events.swap_remove(idx);
        match fabric.poll(e.key, e.epoch, e.done_at) {
            FlowPoll::Stale => {}
            FlowPoll::InFlight(next) => events.push(next),
            FlowPoll::Done(rest) => {
                done[e.key as usize] = e.done_at;
                events = rest;
            }
        }
    }
    done
}

fn measure(flows: usize, name: &'static str, precision: KvWirePrecision) -> Arm {
    let codec = KvCodec::new(ModelSpec::llama_13b(), precision);
    let times = drain(flows, &codec);
    let sum: f64 = times.iter().map(|t| t.as_secs_f64()).sum();
    let max = times.iter().map(|t| t.as_secs_f64()).fold(0.0f64, f64::max);
    Arm {
        flows,
        precision: name,
        wire_bytes_per_flow: codec.wire_bytes(TOKENS),
        mean_transfer_s: sum / flows as f64,
        max_transfer_s: max,
    }
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_net.json".to_string());

    let mut arms = Vec::new();
    for flows in FLOW_SWEEP {
        for (name, p) in [
            ("int4", KvWirePrecision::DEFAULT_COMPRESSED),
            ("fp16", KvWirePrecision::F16),
        ] {
            let arm = measure(flows, name, p);
            println!(
                "{:>2} flows  {}  {:>12} B/flow  mean {:>8.4}s  max {:>8.4}s",
                arm.flows,
                arm.precision,
                arm.wire_bytes_per_flow,
                arm.mean_transfer_s,
                arm.max_transfer_s
            );
            arms.push(arm);
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"ts-net flow fabric: n simultaneous 1024-token LLaMA-13B KV transfers, A40 node -> 3090Ti node over 5 Gbps\",\n");
    json.push_str("  \"note\": \"simulated time (deterministic, no wall-clock). Mean transfer latency grows with concurrent-flow count under max-min sharing, and the fp16-vs-int4 gap widens with contention because every extra wire byte is paid at a shared rate.\",\n");
    json.push_str(&format!("  \"tokens_per_transfer\": {TOKENS},\n"));
    json.push_str("  \"arms\": [\n");
    for (i, a) in arms.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"flows\": {}, \"precision\": \"{}\", \"wire_bytes_per_flow\": {}, \"mean_transfer_s\": {:.6}, \"max_transfer_s\": {:.6}}}{}\n",
            a.flows,
            a.precision,
            a.wire_bytes_per_flow,
            a.mean_transfer_s,
            a.max_transfer_s,
            if i + 1 == arms.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");

    // The two qualitative properties the fabric exists to model — latency
    // grows with contention, the fp16-vs-int4 gap widens — live in the
    // shared gate, so CI enforces them on the committed artifact too.
    match ts_bench::gate::check("BENCH_net", &json, true) {
        Ok(r) => println!("gate: {} checks held", r.checks),
        Err(e) => {
            eprintln!("gate: {e}");
            std::process::exit(1);
        }
    }
    std::fs::write(&out, json).expect("write benchmark output");
    println!("wrote {out}");
}
