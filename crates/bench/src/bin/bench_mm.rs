//! Records the multi-model shared-pool numbers to `BENCH_mm.json`.
//!
//! Two tenants — a LLaMA-7B conversation service (60% traffic share) and a
//! LLaMA-13B coding service (40%) — rent the same 12×A5000 pool. The
//! partitioned baseline carves the pool by contract share and schedules each
//! tenant alone in its slice; the shared arm runs `schedule_multi` over the
//! whole pool. Everything is simulated time, bit-reproducible.
//!
//! The properties this extension exists for are asserted before the JSON is
//! written, so CI's `--quick` run fails if a regression flattens them:
//! share-weighted joint attainment on the shared pool must be at least the
//! partitioned baseline's, at equal or lower $/hr, and every tenant must
//! complete work in both arms.
//!
//! Usage: `cargo run --release -p ts-bench --bin bench_mm [--quick] [out.json]`

use ts_bench::exps::mm;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_mm.json".to_string());

    let r = mm::measure(quick);
    for arm in [&r.partitioned, &r.shared] {
        for t in &arm.tenants {
            println!(
                "{:>11}  {}  attainment {:>6.3}  completed {:>4}/{:<4}",
                arm.name, t.model, t.attainment, t.completed, t.submitted
            );
            assert!(
                t.submitted > 0,
                "{}: {} submitted nothing",
                arm.name,
                t.model
            );
            assert!(
                t.completed > 0,
                "{}: {} completed nothing",
                arm.name,
                t.model
            );
        }
        println!(
            "{:>11}  weighted attainment {:.3}  cost ${:.2}/hr",
            arm.name, arm.weighted_attainment, arm.cost_per_hour
        );
    }
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"multi-model serving: two tenants (LLaMA-7B conversation at 60% share, LLaMA-13B coding at 40%) on one 12xA5000 pool, shared schedule_multi plan vs contract-share static partition (8+4 GPUs)\",\n");
    json.push_str("  \"note\": \"simulated time (deterministic). attainment = joint SLO attainment under each tenant's own SLO; weighted = traffic-share-weighted across tenants; cost = hourly price of the GPUs each arm's plan(s) occupy. The 13B coding tenant starves in its 4-GPU slice while the 7B tenant strands capacity; sharing moves the stranded GPUs across the tenant boundary.\",\n");
    json.push_str("  \"arms\": [\n");
    let arms = [&r.partitioned, &r.shared];
    for (i, a) in arms.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"arm\": \"{}\", \"weighted_attainment\": {:.6}, \"cost_per_hour\": {:.3}, \"tenants\": [\n",
            a.name, a.weighted_attainment, a.cost_per_hour
        ));
        for (j, t) in a.tenants.iter().enumerate() {
            json.push_str(&format!(
                "      {{\"model\": \"{}\", \"attainment\": {:.6}, \"completed\": {}, \"submitted\": {}}}{}\n",
                t.model,
                t.attainment,
                t.completed,
                t.submitted,
                if j + 1 == a.tenants.len() { "" } else { "," }
            ));
        }
        json.push_str(&format!(
            "    ]}}{}\n",
            if i + 1 == arms.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");

    // Sharing must not lose weighted attainment or cost more than the
    // static partition; the shared gate enforces the same invariants on
    // the committed artifact in CI.
    match ts_bench::gate::check("BENCH_mm", &json, !quick) {
        Ok(r) => println!("gate: {} checks held", r.checks),
        Err(e) => {
            eprintln!("gate: {e}");
            std::process::exit(1);
        }
    }
    std::fs::write(&out, json).expect("write benchmark output");
    println!("wrote {out}");
}
