//! Records scheduler wall-clock and evaluation-throughput numbers to
//! `BENCH_scheduler.json`, seeding the repo's scheduler perf trajectory.
//!
//! Runs the full two-level `schedule` at the three criterion cluster sizes
//! (8/16/32 GPUs) across a sweep of `num_threads` settings. Results are
//! bit-identical across thread counts (asserted here as a sanity check), so
//! the table isolates the wall-clock effect of parallel neighbourhood
//! evaluation.
//!
//! Usage: `cargo run --release -p ts-bench --bin bench_scheduler [out.json]`

use std::time::Instant;
use thunderserve_core::{Scheduler, SchedulerConfig};
use ts_cluster::presets;
use ts_common::{ModelSpec, SimDuration, SloSpec};
use ts_workload::spec;

const ITERATIONS: usize = 5;
const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

fn slo() -> SloSpec {
    SloSpec::new(
        SimDuration::from_millis(400 * 8),
        SimDuration::from_millis(30 * 8),
        SimDuration::from_secs(48),
    )
}

struct Arm {
    gpus: usize,
    threads: usize,
    /// Median wall-clock seconds over [`ITERATIONS`] runs.
    median_s: f64,
    /// Minimum wall-clock seconds (least-noise estimate).
    min_s: f64,
    /// Lower-level evaluations per run (thread-count invariant).
    evaluations: usize,
    /// Evaluations per second at the median wall-clock.
    evals_per_s: f64,
    score: f64,
}

fn measure(gpus: usize, threads: usize) -> Arm {
    let cluster = match gpus {
        8 => presets::network_case_cluster(presets::ETH_40GBPS),
        16 => presets::a5000_cluster(16),
        32 => presets::paper_cloud_cluster(),
        _ => unreachable!("unknown cluster size"),
    };
    let model = if gpus == 16 {
        ModelSpec::llama_13b()
    } else {
        ModelSpec::llama_30b()
    };
    let w = spec::coding(2.0);
    let s = slo();
    // Paper-scale search depth (N_step = 100, N_nghb = 10): per-step batches
    // are large enough that worker overhead amortizes, matching how the
    // scheduler actually runs after a node failure.
    let mut cfg = SchedulerConfig::default();
    cfg.seed = 1;
    cfg.num_threads = threads;
    let sched = Scheduler::new(cfg);

    // Warmup (also primes allocator and page cache).
    let reference = sched.schedule(&cluster, &model, &w, &s).unwrap();
    let mut times = Vec::with_capacity(ITERATIONS);
    for _ in 0..ITERATIONS {
        let t = Instant::now();
        let r = sched.schedule(&cluster, &model, &w, &s).unwrap();
        times.push(t.elapsed().as_secs_f64());
        assert_eq!(
            r.plan, reference.plan,
            "non-deterministic schedule at {gpus} GPUs, {threads} threads"
        );
        assert_eq!(r.evaluations, reference.evaluations);
    }
    times.sort_by(|a, b| a.total_cmp(b));
    let median_s = times[times.len() / 2];
    Arm {
        gpus,
        threads,
        median_s,
        min_s: times[0],
        evaluations: reference.evaluations,
        evals_per_s: reference.evaluations as f64 / median_s,
        score: reference.estimated_attainment,
    }
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_scheduler.json".to_string());
    let host_threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    let mut arms = Vec::new();
    for gpus in [8usize, 16, 32] {
        for threads in THREAD_SWEEP {
            let arm = measure(gpus, threads);
            println!(
                "schedule {:>2} GPUs  {} thr  median {:>8.4}s  min {:>8.4}s  {:>5} evals  {:>8.1} evals/s",
                arm.gpus, arm.threads, arm.median_s, arm.min_s, arm.evaluations, arm.evals_per_s
            );
            arms.push(arm);
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"two-level scheduler: full schedule, SchedulerConfig::default() (N_step=100, N_nghb=10), seed 1\",\n");
    json.push_str("  \"note\": \"results are bit-identical across thread counts; arms differ in wall-clock only. Thread arms > host_available_parallelism cannot speed up and only measure worker overhead.\",\n");
    json.push_str(&format!(
        "  \"host_available_parallelism\": {host_threads},\n"
    ));
    json.push_str(&format!("  \"iterations_per_arm\": {ITERATIONS},\n"));
    json.push_str("  \"arms\": [\n");
    for (i, a) in arms.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"gpus\": {}, \"threads\": {}, \"median_s\": {:.6}, \"min_s\": {:.6}, \"evaluations\": {}, \"evals_per_s\": {:.2}, \"score\": {:.6}}}{}\n",
            a.gpus,
            a.threads,
            a.median_s,
            a.min_s,
            a.evaluations,
            a.evals_per_s,
            a.score,
            if i + 1 == arms.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out, json).expect("write benchmark output");
    println!("wrote {out}");
}
