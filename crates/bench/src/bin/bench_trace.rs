//! Runs the telemetry demo scenario and exports its trace.
//!
//! ```text
//! bench_trace [--out <path>] [--quick] [--summary] [--timeline]
//! ```
//!
//! Serves a phase-split deployment over the contended flow-level fabric
//! with a mid-flight link fault, then writes the run's Chrome trace-event
//! JSON to `--out` (default `trace.json`) — open it at
//! <https://ui.perfetto.dev> — after validating it with the built-in
//! checker. `--summary` additionally prints the compact JSON summary,
//! `--timeline` the event timeline of the worst-latency request.

use ts_bench::trace_demo;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let summary = args.iter().any(|a| a == "--summary");
    let timeline = args.iter().any(|a| a == "--timeline");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "trace.json".into());

    let demo = trace_demo::run(quick);
    let m = &demo.metrics;
    println!(
        "served {} requests: {} completed, {} KV-transfer retries, {} trace events",
        demo.num_requests,
        m.num_completed(),
        m.recovery().kv_transfer_retries,
        demo.log.len(),
    );

    let json = ts_telemetry::chrome::export(&demo.log);
    let stats = match ts_telemetry::validate_chrome_trace(&json) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("exported trace failed validation: {e}");
            std::process::exit(1);
        }
    };
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    }
    println!(
        "wrote {out}: {} events ({} slices, {} instants, {} counter samples) \
         — open in https://ui.perfetto.dev",
        stats.events, stats.slices, stats.instants, stats.counters,
    );

    if summary {
        println!("{}", demo.log.summary_json());
    }
    if timeline {
        if let Some(id) = demo.worst_e2e_request() {
            println!("{}", demo.log.render_request_timeline(id));
        }
    }
}
