//! Records the elastic-autoscaling numbers to `BENCH_autoscale.json`.
//!
//! A 24-hour diurnal conversation day (morning ramp, 13:00 flash crowd, staggered
//! spot reclaim wave at 11:00/12:00) is served on the elastic cloud pool two
//! ways: the coordinated prefill/decode autoscaler over base + spot
//! capacity, and the oracle static fleet holding the whole pool on-demand.
//! Everything is simulated time, bit-reproducible.
//!
//! The properties this subsystem exists for are asserted before the JSON is
//! written, so CI's `--quick` run fails on regression:
//!
//! * the autoscaler stays within 5 points of the oracle's request-weighted
//!   SLO attainment,
//! * at a total bill at most 80% of the static fleet's,
//! * the cost ledger is internally consistent (per-segment entries sum to
//!   the trajectory total, exactly),
//! * every segment conserves requests (completed + dropped + rejected =
//!   submitted), and
//! * the elastic trajectory is bit-reproducible: a second run compares
//!   equal, record for record, dollar for dollar.
//!
//! Usage: `cargo run --release -p ts-bench --bin bench_autoscale [--quick] [out.json]`

use ts_bench::exps::autoscale;
use ts_telemetry::ScaleKind;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_autoscale.json".to_string());

    let r = autoscale::measure(quick);
    for (name, arm) in [("static", &r.static_fleet), ("autoscale", &r.elastic)] {
        println!(
            "{:>9}  attainment {:.3}  completed {:>6}  mean ${:>5.2}/hr  total ${:>7.2}  \
             acquire {} release {} drain {} flip {}",
            name,
            arm.mean_attainment(),
            arm.completed(),
            arm.mean_rate_per_hour(),
            arm.total_cost(),
            autoscale::action_count(arm, ScaleKind::Acquire),
            autoscale::action_count(arm, ScaleKind::Release),
            autoscale::action_count(arm, ScaleKind::Drain),
            autoscale::action_count(arm, ScaleKind::PhaseFlip),
        );
        for rec in &arm.records {
            println!(
                "{:>9}    seg {:>2}  att {:.3}  {:>5} reqs  {:>2} gpus ({}p:{}d)  ${:>5.2}/hr  blackout {:.1}s",
                name,
                rec.segment,
                rec.attainment,
                rec.submitted,
                rec.fleet_gpus,
                rec.prefill_groups,
                rec.decode_groups,
                rec.rate_per_hour,
                rec.blackout.as_secs_f64()
            );
            assert_eq!(
                rec.completed + rec.dropped + rec.rejected,
                rec.submitted,
                "{name}: segment {} must conserve requests",
                rec.segment
            );
        }
        let sum: f64 = arm.ledger.entries.iter().map(|e| e.cost).sum();
        assert_eq!(
            sum,
            arm.total_cost(),
            "{name}: ledger entries must sum to the total"
        );
        assert_eq!(arm.ledger.entries.len(), arm.records.len());
    }

    let gap = r.static_fleet.mean_attainment() - r.elastic.mean_attainment();
    let again = autoscale::measure_elastic(quick);
    assert_eq!(
        r.elastic, again,
        "elastic trajectory must be bit-reproducible at a fixed seed"
    );
    println!(
        "gap {:.3} points, saving {:.1}%, trajectory bit-reproducible",
        100.0 * gap,
        100.0 * (1.0 - r.elastic.total_cost() / r.static_fleet.total_cost())
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"coordinated prefill/decode autoscaling over the spot-priced elastic cloud pool (2 on-demand base nodes + 6 spot nodes, 32 GPUs): 24-hour diurnal conversation day with a 13:00 flash crowd and a staggered spot reclaim wave, autoscaler vs oracle static on-demand fleet\",\n");
    json.push_str("  \"note\": \"simulated time (deterministic; the elastic trajectory is asserted bit-reproducible). attainment = request-weighted joint SLO attainment across segments; cost = sum of per-segment fleet burn (base nodes on-demand, spot nodes at spot rates; the static arm prices the whole pool on-demand). Fleet edits go through the lightweight rescheduler: no weight reloads on acquire/release/drain, warned nodes are drained before the provider reclaims them.\",\n");
    json.push_str(&format!(
        "  \"gap_points\": {:.3},\n  \"saving_fraction\": {:.6},\n",
        100.0 * gap,
        1.0 - r.elastic.total_cost() / r.static_fleet.total_cost()
    ));
    json.push_str("  \"arms\": [\n");
    let arms = [("static", &r.static_fleet), ("autoscale", &r.elastic)];
    for (i, (name, a)) in arms.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"arm\": \"{}\", \"attainment\": {:.6}, \"completed\": {}, \"total_cost\": {:.4}, \
             \"mean_rate_per_hour\": {:.4}, \"acquires\": {}, \"releases\": {}, \"drains\": {}, \
             \"phase_flips\": {}, \"segments\": [\n",
            name,
            a.mean_attainment(),
            a.completed(),
            a.total_cost(),
            a.mean_rate_per_hour(),
            autoscale::action_count(a, ScaleKind::Acquire),
            autoscale::action_count(a, ScaleKind::Release),
            autoscale::action_count(a, ScaleKind::Drain),
            autoscale::action_count(a, ScaleKind::PhaseFlip),
        ));
        for (j, s) in a.records.iter().enumerate() {
            json.push_str(&format!(
                "      {{\"segment\": {}, \"submitted\": {}, \"completed\": {}, \"attainment\": {:.6}, \
                 \"fleet_gpus\": {}, \"rate_per_hour\": {:.4}, \"cost\": {:.6}}}{}\n",
                s.segment,
                s.submitted,
                s.completed,
                s.attainment,
                s.fleet_gpus,
                s.rate_per_hour,
                a.ledger.entries[j].cost,
                if j + 1 == a.records.len() { "" } else { "," }
            ));
        }
        json.push_str(&format!(
            "    ]}}{}\n",
            if i + 1 == arms.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");

    // The headline claims — ≥20% cost saving, attainment within the gap
    // bound of the oracle static fleet — live in the shared gate, which CI
    // re-checks against the committed artifact. The compressed quick trace
    // is structurally harsher on a boundary-reactive controller (each
    // segment is a sixth of the day, so one lagged boundary costs ~10x
    // more weight), so quick mode gets the lax gap bound.
    match ts_bench::gate::check("BENCH_autoscale", &json, !quick) {
        Ok(rep) => println!("gate: {} checks held", rep.checks),
        Err(e) => {
            eprintln!("gate: {e}");
            std::process::exit(1);
        }
    }
    std::fs::write(&out, json).expect("write benchmark output");
    println!("wrote {out}");
}
