//! # ts-bench
//!
//! The experiment harness: one module per table/figure of the paper's
//! evaluation, each regenerating the corresponding rows or series on the
//! simulated substrate. The `reproduce` binary prints them; integration
//! tests assert the qualitative shapes (who wins, directions of effects).
//!
//! Run everything:
//!
//! ```text
//! cargo run -p ts-bench --bin reproduce --release
//! cargo run -p ts-bench --bin reproduce --release -- --exp fig7 --quick
//! ```

pub mod exps;
pub mod gate;
pub mod harness;
pub mod table;
pub mod trace_demo;

/// One reproducible experiment.
pub struct Experiment {
    /// Short id (`tab1`, `fig7`, ...), matching DESIGN.md's index.
    pub id: &'static str,
    /// Paper artifact and description.
    pub title: &'static str,
    /// Runs the experiment and returns its printed report. `quick` trims
    /// horizons/sweeps for CI.
    pub run: fn(quick: bool) -> String,
}

/// The full experiment registry in paper order.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "tab1",
            title: "Table 1: GPU specifications and pricing",
            run: exps::catalog::run,
        },
        Experiment {
            id: "fig1",
            title: "Figure 1: prefill/decode price per request (3090Ti vs A40)",
            run: exps::price::run,
        },
        Experiment {
            id: "fig2",
            title: "Figure 2: effect of batching on prefill and decode",
            run: exps::batching::run,
        },
        Experiment {
            id: "fig6",
            title: "Figure 6 (+ Fig 14): throughput & SLO vs prefill:decode ratio",
            run: exps::ratio::run,
        },
        Experiment {
            id: "fig7",
            title: "Figure 7: SLO attainment on the cloud vs HexGen-like",
            run: exps::cloud_slo::run,
        },
        Experiment {
            id: "fig8",
            title: "Figure 8: same-budget cloud vs in-house (DistServe/vLLM-like)",
            run: exps::budget_slo::run,
        },
        Experiment {
            id: "fig9",
            title: "Figure 9: relative throughput vs all baselines",
            run: exps::throughput::run,
        },
        Experiment {
            id: "tab3",
            title: "Table 3 (+ App. F): deployment plans discovered by the scheduler",
            run: exps::case_study::run,
        },
        Experiment {
            id: "fig10",
            title: "Figure 10: tabu-search convergence for 16/24/32 GPUs",
            run: exps::convergence::run,
        },
        Experiment {
            id: "fig11",
            title: "Figure 11 (+ Table 4): rescheduling after 4/32 GPUs fail",
            run: exps::failure::run,
        },
        Experiment {
            id: "abl1",
            title: "Extension: scheduler-component ablation (init / moves / tie-breaker)",
            run: exps::sched_ablation::run,
        },
        Experiment {
            id: "ext2",
            title: "Extension: GQA shrinks the KV transfer (slow-link phase splitting)",
            run: exps::gqa::run,
        },
        Experiment {
            id: "ext1",
            title: "Extension: workload robustness (bursty arrivals, mixed services)",
            run: exps::workload_robustness::run,
        },
        Experiment {
            id: "fig12",
            title: "Figure 12: ablation of KV compression and orchestration",
            run: exps::ablation::run,
        },
        Experiment {
            id: "tab2",
            title: "Tables 2/6/7 (proxy): KV quantization quality",
            run: exps::quant_quality::run,
        },
        Experiment {
            id: "tab5",
            title: "Table 5 (+ Figs 16-17, App. H): phase splitting vs network bandwidth",
            run: exps::network::run,
        },
        Experiment {
            id: "tab8",
            title: "Table 8 / Figure 18: 16-bit vs 4-bit KV communication",
            run: exps::comm_precision::run,
        },
        Experiment {
            id: "mm",
            title: "Extension: multi-model shared pool vs static partition",
            run: exps::mm::run,
        },
        Experiment {
            id: "auto",
            title: "Extension: coordinated autoscaling over a spot-priced elastic fleet",
            run: exps::autoscale::run,
        },
        Experiment {
            id: "netc",
            title: "Extension: KV-transfer contention under the flow-level fabric",
            run: exps::net_contention::run,
        },
        Experiment {
            id: "fig13",
            title: "Figure 13 (App. C): inter-connection bandwidth heatmaps",
            run: exps::bandwidth_matrix::run,
        },
        Experiment {
            id: "fig19",
            title: "Figure 19 (App. J): analytic estimator vs event simulation",
            run: exps::sim_accuracy::run,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique() {
        let mut ids: Vec<&str> = all_experiments().iter().map(|e| e.id).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n);
        assert!(n >= 16);
    }
}
