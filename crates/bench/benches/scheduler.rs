//! Criterion microbenchmarks for the two-level scheduler: full tabu runs at
//! three cluster sizes (the Figure 10 quantity) plus the lower-level pieces.

#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use thunderserve_core::parallel::deduce_parallel_config;
use thunderserve_core::{Scheduler, SchedulerConfig};
use ts_cluster::presets;
use ts_common::{GpuId, ModelSpec, Phase, SimDuration, SloSpec};
use ts_workload::spec;

fn slo() -> SloSpec {
    SloSpec::new(
        SimDuration::from_millis(400 * 8),
        SimDuration::from_millis(30 * 8),
        SimDuration::from_secs(48),
    )
}

fn bench_full_schedule(c: &mut Criterion) {
    let model = ModelSpec::llama_30b();
    let w = spec::coding(2.0);
    let s = slo();
    let mut group = c.benchmark_group("schedule");
    group.sample_size(10);
    for n in [8usize, 16, 32] {
        let cluster = match n {
            8 => presets::network_case_cluster(presets::ETH_40GBPS),
            16 => presets::a5000_cluster(16),
            _ => presets::paper_cloud_cluster(),
        };
        let model = if n == 16 {
            ModelSpec::llama_13b()
        } else {
            model.clone()
        };
        // 1 thread is the serial reference; the multi-thread arm exercises
        // the parallel neighbourhood evaluation (results are bit-identical,
        // only wall-clock differs).
        for threads in [1usize, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("{n}gpu"), format!("{threads}thr")),
                &n,
                |b, _| {
                    let mut cfg = SchedulerConfig::fast();
                    cfg.seed = 1;
                    cfg.num_threads = threads;
                    let sched = Scheduler::new(cfg);
                    b.iter(|| sched.schedule(&cluster, &model, &w, &s).unwrap());
                },
            );
        }
    }
    group.finish();
}

fn bench_parallel_config(c: &mut Criterion) {
    let cluster = presets::paper_cloud_cluster();
    let model = ModelSpec::llama_30b();
    let w = spec::coding(2.0);
    let cfg = SchedulerConfig::default();
    let gpus: Vec<GpuId> = (16..24).map(GpuId).collect(); // the 8xA40 node
    c.bench_function("deduce_parallel_config_8gpu", |b| {
        b.iter(|| {
            deduce_parallel_config(&cluster, &model, &gpus, Phase::Prefill, &w, &cfg).unwrap()
        })
    });
}

fn bench_estimator(c: &mut Criterion) {
    use ts_costmodel::ReplicaCostModel;
    use ts_sim::config::SimConfig;
    use ts_sim::estimate::pair_estimates;

    let cluster = presets::paper_cloud_cluster();
    let model = ModelSpec::llama_30b();
    let w = spec::coding(2.0);
    let cfg = SchedulerConfig::default();
    // 4 prefill (A40 pairs) + 2 decode (3090Ti quads) replicas
    let group = |phase, gpus: Vec<u32>| {
        thunderserve_core::parallel::deduce_parallel_config(
            &cluster,
            &model,
            &gpus.into_iter().map(GpuId).collect::<Vec<_>>(),
            phase,
            &w,
            &cfg,
        )
        .unwrap()
    };
    let prefill: Vec<ReplicaCostModel> = [(16..18), (18..20), (20..22), (22..24)]
        .into_iter()
        .map(|r| {
            let g = group(Phase::Prefill, r.collect());
            ReplicaCostModel::new(&cluster, &model, &g, &cfg.params).unwrap()
        })
        .collect();
    let decode: Vec<ReplicaCostModel> = [(24..28), (28..32)]
        .into_iter()
        .map(|r| {
            let g = group(Phase::Decode, r.collect());
            ReplicaCostModel::new(&cluster, &model, &g, &cfg.params).unwrap()
        })
        .collect();
    let sim_cfg = SimConfig::new(model.clone());
    let s = slo();
    c.bench_function("pair_estimates_4x2", |b| {
        b.iter(|| pair_estimates(&cluster, &sim_cfg, &prefill, &decode, &w, &s))
    });
}

fn bench_calibration(c: &mut Criterion) {
    use ts_costmodel::calibration::{fit, PrefillObservation};
    use ts_costmodel::ModelParams;

    let model = ModelSpec::llama_7b();
    let gpu = presets::paper_inhouse_cluster().gpu(GpuId(0)).spec();
    let obs: Vec<PrefillObservation> = [512u64, 1024, 2048, 4096]
        .iter()
        .map(|&bt| PrefillObservation {
            batch_tokens: bt,
            avg_context: bt,
            latency_s: 0.2 + bt as f64 * 1e-4,
        })
        .collect();
    let mut group = c.benchmark_group("calibration");
    group.sample_size(10);
    group.bench_function("grid_fit_4pts", |b| {
        b.iter(|| fit(&model, gpu, &obs, &[], ModelParams::default()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_full_schedule,
    bench_parallel_config,
    bench_estimator,
    bench_calibration
);
criterion_main!(benches);
