//! Criterion microbenchmark for the shared event-loop hot path.
//!
//! Both engines are facades over `ts_sim::exec`'s single driver; this
//! drives the same ~10k-request trace through an 8-replica plan in each
//! topology (4 prefill + 4 decode disaggregated, and 8 colocated) so a
//! regression in the common event loop, router or batching core shows up
//! no matter which facade it enters through.

#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ts_cluster::presets;
use ts_common::{
    DeploymentPlan, GpuId, GroupSpec, ModelSpec, ParallelConfig, Phase, RoutingMatrix, SimDuration,
    StageSpec,
};
use ts_sim::colocated::ColocatedSimulation;
use ts_sim::config::SimConfig;
use ts_sim::engine::Simulation;
use ts_workload::{generator::generate, spec};

fn replica(phase: Phase, gpu: u32, layers: usize) -> GroupSpec {
    GroupSpec::new(
        phase,
        ParallelConfig::new(1, 1).unwrap(),
        vec![StageSpec {
            gpus: vec![GpuId(gpu)],
            layers,
        }],
    )
    .unwrap()
}

fn bench_event_loop(c: &mut Criterion) {
    let cluster = presets::paper_inhouse_cluster();
    let model = ModelSpec::llama_7b();
    let layers = model.num_layers;
    // ~10k requests: short fixed-shape traffic so the run is dominated by
    // event-loop bookkeeping, not simulated durations.
    let reqs = generate(&spec::fixed(256, 32, 50.0), SimDuration::from_secs(200), 1);
    let split_plan = DeploymentPlan::new(
        (0..4)
            .map(|g| replica(Phase::Prefill, g, layers))
            .chain((4..8).map(|g| replica(Phase::Decode, g, layers)))
            .collect(),
        RoutingMatrix::uniform(4, 4),
    )
    .unwrap();
    let colo_groups: Vec<GroupSpec> = (0..8).map(|g| replica(Phase::Prefill, g, layers)).collect();

    let mut group = c.benchmark_group("event_loop_10k_8rep");
    group.sample_size(10);
    group.throughput(Throughput::Elements(reqs.len() as u64));
    group.bench_function("split_4p4d", |b| {
        b.iter(|| {
            Simulation::new(&cluster, &split_plan, SimConfig::new(model.clone()))
                .unwrap()
                .run(&reqs)
                .unwrap()
        })
    });
    group.bench_function("colocated_8x", |b| {
        b.iter(|| {
            ColocatedSimulation::new(&cluster, &colo_groups, SimConfig::new(model.clone()))
                .unwrap()
                .run(&reqs)
                .unwrap()
        })
    });
    group.finish();
}

/// Day-trace-scale arm: 100k requests through a 64-replica split plan —
/// the same shape as `bench_sim`'s 100k arm (paired routing, thin decode
/// batches), as a tracked criterion benchmark with requests/sec
/// throughput. Large enough that slab reuse, plan recycling and the
/// indexed queue's steady state all engage.
fn bench_event_loop_100k(c: &mut Criterion) {
    let cluster = presets::a5000_cluster(64);
    let model = ModelSpec::llama_7b();
    let layers = model.num_layers;
    let reqs = generate(&spec::fixed(256, 64, 40.0), SimDuration::from_secs(2500), 1);
    let half = 32usize;
    // Paired routing: prefill i feeds decode i, the shape KV-transfer-aware
    // orchestration produces at scale.
    let mut rates = vec![vec![0.0; half]; half];
    for (p, row) in rates.iter_mut().enumerate() {
        row[p] = 1.0 / half as f64;
    }
    let split_plan = DeploymentPlan::new(
        (0..half as u32)
            .map(|g| replica(Phase::Prefill, g, layers))
            .chain((0..half as u32).map(|g| replica(Phase::Decode, half as u32 + g, layers)))
            .collect(),
        RoutingMatrix::new(rates).unwrap(),
    )
    .unwrap();

    let mut group = c.benchmark_group("event_loop_100k_64rep");
    group.sample_size(10);
    group.throughput(Throughput::Elements(reqs.len() as u64));
    group.bench_function("split_32p32d", |b| {
        b.iter(|| {
            Simulation::new(&cluster, &split_plan, SimConfig::new(model.clone()))
                .unwrap()
                .run(&reqs)
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_event_loop, bench_event_loop_100k);
criterion_main!(benches);
