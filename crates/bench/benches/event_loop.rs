//! Criterion microbenchmark for the shared event-loop hot path.
//!
//! Both engines are facades over `ts_sim::exec`'s single driver; this
//! drives the same ~10k-request trace through an 8-replica plan in each
//! topology (4 prefill + 4 decode disaggregated, and 8 colocated) so a
//! regression in the common event loop, router or batching core shows up
//! no matter which facade it enters through.

#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ts_cluster::presets;
use ts_common::{
    DeploymentPlan, GpuId, GroupSpec, ModelSpec, ParallelConfig, Phase, RoutingMatrix, SimDuration,
    StageSpec,
};
use ts_sim::colocated::ColocatedSimulation;
use ts_sim::config::SimConfig;
use ts_sim::engine::Simulation;
use ts_workload::{generator::generate, spec};

fn replica(phase: Phase, gpu: u32, layers: usize) -> GroupSpec {
    GroupSpec::new(
        phase,
        ParallelConfig::new(1, 1).unwrap(),
        vec![StageSpec {
            gpus: vec![GpuId(gpu)],
            layers,
        }],
    )
    .unwrap()
}

fn bench_event_loop(c: &mut Criterion) {
    let cluster = presets::paper_inhouse_cluster();
    let model = ModelSpec::llama_7b();
    let layers = model.num_layers;
    // ~10k requests: short fixed-shape traffic so the run is dominated by
    // event-loop bookkeeping, not simulated durations.
    let reqs = generate(&spec::fixed(256, 32, 50.0), SimDuration::from_secs(200), 1);
    let split_plan = DeploymentPlan::new(
        (0..4)
            .map(|g| replica(Phase::Prefill, g, layers))
            .chain((4..8).map(|g| replica(Phase::Decode, g, layers)))
            .collect(),
        RoutingMatrix::uniform(4, 4),
    )
    .unwrap();
    let colo_groups: Vec<GroupSpec> = (0..8).map(|g| replica(Phase::Prefill, g, layers)).collect();

    let mut group = c.benchmark_group("event_loop_10k_8rep");
    group.sample_size(10);
    group.throughput(Throughput::Elements(reqs.len() as u64));
    group.bench_function("split_4p4d", |b| {
        b.iter(|| {
            Simulation::new(&cluster, &split_plan, SimConfig::new(model.clone()))
                .unwrap()
                .run(&reqs)
                .unwrap()
        })
    });
    group.bench_function("colocated_8x", |b| {
        b.iter(|| {
            ColocatedSimulation::new(&cluster, &colo_groups, SimConfig::new(model.clone()))
                .unwrap()
                .run(&reqs)
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_event_loop);
criterion_main!(benches);
