//! Criterion microbenchmarks for the KV quantization codec.

#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ts_common::{seeded_rng, ModelSpec};
use ts_kvcache::codec::{KvCodec, KvWirePrecision};
use ts_kvcache::quant::{quantize, QuantBits};
use ts_kvcache::synthetic::generate_kv;

fn bench_quantize(c: &mut Criterion) {
    let model = ModelSpec::llama_7b();
    let kv = generate_kv(&model, 64, &mut seeded_rng(1));
    let mut group = c.benchmark_group("quantize");
    group.throughput(Throughput::Bytes((kv.values.len() * 4) as u64));
    for bits in [QuantBits::Int4, QuantBits::Int8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}bit", bits.bits())),
            &bits,
            |b, &bits| b.iter(|| quantize(&kv.values, bits, 64)),
        );
    }
    group.finish();
}

fn bench_codec_round_trip(c: &mut Criterion) {
    let model = ModelSpec::llama_7b();
    let kv = generate_kv(&model, 64, &mut seeded_rng(2));
    let codec = KvCodec::new(model, KvWirePrecision::DEFAULT_COMPRESSED);
    c.bench_function("codec_encode_decode", |b| {
        b.iter(|| {
            let wire = codec.encode(&kv.values);
            codec.decode(&wire).unwrap()
        })
    });
}

criterion_group!(benches, bench_quantize, bench_codec_round_trip);
criterion_main!(benches);
