//! Criterion microbenchmarks for the optimization primitives.

#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ts_solver::clustering::cluster_by_bandwidth;
use ts_solver::routing_dp::best_stage_order;
use ts_solver::transport::solve_orchestration;

fn bench_transport(c: &mut Criterion) {
    let mut group = c.benchmark_group("orchestration_lp");
    for (m, n) in [(4usize, 4usize), (8, 8), (12, 12)] {
        let d: Vec<Vec<f64>> = (0..m)
            .map(|i| {
                (0..n)
                    .map(|j| ((i * 7 + j * 3) % 10) as f64 / 10.0)
                    .collect()
            })
            .collect();
        let row = vec![2.0 / m as f64; m];
        let col = vec![2.0 / n as f64; n];
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{m}x{n}")),
            &(m, n),
            |b, _| b.iter(|| solve_orchestration(&d, &row, &col).unwrap()),
        );
    }
    group.finish();
}

fn bench_routing_dp(c: &mut Criterion) {
    for n in [8usize, 12] {
        let bw: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..n).map(|j| ((i * 13 + j * 5) % 31 + 1) as f64).collect())
            .collect();
        c.bench_function(&format!("routing_dp_{n}"), |b| {
            b.iter(|| best_stage_order(&bw).unwrap())
        });
    }
}

fn bench_clustering(c: &mut Criterion) {
    let n = 32;
    let bw: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..n)
                .map(|j| if i / 4 == j / 4 { 16e9 } else { 1.25e9 })
                .collect()
        })
        .collect();
    c.bench_function("hierarchical_clustering_32", |b| {
        b.iter(|| cluster_by_bandwidth(&bw, 12).unwrap())
    });
}

fn bench_modi_vs_simplex(c: &mut Criterion) {
    use ts_solver::transport_classic::solve_balanced;
    let m = 6;
    let n = 6;
    let costs: Vec<Vec<f64>> = (0..m)
        .map(|i| (0..n).map(|j| ((i * 7 + j * 3) % 23 + 1) as f64).collect())
        .collect();
    let supply = vec![10.0; m];
    let demand = vec![10.0; n];
    c.bench_function("transport_modi_6x6", |b| {
        b.iter(|| solve_balanced(&costs, &supply, &demand).unwrap())
    });
}

criterion_group!(
    benches,
    bench_transport,
    bench_routing_dp,
    bench_clustering,
    bench_modi_vs_simplex
);
criterion_main!(benches);
