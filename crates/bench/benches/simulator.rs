//! Criterion microbenchmarks for the discrete-event engine.

#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ts_bench::exps::network::disaggregated_plan;
use ts_cluster::presets;
use ts_common::{ModelSpec, SimDuration};
use ts_sim::config::SimConfig;
use ts_sim::engine::Simulation;
use ts_workload::{generator::generate, spec};

fn bench_engine(c: &mut Criterion) {
    let cluster = presets::network_case_cluster(presets::ETH_40GBPS);
    let model = ModelSpec::llama_30b();
    let plan = disaggregated_plan(&model);
    let mut group = c.benchmark_group("simulate");
    group.sample_size(10);
    for secs in [30u64, 120] {
        let reqs = generate(&spec::coding(2.0), SimDuration::from_secs(secs), 1);
        group.bench_with_input(BenchmarkId::from_parameter(secs), &secs, |b, _| {
            b.iter(|| {
                Simulation::new(&cluster, &plan, SimConfig::new(model.clone()))
                    .unwrap()
                    .run(&reqs)
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
