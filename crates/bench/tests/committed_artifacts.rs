//! Every committed `BENCH_*.json` artifact must satisfy the shared gate's
//! structural and qualitative invariants — the same checks `bench_gate`
//! runs in CI — and self-compare cleanly through the regression detector.

use ts_bench::gate;

const STEMS: &[&str] = &[
    "BENCH_scheduler",
    "BENCH_net",
    "BENCH_sim",
    "BENCH_fault",
    "BENCH_mm",
    "BENCH_autoscale",
    "BENCH_obs",
];

fn committed(stem: &str) -> String {
    let path = format!("{}/../../{stem}.json", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path} must be committed: {e}"))
}

/// The committed artifacts hold under the *strict* gate (timing budgets
/// included): strictness applies to the recorded values, not to this
/// machine, so the check is deterministic wherever it runs.
#[test]
fn committed_artifacts_pass_the_strict_gate() {
    for stem in STEMS {
        let report =
            gate::check(stem, &committed(stem), true).unwrap_or_else(|e| panic!("{stem}: {e}"));
        assert!(report.checks > 0, "{stem}: gate checked nothing");
    }
}

/// Self-comparison must report no regressions, and every artifact with
/// tracked deterministic metrics must actually surface them.
#[test]
fn committed_artifacts_self_compare_clean() {
    let mut tracked = 0;
    for stem in STEMS {
        let text = committed(stem);
        let regressions = gate::compare(stem, &text, &text).unwrap();
        assert!(regressions.is_empty(), "{stem}: {regressions:?}");
        let root = gate::json::parse(&text).unwrap();
        tracked += gate::metrics_of(stem, &root).len();
    }
    assert!(tracked >= 50, "expected a rich metric set, got {tracked}");
}

/// A doctored artifact (worse deterministic metric) trips the comparison.
#[test]
fn regression_detector_trips_on_worse_values() {
    let text = committed("BENCH_obs");
    let worse = text.replace("\"p99_ttft_err_rel\": 0.00", "\"p99_ttft_err_rel\": 0.90");
    assert_ne!(text, worse, "fixture must actually change");
    let regressions = gate::compare("BENCH_obs", &text, &worse).unwrap();
    assert!(
        !regressions.is_empty(),
        "a 0.9 relative error must register as a regression"
    );
}
