//! Acceptance: sketch-derived p50/p99 TTFT and E2E from the streaming plane
//! agree with exact post-hoc `TraceLog` percentiles within the configured
//! relative-error bound, on the fig8–11 experiment scenarios (cloud
//! phase-split, in-house DistServe split, colocated vLLM, and the failure
//! regime).

use ts_baselines::{DistServePlanner, VllmPlanner};
use ts_bench::harness;
use ts_cluster::presets;
use ts_common::{ModelSpec, RequestId, SimDuration, SimTime, SloSpec};
use ts_sim::colocated::ColocatedSimulation;
use ts_sim::engine::Simulation;
use ts_sim::{FaultKind, FaultScript, SimConfig, TimedFault};
use ts_telemetry::{StreamConfig, StreamSnapshot, TraceKind, TraceLog};
use ts_workload::spec;

const ALPHA: f64 = 0.01;

fn stream_cfg(slo: SloSpec) -> StreamConfig {
    StreamConfig::new(slo).with_sketch_alpha(ALPHA)
}

/// Exact TTFT/E2E populations rebuilt from raw trace events, using the same
/// attribution the plane applies online (first `FirstToken` per request).
fn exact_populations(log: &TraceLog) -> (Vec<SimDuration>, Vec<SimDuration>) {
    use std::collections::BTreeMap;
    let mut arrived: BTreeMap<RequestId, SimTime> = BTreeMap::new();
    let mut ttfts = Vec::new();
    let mut e2es = Vec::new();
    for e in log.events() {
        match e.kind {
            TraceKind::Arrived { request } => {
                arrived.insert(request, e.at);
            }
            TraceKind::FirstToken { request } => {
                if let Some(&at) = arrived.get(&request) {
                    ttfts.push(e.at.saturating_since(at));
                }
            }
            TraceKind::Finished { request } => {
                if let Some(&at) = arrived.get(&request) {
                    e2es.push(e.at.saturating_since(at));
                }
            }
            _ => {}
        }
    }
    ttfts.sort_unstable();
    e2es.sort_unstable();
    (ttfts, e2es)
}

fn assert_scenario_accuracy(name: &str, snap: &StreamSnapshot, log: &TraceLog) {
    let (ttfts, e2es) = exact_populations(log);
    assert!(
        ttfts.len() > 50,
        "{name}: too few completions to judge tails"
    );
    assert_eq!(snap.ttft.count() as usize, ttfts.len(), "{name}: ttft pop");
    assert_eq!(snap.e2e.count() as usize, e2es.len(), "{name}: e2e pop");
    for &q in &[0.5, 0.99] {
        for (what, sketch, exact) in [("TTFT", &snap.ttft, &ttfts), ("E2E", &snap.e2e, &e2es)] {
            let s = sketch.quantile_duration(q).unwrap().as_secs_f64();
            let e = ts_common::stats::percentile(exact, q)
                .unwrap()
                .as_secs_f64();
            let bound = ALPHA * e + 2e-6;
            assert!(
                (s - e).abs() <= bound,
                "{name} {what} q={q}: sketch {s} vs exact {e} exceeds {bound}"
            );
        }
    }
}

#[test]
fn fig8_cloud_phase_split_sketches_match_exact() {
    let cluster = presets::paper_cloud_cluster();
    let model = ModelSpec::llama_30b();
    let workload = spec::coding(2.5);
    let slo = harness::base_slo_30b().scaled(8.0);
    let plan = harness::thunderserve_plan(&cluster, &model, &workload, &slo, 17, true).unwrap();
    let cfg = SimConfig::new(model)
        .with_telemetry(true)
        .with_streaming(stream_cfg(slo));
    let mut sim = Simulation::new(&cluster, &plan, cfg).unwrap();
    sim.run(&harness::trace(&workload, true, 17)).unwrap();
    let log = sim.take_trace().unwrap();
    let snap = sim.take_streaming().unwrap().snapshot();
    assert_scenario_accuracy("fig8-cloud", &snap, &log);
}

#[test]
fn fig9_inhouse_distserve_sketches_match_exact() {
    let cluster = presets::paper_inhouse_cluster();
    let model = ModelSpec::llama_30b();
    let workload = spec::conversation(2.5);
    let slo = harness::base_slo_30b().scaled(8.0);
    let plan = DistServePlanner::new()
        .plan(&cluster, &model, &workload, &slo)
        .unwrap();
    let cfg = SimConfig::new(model)
        .with_f16_kv()
        .with_telemetry(true)
        .with_streaming(stream_cfg(slo));
    let mut sim = Simulation::new(&cluster, &plan, cfg).unwrap();
    sim.run(&harness::trace(&workload, true, 17)).unwrap();
    let log = sim.take_trace().unwrap();
    let snap = sim.take_streaming().unwrap().snapshot();
    assert_scenario_accuracy("fig9-inhouse", &snap, &log);
}

#[test]
fn fig10_colocated_vllm_sketches_match_exact() {
    let cluster = presets::paper_inhouse_cluster();
    let model = ModelSpec::llama_30b();
    let workload = spec::coding(2.5);
    let slo = harness::base_slo_30b().scaled(8.0);
    let groups = VllmPlanner::new().plan(&cluster, &model).unwrap();
    let cfg = SimConfig::new(model)
        .with_telemetry(true)
        .with_streaming(stream_cfg(slo));
    let mut sim = ColocatedSimulation::new(&cluster, &groups, cfg).unwrap();
    sim.run(&harness::trace(&workload, true, 17)).unwrap();
    let log = sim.take_trace().unwrap();
    let snap = sim.take_streaming().unwrap().snapshot();
    assert_scenario_accuracy("fig10-colocated", &snap, &log);
}

#[test]
fn fig11_failure_regime_sketches_match_exact() {
    let cluster = presets::paper_cloud_cluster();
    let model = ModelSpec::llama_30b();
    let workload = spec::coding(2.5);
    let slo = harness::base_slo_30b().scaled(8.0);
    let plan = harness::thunderserve_plan(&cluster, &model, &workload, &slo, 17, true).unwrap();
    let cfg = SimConfig::new(model)
        .with_telemetry(true)
        .with_streaming(stream_cfg(slo));
    // A mid-run prefill straggler pushes the run into the fig11 degraded
    // regime; the online sketches must stay accurate through it.
    let script = FaultScript::new(
        vec![TimedFault {
            at: SimTime::from_secs_f64(15.0),
            kind: FaultKind::PrefillSlow(0, 8.0),
        }],
        SimDuration::from_millis(500),
    );
    let mut sim = Simulation::new(&cluster, &plan, cfg).unwrap();
    sim.run_with_faults(&harness::trace(&workload, true, 17), &script)
        .unwrap();
    let log = sim.take_trace().unwrap();
    let snap = sim.take_streaming().unwrap().snapshot();
    assert_scenario_accuracy("fig11-failure", &snap, &log);
}
